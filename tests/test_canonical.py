"""Tests for canonical forms and iso-invariant hashing."""

import random

from repro.graph import (
    LabeledGraph,
    canonical_form,
    canonical_hash,
    is_isomorphic,
    path_graph,
    wl_colors,
)
from tests.conftest import make_random_graph


def shuffled_copy(graph: LabeledGraph, seed: int) -> LabeledGraph:
    """Same graph with renamed vertex ids and shuffled insertion order."""
    rng = random.Random(seed)
    vertices = graph.vertices()
    new_ids = {v: f"n{i}" for i, v in enumerate(rng.sample(vertices, len(vertices)))}
    clone = LabeledGraph(name=graph.name)
    for v in rng.sample(vertices, len(vertices)):
        clone.add_vertex(new_ids[v], graph.vertex_label(v))
    edges = list(graph.edges())
    rng.shuffle(edges)
    for u, v, label in edges:
        clone.add_edge(new_ids[u], new_ids[v], label)
    return clone


def test_isomorphic_graphs_share_canonical_form():
    for seed in range(20):
        graph = make_random_graph(seed)
        twin = shuffled_copy(graph, seed + 1)
        assert is_isomorphic(graph, twin)
        assert canonical_form(graph) == canonical_form(twin), f"seed {seed}"
        assert canonical_hash(graph) == canonical_hash(twin)


def test_different_labels_different_form():
    g1 = path_graph(["A", "B", "C"])
    g2 = path_graph(["A", "B", "D"])
    assert canonical_form(g1) != canonical_form(g2)


def test_different_structure_different_form():
    path = path_graph(["A", "A", "A", "A"])
    star = LabeledGraph.from_edges(
        [(0, 1), (0, 2), (0, 3)], vertex_labels={i: "A" for i in range(4)}
    )
    assert canonical_form(path) != canonical_form(star)


def test_edge_labels_in_form():
    g1 = LabeledGraph.from_edges([("A", "B", "x")])
    g2 = LabeledGraph.from_edges([("A", "B", "y")])
    assert canonical_form(g1) != canonical_form(g2)


def test_empty_graph_form_is_stable():
    assert canonical_form(LabeledGraph()) == canonical_form(LabeledGraph())


def test_wl_colors_partition_by_structure():
    # In a path A-A-A, the middle vertex must get its own color.
    g = path_graph(["A", "A", "A"])
    colors = wl_colors(g)
    assert colors[0] == colors[2]
    assert colors[1] != colors[0]


def test_wl_colors_respect_labels():
    g = path_graph(["A", "B"])
    colors = wl_colors(g)
    assert colors[0] != colors[1]


def test_wl_rounds_zero_is_label_hash():
    g = path_graph(["A", "A", "B"])
    colors = wl_colors(g, rounds=0)
    assert colors[0] == colors[1]
    assert colors[0] != colors[2]


def test_highly_symmetric_graph_stable_form():
    """A 4-cycle with one label has a big automorphism group; canonical
    form must still be permutation-invariant."""
    from repro.graph import cycle_graph

    c4 = cycle_graph(["A", "A", "A", "A"])
    twin = shuffled_copy(c4, 99)
    assert canonical_form(c4) == canonical_form(twin)
