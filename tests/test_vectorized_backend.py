"""The ``vectorized`` backend: parity, batch-prune accounting, payload reuse.

Answer-set parity with the exhaustive reference is covered for all four
query kinds (the hypothesis parity suite in
``test_api_backends_property.py`` also rotates this backend); this file
pins the parts unique to the vectorized path — pre-filter statistics,
``explain()`` reporting, plan labels, mutation self-healing through the
feature store, cache composition, and the pool-shared database payload
that replaced per-chunk graph pickling in the parallel evaluator.
"""

import pytest

pytest.importorskip("numpy", reason="the vectorized backend requires NumPy")

import repro
from repro import GraphDatabase, PairCache, Query
from repro.api.backends import VectorizedBackend, available_backends
from repro.engine.evaluate import PooledEvaluator, shutdown_pool

from tests.conftest import make_random_graph


@pytest.fixture
def random_database() -> GraphDatabase:
    return GraphDatabase.from_graphs(
        [make_random_graph(seed, max_vertices=5) for seed in range(12)]
    )


def _reference(database, build):
    with repro.connect(database, backend="memory") as session:
        return session.execute(build())


def test_backend_is_registered():
    assert "vectorized" in available_backends()


@pytest.mark.parametrize(
    "build",
    [
        lambda q: Query(q).skyline(),
        lambda q: Query(q).skyband(2),
        lambda q: Query(q).topk(4, "edit"),
        lambda q: Query(q).threshold(2.0, "edit"),
        lambda q: Query(q).threshold(0.35, "edit-normalized"),
        lambda q: Query(q).threshold(0.6, "mcs"),
        lambda q: Query(q).threshold(0.5, "union"),
    ],
    ids=["skyline", "skyband", "topk", "edit", "edit-norm", "mcs", "union"],
)
def test_answers_match_memory_backend(random_database, build, paper_query):
    reference = _reference(random_database, lambda: build(paper_query))
    with repro.connect(random_database, backend="vectorized") as session:
        result = session.execute(build(paper_query))
    assert result.ids == reference.ids
    if reference.distances is not None:
        assert all(
            result.distances[i] == reference.distances[i] for i in result.ids
        )


def test_threshold_prefilter_is_counted_and_explained(random_database, paper_query):
    spec = Query(paper_query).threshold(1.0, "edit")
    with repro.connect(random_database, backend="vectorized") as session:
        result = session.execute(spec)
    stats = result.stats
    assert stats.pruned_by_batch > 0
    assert stats.pruned_by_index >= stats.pruned_by_batch
    assert stats.candidates_considered == len(random_database)
    assert (
        stats.exact_evaluations + stats.pruned_by_index
        == stats.candidates_considered
    )
    assert "batch pre-filter" in result.explain()
    assert result.to_dict()["stats"]["pruned_by_batch"] == stats.pruned_by_batch
    assert f"(batch={stats.pruned_by_batch})" in stats.summary()


def test_prefiltered_ids_are_sound(random_database, paper_query):
    """Nothing the batch pre-filter removes could have been an answer."""
    for threshold, measure in ((1.5, "edit"), (0.4, "edit-normalized")):
        spec = Query(paper_query).threshold(threshold, measure).build()
        reference = _reference(random_database, lambda: spec)
        with repro.connect(random_database, backend="vectorized") as session:
            result = session.execute(spec)
            answer = session.backend.run(spec)
        assert set(answer.pruned_ids).isdisjoint(reference.ids)
        assert result.ids == reference.ids


def test_plan_reports_index_and_batch_stage(random_database, paper_query):
    with repro.connect(random_database, backend="vectorized") as session:
        plan = session.plan(Query(paper_query).skyline())
        assert plan.uses_index
        assert "pareto-bound(batch)" in plan.stages
        plan = session.plan(Query(paper_query).threshold(1.0, "edit"))
        assert "threshold-bound" in plan.stages


def test_use_index_false_disables_pruning(random_database, paper_query):
    with repro.connect(
        random_database, backend="vectorized", use_index=False
    ) as session:
        result = session.execute(Query(paper_query).threshold(0.5, "edit"))
        assert result.stats.pruned_by_index == 0
        assert result.stats.exact_evaluations == len(random_database)
        assert not session.plan(Query(paper_query).skyline()).stages


def test_store_heals_after_mutation(random_database, paper_query):
    with repro.connect(random_database, backend="vectorized") as session:
        before = session.execute(Query(paper_query).skyline())
        added = random_database.insert(make_random_graph(77))
        random_database.remove(random_database.ids()[0])
        after = session.execute(Query(paper_query).skyline())
        reference = _reference(random_database, lambda: Query(paper_query).skyline())
        assert after.ids == reference.ids
        backend = session.backend
        assert isinstance(backend, VectorizedBackend)
        assert added in backend.store.matrix
        # Row-level repair: one add + one drop, not a rebuild.
        assert backend.store.rows_dropped == 1


def test_cache_composes_with_vectorized_plan(random_database, paper_query):
    cache = PairCache()
    spec = Query(paper_query).skyline()
    with repro.connect(random_database, backend="vectorized", cache=cache) as s:
        cold = s.execute(spec)
        warm = s.execute(spec)
    assert warm.ids == cold.ids
    assert warm.stats.exact_evaluations == 0
    assert warm.stats.served_from_cache > 0
    assert warm.cache_info["served"] > 0


# ----------------------------------------------------------------------
# Pool-shared database attachment (parallel serialization tax)
# ----------------------------------------------------------------------
def test_pooled_attachment_warm_until_mutation_then_delta(
    random_database, paper_query
):
    spec = Query(paper_query).skyline().build()
    with repro.connect(
        random_database, backend="parallel", max_workers=2
    ) as session:
        first = session.execute(spec)
        # First drain parks the database on the persistent pool.
        assert first.stats.pool["attach"].get("cold") == 1
        second = session.execute(spec)
        # Unmutated database: the same attachment served both queries.
        assert second.stats.pool["attach"].get("warm") == 1
        random_database.insert(make_random_graph(55))
        third = session.execute(spec)
        # Mutation shipped a row-level delta, not a full re-park.
        assert third.stats.pool["attach"].get("delta") == 1
    # close() released the attachment; answers stayed parity-correct.
    assert session.backend._evaluator._attachment_key is None
    reference = _reference(random_database, lambda: Query(paper_query).skyline())
    assert third.ids == reference.ids
    assert first.ids == second.ids


def test_pooled_attachment_write_failure_ships_inline(
    random_database, paper_query, monkeypatch
):
    import tempfile

    from repro.engine import workers

    def broken_mkstemp(*args, **kwargs):
        raise OSError("no temp space")

    # Disable both blob transports: no shared memory and no temp files.
    monkeypatch.setattr(workers, "_SHM_DISABLED", True)
    monkeypatch.setattr(tempfile, "mkstemp", broken_mkstemp)
    spec = Query(paper_query).skyline().build()
    with repro.connect(
        random_database, backend="parallel", max_workers=2
    ) as session:
        result = session.execute(spec)
        # The attachment latched broken; chunks shipped graphs inline.
        assert result.stats.pool["attach"].get("broken") == 1
    reference = _reference(random_database, lambda: Query(paper_query).skyline())
    assert result.ids == reference.ids
