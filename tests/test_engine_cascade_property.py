"""Property tests: cascade soundness across every query kind.

The engine's pruning contract — any candidate a cascade stage prunes can
never appear in the exhaustive (``memory``) answer set — must hold for
arbitrary databases, query graphs and query parameters. Hypothesis
drives random inputs through the ``indexed`` backend (whose cascade does
the pruning) and checks its pruned ids against the exhaustive answers,
plus full answer-set equality, for all four kinds. A cache in the
cascade must never change the answer either (served vectors are exact).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Query, connect
from repro.db import GraphDatabase, PairCache

from tests.conftest import small_labeled_graphs

databases = st.lists(
    small_labeled_graphs(max_vertices=4, connected=True), min_size=1, max_size=5
)
queries = small_labeled_graphs(max_vertices=4, connected=True)

relaxed = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _pruned_vs_exhaustive(graphs, build):
    database = GraphDatabase.from_graphs(graphs)
    spec = build().build()
    with connect(database, backend="memory") as session:
        exhaustive = session.backend.run(spec)
    with connect(database, backend="indexed") as session:
        pruned = session.backend.run(spec)
    return exhaustive, pruned


@relaxed
@given(graphs=databases, query=queries)
def test_skyline_prunes_are_sound(graphs, query):
    exhaustive, pruned = _pruned_vs_exhaustive(
        graphs, lambda: Query(query).measures("edit", "mcs").skyline()
    )
    assert set(pruned.pruned_ids).isdisjoint(exhaustive.ids)
    assert pruned.ids == exhaustive.ids


@relaxed
@given(graphs=databases, query=queries, k=st.integers(min_value=1, max_value=3))
def test_skyband_prunes_are_sound(graphs, query, k):
    exhaustive, pruned = _pruned_vs_exhaustive(
        graphs, lambda: Query(query).measures("edit", "mcs").skyband(k)
    )
    assert set(pruned.pruned_ids).isdisjoint(exhaustive.ids)
    assert pruned.ids == exhaustive.ids


@relaxed
@given(graphs=databases, query=queries, k=st.integers(min_value=1, max_value=4))
def test_topk_prunes_are_sound(graphs, query, k):
    exhaustive, pruned = _pruned_vs_exhaustive(
        graphs, lambda: Query(query).topk(k, "edit")
    )
    assert set(pruned.pruned_ids).isdisjoint(exhaustive.ids)
    assert pruned.ids == exhaustive.ids
    assert all(
        pruned.distances[i] == exhaustive.distances[i] for i in pruned.ids
    )


@relaxed
@given(
    graphs=databases,
    query=queries,
    threshold=st.floats(min_value=0.0, max_value=6.0, allow_nan=False),
)
def test_threshold_prunes_are_sound(graphs, query, threshold):
    exhaustive, pruned = _pruned_vs_exhaustive(
        graphs, lambda: Query(query).measures("edit").threshold(threshold, "edit")
    )
    assert set(pruned.pruned_ids).isdisjoint(exhaustive.ids)
    assert pruned.ids == exhaustive.ids


@relaxed
@given(graphs=databases, query=queries)
def test_cascade_with_cache_preserves_answers(graphs, query):
    database = GraphDatabase.from_graphs(graphs)
    cache = PairCache()
    build = lambda: Query(query).measures("edit", "mcs").skyline()
    with connect(database, backend="memory") as session:
        reference = session.execute(build()).ids
    with connect(database, backend="indexed", cache=cache) as session:
        cold = session.execute(build()).ids
        warm = session.execute(build()).ids
    assert cold == reference
    assert warm == reference
