"""Unit tests for the core labeled-graph type (Definition 3)."""

import pytest

from repro.errors import (
    DuplicateEdgeError,
    DuplicateVertexError,
    EdgeNotFoundError,
    SelfLoopError,
    VertexNotFoundError,
)
from repro.graph import DEFAULT_EDGE_LABEL, LabeledGraph, edge_key


def test_empty_graph_properties():
    g = LabeledGraph(name="empty")
    assert g.order == 0
    assert g.size == 0
    assert len(g) == 0
    assert g.vertices() == []
    assert list(g.edges()) == []
    assert g.is_connected()  # by convention


def test_add_vertices_and_edges():
    g = LabeledGraph()
    g.add_vertex(1, "A")
    g.add_vertex(2, "B")
    g.add_edge(1, 2, "x")
    assert g.order == 2
    assert g.size == 1
    assert g.vertex_label(1) == "A"
    assert g.edge_label(1, 2) == "x"
    assert g.edge_label(2, 1) == "x"  # undirected
    assert g.has_edge(2, 1)


def test_size_counts_edges_not_vertices():
    """The paper's |g| is the edge count (Definition 3)."""
    g = LabeledGraph.from_edges([("a", "b"), ("b", "c"), ("c", "a")])
    assert g.size == 3
    assert g.order == 3
    g2 = LabeledGraph()
    g2.add_vertex("a", "a")
    assert g2.size == 0


def test_duplicate_vertex_rejected():
    g = LabeledGraph()
    g.add_vertex(1, "A")
    with pytest.raises(DuplicateVertexError):
        g.add_vertex(1, "B")


def test_duplicate_edge_rejected():
    g = LabeledGraph.from_edges([(1, 2)])
    with pytest.raises(DuplicateEdgeError):
        g.add_edge(1, 2)
    with pytest.raises(DuplicateEdgeError):
        g.add_edge(2, 1)  # same undirected edge


def test_self_loop_rejected():
    g = LabeledGraph()
    g.add_vertex(1, "A")
    with pytest.raises(SelfLoopError):
        g.add_edge(1, 1)


def test_edge_to_missing_vertex_rejected():
    g = LabeledGraph()
    g.add_vertex(1, "A")
    with pytest.raises(VertexNotFoundError):
        g.add_edge(1, 2)


def test_missing_lookups_raise():
    g = LabeledGraph()
    with pytest.raises(VertexNotFoundError):
        g.vertex_label(0)
    with pytest.raises(VertexNotFoundError):
        g.degree(0)
    with pytest.raises(VertexNotFoundError):
        g.neighbors(0)
    with pytest.raises(EdgeNotFoundError):
        g.edge_label(0, 1)
    with pytest.raises(VertexNotFoundError):
        g.remove_vertex(0)
    with pytest.raises(EdgeNotFoundError):
        g.remove_edge(0, 1)


def test_remove_vertex_removes_incident_edges():
    g = LabeledGraph.from_edges([(1, 2), (2, 3), (1, 3)])
    g.remove_vertex(2)
    assert g.order == 2
    assert g.size == 1
    assert g.has_edge(1, 3)
    assert not g.has_vertex(2)


def test_remove_edge_keeps_vertices():
    g = LabeledGraph.from_edges([(1, 2)])
    g.remove_edge(2, 1)
    assert g.size == 0
    assert g.order == 2


def test_relabel_vertex_and_edge():
    g = LabeledGraph.from_edges([("a", "b", "x")])
    g.relabel_vertex("a", "Z")
    g.relabel_edge("a", "b", "y")
    assert g.vertex_label("a") == "Z"
    assert g.edge_label("b", "a") == "y"


def test_relabel_missing_raises():
    g = LabeledGraph()
    with pytest.raises(VertexNotFoundError):
        g.relabel_vertex("a", "Z")
    with pytest.raises(EdgeNotFoundError):
        g.relabel_edge("a", "b", "y")


def test_from_edges_defaults_label_to_vertex_id():
    g = LabeledGraph.from_edges([("a", "b")])
    assert g.vertex_label("a") == "a"
    assert g.edge_label("a", "b") == DEFAULT_EDGE_LABEL


def test_from_edges_with_vertex_labels_and_isolated_vertices():
    g = LabeledGraph.from_edges(
        [(1, 2, "x")], vertex_labels={1: "A", 2: "B", 3: "C"}
    )
    assert g.order == 3  # vertex 3 exists although isolated
    assert g.degree(3) == 0
    assert g.vertex_label(3) == "C"


def test_from_edges_rejects_malformed_tuples():
    with pytest.raises(ValueError):
        LabeledGraph.from_edges([(1,)])
    with pytest.raises(ValueError):
        LabeledGraph.from_edges([(1, 2, "x", "extra")])


def test_copy_is_deep():
    g = LabeledGraph.from_edges([(1, 2, "x")], name="orig")
    clone = g.copy()
    clone.add_vertex(3, "C")
    clone.relabel_edge(1, 2, "y")
    assert g.order == 2
    assert g.edge_label(1, 2) == "x"
    assert clone.name == "orig"
    assert g.copy(name="new").name == "new"


def test_edges_iteration_is_canonical_and_complete():
    g = LabeledGraph.from_edges([(2, 1, "x"), (3, 2, "y")])
    edges = list(g.edges())
    assert len(edges) == 2
    assert all(edge_key(u, v) == (u, v) for u, v, _ in edges)
    assert {(u, v) for u, v, _ in edges} == {edge_key(1, 2), edge_key(2, 3)}


def test_edge_key_is_order_insensitive():
    assert edge_key("b", "a") == edge_key("a", "b")
    assert edge_key(2, 10) == edge_key(10, 2)
    # mixed types get a deterministic (type-name, repr) order
    assert edge_key("a", 1) == edge_key(1, "a")


def test_label_multisets():
    g = LabeledGraph.from_edges(
        [(1, 2, "x"), (2, 3, "x")], vertex_labels={1: "A", 2: "A", 3: "B"}
    )
    assert g.vertex_label_multiset() == {"A": 2, "B": 1}
    assert g.edge_label_multiset() == {"x": 2}
    assert g.label_set() == {"A", "B", "x"}


def test_connected_components():
    g = LabeledGraph.from_edges([(1, 2), (3, 4)])
    g.add_vertex(5, "E")
    components = sorted(g.connected_components(), key=len)
    assert [len(c) for c in components] == [1, 2, 2]
    assert not g.is_connected()


def test_subgraph_induced():
    g = LabeledGraph.from_edges([(1, 2, "x"), (2, 3, "y"), (1, 3, "z")])
    sub = g.subgraph([1, 2])
    assert sub.order == 2
    assert sub.size == 1
    assert sub.edge_label(1, 2) == "x"
    with pytest.raises(VertexNotFoundError):
        g.subgraph([1, 99])


def test_edge_subgraph():
    g = LabeledGraph.from_edges([(1, 2, "x"), (2, 3, "y"), (1, 3, "z")])
    sub = g.edge_subgraph([(1, 2), (2, 3)])
    assert sub.size == 2
    assert sub.order == 3
    with pytest.raises(EdgeNotFoundError):
        g.edge_subgraph([(1, 4)])


def test_structural_equality():
    g1 = LabeledGraph.from_edges([(1, 2, "x")])
    g2 = LabeledGraph.from_edges([(2, 1, "x")])
    assert g1 == g2
    g3 = LabeledGraph.from_edges([(1, 2, "y")])
    assert g1 != g3
    assert g1 != "not a graph"


def test_graph_is_unhashable():
    g = LabeledGraph()
    with pytest.raises(TypeError):
        hash(g)


def test_contains_iter_repr():
    g = LabeledGraph.from_edges([(1, 2)], name="tiny")
    assert 1 in g
    assert 9 not in g
    assert sorted(g) == [1, 2]
    assert "tiny" in repr(g)
    assert "1 edges" in repr(g)


def test_neighbors_and_degree():
    g = LabeledGraph.from_edges([(1, 2), (1, 3), (1, 4)])
    assert sorted(g.neighbors(1)) == [2, 3, 4]
    assert g.degree(1) == 3
    assert g.degree(2) == 1
