"""Unit tests for the server's building blocks: the shared mutation
codec, HTTP framing, deadlines, admission control, and the watch hub."""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.api.ops import (
    AddOp,
    MUTATION_OPS,
    MutationOp,
    RelabelOp,
    RemoveOp,
    applicable,
    apply_mutation,
    mutation_from_dict,
    relabeled_copy,
)
from repro.db import GraphDatabase
from repro.engine import Deadline, current_deadline, deadline_scope
from repro.errors import DeadlineExceeded, QueryError, SerializationError
from repro.graph import path_graph
from repro.server import AdmissionController, AdmissionRejected, WatchHub
from repro.server.protocol import (
    ERROR_STATUS,
    MAX_BODY_BYTES,
    ProtocolError,
    encode_event,
    encode_response,
    error_payload,
    read_request,
)
from repro.testkit.workload import AddGraph, RelabelGraph, RemoveGraph, step_from_dict


# ----------------------------------------------------------------------
# Shared mutation-op codec (satellite: one encoder/decoder for testkit
# workloads and the /v1/mutate endpoint)
# ----------------------------------------------------------------------
def _sample_ops():
    graph = path_graph(["C", "N", "O"], name="g-add")
    return [
        AddOp(handle="g-add", graph=graph),
        RemoveOp(handle="g-old"),
        RelabelOp(handle="g-old", new_handle="g-new", vertex_index=5, label="S"),
    ]


def test_mutation_ops_round_trip():
    for op in _sample_ops():
        payload = json.loads(json.dumps(op.to_dict()))
        rebuilt = mutation_from_dict(payload)
        assert type(rebuilt) is type(op)
        assert rebuilt.to_dict() == op.to_dict()


def test_mutation_registry_covers_all_ops():
    assert set(MUTATION_OPS) == {"add", "remove", "relabel"}
    for name, cls in MUTATION_OPS.items():
        assert issubclass(cls, MutationOp)
        assert cls.op == name


@pytest.mark.parametrize(
    "payload",
    [
        "not-a-dict",
        {},
        {"op": "explode"},
        {"op": "add", "handle": "x"},  # missing graph
        {"op": "relabel", "handle": "x", "new_handle": "y"},  # missing fields
    ],
)
def test_mutation_from_dict_rejects_malformed(payload):
    with pytest.raises(SerializationError):
        mutation_from_dict(payload)


def test_workload_steps_share_the_wire_encoding():
    """A testkit mutation step and the bare op encode byte-identically,
    and the workload decoder accepts a server-side op payload."""
    graph = path_graph(["C", "N"], name="h0")
    pairs = [
        (AddGraph("h0", graph), AddOp("h0", graph)),
        (RemoveGraph("h0"), RemoveOp("h0")),
        (RelabelGraph("h0", "h1", 1, "O"), RelabelOp("h0", "h1", 1, "O")),
    ]
    for step, op in pairs:
        assert step.to_dict() == op.to_dict()
        decoded = step_from_dict(op.to_dict())
        assert type(decoded) is type(step)
        assert decoded.to_dict() == op.to_dict()
        assert isinstance(decoded, type(op))  # steps ARE ops (one codec)


def test_relabeled_copy_wraps_vertex_index():
    graph = path_graph(["C", "N", "O"], name="g")
    relabeled = relabeled_copy(graph, vertex_index=7, label="S", name="g2")
    assert relabeled.name == "g2"
    # index 7 % 3 == 1 -> second vertex relabeled
    assert relabeled.vertex_label_multiset() == {"C": 1, "S": 1, "O": 1}
    assert graph.vertex_label_multiset() != relabeled.vertex_label_multiset()


def test_apply_mutation_maintains_handle_maps():
    database = GraphDatabase.from_graphs(
        [path_graph(["C", "N"], name="a"), path_graph(["O", "H"], name="b")]
    )
    handles = {"a": 0, "b": 1}
    ids = {0: "a", 1: "b"}
    ack = apply_mutation(
        database, AddOp("c", path_graph(["S", "P"], name="c")), handles, ids
    )
    assert ack["op"] == "add" and ack["database_size"] == 3
    assert handles["c"] == ack["graph_id"]

    ack = apply_mutation(
        database, RelabelOp("c", "c2", vertex_index=0, label="F"), handles, ids
    )
    assert ack["new_handle"] == "c2"
    assert "c" not in handles and "c2" in handles
    assert database.get(handles["c2"]).vertex_label_multiset()["F"] == 1

    ack = apply_mutation(database, RemoveOp("c2"), handles, ids)
    assert ack["database_size"] == 2 and "c2" not in handles
    # maps stayed mirror images throughout
    assert {v: k for k, v in handles.items()} == ids


def test_apply_mutation_rejects_inapplicable():
    database = GraphDatabase.from_graphs([path_graph(["C", "N"], name="a")])
    handles, ids = {"a": 0}, {0: "a"}
    assert not applicable(AddOp("a", path_graph(["C"] * 2)), handles)
    with pytest.raises(QueryError):
        apply_mutation(database, RemoveOp("ghost"), handles, ids)
    with pytest.raises(QueryError):
        apply_mutation(
            database, AddOp("a", path_graph(["C", "C"])), handles, ids
        )
    with pytest.raises(QueryError):
        apply_mutation(
            database, RelabelOp("a", "a", 0, "N"), handles, ids
        )  # target handle collides with the (still live) source


# ----------------------------------------------------------------------
# Deadlines (engine-level cooperative cancellation)
# ----------------------------------------------------------------------
def test_deadline_basic_lifecycle():
    deadline = Deadline.after(60.0)
    assert not deadline.expired()
    assert 0 < deadline.remaining() <= 60.0
    deadline.check()  # does not raise

    expired = Deadline(expires_at=time.monotonic() - 1.0, budget=0.001)
    assert expired.expired()
    assert expired.remaining() < 0
    with pytest.raises(DeadlineExceeded):
        expired.check()


def test_deadline_after_rejects_nonpositive():
    with pytest.raises(ValueError):
        Deadline.after(0.0)
    with pytest.raises(ValueError):
        Deadline.after(-1.0)


def test_deadline_scope_is_ambient_and_restored():
    assert current_deadline() is None
    deadline = Deadline.after(60.0)
    with deadline_scope(deadline):
        assert current_deadline() is deadline
        with deadline_scope(None):
            assert current_deadline() is None
        assert current_deadline() is deadline
    assert current_deadline() is None


def test_engine_run_honors_expired_deadline():
    from repro import connect
    from repro.api.spec import GraphQuery

    database = GraphDatabase.from_graphs(
        [path_graph(["C", "N", "O"], name=f"g{i}") for i in range(4)]
    )
    spec = GraphQuery(graph=path_graph(["C", "N"], name="q"))
    expired = Deadline(expires_at=time.monotonic() - 1.0, budget=0.001)
    with connect(database) as session:
        with deadline_scope(expired):
            with pytest.raises(DeadlineExceeded):
                session.execute(spec)
        # scope exited: the same session works again
        assert session.execute(spec).ids


# ----------------------------------------------------------------------
# HTTP framing
# ----------------------------------------------------------------------
def _parse(raw: bytes):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(run())


def test_read_request_parses_body_and_query_string():
    body = b'{"x": 1}'
    raw = (
        b"POST /v1/query?backend=memory&deadline_ms=50 HTTP/1.1\r\n"
        b"Host: h\r\nContent-Length: " + str(len(body)).encode() + b"\r\n"
        b"X-Deadline-Ms: 99\r\n\r\n" + body
    )
    request = _parse(raw)
    assert request.method == "POST"
    assert request.path == "/v1/query"
    assert request.query == {"backend": "memory", "deadline_ms": "50"}
    assert request.headers["x-deadline-ms"] == "99"
    assert request.json() == {"x": 1}
    assert request.keep_alive  # HTTP/1.1 default


def test_read_request_connection_close_and_eof():
    raw = b"GET /v1/health HTTP/1.1\r\nConnection: close\r\n\r\n"
    request = _parse(raw)
    assert not request.keep_alive
    assert _parse(b"") is None  # closed connection


def test_read_request_rejects_malformed_and_oversized():
    with pytest.raises(ProtocolError) as exc:
        _parse(b"NONSENSE\r\n\r\n")
    assert exc.value.status == 400
    huge = str(MAX_BODY_BYTES + 1).encode()
    with pytest.raises(ProtocolError) as exc:
        _parse(b"POST /v1/query HTTP/1.1\r\nContent-Length: " + huge + b"\r\n\r\n")
    assert exc.value.code == "payload-too-large"
    with pytest.raises(ProtocolError):
        _parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")


def test_encode_response_and_event_shapes():
    raw = encode_response(429, error_payload("queue-full", "busy"), False)
    head, _, body = raw.partition(b"\r\n\r\n")
    assert b"HTTP/1.1 429 Too Many Requests" in head
    assert b"Connection: close" in head
    parsed = json.loads(body)
    assert parsed["error"]["code"] == "queue-full"
    assert int(
        dict(
            line.split(b": ", 1)
            for line in head.split(b"\r\n")[1:]
        )[b"Content-Length"]
    ) == len(body)

    event = encode_event({"event": "update", "ids": [1, 2]})
    assert event.endswith(b"\n") and b" " not in event


def test_error_codes_map_to_sensible_statuses():
    assert ERROR_STATUS["queue-full"] == 429
    assert ERROR_STATUS["deadline-exceeded"] == 504
    assert ProtocolError("no-such-code", "x").status == 500


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
def test_admission_rejects_beyond_queue():
    async def run():
        controller = AdmissionController(max_concurrency=1, max_queue=1)
        await controller.acquire()  # slot taken
        waiter = asyncio.ensure_future(controller.acquire())  # queued
        await asyncio.sleep(0)  # let the waiter enter the queue
        assert controller.active == 1 and controller.waiting == 1
        with pytest.raises(AdmissionRejected) as exc:
            await controller.acquire()
        assert exc.value.max_queue == 1
        assert controller.rejected == 1
        await controller.release()  # frees the waiter
        await asyncio.wait_for(waiter, timeout=5)
        assert controller.active == 1 and controller.waiting == 0
        await controller.release()
        snap = controller.snapshot()
        assert snap["admitted"] == 2 and snap["completed"] == 2
        assert snap["peak_active"] == 1 and snap["peak_waiting"] == 1

    asyncio.run(run())


def test_admission_slot_releases_on_error():
    async def run():
        controller = AdmissionController(max_concurrency=1, max_queue=0)
        with pytest.raises(RuntimeError):
            async with controller.slot():
                assert controller.active == 1
                raise RuntimeError("boom")
        assert controller.active == 0 and controller.completed == 1

    asyncio.run(run())


def test_admission_validates_configuration():
    with pytest.raises(ValueError):
        AdmissionController(0, 1)
    with pytest.raises(ValueError):
        AdmissionController(1, -1)


# ----------------------------------------------------------------------
# Watch hub
# ----------------------------------------------------------------------
def test_watch_hub_capacity_and_notify():
    async def run():
        hub = WatchHub(max_watches=2)
        first = hub.register(view=object())
        second = hub.register(view=object())
        assert first is not None and second is not None
        assert hub.register(view=object()) is None  # at capacity
        assert hub.refused == 1 and hub.active == 2

        hub.notify()
        assert first.wakeup.is_set() and second.wakeup.is_set()

        hub.unregister(first)
        hub.unregister(first)  # idempotent
        assert hub.active == 1 and hub.closed == 1
        snap = hub.snapshot()
        assert snap["opened"] == 2 and snap["refused"] == 1

    asyncio.run(run())
