"""Gather-phase soundness: merge consumers equal the monolithic answer.

These properties drive the exact production merge path
(:class:`~repro.engine.scatter.SkylineMerge` /
:class:`~repro.engine.scatter.FrontierMerge` over per-shard
:class:`~repro.api.backends.BackendAnswer` objects built by the
monolithic consumers in :mod:`repro.engine.consume`) with synthetic
vector sets — arbitrary values including NaN coordinates — and arbitrary
placements, and require bit-identical agreement with the single-pass
monolithic selection. This isolates the distributed-decomposition
argument (local answer union + global pass == monolithic answer) from
graph evaluation entirely, so the edge cases the docstrings reason about
(NaN dominance non-transitivity, tolerant dominance) are actually
exercised rather than just argued.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.spec import GraphQuery
from repro.core.gcs import CompoundSimilarity
from repro.datasets import figure3_query
from repro.db.stats import QueryStats
from repro.engine.consume import finish_distances, finish_vectors
from repro.engine.scatter import FrontierMerge, SkylineMerge, merge_consumer

MEASURES = ("edit", "mcs")  # registry names; the values are synthetic

# Values from a tiny grid (plus NaN) maximize dominance ties/duplicates,
# the regimes where merge bugs would hide.
coordinates = st.one_of(
    st.sampled_from([0.0, 1.0, 2.0, 3.0]),
    st.floats(min_value=0.0, max_value=5.0, allow_nan=False, width=32),
    st.just(math.nan),
)
vector_sets = st.lists(
    st.tuples(coordinates, coordinates), min_size=1, max_size=12
)

relaxed = settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _spec(kind: str, **kwargs) -> GraphQuery:
    return GraphQuery(
        graph=figure3_query(), kind=kind, measures=MEASURES, **kwargs
    ).validate()


def _shard_answers(spec, vectors, placement, shards):
    """Per-shard local answers through the real monolithic consumer."""
    answers = []
    for index in range(shards):
        local = {
            graph_id: vector
            for graph_id, vector in vectors.items()
            if placement[graph_id] % shards == index
        }
        if not local:
            continue
        if spec.kind in ("skyline", "skyband"):
            answers.append(finish_vectors(spec, local, QueryStats(), []))
        else:
            distances = {i: v.values[0] for i, v in local.items()}
            answers.append(finish_distances(spec, distances, QueryStats(), []))
    return answers


def _compound(values):
    return {
        graph_id: CompoundSimilarity(values=vector, measures=MEASURES)
        for graph_id, vector in enumerate(values)
    }


@relaxed
@given(
    values=vector_sets,
    placement=st.lists(st.integers(min_value=0, max_value=7), min_size=12, max_size=12),
    shards=st.integers(min_value=1, max_value=4),
    tolerance=st.sampled_from([0.0, 0.0, 0.5]),
)
def test_skyline_merge_equals_monolithic(values, placement, shards, tolerance):
    spec = _spec("skyline", algorithm="naive", tolerance=tolerance)
    vectors = _compound(values)
    monolithic = finish_vectors(spec, dict(vectors), QueryStats(), [])
    merged = SkylineMerge().merge(
        spec, _shard_answers(spec, vectors, placement, shards), QueryStats()
    )
    assert merged.ids == monolithic.ids
    assert merged.stats.skyline_size == len(merged.ids)
    assert sorted(merged.evaluated_ids) == sorted(monolithic.evaluated_ids)


@relaxed
@given(
    values=vector_sets,
    placement=st.lists(st.integers(min_value=0, max_value=7), min_size=12, max_size=12),
    shards=st.integers(min_value=1, max_value=4),
    k=st.integers(min_value=1, max_value=4),
)
def test_skyband_merge_equals_monolithic(values, placement, shards, k):
    spec = _spec("skyband", k=k)
    vectors = _compound(values)
    monolithic = finish_vectors(spec, dict(vectors), QueryStats(), [])
    merged = SkylineMerge().merge(
        spec, _shard_answers(spec, vectors, placement, shards), QueryStats()
    )
    assert merged.ids == monolithic.ids


@relaxed
@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=5.0, allow_nan=False, width=32),
        min_size=1,
        max_size=12,
    ),
    placement=st.lists(st.integers(min_value=0, max_value=7), min_size=12, max_size=12),
    shards=st.integers(min_value=1, max_value=4),
    k=st.integers(min_value=1, max_value=5),
)
def test_topk_frontier_merge_equals_monolithic(values, placement, shards, k):
    spec = GraphQuery(graph=figure3_query(), kind="topk", k=k).validate()
    distances = dict(enumerate(values))
    monolithic = finish_distances(spec, dict(distances), QueryStats(), [])
    answers = []
    for index in range(shards):
        local = {
            i: d for i, d in distances.items() if placement[i] % shards == index
        }
        if local:
            answers.append(finish_distances(spec, local, QueryStats(), []))
    merged = FrontierMerge().merge(spec, answers, QueryStats())
    assert merged.ids == monolithic.ids
    assert merged.distances == distances


@relaxed
@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=5.0, allow_nan=False, width=32),
        min_size=1,
        max_size=12,
    ),
    placement=st.lists(st.integers(min_value=0, max_value=7), min_size=12, max_size=12),
    shards=st.integers(min_value=1, max_value=4),
    threshold=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
)
def test_threshold_merge_equals_monolithic(values, placement, shards, threshold):
    spec = GraphQuery(
        graph=figure3_query(), kind="threshold", threshold=threshold
    ).validate()
    distances = dict(enumerate(values))
    monolithic = finish_distances(spec, dict(distances), QueryStats(), [])
    answers = []
    for index in range(shards):
        local = {
            i: d for i, d in distances.items() if placement[i] % shards == index
        }
        if local:
            answers.append(finish_distances(spec, local, QueryStats(), []))
    merged = FrontierMerge().merge(spec, answers, QueryStats())
    assert merged.ids == monolithic.ids


def test_merge_consumer_dispatch():
    assert isinstance(merge_consumer(_spec("skyline")), SkylineMerge)
    assert isinstance(merge_consumer(_spec("skyband", k=2)), SkylineMerge)
    assert isinstance(
        merge_consumer(GraphQuery(graph=figure3_query(), kind="topk", k=1)),
        FrontierMerge,
    )
    assert isinstance(
        merge_consumer(
            GraphQuery(graph=figure3_query(), kind="threshold", threshold=1.0)
        ),
        FrontierMerge,
    )


def test_empty_scatter_yields_empty_answer():
    spec = _spec("skyline")
    merged = SkylineMerge().merge(spec, [], QueryStats())
    assert merged.ids == [] and merged.vectors == {}
    topk = GraphQuery(graph=figure3_query(), kind="topk", k=2).validate()
    merged = FrontierMerge().merge(topk, [], QueryStats())
    assert merged.ids == [] and merged.distances == {}
