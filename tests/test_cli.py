"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.datasets import figure3_database, figure3_query
from repro.db import GraphDatabase, save_database
from repro.graph import graph_to_json


@pytest.fixture
def paper_files(tmp_path):
    """Database + query JSON files for the paper's worked example."""
    db_path = tmp_path / "db.json"
    query_path = tmp_path / "q.json"
    save_database(GraphDatabase.from_graphs(figure3_database(), name="fig3"), db_path)
    query_path.write_text(graph_to_json(figure3_query()), encoding="utf-8")
    return str(db_path), str(query_path)


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_skyline_command_text(paper_files, capsys):
    db_path, query_path = paper_files
    assert main(["skyline", db_path, query_path]) == 0
    out = capsys.readouterr().out
    assert "skyline: ['g1', 'g4', 'g5', 'g7']" in out
    assert "edit" in out and "union" in out


def test_skyline_command_json(paper_files, capsys):
    db_path, query_path = paper_files
    assert main(["skyline", db_path, query_path, "--json", "--refine-k", "2"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["skyline"] == ["g1", "g4", "g5", "g7"]
    assert payload["refined"] == ["g1", "g4"]
    assert payload["vectors"]["g4"][0] == 2.0


def test_skyline_command_refine(paper_files, capsys):
    db_path, query_path = paper_files
    assert main(["skyline", db_path, query_path, "--refine-k", "2"]) == 0
    out = capsys.readouterr().out
    assert "diverse subset (k=2): ['g1', 'g4']" in out


def test_skyline_custom_measures(paper_files, capsys):
    db_path, query_path = paper_files
    assert main(["skyline", db_path, query_path, "--measures", "edit"]) == 0
    out = capsys.readouterr().out
    assert "skyline: ['g4']" in out


def test_skyline_bad_measure_is_reported(paper_files, capsys):
    db_path, query_path = paper_files
    assert main(["skyline", db_path, query_path, "--measures", "nope"]) == 1
    assert "error:" in capsys.readouterr().err


def test_topk_command(paper_files, capsys):
    db_path, query_path = paper_files
    assert main(["topk", db_path, query_path, "--k", "3"]) == 0
    out = capsys.readouterr().out
    assert "g4" in out
    assert "g3" in out  # the baseline's false positive


def test_distance_command(tmp_path, capsys):
    graphs = figure3_database()
    p1 = tmp_path / "g1.json"
    p2 = tmp_path / "g4.json"
    p1.write_text(graph_to_json(graphs[0]), encoding="utf-8")
    p2.write_text(graph_to_json(graphs[3]), encoding="utf-8")
    assert main(["distance", str(p1), str(p2)]) == 0
    out = capsys.readouterr().out
    assert "edit: 6.0000" in out
    assert "mcs:" in out and "union:" in out


def test_generate_command(tmp_path, capsys):
    out_path = tmp_path / "synthetic.json"
    assert main(["generate", str(out_path), "--n", "6", "--query-size", "5"]) == 0
    assert out_path.exists()
    assert (tmp_path / "synthetic.query.json").exists()
    from repro.db import load_database

    db = load_database(out_path)
    assert len(db) == 6


def test_generated_workload_queryable(tmp_path, capsys):
    out_path = tmp_path / "w.json"
    assert main(["generate", str(out_path), "--n", "8", "--query-size", "5"]) == 0
    capsys.readouterr()
    assert main(["skyline", str(out_path), str(tmp_path / "w.query.json")]) == 0
    assert "skyline:" in capsys.readouterr().out


def test_paper_example_command(capsys):
    assert main(["paper-example"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out
    assert "GSS = ['g1', 'g4', 'g5', 'g7']" in out
    assert "diverse subset (k=2) = ['g1', 'g4']" in out


def test_missing_file_is_reported(tmp_path, capsys):
    assert main(["skyline", str(tmp_path / "none.json"), str(tmp_path / "q.json")]) == 1
    assert "error:" in capsys.readouterr().err


def test_distance_with_custom_measures(tmp_path, capsys):
    graphs = figure3_database()
    p1 = tmp_path / "a.json"
    p2 = tmp_path / "b.json"
    p1.write_text(graph_to_json(graphs[0]), encoding="utf-8")
    p2.write_text(graph_to_json(graphs[4]), encoding="utf-8")
    assert main(["distance", str(p1), str(p2), "--measures", "mcs,union"]) == 0
    out = capsys.readouterr().out
    assert "mcs:" in out and "union:" in out and "edit:" not in out


def test_skyline_algorithm_flag(paper_files, capsys):
    db_path, query_path = paper_files
    for algorithm in ("naive", "sfs", "dnc"):
        assert main(["skyline", db_path, query_path, "--algorithm", algorithm]) == 0
        assert "skyline: ['g1', 'g4', 'g5', 'g7']" in capsys.readouterr().out


def test_module_entry_point_runs_in_subprocess():
    import subprocess
    import sys

    completed = subprocess.run(
        [sys.executable, "-m", "repro", "paper-example"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0
    assert "GSS = ['g1', 'g4', 'g5', 'g7']" in completed.stdout


def test_serve_smoke_in_subprocess(paper_files):
    """``python -m repro serve`` binds, answers a query, exits 0 on
    SIGINT — the CI smoke path for the serving layer."""
    import http.client
    import signal
    import subprocess
    import sys

    from repro.api.spec import GraphQuery
    from repro.datasets import figure3_query

    db_path, _ = paper_files
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", db_path,
            "--port", "0", "--max-queue", "4", "--deadline-ms", "60000",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        banner = proc.stdout.readline()
        assert banner.startswith("serving "), banner
        port = int(banner.strip().rsplit(":", 1)[1])

        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        conn.request("GET", "/v1/health")
        health = json.loads(conn.getresponse().read())
        assert health["ok"] and health["graphs"] == 7

        spec = GraphQuery(graph=figure3_query(), kind="skyline")
        conn.request("POST", "/v1/query", body=json.dumps(spec.to_dict()))
        response = conn.getresponse()
        payload = json.loads(response.read())
        assert response.status == 200
        assert payload["answer"] == ["g1", "g4", "g5", "g7"]
        conn.close()
    finally:
        proc.send_signal(signal.SIGINT)
        out, err = proc.communicate(timeout=60)
    assert proc.returncode == 0, err
    assert "server stopped" in out


def test_serve_parser_defaults():
    parser = build_parser()
    args = parser.parse_args(["serve", "--port", "0", "--shards", "2"])
    assert args.backend == "memory"
    assert args.max_concurrency == 4
    assert args.max_queue == 16
    assert args.deadline_ms == 30_000
    assert args.shards == 2
    assert args.database is None
