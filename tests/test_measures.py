"""Tests for the distance measures of Section IV (and extensions)."""

import pytest

from repro.errors import QueryError
from repro.graph import LabeledGraph, path_graph
from repro.measures import (
    DegreeSequenceDistance,
    EditDistance,
    FunctionMeasure,
    GraphUnionDistance,
    JaccardEdgeDistance,
    McsDistance,
    NormalizedEditDistance,
    PairContext,
    SpectralDistance,
    WLKernelDistance,
    available_measures,
    check_gu_dominated_by_mcs,
    check_measure_properties,
    default_measures,
    diversity_measures,
    get_measure,
    graph_union_similarity,
    mcs_similarity,
    resolve_measures,
)
from tests.conftest import make_random_graph


# ----------------------------------------------------------------------
# The paper's worked pair (Examples 2-4)
# ----------------------------------------------------------------------
def test_paper_pair_edit_distance(fig1_g1, fig1_g2):
    assert EditDistance().distance(fig1_g1, fig1_g2) == 4.0


def test_paper_pair_mcs_distance(fig1_g1, fig1_g2):
    assert McsDistance().distance(fig1_g1, fig1_g2) == pytest.approx(1 - 4 / 6)


def test_paper_pair_union_distance(fig1_g1, fig1_g2):
    assert GraphUnionDistance().distance(fig1_g1, fig1_g2) == pytest.approx(0.5)


def test_normalized_edit_distance(fig1_g1, fig1_g2):
    value = NormalizedEditDistance().distance(fig1_g1, fig1_g2)
    assert value == pytest.approx(4 / 5)


# ----------------------------------------------------------------------
# Semantics
# ----------------------------------------------------------------------
def test_similarities_on_identical_graphs(triangle):
    context = PairContext(triangle, triangle.copy())
    assert mcs_similarity(triangle, triangle.copy(), context) == 1.0
    assert graph_union_similarity(triangle, triangle.copy(), context) == 1.0


def test_empty_graphs_at_distance_zero():
    empty1, empty2 = LabeledGraph(), LabeledGraph()
    assert McsDistance().distance(empty1, empty2) == 0.0
    assert GraphUnionDistance().distance(empty1, empty2) == 0.0
    assert EditDistance().distance(empty1, empty2) == 0.0


def test_gu_is_stronger_than_mcs():
    """SimGu <= SimMcs for every pair (paper, Section IV-C)."""
    graphs = [make_random_graph(seed, max_vertices=5) for seed in range(8)]
    assert check_gu_dominated_by_mcs(graphs) == []


def test_gu_reacts_to_smaller_graph_growth():
    """The paper's motivation for DistGu: growing the smaller graph while
    the mcs stays constant changes DistGu but not DistMcs."""
    big = path_graph(["A", "B", "C", "D", "E", "F"], name="big")  # 5 edges
    small = path_graph(["A", "B", "C"], name="small")  # 2 edges
    grown = path_graph(["A", "B", "C"], name="grown")
    grown.add_vertex(9, "Z")
    grown.add_edge(9, 0, "w")  # 3 edges now, mcs with big unchanged (2)
    mcs_measure, gu_measure = McsDistance(), GraphUnionDistance()
    assert mcs_measure.distance(big, small) == mcs_measure.distance(big, grown)
    assert gu_measure.distance(big, grown) > gu_measure.distance(big, small)


def test_pair_context_caches_mcs_and_ged(fig1_g1, fig1_g2):
    context = PairContext(fig1_g1, fig1_g2)
    first = context.mcs
    assert context.mcs is first  # memoised
    first_ged = context.ged
    assert context.ged is first_ged


def test_context_speeds_shared_computation(fig1_g1, fig1_g2):
    context = PairContext(fig1_g1, fig1_g2)
    d_mcs = McsDistance().distance(fig1_g1, fig1_g2, context)
    d_gu = GraphUnionDistance().distance(fig1_g1, fig1_g2, context)
    # both used the same mcs result: consistent values
    size = context.mcs.size
    assert d_mcs == pytest.approx(1 - size / max(fig1_g1.size, fig1_g2.size))
    assert d_gu == pytest.approx(
        1 - size / (fig1_g1.size + fig1_g2.size - size)
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_contains_all_measures():
    names = available_measures()
    for expected in ("edit", "edit-normalized", "mcs", "union",
                     "jaccard-edges", "degree-sequence", "wl-kernel", "spectral"):
        assert expected in names


def test_get_measure_by_name_and_instance():
    assert isinstance(get_measure("edit"), EditDistance)
    instance = McsDistance()
    assert get_measure(instance) is instance
    with pytest.raises(QueryError):
        get_measure("no-such-measure")


def test_resolve_measures_rejects_empty():
    with pytest.raises(QueryError):
        resolve_measures(())


def test_default_and_diversity_vectors():
    assert [m.name for m in default_measures()] == ["edit", "mcs", "union"]
    assert [m.name for m in diversity_measures()] == [
        "edit-normalized", "mcs", "union",
    ]


def test_function_measure_adapter(triangle, small_path):
    measure = FunctionMeasure(
        lambda a, b: abs(a.size - b.size), name="size-gap", normalized=False
    )
    assert measure.distance(triangle, small_path) == 0.0
    assert measure.name == "size-gap"
    assert "size-gap" in repr(measure)


# ----------------------------------------------------------------------
# Extension measures
# ----------------------------------------------------------------------
def test_jaccard_edges_basic():
    measure = JaccardEdgeDistance()
    g = path_graph(["A", "B", "C"])
    assert measure.distance(g, g.copy()) == 0.0
    other = path_graph(["X", "Y", "Z"])
    assert measure.distance(g, other) == 1.0
    assert measure.distance(LabeledGraph(), LabeledGraph()) == 0.0


def test_degree_sequence_distance():
    measure = DegreeSequenceDistance()
    path = path_graph(["A", "A", "A", "A"])
    star = LabeledGraph.from_edges(
        [(0, 1), (0, 2), (0, 3)], vertex_labels={i: "A" for i in range(4)}
    )
    assert measure.distance(path, path.copy()) == 0.0
    assert 0.0 < measure.distance(path, star) <= 1.0
    assert measure.distance(LabeledGraph(), LabeledGraph()) == 0.0


def test_wl_kernel_distance():
    measure = WLKernelDistance(rounds=2)
    g = path_graph(["A", "B", "C"])
    assert measure.distance(g, g.copy()) == pytest.approx(0.0, abs=1e-12)
    far = path_graph(["X", "Y"])
    assert measure.distance(g, far) > 0.5
    with pytest.raises(ValueError):
        WLKernelDistance(rounds=-1)


def test_spectral_distance():
    measure = SpectralDistance()
    g = path_graph(["A", "B", "C"])
    assert measure.distance(g, g.copy()) == pytest.approx(0.0, abs=1e-9)
    denser = LabeledGraph.from_edges([(0, 1), (1, 2), (2, 0)],
                                     vertex_labels={0: "A", 1: "B", 2: "C"})
    assert measure.distance(g, denser) > 0.0
    assert measure.distance(LabeledGraph(), LabeledGraph()) == 0.0


# ----------------------------------------------------------------------
# Property harness
# ----------------------------------------------------------------------
def test_property_harness_paper_measures_are_metrics():
    graphs = [make_random_graph(seed, max_vertices=4) for seed in range(6)]
    for measure in default_measures():
        report = check_measure_properties(measure, graphs)
        assert report.ok, f"{measure.name}: {report.violations}"
        assert report.checked_pairs == 15


def test_property_harness_detects_violations():
    bad = FunctionMeasure(
        lambda a, b: a.size - b.size,  # negative + asymmetric
        name="bad",
        normalized=True,
    )
    graphs = [path_graph(["A"] * n) for n in (2, 3, 4)]
    report = check_measure_properties(bad, graphs, check_triangle=False)
    assert not report.ok
    assert "symmetry" in report.violations or "non-negativity" in report.violations


def test_property_harness_triangle_toggle():
    graphs = [make_random_graph(seed, max_vertices=3) for seed in range(4)]
    report = check_measure_properties(
        McsDistance(), graphs, check_triangle=False
    )
    assert report.checked_triples == 0
