"""Tests for the declarative query API: specs, sessions, backends, results."""

import json

import pytest

import repro
from repro import GraphQuery, Query, connect
from repro.api import (
    ExecutionBackend,
    IndexedBackend,
    MemoryBackend,
    ParallelBackend,
    available_backends,
    create_backend,
    register_backend,
)
from repro.api.backends import BackendAnswer
from repro.core import graph_similarity_skyline, top_k_by_measure
from repro.datasets import figure3_database, figure3_query
from repro.db import GraphDatabase, SkylineExecutor, save_database
from repro.errors import QueryError, SerializationError
from repro.graph import graph_to_json
from repro.measures import EditDistance

SEED_SKYLINE = ["g1", "g4", "g5", "g7"]

# ``paper_database`` / ``paper_query`` come from the shared conftest.


# ----------------------------------------------------------------------
# GraphQuery validation
# ----------------------------------------------------------------------
def test_spec_defaults_validate(paper_query):
    spec = GraphQuery(graph=paper_query).validate()
    assert spec.kind == "skyline"
    assert spec.measures is None


def test_unknown_kind_rejected_with_hint(paper_query):
    with pytest.raises(QueryError, match="available: skyline, skyband"):
        GraphQuery(graph=paper_query, kind="nearest").validate()


def test_unknown_measure_rejected_with_hint(paper_query):
    with pytest.raises(QueryError, match="available: .*edit"):
        Query(paper_query).measures("edit", "nope").build()


def test_unknown_algorithm_rejected_with_hint(paper_query):
    with pytest.raises(QueryError, match="available: bnl, dnc, naive, sfs"):
        Query(paper_query).skyline(algorithm="quantum").build()


def test_topk_requires_positive_k(paper_query):
    with pytest.raises(QueryError, match="k must be at least 1"):
        Query(paper_query).topk(0).build()
    with pytest.raises(QueryError, match="k must be at least 1"):
        Query(paper_query).skyband(0).build()


def test_threshold_requires_value(paper_query):
    with pytest.raises(QueryError, match="threshold"):
        GraphQuery(graph=paper_query, kind="threshold").validate()
    with pytest.raises(QueryError, match="non-negative"):
        Query(paper_query).threshold(-1.0).build()


def test_refinement_only_for_vector_kinds(paper_query):
    with pytest.raises(QueryError, match="refinement"):
        Query(paper_query).topk(3).refine(k=2).build()


def test_unknown_refine_method_rejected(paper_query):
    with pytest.raises(QueryError, match="available: exhaustive, greedy"):
        Query(paper_query).skyline().refine(k=2, method="magic").build()


def test_limit_must_be_positive(paper_query):
    with pytest.raises(QueryError, match="limit"):
        Query(paper_query).limit(0).build()


def test_empty_measures_rejected(paper_query):
    with pytest.raises(QueryError, match="at least one measure"):
        Query(paper_query).measures().build()


def test_builder_steps_do_not_mutate(paper_query):
    base = Query(paper_query).measures("edit")
    fork_a = base.skyline(algorithm="sfs")
    fork_b = base.topk(2)
    assert fork_a.build().kind == "skyline"
    assert fork_b.build().kind == "topk"
    assert base.build().kind == "skyline"
    assert base.build().algorithm == "bnl"  # untouched by fork_a


# ----------------------------------------------------------------------
# JSON wire format
# ----------------------------------------------------------------------
def test_query_json_round_trip(paper_query):
    spec = (
        Query(paper_query)
        .measures("edit", "mcs")
        .skyline(algorithm="sfs", tolerance=0.25)
        .refine(k=2, method="greedy")
        .limit(3)
        .build()
    )
    restored = GraphQuery.from_json(spec.to_json())
    assert restored == spec
    assert restored.measures == ("edit", "mcs")
    assert restored.algorithm == "sfs"
    assert restored.refine_k == 2
    assert restored.refine_method == "greedy"
    assert restored.limit == 3


def test_query_json_round_trip_threshold(paper_query):
    spec = Query(paper_query).threshold(2.5, measure="mcs").build()
    restored = GraphQuery.from_json(spec.to_json())
    assert restored.kind == "threshold"
    assert restored.threshold == 2.5
    assert restored.measure == "mcs"


def test_measure_instances_serialize_by_name(paper_query):
    spec = Query(paper_query).measures(EditDistance()).build()
    payload = json.loads(spec.to_json())
    assert payload["measures"] == ["edit"]


def test_from_json_validates(paper_query):
    spec = Query(paper_query).skyline().build()
    payload = json.loads(spec.to_json())
    payload["measures"] = ["nope"]
    with pytest.raises(QueryError, match="available"):
        GraphQuery.from_dict(payload)
    payload["measures"] = None
    payload["kind"] = "weird"
    with pytest.raises(QueryError, match="unknown query kind"):
        GraphQuery.from_dict(payload)


def test_malformed_json_reported():
    with pytest.raises(SerializationError):
        GraphQuery.from_json("{not json")
    with pytest.raises(SerializationError):
        GraphQuery.from_dict({"kind": "skyline"})  # no graph


# ----------------------------------------------------------------------
# Sessions and connect()
# ----------------------------------------------------------------------
def test_connect_accepts_graphs_database_and_path(tmp_path, paper_database, paper_query):
    path = tmp_path / "db.json"
    save_database(paper_database, path)
    for source in (figure3_database(), paper_database, str(path), path):
        with connect(source) as session:
            result = session.execute(Query(paper_query).skyline())
            assert result.names == SEED_SKYLINE


def test_connect_unknown_backend(paper_database):
    with pytest.raises(QueryError, match="available: .*indexed.*memory"):
        connect(paper_database, backend="turbo")


def test_session_accepts_backend_instance(paper_database, paper_query):
    backend = IndexedBackend(paper_database, use_index=False)
    with connect(paper_database, backend=backend) as session:
        assert session.backend is backend
        assert session.execute(Query(paper_query).skyline()).names == SEED_SKYLINE


def test_session_rejects_options_with_instance(paper_database):
    backend = MemoryBackend(paper_database)
    with pytest.raises(QueryError, match="backend options"):
        connect(paper_database, backend=backend, use_index=False)


def test_closed_session_rejects_queries(paper_database, paper_query):
    session = connect(paper_database)
    session.close()
    with pytest.raises(QueryError, match="closed"):
        session.execute(Query(paper_query).skyline())


def test_session_default_measures(paper_database, paper_query):
    with connect(paper_database, measures=("edit",)) as session:
        result = session.execute(Query(paper_query).skyline())
        assert result.measures == ("edit",)
        assert result.names == ["g4"]
        # per-spec measures still win over the session default
        full = session.execute(Query(paper_query).measures("edit", "mcs", "union").skyline())
        assert full.names == SEED_SKYLINE


def test_session_plan_describes_execution(paper_database, paper_query):
    with connect(paper_database, backend="indexed") as session:
        plan = session.plan(Query(paper_query).skyline())
        assert plan.backend == "indexed"
        assert plan.uses_index
        assert plan.database_size == 7
        assert "index lower-bound pruning" in plan.describe()


# ----------------------------------------------------------------------
# Acceptance: every entry point reproduces the seed skyline
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["memory", "indexed", "parallel"])
def test_backends_match_seed_skyline(backend, paper_database, paper_query):
    seed = [g.name for g in graph_similarity_skyline(figure3_database(), paper_query).skyline]
    with connect(paper_database, backend=backend) as session:
        result = session.execute(Query(paper_query).skyline())
    assert result.names == seed == SEED_SKYLINE


@pytest.mark.parametrize("backend", ["memory", "indexed", "parallel"])
def test_cli_skyline_matches_seed_for_every_backend(backend, tmp_path, capsys, paper_database):
    from repro.cli import main

    db_path = tmp_path / "db.json"
    query_path = tmp_path / "q.json"
    save_database(paper_database, db_path)
    query_path.write_text(graph_to_json(figure3_query()), encoding="utf-8")
    assert main(["skyline", str(db_path), str(query_path), "--backend", backend]) == 0
    assert "skyline: ['g1', 'g4', 'g5', 'g7']" in capsys.readouterr().out


def test_backends_match_seed_topk(paper_database, paper_query):
    seed = top_k_by_measure(figure3_database(), paper_query, "edit", 3)
    for backend in ("memory", "indexed", "parallel"):
        with connect(paper_database, backend=backend) as session:
            result = session.execute(Query(paper_query).topk(3, "edit"))
            assert result.ids == seed.indices, backend


# ----------------------------------------------------------------------
# ResultSet surface
# ----------------------------------------------------------------------
def test_result_rows_and_json(paper_database, paper_query):
    with connect(paper_database) as session:
        result = session.execute(Query(paper_query).skyline().refine(k=2))
    rows = result.to_rows()
    assert len(rows) == 7
    by_name = {row["graph"]: row for row in rows}
    assert by_name["g4"]["edit"] == 2.0
    assert by_name["g4"]["in_answer"] is True
    assert by_name["g3"]["in_answer"] is False
    payload = json.loads(result.to_json())
    assert payload["answer"] == SEED_SKYLINE
    assert payload["refined"] == ["g1", "g4"]
    assert payload["stats"]["exact_evaluations"] == 7


def test_result_explain_mentions_plan_and_members(paper_database, paper_query):
    with connect(paper_database, backend="indexed") as session:
        result = session.execute(Query(paper_query).skyline())
    text = result.explain()
    assert "indexed" in text
    assert "g1" in text and "in answer" in text
    assert "n=7" in text


def test_result_limit_caps_answer(paper_database, paper_query):
    with connect(paper_database) as session:
        result = session.execute(Query(paper_query).skyline().limit(2))
    assert result.names == SEED_SKYLINE[:2]
    assert len(result) == 2


def test_result_distance_and_vector_accessors(paper_database, paper_query):
    with connect(paper_database) as session:
        sky = session.execute(Query(paper_query).skyline())
        top = session.execute(Query(paper_query).topk(1, "edit"))
    assert sky.vector(3).values[0] == 2.0
    with pytest.raises(KeyError):
        sky.distance(3)
    assert top.distance(top.ids[0]) == 2.0
    assert top.names == ["g4"]


def test_result_iteration_and_contains(paper_database, paper_query):
    with connect(paper_database) as session:
        result = session.execute(Query(paper_query).skyline())
    graphs = list(result)
    assert [g.name for g in graphs] == SEED_SKYLINE
    assert graphs[0] in result


def test_skyband_contains_skyline(paper_database, paper_query):
    with connect(paper_database, backend="indexed") as session:
        sky = session.execute(Query(paper_query).skyline())
        band = session.execute(Query(paper_query).skyband(2))
    assert set(sky.ids) <= set(band.ids)


def test_threshold_query_matches_executor(paper_database, paper_query):
    executor = SkylineExecutor(paper_database)
    expected = executor.threshold_search(paper_query, "edit", 3.0)
    with connect(paper_database, backend="indexed") as session:
        result = session.execute(Query(paper_query).threshold(3.0, "edit"))
    assert [(i, result.distance(i)) for i in result.ids] == expected


# ----------------------------------------------------------------------
# Self-healing index (dirty flag on database mutations)
# ----------------------------------------------------------------------
def test_indexed_backend_heals_after_insert(paper_db, paper_query):
    database = GraphDatabase.from_graphs(paper_db[:3])
    with connect(database, backend="indexed") as session:
        before = session.execute(Query(paper_query).skyline())
        assert before.stats.database_size == 3
        for graph in paper_db[3:]:
            database.insert(graph)
        after = session.execute(Query(paper_query).skyline())
    assert after.stats.database_size == 7
    assert after.names == SEED_SKYLINE


def test_executor_heals_without_refresh_index(paper_db, paper_query):
    database = GraphDatabase.from_graphs(paper_db[:3])
    executor = SkylineExecutor(database)
    database.insert(paper_db[3])
    result = executor.execute(paper_query)  # no refresh_index() call
    assert result.stats.database_size == 4
    assert 3 in executor.index


def test_index_heals_after_remove(paper_db, paper_query):
    database = GraphDatabase.from_graphs(paper_db)
    executor = SkylineExecutor(database)
    executor.execute(paper_query)
    database.remove(0)  # drop g1
    result = executor.execute(paper_query)
    names = sorted(g.name for g in result.skyline_graphs(database))
    assert "g1" not in names
    assert 0 not in executor.index


def test_database_version_counts_mutations(paper_db):
    database = GraphDatabase()
    assert database.version == 0
    database.insert(paper_db[0])
    database.insert(paper_db[1])
    assert database.version == 2
    database.remove(0)
    assert database.version == 3


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------
def test_registry_lists_shipped_backends():
    assert {"memory", "indexed", "parallel"} <= set(available_backends())


def test_custom_backend_pluggable(paper_database, paper_query):
    class EchoBackend(MemoryBackend):
        name = "echo"

    register_backend("echo", EchoBackend)
    try:
        backend = create_backend("echo", paper_database)
        assert isinstance(backend, EchoBackend)
        with connect(paper_database, backend="echo") as session:
            assert session.execute(Query(paper_query).skyline()).names == SEED_SKYLINE
    finally:
        from repro.api.backends import _BACKENDS

        _BACKENDS.pop("echo", None)


def test_parallel_backend_empty_database(paper_query):
    with connect(GraphDatabase(), backend="parallel") as session:
        result = session.execute(Query(paper_query).skyline())
    assert result.ids == []


def test_parallel_backend_chunking(paper_database, paper_query):
    backend = ParallelBackend(paper_database, max_workers=2, chunk_size=2)
    chunks = backend._chunks()
    assert [len(c) for c in chunks] == [2, 2, 2, 1]
    with connect(paper_database, backend=backend) as session:
        assert session.execute(Query(paper_query).skyline()).names == SEED_SKYLINE


# ----------------------------------------------------------------------
# Deprecated shims still route through the unified layer
# ----------------------------------------------------------------------
def test_engine_shim_preserves_graph_identity(paper_db, paper_query):
    from repro import SimilarityQueryEngine

    result = SimilarityQueryEngine().skyline(paper_db, paper_query)
    assert result.skyline[0] is paper_db[0]  # no defensive copies


def test_executor_shim_exposes_backend(paper_database):
    executor = SkylineExecutor(paper_database)
    assert isinstance(executor._backend, ExecutionBackend)
    assert len(executor.index) == 7


def test_backend_answer_shape(paper_database, paper_query):
    answer = MemoryBackend(paper_database).run(
        Query(paper_query).skyline().build()
    )
    assert isinstance(answer, BackendAnswer)
    assert sorted(answer.vectors) == answer.evaluated_ids
    assert set(answer.ids) <= set(answer.evaluated_ids)
