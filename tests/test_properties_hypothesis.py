"""Property-based tests (hypothesis) for core invariants.

Graph-pair properties run on small random labeled graphs where the exact
solvers stay fast; skyline properties run on random integer vectors.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.graph import (
    ged,
    ged_lower_bound,
    bipartite_ged,
    canonical_form,
    is_isomorphic,
    mcs_size,
)
from repro.measures import (
    GraphUnionDistance,
    McsDistance,
    PairContext,
    graph_union_similarity,
    mcs_similarity,
)
from repro.skyline import (
    bnl_skyline,
    dnc_skyline,
    dominates,
    is_skyline,
    naive_skyline,
    sfs_skyline,
    top_k_dominating,
)
from tests.conftest import small_labeled_graphs, vector_lists

GRAPH_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
VECTOR_SETTINGS = settings(max_examples=120, deadline=None)


# ----------------------------------------------------------------------
# GED properties
# ----------------------------------------------------------------------
@GRAPH_SETTINGS
@given(small_labeled_graphs(), small_labeled_graphs())
def test_ged_symmetric(g1, g2):
    assert ged(g1, g2) == pytest.approx(ged(g2, g1))


@GRAPH_SETTINGS
@given(small_labeled_graphs())
def test_ged_identity(graph):
    assert ged(graph, graph.copy()) == 0.0


@GRAPH_SETTINGS
@given(small_labeled_graphs(), small_labeled_graphs())
def test_ged_zero_iff_isomorphic(g1, g2):
    distance = ged(g1, g2)
    assert (distance == 0.0) == is_isomorphic(g1, g2)


@GRAPH_SETTINGS
@given(small_labeled_graphs(), small_labeled_graphs())
def test_ged_bounds_sandwich(g1, g2):
    exact = ged(g1, g2)
    assert ged_lower_bound(g1, g2) <= exact + 1e-9
    assert bipartite_ged(g1, g2).distance >= exact - 1e-9


# ----------------------------------------------------------------------
# MCS / measure properties
# ----------------------------------------------------------------------
@GRAPH_SETTINGS
@given(small_labeled_graphs(), small_labeled_graphs())
def test_mcs_symmetric_and_bounded(g1, g2):
    size = mcs_size(g1, g2)
    assert size == mcs_size(g2, g1)
    assert 0 <= size <= min(g1.size, g2.size)


@GRAPH_SETTINGS
@given(small_labeled_graphs(), small_labeled_graphs())
def test_sim_gu_never_exceeds_sim_mcs(g1, g2):
    """The dominance SimGu <= SimMcs claimed in Section IV-C."""
    context = PairContext(g1, g2)
    assert graph_union_similarity(g1, g2, context) <= (
        mcs_similarity(g1, g2, context) + 1e-12
    )


@GRAPH_SETTINGS
@given(small_labeled_graphs(), small_labeled_graphs())
def test_distances_normalized(g1, g2):
    context = PairContext(g1, g2)
    for measure in (McsDistance(), GraphUnionDistance()):
        value = measure.distance(g1, g2, context)
        assert -1e-12 <= value <= 1.0 + 1e-12


@GRAPH_SETTINGS
@given(small_labeled_graphs(connected=True), small_labeled_graphs(connected=True))
def test_canonical_form_isomorphism_invariant(g1, g2):
    """Equal canonical forms coincide with isomorphism on small graphs."""
    same_form = canonical_form(g1) == canonical_form(g2)
    assert same_form == is_isomorphic(g1, g2)


# ----------------------------------------------------------------------
# Skyline properties
# ----------------------------------------------------------------------
@VECTOR_SETTINGS
@given(vector_lists())
def test_all_skyline_algorithms_agree(vectors):
    reference = naive_skyline(vectors)
    assert bnl_skyline(vectors) == reference
    assert sfs_skyline(vectors) == reference
    assert dnc_skyline(vectors) == reference


@VECTOR_SETTINGS
@given(vector_lists())
def test_skyline_is_sound_and_complete(vectors):
    assert is_skyline(vectors, naive_skyline(vectors))


@VECTOR_SETTINGS
@given(vector_lists(max_points=15))
def test_skyline_members_undominated_nonmembers_dominated(vectors):
    members = set(bnl_skyline(vectors))
    for i, p in enumerate(vectors):
        dominated = any(
            dominates(q, p) for j, q in enumerate(vectors) if j != i
        )
        assert (i in members) == (not dominated)


@VECTOR_SETTINGS
@given(vector_lists(max_points=15))
def test_dominance_is_a_strict_partial_order(vectors):
    # irreflexive + asymmetric + transitive on the sample
    for i, p in enumerate(vectors):
        assert not dominates(p, p)
        for q in vectors:
            if dominates(p, q):
                assert not dominates(q, p)
    for p in vectors:
        for q in vectors:
            for r in vectors:
                if dominates(p, q) and dominates(q, r):
                    assert dominates(p, r)


@VECTOR_SETTINGS
@given(vector_lists(max_points=20))
def test_skyline_invariant_under_duplication(vectors):
    """Appending a copy of a skyline point must keep both copies in."""
    if not vectors:
        return
    base = naive_skyline(vectors)
    if not base:
        return
    duplicated = list(vectors) + [vectors[base[0]]]
    result = set(naive_skyline(duplicated))
    assert base[0] in result
    assert len(duplicated) - 1 in result


@VECTOR_SETTINGS
@given(vector_lists(max_points=20))
def test_topk_dominating_contains_best_point(vectors):
    if not vectors:
        return
    top = top_k_dominating(vectors, 1)
    counts = [
        sum(1 for q in vectors if dominates(p, q)) for p in vectors
    ]
    assert counts[top[0]] == max(counts)
