"""Failure injection: the system's behaviour under misbehaving parts.

Verifies that failures surface loudly and leave no corrupted state:
measures that raise mid-query, non-finite distance values, partially
invalid inputs, and misuse of the incremental structures.
"""

import math

import pytest

from repro.core import graph_similarity_skyline
from repro.db import GraphDatabase, QueryCache, SkylineExecutor
from repro.measures import FunctionMeasure
from repro.skyline import IncrementalSkyline, dominates, naive_skyline


class _Exploding(Exception):
    pass


def _exploding_measure(after: int) -> FunctionMeasure:
    calls = {"n": 0}

    def distance(g1, g2):
        calls["n"] += 1
        if calls["n"] > after:
            raise _Exploding(f"boom on call {calls['n']}")
        return float(abs(g1.size - g2.size))

    return FunctionMeasure(distance, name="exploding")


def test_executor_propagates_measure_failure_and_recovers(paper_db, paper_query):
    db = GraphDatabase.from_graphs(paper_db)
    executor = SkylineExecutor(db, measures=[_exploding_measure(after=3)],
                               use_index=False)
    with pytest.raises(_Exploding):
        executor.execute(paper_query)
    # the executor holds no corrupted state: a fresh measure works
    healthy = SkylineExecutor(db, use_index=False)
    result = healthy.execute(paper_query)
    assert result.stats.exact_evaluations == len(paper_db)


def test_failure_does_not_poison_shared_cache(paper_db, paper_query):
    db = GraphDatabase.from_graphs(paper_db)
    cache = QueryCache()
    exploding = SkylineExecutor(
        db, measures=[_exploding_measure(after=2)], use_index=False, cache=cache
    )
    with pytest.raises(_Exploding):
        exploding.execute(paper_query)
    # entries cached before the failure are for the exploding measure's
    # name only; the default-measure query is unaffected
    healthy = SkylineExecutor(db, use_index=False, cache=cache)
    result = healthy.execute(paper_query)
    names = sorted(db.get(i).name for i in result.skyline_ids)
    assert names == ["g1", "g4", "g5", "g7"]


def test_gss_with_nan_producing_measure(paper_db, paper_query):
    """NaN never satisfies a strict comparison, so a NaN vector neither
    dominates nor is dominated — it floats into the skyline rather than
    silently vanishing. Pinned here so the behaviour is a documented
    contract, not an accident."""
    nan_measure = FunctionMeasure(lambda a, b: float("nan"), name="nan")
    result = graph_similarity_skyline(paper_db, paper_query, measures=[nan_measure])
    assert len(result.skyline) == len(paper_db)


def test_dominates_with_nan_and_inf():
    """NaN coordinates behave as ties (neither strictly better nor
    worse); dominance can still be decided by the finite dimensions.
    Documented contract of :func:`repro.skyline.utils.dominates`."""
    nan = float("nan")
    inf = float("inf")
    assert dominates((nan, 1.0), (1.0, 2.0))  # tie on dim 0, strict on dim 1
    assert not dominates((nan, 1.0), (1.0, 1.0))  # ties everywhere
    assert not dominates((nan, 2.0), (1.0, 1.0))  # worse on the finite dim
    assert dominates((1.0, 1.0), (inf, 1.0))
    assert not dominates((inf, 1.0), (1.0, 1.0))
    # skyline over vectors containing NaN still terminates and is stable
    vectors = [(nan, 1.0), (1.0, 1.0), (2.0, 2.0)]
    members = naive_skyline(vectors)
    assert 1 in members and 2 not in members


def test_incremental_skyline_misuse():
    tracker = IncrementalSkyline(dimension=2)
    with pytest.raises(KeyError):
        tracker.remove("ghost")
    with pytest.raises(ValueError):
        tracker.insert("a", (1.0, 2.0, 3.0))
    # failed insert must not leave a phantom entry
    assert "a" not in tracker
    assert len(tracker) == 0


def test_verifier_rejects_incomplete_assignment(paper_db, paper_query):
    from repro.reconstruct import verify_assignment

    partial = {"g1": paper_db[0]}  # g2..g7 missing
    with pytest.raises(KeyError):
        verify_assignment(partial, paper_query)


def test_database_survives_failed_bulk_load():
    """An exception mid-bulk-load must not leave half-registered hashes."""
    from repro.graph import path_graph

    good = path_graph(["A", "B"], name="good")
    db = GraphDatabase()
    db.insert(good)
    with pytest.raises(AttributeError):
        db.insert("not a graph")  # type: ignore[arg-type]
    assert len(db) == 1
    assert db.find_isomorphic(good) == 0
