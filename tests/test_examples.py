"""Regression: every shipped example must run to completion.

Each example is executed in-process (runpy) with stdout captured; the
assertions check for the banner lines that prove the interesting part
actually happened, so a silently-degenerate example fails loudly.
"""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    buffer = io.StringIO()
    argv = sys.argv
    sys.argv = [name]
    try:
        with redirect_stdout(buffer):
            runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    finally:
        sys.argv = argv
    return buffer.getvalue()


def test_examples_directory_complete():
    names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart.py",
        "paper_walkthrough.py",
        "chemical_search.py",
        "custom_measures.py",
        "database_indexing.py",
        "dynamic_database.py",
        "live_view.py",
        "sharded.py",
        "serve_client.py",
    } <= names


def test_quickstart_example():
    out = run_example("quickstart.py")
    assert "answer (maximally similar in the Pareto sense):" in out
    assert "path-abcd" in out


def test_paper_walkthrough_example():
    out = run_example("paper_walkthrough.py")
    assert "DistEd(g1, g2) = 4 (paper: 4)" in out
    assert "GSS(D, q) = {g1, g4, g5, g7}" in out
    assert "maximally diverse subset: ['g1', 'g4']" in out


def test_chemical_search_example():
    out = run_example("chemical_search.py")
    assert "similarity skyline:" in out
    assert "classic top-3 by edit distance:" in out


def test_custom_measures_example():
    out = run_example("custom_measures.py")
    assert "skyline growth as similarity facets are added" in out
    assert "size-gap" in out or "custom size gap" in out


def test_database_indexing_example():
    out = run_example("database_indexing.py")
    assert "index pruning effect (identical answers)" in out
    assert "compounds within DistEd <= 3:" in out


def test_dynamic_database_example():
    out = run_example("dynamic_database.py")
    assert "streaming compounds in:" in out
    assert "after deleting" in out
    assert "is in the skyline" in out


def test_live_view_example():
    out = run_example("live_view.py")
    assert "watching: <LiveView" in out
    assert "streaming compounds in:" in out
    assert "view equals a from-scratch re-query: True" in out


def test_serve_client_example():
    out = run_example("serve_client.py")
    assert "skyline over HTTP (200): ['g1', 'g4', 'g5', 'g7']" in out
    assert "watch update after insert:" in out
    assert "server exit code: 0" in out


def test_sharded_example():
    out = run_example("sharded.py")
    assert "partitioned store: <ShardedGraphDatabase" in out
    assert "sharded skyline equals monolithic: True" in out
    assert "post-mutation answers still agree with memory: True" in out
