"""Shared fixtures, hypothesis profiles and strategies for the suite."""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.datasets import figure1_pair, figure3_database, figure3_query
from repro.db import GraphDatabase
from repro.graph import LabeledGraph, path_graph

# ----------------------------------------------------------------------
# Hypothesis profiles
# ----------------------------------------------------------------------
# ``ci`` is deterministic (derandomized, bounded examples) so property
# tests cannot flake in CI; select it with HYPOTHESIS_PROFILE=ci. Tests
# that pass their own ``settings(...)`` still inherit derandomization —
# only the fields they set explicitly override the profile.
settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.register_profile("dev", max_examples=60, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


# ----------------------------------------------------------------------
# Plain fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def triangle() -> LabeledGraph:
    """A labeled triangle A-B-C."""
    return LabeledGraph.from_edges(
        [("A", "B", "x"), ("B", "C", "x"), ("C", "A", "y")], name="triangle"
    )


@pytest.fixture
def small_path() -> LabeledGraph:
    """A 3-edge path with distinct labels."""
    return path_graph(["A", "B", "C", "D"], name="p4")


@pytest.fixture
def fig1_g1() -> LabeledGraph:
    return figure1_pair()[0]


@pytest.fixture
def fig1_g2() -> LabeledGraph:
    return figure1_pair()[1]


@pytest.fixture
def paper_db() -> list[LabeledGraph]:
    return figure3_database()


@pytest.fixture
def paper_query() -> LabeledGraph:
    return figure3_query()


@pytest.fixture
def paper_database() -> GraphDatabase:
    """The figure-3 graphs loaded into a GraphDatabase.

    The single definition of the fixture previously duplicated across
    ``test_engine*.py``, ``test_api*.py``, ``test_live_view.py`` and
    ``test_pair_cache.py``.
    """
    return GraphDatabase.from_graphs(figure3_database(), name="fig3")


# ----------------------------------------------------------------------
# Random-graph helpers (deterministic seeds)
# ----------------------------------------------------------------------
def make_random_graph(
    seed: int,
    max_vertices: int = 6,
    labels: tuple[str, ...] = ("A", "B", "C"),
    edge_labels: tuple[str, ...] = ("-",),
) -> LabeledGraph:
    """Small random connected labeled graph for oracle-based tests."""
    rng = random.Random(seed)
    n = rng.randint(2, max_vertices)
    max_edges = n * (n - 1) // 2
    m = rng.randint(n - 1, max_edges)
    from repro.graph import random_labeled_graph

    return random_labeled_graph(
        n, m, vertex_labels=labels, edge_labels=edge_labels, seed=rng,
        name=f"rand-{seed}",
    )


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
VERTEX_LABELS = ("A", "B", "C")
EDGE_LABELS = ("x", "y")


@st.composite
def small_labeled_graphs(
    draw,
    max_vertices: int = 5,
    vertex_labels: tuple[str, ...] = VERTEX_LABELS,
    edge_labels: tuple[str, ...] = EDGE_LABELS,
    connected: bool = False,
) -> LabeledGraph:
    """Random small labeled graphs (possibly disconnected)."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    labels = draw(
        st.lists(st.sampled_from(vertex_labels), min_size=n, max_size=n)
    )
    graph = LabeledGraph(name="hyp")
    for i, label in enumerate(labels):
        graph.add_vertex(i, label)
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    if connected and n > 1:
        order = draw(st.permutations(list(range(n))))
        for position in range(1, n):
            anchor = draw(st.sampled_from(order[:position]))
            u, v = order[position], anchor
            if not graph.has_edge(u, v):
                graph.add_edge(u, v, draw(st.sampled_from(edge_labels)))
    for u, v in pairs:
        if not graph.has_edge(u, v) and draw(st.booleans()):
            graph.add_edge(u, v, draw(st.sampled_from(edge_labels)))
    return graph


@st.composite
def vector_lists(draw, max_points: int = 30, max_dim: int = 4):
    """Lists of equal-dimension float vectors for skyline properties."""
    dim = draw(st.integers(min_value=1, max_value=max_dim))
    n = draw(st.integers(min_value=0, max_value=max_points))
    value = st.integers(min_value=0, max_value=6).map(float)
    return [
        tuple(draw(value) for _ in range(dim))
        for _ in range(n)
    ]
