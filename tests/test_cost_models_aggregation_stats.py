"""Tests for extension cost models, scalarization measures and statistics."""

import pytest

from repro.errors import QueryError
from repro.graph import (
    LabeledGraph,
    LabelMatrixCostModel,
    WeightedCostModel,
    collection_statistics,
    describe_graph,
    ged,
    graph_statistics,
    path_graph,
)
from repro.measures import (
    ChebyshevMeasure,
    PairContext,
    WeightedSumMeasure,
    default_measures,
    weighted_sum_ranking_is_skyline_subset,
)
from repro.datasets import figure3_database, figure3_query


# ----------------------------------------------------------------------
# Cost models
# ----------------------------------------------------------------------
def test_weighted_cost_model_prices():
    model = WeightedCostModel(
        vertex_indel=2.0, vertex_mismatch=0.5, edge_indel=3.0, edge_mismatch=0.25
    )
    assert model.vertex_deletion("A") == 2.0
    assert model.vertex_insertion("A") == 2.0
    assert model.vertex_substitution("A", "B") == 0.5
    assert model.vertex_substitution("A", "A") == 0.0
    assert model.edge_deletion("x") == 3.0
    assert model.edge_substitution("x", "y") == 0.25
    with pytest.raises(ValueError):
        WeightedCostModel(vertex_indel=-1.0)


def test_weighted_costs_change_optimal_solution():
    base = path_graph(["A", "B"])
    relabeled = path_graph(["A", "Z"])
    cheap_relabel = WeightedCostModel(vertex_mismatch=0.1)
    assert ged(base, relabeled, costs=cheap_relabel) == pytest.approx(0.1)
    pricey_relabel = WeightedCostModel(
        vertex_mismatch=10.0, vertex_indel=1.0, edge_indel=0.5
    )
    # delete vertex+edge, insert vertex+edge: 1 + 0.5 + 1 + 0.5 = 3 < 10
    assert ged(base, relabeled, costs=pricey_relabel) == pytest.approx(3.0)


def test_label_matrix_cost_model_lookup():
    model = LabelMatrixCostModel(
        vertex_matrix={("C", "N"): 0.3},
        edge_matrix={("single", "double"): 0.2},
        default_mismatch=5.0,
    )
    assert model.vertex_substitution("C", "N") == 0.3
    assert model.vertex_substitution("N", "C") == 0.3  # symmetric lookup
    assert model.vertex_substitution("C", "C") == 0.0
    assert model.vertex_substitution("C", "O") == 5.0  # default
    assert model.edge_substitution("double", "single") == 0.2
    with pytest.raises(ValueError):
        LabelMatrixCostModel(vertex_matrix={("A", "B"): -1.0})
    with pytest.raises(ValueError):
        LabelMatrixCostModel(indel_cost=-0.5)


def test_label_matrix_model_in_exact_solver():
    g1 = path_graph(["C", "C", "N"])
    g2 = path_graph(["C", "C", "O"])
    cheap_no = LabelMatrixCostModel(vertex_matrix={("N", "O"): 0.1})
    assert ged(g1, g2, costs=cheap_no) == pytest.approx(0.1)


# ----------------------------------------------------------------------
# Scalarization measures
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def paper_pair():
    database = figure3_database()
    return database[0], figure3_query()


def test_weighted_sum_measure(paper_pair):
    g1, query = paper_pair
    aggregated = WeightedSumMeasure(("edit", "mcs", "union"), (1.0, 1.0, 1.0))
    context = PairContext(g1, query)
    components = [
        measure.distance(g1, query, context) for measure in default_measures()
    ]
    assert aggregated.distance(g1, query, context) == pytest.approx(sum(components))
    assert aggregated.name.startswith("wsum(")


def test_chebyshev_measure(paper_pair):
    g1, query = paper_pair
    aggregated = ChebyshevMeasure(("mcs", "union"), (1.0, 1.0))
    context = PairContext(g1, query)
    assert aggregated.distance(g1, query, context) == pytest.approx(0.5)  # max


def test_aggregation_weight_validation():
    with pytest.raises(QueryError):
        WeightedSumMeasure(("edit",), (1.0, 2.0))  # length mismatch
    with pytest.raises(QueryError):
        WeightedSumMeasure(("edit",), (-1.0,))
    with pytest.raises(QueryError):
        WeightedSumMeasure(("edit", "mcs"), (0.0, 0.0))


def test_weighted_sum_minimiser_is_skyline_member():
    """The textbook theorem, on the paper's own example."""
    database = figure3_database()
    query = figure3_query()
    for weights in ((1.0, 1.0, 1.0), (0.1, 1.0, 2.0), (5.0, 0.5, 0.5)):
        assert weighted_sum_ranking_is_skyline_subset(
            database, query, ("edit", "mcs", "union"), weights
        ), weights


def test_weighted_sum_check_rejects_zero_weights():
    with pytest.raises(QueryError):
        weighted_sum_ranking_is_skyline_subset(
            figure3_database(), figure3_query(), ("edit",), (0.0,)
        )


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------
def test_graph_statistics_basic():
    g = path_graph(["A", "A", "B"], name="p3")
    stats = graph_statistics(g)
    assert stats.order == 3
    assert stats.size == 2
    assert stats.density == pytest.approx(2 / 3)
    assert stats.connected
    assert stats.components == 1
    assert stats.min_degree == 1
    assert stats.max_degree == 2
    assert stats.mean_degree == pytest.approx(4 / 3)
    assert stats.distinct_vertex_labels == 2
    assert 0.9 < stats.vertex_label_entropy < 1.0  # 2/3-1/3 split


def test_graph_statistics_empty_graph():
    stats = graph_statistics(LabeledGraph())
    assert stats.order == 0
    assert stats.density == 0.0
    assert stats.vertex_label_entropy == 0.0


def test_collection_statistics():
    graphs = figure3_database()
    stats = collection_statistics(graphs)
    assert stats.count == 7
    assert stats.min_size == 6
    assert stats.max_size == 10
    assert stats.connected_fraction == 1.0
    assert stats.mean_size == pytest.approx(sum(g.size for g in graphs) / 7)


def test_collection_statistics_empty():
    stats = collection_statistics([])
    assert stats.count == 0
    assert stats.vertex_label_vocabulary == ()


def test_describe_graph_text():
    text = describe_graph(path_graph(["A", "B", "C"], name="demo"))
    assert "graph demo" in text
    assert "3 vertices, 2 edges" in text
    assert "connected" in text
