"""Tests for the maximum common connected subgraph solver (Definition 7)."""

import itertools

import pytest

from repro.graph import (
    LabeledGraph,
    is_subgraph_isomorphic,
    maximum_common_subgraph,
    mcs_size,
    path_graph,
    verify_embedding,
)
from tests.conftest import make_random_graph


def brute_force_mcs_edges(g1: LabeledGraph, g2: LabeledGraph) -> int:
    """Oracle: largest connected edge-subgraph of g1 embeddable into g2."""
    edges = list(g1.edge_set())
    best = 0
    for size in range(len(edges), 0, -1):
        if size <= best:
            break
        for subset in itertools.combinations(edges, size):
            sub = g1.edge_subgraph(subset)
            if not sub.is_connected():
                continue
            if is_subgraph_isomorphic(sub, g2):
                best = size
                break
    return best


def test_mcs_of_identical_graphs_is_whole_graph(triangle):
    result = maximum_common_subgraph(triangle, triangle.copy())
    assert result.size == triangle.size
    assert result.order == triangle.order


def test_mcs_paper_fig2(fig1_g1, fig1_g2):
    """Fig. 2: the mcs of the Fig. 1 pair has 4 edges."""
    result = maximum_common_subgraph(fig1_g1, fig1_g2)
    assert result.size == 4
    sub = result.subgraph(fig1_g1)
    assert sub.is_connected()
    assert is_subgraph_isomorphic(sub, fig1_g2)
    assert verify_embedding(sub, fig1_g2, result.mapping)


def test_mcs_no_common_labels():
    g1 = path_graph(["A", "B"])
    g2 = path_graph(["C", "D"])
    result = maximum_common_subgraph(g1, g2)
    assert result.size == 0
    assert result.order == 0


def test_mcs_single_common_vertex_has_zero_edges():
    g1 = path_graph(["A", "B"])
    g2 = path_graph(["A", "C"])
    assert mcs_size(g1, g2) == 0
    # vertex objective still finds the shared A vertex
    result = maximum_common_subgraph(g1, g2, objective="vertices")
    assert result.order == 1
    assert result.size == 0


def test_mcs_requires_connectivity():
    """Two separate common pieces must not be merged (Definition 7)."""
    # g1: two disjoint paths X-Y and P-Q joined through a Z vertex
    g1 = LabeledGraph.from_edges(
        [("x", "y"), ("y", "z"), ("z", "p"), ("p", "q")],
        vertex_labels={"x": "X", "y": "Y", "z": "Z", "p": "P", "q": "Q"},
    )
    # g2 has X-Y and P-Q but no Z at all: common pieces are disconnected.
    g2 = LabeledGraph.from_edges(
        [("x", "y"), ("y", "w"), ("w", "p"), ("p", "q")],
        vertex_labels={"x": "X", "y": "Y", "w": "W", "p": "P", "q": "Q"},
    )
    assert mcs_size(g1, g2) == 1  # X-Y or P-Q, not both
    assert brute_force_mcs_edges(g1, g2) == 1


def test_mcs_edge_labels_matter():
    g1 = LabeledGraph.from_edges([("A", "B", "x"), ("B", "C", "x")])
    g2 = LabeledGraph.from_edges([("A", "B", "x"), ("B", "C", "y")])
    assert mcs_size(g1, g2) == 1


def test_mcs_symmetry_in_size():
    for seed in range(12):
        g1 = make_random_graph(seed, max_vertices=5)
        g2 = make_random_graph(seed + 500, max_vertices=5)
        assert mcs_size(g1, g2) == mcs_size(g2, g1)


def test_mcs_upper_bounds():
    for seed in range(12):
        g1 = make_random_graph(seed, max_vertices=5)
        g2 = make_random_graph(seed + 700, max_vertices=5)
        size = mcs_size(g1, g2)
        assert size <= min(g1.size, g2.size)


def test_mcs_subgraph_relation():
    """If q is a subgraph of g, mcs(g, q) = |q| (paper, g7 case)."""
    q = path_graph(["A", "B", "C", "D"])
    g = q.copy()
    g.add_vertex(99, "E")
    g.add_edge(99, 0)
    g.add_edge(99, 2)
    assert mcs_size(g, q) == q.size


def test_mcs_against_brute_force_oracle():
    for seed in range(18):
        g1 = make_random_graph(seed, max_vertices=5)
        g2 = make_random_graph(seed + 300, max_vertices=5)
        assert mcs_size(g1, g2) == brute_force_mcs_edges(g1, g2), f"seed {seed}"


def test_mcs_result_mapping_is_valid_embedding():
    for seed in (3, 7, 11):
        g1 = make_random_graph(seed, max_vertices=5)
        g2 = make_random_graph(seed + 17, max_vertices=5)
        result = maximum_common_subgraph(g1, g2)
        if result.size > 0:
            sub = result.subgraph(g1)
            assert sub.is_connected()
            assert verify_embedding(sub, g2, {
                v: result.mapping[v] for v in sub.vertices()
            })


def test_mcs_vertices_objective_at_least_edge_objective_order():
    for seed in (2, 9, 21):
        g1 = make_random_graph(seed, max_vertices=5)
        g2 = make_random_graph(seed + 40, max_vertices=5)
        by_edges = maximum_common_subgraph(g1, g2, objective="edges")
        by_vertices = maximum_common_subgraph(g1, g2, objective="vertices")
        assert by_vertices.order >= by_edges.order
        assert by_edges.size >= by_vertices.size or by_vertices.size == by_edges.size


def test_mcs_invalid_objective():
    g = path_graph(["A", "B"])
    with pytest.raises(ValueError):
        maximum_common_subgraph(g, g, objective="nope")


def test_mcs_empty_graphs():
    empty = LabeledGraph()
    g = path_graph(["A", "B"])
    assert mcs_size(empty, g) == 0
    assert mcs_size(empty, LabeledGraph()) == 0
