"""The cost-based adaptive planner and the ``auto`` backend.

Answer-set parity with the exhaustive reference across all four kinds is
also fuzzed (``auto`` sits in the testkit backend rotation); this file
pins the decision layer itself — selectivity-profile feedback, soundness
gates, static cost crossovers, NumPy-absent degradation, mid-query
re-plans (stage drop + serial→pooled switch), the ``explain()`` /
``to_dict()`` reporting, the sharded scatter path, the ``repro
backends`` CLI, and the shared profile behind the server.
"""

from __future__ import annotations

import pytest

import repro
from repro import GraphDatabase, Query
from repro.api.auto import AutoBackend
from repro.api.backends import available_backends
from repro.api.spec import GraphQuery
from repro.db.stats import QueryStats
from repro.engine import planner as planner_mod
from repro.engine.planner import (
    AdaptiveEvaluator,
    AdaptiveStage,
    QueryPlanner,
    SelectivityProfile,
    availability,
    stage_warmup,
)
from repro.shard import ShardedGraphDatabase

from tests.conftest import make_random_graph


@pytest.fixture
def database() -> GraphDatabase:
    return GraphDatabase.from_graphs(
        [make_random_graph(seed, max_vertices=5) for seed in range(14)]
    )


@pytest.fixture
def query_graph():
    return make_random_graph(99, max_vertices=5)


def _reference(database, build):
    with repro.connect(database, backend="memory") as session:
        return session.execute(build())


def _skyline_spec(graph) -> GraphQuery:
    return Query(graph).measures("edit", "mcs").skyline().build()


# ----------------------------------------------------------------------
# Registration + parity
# ----------------------------------------------------------------------
def test_backend_is_registered():
    assert "auto" in available_backends()


@pytest.mark.parametrize(
    "build",
    [
        lambda q: Query(q).measures("edit", "mcs").skyline(),
        lambda q: Query(q).measures("edit", "mcs").skyline(tolerance=0.25),
        lambda q: Query(q).measures("edit", "mcs").skyband(2),
        lambda q: Query(q).topk(3, "edit"),
        lambda q: Query(q).threshold(0.5, "edit"),
    ],
    ids=["skyline", "skyline-tolerant", "skyband", "topk", "threshold"],
)
def test_auto_matches_memory(database, query_graph, build):
    expected = _reference(database, lambda: build(query_graph))
    with repro.connect(database, backend="auto") as session:
        result = session.execute(build(query_graph))
    assert result.ids == expected.ids
    planner = result.stats.planner
    assert planner is not None and planner["backend"] == "auto"
    # The decision names source, stages, evaluator, and selectivities.
    assert planner["source"] in ("database-order", "bound-ordered", "indexed")
    assert planner["evaluator"]
    assert set(planner["observed"]) == set(planner["predicted"])


def test_tolerant_skyline_disables_pruning(database, query_graph):
    with repro.connect(database, backend="auto") as session:
        result = session.execute(
            Query(query_graph).measures("edit", "mcs").skyline(tolerance=0.25)
        )
    planner = result.stats.planner
    assert planner["summary"].startswith("database-order+no-prune")
    assert any("tolerant" in reason for reason in planner["reasons"])
    assert result.stats.exact_evaluations == len(database)


def test_explain_and_to_dict_carry_the_decision(database, query_graph):
    with repro.connect(database, backend="auto") as session:
        result = session.execute(_skyline_spec(query_graph))
    text = result.explain()
    assert "planner: chose" in text
    assert "predicted" in text and "observed" in text
    assert "considered:" in text
    payload = result.to_dict()
    planner = payload["stats"]["planner"]
    assert planner["summary"] == result.stats.planner["summary"]
    assert "costs_ms" in planner and "exhaustive/serial" in planner["costs_ms"]
    assert payload["stats"]["pruned_by_stage"] == dict(
        result.stats.pruned_by_stage
    )
    for key in ("source_ms", "cascade_ms", "evaluate_ms"):
        assert payload["stats"][key] >= 0.0


def test_profile_learns_across_queries(database, query_graph):
    backend = AutoBackend(database)
    spec = _skyline_spec(query_graph)
    first = backend.run(spec)
    assert first.stats.planner["profile_queries"] == 0
    second = backend.run(spec)
    assert second.stats.planner["profile_queries"] == 1
    kind_stage = backend.profile.selectivity(
        "skyline", first.stats.planner["stages"][0]
    )
    assert kind_stage is not None
    assert backend.profile.pair_seconds("skyline") > 0.0


# ----------------------------------------------------------------------
# SelectivityProfile
# ----------------------------------------------------------------------
def _stats(considered, pruned_by_stage=None, batch=0, evals=0, evaluate_s=0.0):
    stats = QueryStats(
        candidates_considered=considered,
        pruned_by_batch=batch,
        exact_evaluations=evals,
    )
    stats.pruned_by_stage.update(pruned_by_stage or {})
    if evaluate_s:
        stats.phase_seconds["evaluate"] = evaluate_s
    return stats


def test_profile_ewma_update():
    profile = SelectivityProfile(alpha=0.5)
    profile.observe(
        "skyline",
        _stats(100, {"pareto-bound": 80}),
        stage_names=("pareto-bound",),
    )
    assert profile.selectivity("skyline", "pareto-bound") == pytest.approx(0.8)
    profile.observe(
        "skyline",
        _stats(100, {"pareto-bound": 40}),
        stage_names=("pareto-bound",),
    )
    # EWMA: 0.8 + 0.5 * (0.4 - 0.8)
    assert profile.selectivity("skyline", "pareto-bound") == pytest.approx(0.6)
    assert profile.queries == 2


def test_profile_records_zero_selectivity_for_planned_stages():
    profile = SelectivityProfile()
    profile.observe("topk", _stats(50), stage_names=("rank-bound",))
    assert profile.selectivity("topk", "rank-bound") == 0.0


def test_profile_pair_seconds_and_prefilter():
    profile = SelectivityProfile()
    profile.observe(
        "threshold",
        _stats(40, batch=30, evals=10, evaluate_s=0.02),
        stage_names=("batch-prefilter", "threshold-bound"),
    )
    assert profile.selectivity("threshold", "batch-prefilter") == pytest.approx(
        0.75
    )
    assert profile.pair_seconds("threshold") == pytest.approx(0.002)
    snapshot = profile.snapshot()
    assert snapshot["queries"] == 1
    assert "threshold/batch-prefilter" in snapshot["selectivity"]
    assert snapshot["pair_ms"]["threshold"] == pytest.approx(2.0)


def test_batch_and_scalar_stage_names_share_observations():
    profile = SelectivityProfile()
    profile.observe(
        "skyline",
        _stats(100, {"pareto-bound(batch)": 70}),
        stage_names=("pareto-bound(batch)",),
    )
    planner = QueryPlanner(profile, numpy_available=True, max_workers=1)
    assert planner._predicted_selectivity(
        "skyline", "pareto-bound"
    ) == pytest.approx(0.7)
    assert planner._predicted_selectivity(
        "skyline", "pareto-bound(batch)"
    ) == pytest.approx(0.7)


# ----------------------------------------------------------------------
# Static decisions
# ----------------------------------------------------------------------
def test_decide_prefers_scalar_small_batch_large(query_graph):
    planner = QueryPlanner(
        SelectivityProfile(), numpy_available=True, max_workers=1
    )
    spec = _skyline_spec(query_graph)
    small = planner.decide(spec, db_size=20, avg_order=5.0)
    assert small.stage == "pareto-bound" and not small.batch
    large = planner.decide(spec, db_size=2000, avg_order=5.0)
    assert large.stage == "pareto-bound(batch)" and large.batch
    assert large.source == "indexed"


def test_decide_without_numpy_never_batches(query_graph):
    planner = QueryPlanner(
        SelectivityProfile(), numpy_available=False, max_workers=1
    )
    for build in (
        lambda q: Query(q).measures("edit", "mcs").skyline(),
        lambda q: Query(q).topk(3, "edit"),
        lambda q: Query(q).threshold(0.5, "edit"),
    ):
        decision = planner.decide(build(query_graph).build(), 2000, 5.0)
        assert not decision.batch
        assert decision.source in ("database-order", "bound-ordered")


def test_decide_anytime_is_serial(query_graph):
    planner = QueryPlanner(
        SelectivityProfile(), numpy_available=True, max_workers=8
    )
    spec = Query(query_graph).measures("edit", "mcs").skyline().budget(
        ms=50
    ).build()
    decision = planner.decide(spec, 500, 5.0)
    assert decision.evaluator == "serial"
    assert any("anytime" in reason for reason in decision.reasons)


def test_decide_single_core_cannot_pool(query_graph):
    planner = QueryPlanner(
        SelectivityProfile(), numpy_available=True, max_workers=1
    )
    decision = planner.decide(_skyline_spec(query_graph), 500, 5.0)
    assert decision.evaluator == "serial"
    assert all("/pooled" not in label for label in decision.costs)


def test_decide_serial_winner_arms_the_adaptive_switch(query_graph):
    planner = QueryPlanner(
        SelectivityProfile(), numpy_available=True, max_workers=4
    )
    decision = planner.decide(_skyline_spec(query_graph), 40, 4.0)
    assert decision.evaluator == "adaptive"
    assert "scalar-index/pooled" in decision.costs


def test_decide_huge_survivor_count_goes_pooled(query_graph):
    profile = SelectivityProfile()
    # Teach the profile that pairs are expensive and pruning is useless.
    profile.observe(
        "skyline",
        _stats(100, {"pareto-bound": 0}, evals=100, evaluate_s=5.0),
        stage_names=("pareto-bound",),
    )
    planner = QueryPlanner(profile, numpy_available=True, max_workers=4)
    decision = planner.decide(_skyline_spec(query_graph), 5000, 8.0)
    assert decision.evaluator == "pooled"


# ----------------------------------------------------------------------
# NumPy-absent degradation (satellite: mirror the vectorized gating)
# ----------------------------------------------------------------------
def test_auto_degrades_to_scalar_without_numpy(
    database, query_graph, monkeypatch
):
    monkeypatch.setattr("repro.api.auto._numpy_available", lambda: False)
    backend = AutoBackend(database)
    assert not backend.planner.numpy_available
    for build in (
        lambda q: Query(q).measures("edit", "mcs").skyline(),
        lambda q: Query(q).topk(3, "edit"),
        lambda q: Query(q).threshold(0.5, "edit"),
    ):
        expected = _reference(database, lambda: build(query_graph))
        answer = backend.run(build(query_graph).build())
        assert answer.ids == expected.ids
        planner = answer.stats.planner
        assert "(batch)" not in (planner["summary"] or "")
        assert planner["source"] != "indexed"


# ----------------------------------------------------------------------
# Mid-query re-planning
# ----------------------------------------------------------------------
class _NeverPrunes:
    name = "pareto-bound"

    def __init__(self):
        self.observed_ids = []

    def decide(self, candidate):
        return None

    def observe(self, graph_id, values):
        self.observed_ids.append(graph_id)


def test_adaptive_stage_drops_on_collapsed_rate():
    events: list = []
    stage = AdaptiveStage(
        _NeverPrunes(), predicted=0.8, events=events, calibration=4
    )
    for _ in range(4):
        assert stage.decide(None) is None
    assert stage.dropped
    (event,) = events
    assert event["event"] == "drop-stage"
    assert event["stage"] == "pareto-bound"
    assert event["after_candidates"] == 4
    assert event["predicted"] == 0.8 and event["observed"] == 0.0
    # Dropped stages stop both deciding and observing.
    assert stage.decide(None) is None
    stage.observe(7, (1.0,))
    assert stage.inner.observed_ids == []


def test_adaptive_stage_warmup_delays_calibration():
    events: list = []
    stage = AdaptiveStage(
        _NeverPrunes(), predicted=0.8, events=events, calibration=2, warmup=2
    )
    # Candidates seen before 2 exact observations don't count.
    for _ in range(5):
        stage.decide(None)
    assert stage.seen == 0 and not stage.dropped
    stage.observe(1, (1.0,))
    stage.observe(2, (1.0,))
    stage.decide(None)
    stage.decide(None)
    assert stage.seen == 2 and stage.dropped
    assert events and events[0]["after_candidates"] == 2


def test_stage_warmup_per_kind(query_graph):
    assert stage_warmup(_skyline_spec(query_graph)) == 1
    assert stage_warmup(Query(query_graph).topk(4, "edit").build()) == 4
    assert (
        stage_warmup(
            Query(query_graph).measures("edit", "mcs").skyband(3).build()
        )
        == 3
    )
    assert stage_warmup(Query(query_graph).threshold(0.5, "edit").build()) == 0


def test_drop_event_reaches_explain_end_to_end(query_graph):
    # 40 graphs, a threshold so large nothing prunes, and a profile
    # pre-trained to expect heavy scalar pruning and a useless
    # pre-filter: the planner picks the scalar stage, the observed rate
    # collapses, and the gate drops the stage mid-query.
    database = GraphDatabase.from_graphs(
        [make_random_graph(seed, max_vertices=4) for seed in range(40)]
    )
    profile = SelectivityProfile()
    profile.observe(
        "threshold",
        _stats(40, {"threshold-bound": 36}),
        stage_names=("threshold-bound", "batch-prefilter"),
    )
    backend = AutoBackend(database, profile=profile)
    expected = _reference(
        database, lambda: Query(query_graph).threshold(1e9, "edit")
    )
    with repro.connect(database, backend=backend) as session:
        result = session.execute(Query(query_graph).threshold(1e9, "edit"))
    assert result.ids == expected.ids
    planner = result.stats.planner
    assert planner["summary"].startswith("bound-ordered+threshold-bound")
    (event,) = planner["replans"]
    assert event["event"] == "drop-stage"
    assert event["stage"] == "threshold-bound"
    assert "re-plan: dropped stage threshold-bound" in result.explain()
    # The collapsed run must not poison the profile: the pre-trained
    # selectivity survives untouched (the prior, not the forced zero).
    assert profile.selectivity("threshold", "threshold-bound") == pytest.approx(
        0.9
    )


class _StubPooled:
    max_workers = 4

    def __init__(self):
        self.begun = False
        self.evaluated = []
        self.drained = False

    def begin(self, ctx):
        self.begun = True

    def chunk(self, pairs):
        return [pairs] if pairs else []

    def evaluate(self, ctx, candidate):
        self.evaluated.append(candidate)
        return None

    def drain(self, ctx):
        self.drained = True
        return []

    def drained_pruned_ids(self):
        return ("stub",)


class _StubSerial:
    def evaluate(self, ctx, candidate):
        return (1.0,)


def test_adaptive_evaluator_switches_to_the_pool():
    events: list = []
    pooled = _StubPooled()
    evaluator = AdaptiveEvaluator(
        pooled,
        expected_survivors=10_000,
        events=events,
        calibration=3,
        pool_started=True,
    )
    evaluator._serial = _StubSerial()
    evaluator.begin(None)
    assert pooled.begun
    for _ in range(3):
        assert evaluator.evaluate(None, "cand") == (1.0,)
    assert evaluator.switched
    (event,) = events
    assert event["event"] == "switch-evaluator"
    assert event["from"] == "serial" and event["to"] == "pooled"
    assert event["after_pairs"] == 3
    assert event["expected_remaining"] == 10_000 - 3
    # Post-switch work goes to the pool; drain delegates too.
    evaluator.evaluate(None, "later")
    assert pooled.evaluated == ["later"]
    assert evaluator.drain(None) == [] and pooled.drained
    assert evaluator.drained_pruned_ids() == ("stub",)


def test_adaptive_evaluator_stays_serial_below_the_bar():
    events: list = []
    evaluator = AdaptiveEvaluator(
        _StubPooled(),
        expected_survivors=4,  # nothing left to save after calibration
        events=events,
        calibration=3,
        pool_started=False,
    )
    evaluator._serial = _StubSerial()
    evaluator.begin(None)
    for _ in range(4):
        evaluator.evaluate(None, "cand")
    assert not evaluator.switched and events == []
    assert evaluator.drain(None) == []
    assert evaluator.drained_pruned_ids() == ()


def test_explain_renders_switch_events(database, query_graph):
    with repro.connect(database, backend="auto") as session:
        result = session.execute(_skyline_spec(query_graph))
    result.stats.planner["replans"] = [
        {
            "event": "switch-evaluator",
            "from": "serial",
            "to": "pooled",
            "after_pairs": 16,
            "pair_ms": 2.5,
            "expected_remaining": 84,
        }
    ]
    text = result.explain()
    assert "re-plan: switched serial → pooled after 16 pairs" in text


# ----------------------------------------------------------------------
# Sharded scatter path
# ----------------------------------------------------------------------
def test_sharded_auto_parity_and_per_shard_plans(database, query_graph):
    expected = _reference(database, lambda: _skyline_spec(query_graph))
    sharded = ShardedGraphDatabase.from_database(database, shards=3)
    with repro.connect(sharded, backend="auto") as session:
        result = session.execute(_skyline_spec(query_graph))
    assert result.ids == expected.ids
    planner = result.stats.planner
    assert planner["summary"].startswith("scatter×3+")
    assert planner["source"] == "scatter×3"
    rows = planner["per_shard"]
    assert [row["shard"] for row in rows] == [0, 1, 2]
    assert all(row["evaluator"] for row in rows)
    assert sum(row["size"] for row in rows) == len(database)
    assert "shard 0:" in result.explain()


# ----------------------------------------------------------------------
# Diagnostics: availability() + the ``repro backends`` CLI
# ----------------------------------------------------------------------
def test_availability_reports_planner_inputs():
    info = availability()
    assert "auto" in info["backends"]
    assert info["cpu_count"] >= 1
    assert info["pool_usable"] == (info["cpu_count"] > 1)
    assert isinstance(info["pools_started"], list)


def test_cli_backends_lists_every_backend(capsys):
    from repro.cli import main

    assert main(["backends"]) == 0
    out = capsys.readouterr().out
    for name in ("auto", "memory", "indexed", "parallel", "sharded"):
        assert name in out
    assert "cpu" in out


def test_cli_fuzz_accepts_auto_backend():
    from repro.cli import main

    assert main(["fuzz", "--seed", "3", "--steps", "12", "--backend", "auto"]) == 0


# ----------------------------------------------------------------------
# Server: one shared profile across clients
# ----------------------------------------------------------------------
def test_server_clients_share_one_profile(database, query_graph):
    import http.client
    import json

    from repro.server import ServerConfig, serve_in_thread

    spec = _skyline_spec(query_graph)
    with serve_in_thread(database, ServerConfig()) as server:
        seen = []
        for _ in range(2):  # fresh connection each time: distinct clients
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=60.0
            )
            try:
                conn.request(
                    "POST",
                    "/v1/query?backend=auto",
                    body=json.dumps(spec.to_dict()),
                )
                response = conn.getresponse()
                assert response.status == 200
                payload = json.loads(response.read())
            finally:
                conn.close()
            seen.append(payload["stats"]["planner"]["profile_queries"])
    # The second client's query ran against a profile already trained by
    # the first — the server shares one auto session across clients.
    assert seen == [0, 1]
