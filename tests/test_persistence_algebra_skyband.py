"""Tests for database persistence, graph algebra and k-skyband."""

import pytest

from repro.datasets import figure3_database, make_workload
from repro.db import (
    GraphDatabase,
    SkylineExecutor,
    database_from_dict,
    database_to_dict,
    load_database,
    save_database,
)
from repro.errors import GraphError, SerializationError
from repro.graph import (
    LabeledGraph,
    graph_difference,
    graph_intersection,
    graph_union,
    path_graph,
)
from repro.skyline import dominator_counts, k_skyband, skyline


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
def test_database_dict_round_trip():
    db = GraphDatabase.from_graphs(figure3_database(), name="paper")
    rebuilt = database_from_dict(database_to_dict(db))
    assert rebuilt.name == "paper"
    assert len(rebuilt) == len(db)
    assert [g.name for g in rebuilt.graphs()] == [g.name for g in db.graphs()]
    for graph_id in db.ids():
        assert rebuilt.get(graph_id) == db.get(graph_id)


def test_database_file_round_trip(tmp_path):
    db = GraphDatabase()
    db.insert(path_graph(["A", "B", "C"], name="p3"), metadata={"k": 1})
    path = tmp_path / "db.json"
    save_database(db, path)
    loaded = load_database(path)
    assert len(loaded) == 1
    assert loaded.entry(0).metadata == {"k": 1}
    assert loaded.get(0).vertex_label(0) == "A"


def test_database_load_rejects_bad_payloads(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(SerializationError):
        load_database(path)
    with pytest.raises(SerializationError):
        database_from_dict({"name": "x"})  # no entries key


def test_save_rejects_unserializable(tmp_path):
    db = GraphDatabase()
    graph = LabeledGraph()
    graph.add_vertex(0, object())
    db.insert(graph)
    with pytest.raises(SerializationError):
        save_database(db, tmp_path / "x.json")


def test_saved_database_queryable_after_reload(tmp_path):
    workload = make_workload(n_graphs=10, query_size=6, seed=2)
    db = GraphDatabase.from_graphs(workload.database)
    path = tmp_path / "w.json"
    save_database(db, path)
    loaded = load_database(path)
    before = SkylineExecutor(db).execute(workload.queries[0]).skyline_ids
    after = SkylineExecutor(loaded).execute(workload.queries[0]).skyline_ids
    assert before == after


# ----------------------------------------------------------------------
# Graph algebra
# ----------------------------------------------------------------------
@pytest.fixture
def algebra_pair():
    g1 = LabeledGraph.from_edges(
        [("a", "b", "x"), ("b", "c", "x")],
        vertex_labels={"a": "A", "b": "B", "c": "C"},
    )
    g2 = LabeledGraph.from_edges(
        [("b", "c", "x"), ("c", "d", "y")],
        vertex_labels={"b": "B", "c": "C", "d": "D"},
    )
    return g1, g2


def test_union(algebra_pair):
    g1, g2 = algebra_pair
    union = graph_union(g1, g2)
    assert union.order == 4
    assert union.size == 3
    assert union.has_edge("a", "b") and union.has_edge("c", "d")


def test_intersection(algebra_pair):
    g1, g2 = algebra_pair
    intersection = graph_intersection(g1, g2)
    assert intersection.order == 2  # b, c
    assert intersection.size == 1  # b-c
    assert intersection.edge_label("b", "c") == "x"


def test_difference(algebra_pair):
    g1, g2 = algebra_pair
    difference = graph_difference(g1, g2)
    assert difference.size == 1
    assert difference.has_edge("a", "b")
    assert not difference.has_vertex("c") or difference.degree("c") > 0


def test_union_size_identity(algebra_pair):
    """|union| = |g1| + |g2| - |intersection| on edge counts."""
    g1, g2 = algebra_pair
    union = graph_union(g1, g2)
    intersection = graph_intersection(g1, g2)
    assert union.size == g1.size + g2.size - intersection.size


def test_algebra_label_conflicts_rejected():
    g1 = LabeledGraph.from_edges([(1, 2, "x")], vertex_labels={1: "A", 2: "B"})
    g2 = LabeledGraph.from_edges([(1, 2, "x")], vertex_labels={1: "Z", 2: "B"})
    with pytest.raises(GraphError):
        graph_union(g1, g2)
    g3 = LabeledGraph.from_edges([(1, 2, "y")], vertex_labels={1: "A", 2: "B"})
    with pytest.raises(GraphError):
        graph_union(g1, g3)


def test_intersection_with_disjoint_graphs():
    g1 = path_graph(["A", "B"])
    g2 = LabeledGraph.from_edges([("x", "y")], vertex_labels={"x": "A", "y": "B"})
    intersection = graph_intersection(g1, g2)
    assert intersection.order == 0


def test_edge_label_mismatch_excluded_from_intersection():
    """Intersection silently drops shared edges whose labels disagree
    (union, by contrast, rejects the conflict)."""
    g1 = LabeledGraph.from_edges([(1, 2, "x")], vertex_labels={1: "A", 2: "B"})
    g2 = LabeledGraph.from_edges([(1, 2, "x")], vertex_labels={1: "A", 2: "B"})
    assert graph_intersection(g1, g2).size == 1
    g2.relabel_edge(1, 2, "y")
    assert graph_intersection(g1, g2).size == 0
    with pytest.raises(GraphError):
        graph_union(g1, g2)


# ----------------------------------------------------------------------
# k-skyband
# ----------------------------------------------------------------------
def test_dominator_counts():
    vectors = [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]
    assert dominator_counts(vectors) == [0, 1, 2]


def test_one_skyband_is_skyline():
    vectors = [(1.0, 3.0), (2.0, 2.0), (3.0, 1.0), (3.0, 3.0)]
    assert k_skyband(vectors, 1) == skyline(vectors)


def test_skyband_is_monotone_in_k():
    vectors = [(float(i), float(j)) for i in range(4) for j in range(4)]
    previous: set[int] = set()
    for k in range(1, 5):
        members = set(k_skyband(vectors, k))
        assert previous <= members
        previous = members


def test_skyband_validation():
    with pytest.raises(ValueError):
        k_skyband([(1.0,)], 0)


def test_executor_skyband(paper_db, paper_query):
    db = GraphDatabase.from_graphs(paper_db)
    executor = SkylineExecutor(db)
    band1 = executor.skyband_search(paper_query, 1)
    assert band1 == executor.execute(paper_query).skyline_ids
    band2 = executor.skyband_search(paper_query, 2)
    assert set(band1) <= set(band2)
    with pytest.raises(ValueError):
        executor.skyband_search(paper_query, 0)


def test_executor_skyband_pruning_sound():
    workload = make_workload(n_graphs=20, query_size=6, seed=4)
    db = GraphDatabase.from_graphs(workload.database)
    query = workload.queries[0]
    pruned = SkylineExecutor(db, use_index=True).skyband_search(query, 2)
    full = SkylineExecutor(db, use_index=False).skyband_search(query, 2)
    assert pruned == full
