"""End-to-end tests of the query service: served answers match direct
``Session.execute`` field for field, saturation rejects instead of
hanging, expired deadlines free their slot, watch streams follow
mutations and drain cleanly on disconnect."""

from __future__ import annotations

import json
import http.client
import socket
import threading
import time

import pytest

from repro import connect
from repro.api.ops import AddOp, RemoveOp
from repro.api.spec import GraphQuery
from repro.datasets import make_workload
from repro.db import GraphDatabase
from repro.measures.base import _REGISTRY, FunctionMeasure, register_measure
from repro.server import ServerConfig, serve_in_thread


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def corpus():
    workload = make_workload(n_graphs=10, query_size=5, seed=11)
    return workload


def _database(corpus) -> GraphDatabase:
    return GraphDatabase.from_graphs(corpus.database)


class _Client:
    """A minimal keep-alive JSON client over ``http.client``."""

    def __init__(self, port: int, timeout: float = 60.0) -> None:
        self.conn = http.client.HTTPConnection(
            "127.0.0.1", port, timeout=timeout
        )

    def request(self, method, path, payload=None, headers=None):
        body = None if payload is None else json.dumps(payload)
        self.conn.request(method, path, body=body, headers=headers or {})
        response = self.conn.getresponse()
        return response.status, json.loads(response.read())

    def close(self) -> None:
        self.conn.close()


def _open_watch(port: int, spec: GraphQuery, timeout: float = 60.0):
    """POST /v1/watch on a raw socket; returns (socket, line reader)."""
    body = json.dumps(spec.to_dict()).encode()
    sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    sock.sendall(
        b"POST /v1/watch HTTP/1.1\r\nHost: t\r\nContent-Length: "
        + str(len(body)).encode()
        + b"\r\n\r\n"
        + body
    )
    stream = sock.makefile("rb")
    status_line = stream.readline()
    while True:  # skip response headers
        line = stream.readline()
        if line in (b"\r\n", b"\n", b""):
            break
    return sock, stream, status_line


def _comparable(payload: dict) -> dict:
    """Strip the fields that legitimately differ between a served answer
    and a direct one (timings and shared-cache counters)."""
    payload = dict(payload)
    payload.pop("stats", None)
    payload.pop("cache", None)
    return payload


@pytest.fixture
def slow_measure():
    """A measure that sleeps per pair — makes deadlines bite mid-run."""
    name = "test-slow-pair"
    register_measure(
        name,
        lambda: FunctionMeasure(
            lambda g1, g2: time.sleep(0.025) or 0.5, name
        ),
    )
    yield name
    _REGISTRY.pop(name, None)


@pytest.fixture
def gated_measure():
    """A measure that blocks on an event — holds a slot deterministically."""
    gate = threading.Event()
    entered = threading.Event()

    def hold(g1, g2):
        entered.set()
        assert gate.wait(timeout=60), "gate never released"
        return 0.5

    name = "test-gated-pair"
    register_measure(name, lambda: FunctionMeasure(hold, name))
    yield name, gate, entered
    gate.set()
    _REGISTRY.pop(name, None)


# ----------------------------------------------------------------------
# Parity: served == direct, across backends and query kinds
# ----------------------------------------------------------------------
BACKENDS = ["memory", "indexed", "vectorized", "sharded"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_served_results_match_direct_session(corpus, backend):
    if backend == "vectorized":
        pytest.importorskip("numpy")
    database = _database(corpus)
    config = ServerConfig(shards=2 if backend == "sharded" else None)
    specs = [
        GraphQuery(graph=corpus.queries[0], kind="skyline"),
        GraphQuery(graph=corpus.queries[0], kind="skyband", k=2),
        GraphQuery(graph=corpus.queries[0], kind="topk", k=3, measure="edit"),
        GraphQuery(
            graph=corpus.queries[0], kind="threshold",
            measure="mcs", threshold=0.8,
        ),
    ]
    with serve_in_thread(database, config) as server:
        # direct answers come from the server's own (possibly sharded)
        # database so ids line up, through an independent session.
        with connect(server.database, backend=backend) as session:
            direct = [session.execute(spec).to_dict() for spec in specs]
        client = _Client(server.port)
        try:
            for spec, expected in zip(specs, direct):
                status, served = client.request(
                    "POST", f"/v1/query?backend={backend}", spec.to_dict()
                )
                assert status == 200, served
                assert _comparable(served) == _comparable(expected)
                assert served["backend"] == expected["backend"]
        finally:
            client.close()


def test_concurrent_clients_agree_with_direct_answers(corpus):
    database = _database(corpus)
    specs = [
        GraphQuery(graph=query, kind="skyline") for query in corpus.queries
    ] + [
        GraphQuery(graph=graph, kind="topk", k=2, measure="edit")
        for graph in corpus.database[:4]
    ]
    with connect(_database(corpus)) as session:
        expected = [_comparable(session.execute(s).to_dict()) for s in specs]

    results: dict[int, dict] = {}
    errors: list[BaseException] = []
    with serve_in_thread(database, ServerConfig(max_concurrency=4)) as server:

        def worker(index: int, spec: GraphQuery) -> None:
            try:
                client = _Client(server.port)
                try:
                    status, payload = client.request(
                        "POST", "/v1/query", spec.to_dict()
                    )
                    assert status == 200, payload
                    results[index] = _comparable(payload)
                finally:
                    client.close()
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i, spec))
            for i, spec in enumerate(specs)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        stats = server.admission.snapshot()

    assert not errors
    assert len(results) == len(specs)
    for index, expected_payload in enumerate(expected):
        assert results[index] == expected_payload
    assert stats["completed"] == len(specs)
    assert stats["rejected"] == 0


# ----------------------------------------------------------------------
# Saturation: structured rejection, never a hang
# ----------------------------------------------------------------------
def test_queue_saturation_rejects_with_429(corpus, gated_measure):
    name, gate, entered = gated_measure
    database = _database(corpus)
    blocked_spec = GraphQuery(graph=corpus.queries[0], measures=(name,))
    config = ServerConfig(max_concurrency=1, max_queue=1, deadline_ms=None)
    with serve_in_thread(database, config) as server:
        outcomes: dict[str, tuple[int, dict]] = {}

        def run(tag: str) -> None:
            client = _Client(server.port)
            try:
                outcomes[tag] = client.request(
                    "POST", "/v1/query", blocked_spec.to_dict()
                )
            finally:
                client.close()

        holder = threading.Thread(target=run, args=("holder",))
        holder.start()
        assert entered.wait(timeout=60)  # the slot is held inside a pair

        waiter = threading.Thread(target=run, args=("waiter",))
        waiter.start()
        probe = _Client(server.port)
        deadline = time.time() + 60
        while time.time() < deadline:  # wait until the queue slot fills
            _, stats = probe.request("GET", "/v1/stats")
            if stats["admission"]["waiting"] >= 1:
                break
            time.sleep(0.01)
        assert stats["admission"]["waiting"] == 1

        # the queue (1 active + 1 waiting) is full: instant 429
        start = time.time()
        status, payload = probe.request(
            "POST", "/v1/query", blocked_spec.to_dict()
        )
        elapsed = time.time() - start
        assert status == 429
        assert payload["error"]["code"] == "queue-full"
        assert payload["error"]["max_queue"] == 1
        assert elapsed < 10  # rejected without waiting on the gate

        gate.set()  # release the held pair; both queued queries finish
        holder.join(timeout=60)
        waiter.join(timeout=60)
        assert outcomes["holder"][0] == 200
        assert outcomes["waiter"][0] == 200
        _, stats = probe.request("GET", "/v1/stats")
        assert stats["admission"]["active"] == 0
        assert stats["admission"]["rejected"] == 1
        assert stats["admission"]["completed"] == 2
        probe.close()


# ----------------------------------------------------------------------
# Deadlines: expiry mid-evaluation returns 504 and frees the slot
# ----------------------------------------------------------------------
def test_deadline_expires_mid_evaluation(corpus, slow_measure):
    database = _database(corpus)  # 10 graphs x 25ms/pair >> 60ms budget
    slow_spec = GraphQuery(graph=corpus.queries[0], measures=(slow_measure,))
    with serve_in_thread(database, ServerConfig(max_concurrency=1)) as server:
        client = _Client(server.port)
        try:
            status, payload = client.request(
                "POST", "/v1/query?deadline_ms=60", slow_spec.to_dict()
            )
            assert status == 504
            assert payload["error"]["code"] == "deadline-exceeded"
            assert "deadline" in payload["error"]["message"]

            # the slot was freed: an ordinary query succeeds immediately
            ok_spec = GraphQuery(graph=corpus.queries[0], kind="skyline")
            status, payload = client.request(
                "POST", "/v1/query", ok_spec.to_dict()
            )
            assert status == 200 and payload["answer"]

            _, stats = client.request("GET", "/v1/stats")
            assert stats["admission"]["deadline_expired"] == 1
            assert stats["admission"]["active"] == 0
            assert stats["admission"]["completed"] == 2
        finally:
            client.close()


def test_deadline_header_and_validation(corpus):
    database = _database(corpus)
    spec = GraphQuery(graph=corpus.queries[0])
    with serve_in_thread(database, ServerConfig()) as server:
        client = _Client(server.port)
        try:
            status, payload = client.request(
                "POST", "/v1/query", spec.to_dict(),
                headers={"X-Deadline-Ms": "60000"},
            )
            assert status == 200
            for bad in ("0", "-5", "soon"):
                status, payload = client.request(
                    "POST", f"/v1/query?deadline_ms={bad}", spec.to_dict()
                )
                assert status == 400
                assert payload["error"]["code"] == "bad-request"
        finally:
            client.close()


# ----------------------------------------------------------------------
# Watch streams
# ----------------------------------------------------------------------
def test_watch_streams_updates_and_drains_on_disconnect(corpus):
    database = _database(corpus)
    spec = GraphQuery(graph=corpus.queries[0], kind="skyline")
    with serve_in_thread(database, ServerConfig()) as server:
        sock, stream, status_line = _open_watch(server.port, spec)
        assert b"200" in status_line
        snapshot = json.loads(stream.readline())
        assert snapshot["event"] == "snapshot" and snapshot["seq"] == 0

        with connect(_database(corpus)) as session:
            assert snapshot["ids"] == session.execute(spec).to_dict()["ids"]

        client = _Client(server.port)
        # an isomorphic copy of the query graph must enter the skyline
        status, ack = client.request(
            "POST", "/v1/mutate",
            AddOp(handle="fresh", graph=corpus.queries[0]).to_dict(),
        )
        assert status == 200
        update = json.loads(stream.readline())
        assert update["event"] == "update" and update["seq"] == 1
        assert ack["graph_id"] in update["ids"]
        assert update["database_version"] > snapshot["database_version"]

        # removing it again restores the original answer
        status, _ = client.request(
            "POST", "/v1/mutate", RemoveOp(handle="fresh").to_dict()
        )
        assert status == 200
        update2 = json.loads(stream.readline())
        assert update2["ids"] == snapshot["ids"] and update2["seq"] == 2

        # client disconnect: the hub unsubscribes, no tasks leak
        stream.close()
        sock.close()
        deadline = time.time() + 30
        while server.hub.active and time.time() < deadline:
            time.sleep(0.02)
        _, stats = client.request("GET", "/v1/stats")
        assert stats["watches"]["active"] == 0
        assert stats["watches"]["opened"] == 1
        assert stats["watches"]["closed"] == 1
        client.close()


def test_watch_limit_and_invalid_specs(corpus):
    database = _database(corpus)
    spec = GraphQuery(graph=corpus.queries[0], kind="skyline")
    with serve_in_thread(database, ServerConfig(max_watches=1)) as server:
        sock, stream, status_line = _open_watch(server.port, spec)
        assert b"200" in status_line
        json.loads(stream.readline())  # snapshot

        sock2, stream2, status_line2 = _open_watch(server.port, spec)
        assert b"429" in status_line2
        refused = json.loads(stream2.read())
        assert refused["error"]["code"] == "watch-limit"
        stream2.close()
        sock2.close()

        # non-skyline specs are not watchable -> structured query error
        topk = GraphQuery(
            graph=corpus.queries[0], kind="topk", k=2, measure="edit"
        )
        sock3, stream3, status_line3 = _open_watch(server.port, topk)
        assert b"400" in status_line3
        assert json.loads(stream3.read())["error"]["code"] == "query-error"
        stream3.close()
        sock3.close()

        stream.close()
        sock.close()


# ----------------------------------------------------------------------
# Mutation endpoint, auth, routing
# ----------------------------------------------------------------------
def test_mutate_conflicts_and_malformed_bodies(corpus):
    database = _database(corpus)
    with serve_in_thread(database, ServerConfig()) as server:
        client = _Client(server.port)
        try:
            status, payload = client.request(
                "POST", "/v1/mutate", RemoveOp(handle="ghost").to_dict()
            )
            assert status == 409
            assert payload["error"]["code"] == "stale-handle"
            assert payload["error"]["op"] == "remove"
            assert payload["error"]["handle"] == "ghost"

            status, payload = client.request(
                "POST", "/v1/mutate", {"op": "explode"}
            )
            assert status == 400

            _, stats = client.request("GET", "/v1/stats")
            assert stats["counters"]["mutations_rejected"] == 1
            assert stats["counters"]["mutations_applied"] == 0
        finally:
            client.close()


def test_bearer_token_protects_everything_but_health(corpus):
    database = _database(corpus)
    spec = GraphQuery(graph=corpus.queries[0])
    with serve_in_thread(database, ServerConfig(token="sesame")) as server:
        client = _Client(server.port)
        try:
            status, _ = client.request("GET", "/v1/health")
            assert status == 200  # liveness stays unauthenticated

            status, payload = client.request(
                "POST", "/v1/query", spec.to_dict()
            )
            assert status == 401
            assert payload["error"]["code"] == "unauthorized"

            status, _ = client.request(
                "POST", "/v1/query", spec.to_dict(),
                headers={"Authorization": "Bearer sesame"},
            )
            assert status == 200
        finally:
            client.close()


def test_routing_and_error_envelopes(corpus):
    database = _database(corpus)
    with serve_in_thread(database, ServerConfig()) as server:
        client = _Client(server.port)
        try:
            status, payload = client.request("GET", "/v1/nope")
            assert status == 404
            assert payload["error"]["code"] == "not-found"

            status, payload = client.request("GET", "/v1/query")
            assert status == 405

            status, payload = client.request(
                "POST", "/v1/query?backend=warp-drive",
                GraphQuery(graph=corpus.queries[0]).to_dict(),
            )
            assert status == 400
            assert "unknown backend" in payload["error"]["message"]

            status, payload = client.request(
                "POST", "/v1/query", {"not": "a spec"}
            )
            assert status == 400

            status, payload = client.request("GET", "/v1/health")
            assert status == 200 and payload["ok"]
            assert payload["graphs"] == len(database)
        finally:
            client.close()
