"""Tests for index-accelerated top-k search and the describe command."""

import pytest

from repro.cli import main
from repro.core import top_k_by_measure
from repro.datasets import figure3_database, make_workload
from repro.db import GraphDatabase, SkylineExecutor, save_database


# ----------------------------------------------------------------------
# Executor top-k with bound pruning
# ----------------------------------------------------------------------
def test_executor_topk_matches_core(paper_db, paper_query):
    db = GraphDatabase.from_graphs(paper_db)
    executor = SkylineExecutor(db)
    for k in (1, 3, 7):
        accelerated = executor.top_k_search(paper_query, "edit", k)
        reference = top_k_by_measure(db.graphs(), paper_query, "edit", k)
        assert [gid for gid, _ in accelerated] == reference.indices
        assert [d for _, d in accelerated] == pytest.approx(
            [d for _, d in reference.ranking]
        )


def test_executor_topk_pruned_equals_unpruned_on_workload():
    workload = make_workload(n_graphs=25, query_size=6, seed=6)
    db = GraphDatabase.from_graphs(workload.database)
    query = workload.queries[0]
    for measure in ("edit", "mcs", "union"):
        pruned = SkylineExecutor(db, use_index=True).top_k_search(query, measure, 5)
        full = SkylineExecutor(db, use_index=False).top_k_search(query, measure, 5)
        assert pruned == full, measure


def test_executor_topk_k_larger_than_database(paper_db, paper_query):
    db = GraphDatabase.from_graphs(paper_db)
    result = SkylineExecutor(db).top_k_search(paper_query, "edit", 100)
    assert len(result) == len(paper_db)


def test_executor_topk_validation(paper_db, paper_query):
    db = GraphDatabase.from_graphs(paper_db)
    with pytest.raises(ValueError):
        SkylineExecutor(db).top_k_search(paper_query, "edit", 0)


# ----------------------------------------------------------------------
# CLI describe
# ----------------------------------------------------------------------
@pytest.fixture
def db_file(tmp_path):
    path = tmp_path / "db.json"
    save_database(GraphDatabase.from_graphs(figure3_database(), name="fig3"), path)
    return str(path)


def test_describe_command(db_file, capsys):
    assert main(["describe", db_file]) == 0
    out = capsys.readouterr().out
    assert "database 'fig3': 7 graphs" in out
    assert "sizes: min 6" in out
    assert "max 10" in out
    assert "connected: 100%" in out


def test_describe_verbose(db_file, capsys):
    assert main(["describe", db_file, "--verbose"]) == 0
    out = capsys.readouterr().out
    assert "graph g1:" in out
    assert "graph g7:" in out
