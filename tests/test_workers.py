"""The persistent worker pool: frontier protocol, payload deltas,
robustness, degradation, and leak hygiene.

The expensive machinery (worker processes, shared-memory segments) is
exercised end-to-end through the ``parallel`` and ``sharded`` backends;
the protocol pieces (:class:`FrontierBuffer`, :class:`FrontierJudge`,
:func:`ensure_payload`, :func:`handle_eval`) are additionally unit-tested
in-process, both for precision and because code running inside forked
workers is invisible to coverage."""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
from collections import OrderedDict

import pytest

import repro
from repro import GraphDatabase, Query
from repro.datasets import make_workload
from repro.engine import workers
from repro.engine.evaluate import pair_values
from repro.engine.workers import (
    BoundSharing,
    DatabaseAttachment,
    FrontierBuffer,
    FrontierJudge,
    PooledEvaluator,
    WorkerPoolError,
    ensure_payload,
    handle_eval,
    live_segments,
    shared_memory_available,
    shutdown_pool,
)
from repro.measures.base import FunctionMeasure, register_measure, resolve_measures
from repro.skyline.utils import dominates

needs_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="multiprocessing.shared_memory unavailable"
)
needs_fork = pytest.mark.skipif(
    multiprocessing.get_start_method(allow_none=False) != "fork",
    reason="kill/respawn test needs fork-inherited measure registry",
)


@pytest.fixture
def workload():
    w = make_workload(n_graphs=24, query_size=5, seed=41)
    return GraphDatabase.from_graphs(w.database), w.queries[0]


# ----------------------------------------------------------------------
# Frontier protocol
# ----------------------------------------------------------------------
@needs_shm
def test_frontier_publish_poll_and_gid_dedup():
    writer = FrontierBuffer.create(regions=3, dims=2)
    try:
        reader = FrontierBuffer.attach(writer.name)
        assert writer.publish(1, 7, (0.5, 1.5))
        assert reader.poll() == {7: (0.5, 1.5)}
        # A double-publish of the same graph id (task resubmitted after a
        # worker respawn) must not produce a second entry — double
        # counting would be unsound for skyband/top-k limits.
        assert writer.publish(2, 7, (9.0, 9.0))
        assert writer.publish(2, 8, (2.0, 2.0))
        polled = reader.poll()
        assert polled[7] == (0.5, 1.5)
        assert polled[8] == (2.0, 2.0)
        reader.release()
    finally:
        writer.release()


@needs_shm
def test_frontier_capacity_overflow_stops_publishing():
    buffer = FrontierBuffer.create(regions=2, dims=1, capacity=2)
    try:
        assert buffer.publish(0, 1, (1.0,))
        assert buffer.publish(0, 2, (2.0,))
        assert not buffer.publish(0, 3, (3.0,))  # full: dropped, not torn
        assert set(buffer.poll()) == {1, 2}
    finally:
        buffer.release()


@needs_shm
def test_frontier_reattached_writer_appends_after_existing_rows():
    board = FrontierBuffer.create(regions=2, dims=1)
    try:
        first = FrontierBuffer.attach(board.name)
        first.publish(1, 10, (1.0,))
        first.publish(1, 11, (2.0,))
        first.release()
        # A respawned worker re-attaches to its region: it must resume
        # *after* the published rows (overwriting them could tear a row
        # under a concurrent reader), not restart at index zero.
        respawned = FrontierBuffer.attach(board.name)
        respawned.publish(1, 12, (3.0,))
        assert set(board.poll()) == {10, 11, 12}
        respawned.release()
    finally:
        board.release()


def test_judge_pareto_matches_dominates_semantics():
    nan = float("nan")
    vectors = [(1.0, 1.0), (nan, 0.5), (3.0, 3.0)]
    judge = FrontierJudge("pareto", limit=1)
    for bounds in [(2.0, 2.0), (0.5, 0.5), (nan, 1.0), (1.0, 0.4)]:
        expected = any(dominates(v, bounds) for v in vectors)
        assert judge.prunes(bounds, vectors) == expected
    # Skyband limit: needs two dominators, not one.
    skyband = FrontierJudge("pareto", limit=2)
    assert not skyband.prunes((2.0, 2.0), [(1.0, 1.0)])
    assert skyband.prunes((4.0, 4.0), [(1.0, 1.0), (3.0, 3.0)])
    assert not judge.prunes(None, vectors)


def test_judge_rank_counts_strictly_better_scalars():
    judge = FrontierJudge("rank", limit=2)
    published = [(1.0,), (2.0,), (5.0,)]
    assert judge.prunes((3.0,), published)  # 1.0 and 2.0 beat the bound
    assert not judge.prunes((2.0,), published)  # only 1.0 is strictly below
    assert not judge.prunes((1.0,), published)


def test_sharing_split_numpy_path_matches_scalar_judge():
    np = pytest.importorskip("numpy")
    rng = np.random.default_rng(3)
    judge = FrontierJudge("pareto", limit=2)
    sharing = BoundSharing(judge, dims=3, frontier=None)
    for gid in range(40):
        vector = [float(round(x, 2)) for x in rng.uniform(0, 4, 3)]
        if gid % 11 == 0:
            vector[gid % 3] = float("nan")
        sharing.observe(gid, vector)
    items = [
        (100 + i, tuple(float(round(x, 2)) for x in rng.uniform(0, 4, 3)))
        for i in range(30)
    ] + [(200, None)]
    kept, pruned = sharing.split(items)  # size crosses the numpy threshold
    vectors = list(sharing.vectors.values())
    expected_pruned = [
        gid
        for gid, bounds in items
        if bounds is not None and judge.prunes(bounds, vectors)
    ]
    assert pruned == expected_pruned
    assert [gid for gid, _ in kept] == [
        gid for gid, _ in items if gid not in set(expected_pruned)
    ]


def test_sharing_for_spec_gates_unsound_kinds(workload):
    _, query = workload
    threshold = Query(query).threshold(2.0, "edit").build()
    assert BoundSharing.for_spec(threshold, 1, 2) is None
    tolerant = Query(query).skyline().tolerance(0.5).build()
    assert BoundSharing.for_spec(tolerant, 3, 2) is None
    sharing = BoundSharing.for_spec(Query(query).skyband(2).build(), 3, 2)
    assert sharing is not None and sharing.judge.limit == 2
    sharing.release()
    ranked = BoundSharing.for_spec(Query(query).topk(4, "edit").build(), 1, 2)
    assert ranked is not None and ranked.judge.mode == "rank"
    ranked.release()


# ----------------------------------------------------------------------
# Attachment deltas (in-process: parent refresh + worker replay)
# ----------------------------------------------------------------------
def test_attachment_delta_chain_replay(workload):
    db, query = workload
    db = GraphDatabase.from_graphs(db.graphs())
    attachment = DatabaseAttachment(db)
    worker_cache: OrderedDict = OrderedDict()
    try:
        assert attachment.refresh(db) == "cold"
        graphs, kind = ensure_payload(attachment.spec(), worker_cache)
        assert kind == "cold"
        assert set(graphs) == set(db.ids())
        assert attachment.refresh(db) == "warm"
        _, kind = ensure_payload(attachment.spec(), worker_cache)
        assert kind == "warm"

        # Mutate: one insert, one remove. The refresh must ship only the
        # id-set diff, and a warm worker must replay it incrementally.
        removed_id = next(iter(db.ids()))
        db.remove(removed_id)
        added_id = db.insert(query.copy(name="fresh"))
        assert attachment.refresh(db) == "delta"
        spec = attachment.spec()
        delta_links = [link for link in spec["chain"] if link[0] == "delta"]
        assert len(delta_links) == 1
        added, removed = pickle.loads(workers.read_blob(delta_links[0][2]))
        assert set(added) == {added_id} and removed == [removed_id]
        graphs, kind = ensure_payload(spec, worker_cache)
        assert kind == "delta"
        assert set(graphs) == set(db.ids())
        assert graphs[added_id].name == "fresh"

        # A cold worker (empty cache) replays base + every delta.
        graphs, kind = ensure_payload(spec, OrderedDict())
        assert kind == "cold"
        assert set(graphs) == set(db.ids())
    finally:
        attachment.release()


def test_attachment_rebases_after_long_delta_chain(workload):
    db, query = workload
    db = GraphDatabase.from_graphs(db.graphs())
    attachment = DatabaseAttachment(db)
    try:
        attachment.refresh(db)
        for round_number in range(workers._REBASE_CHAIN_LIMIT):
            db.insert(query.copy(name=f"extra-{round_number}"))
            assert attachment.refresh(db) == "delta"
        db.insert(query.copy(name="the-last-straw"))
        # Chain hit the limit: fold everything into a fresh base blob.
        assert attachment.refresh(db) == "cold"
        assert attachment.delta_count == 0
        graphs, kind = ensure_payload(attachment.spec(), OrderedDict())
        assert kind == "cold" and set(graphs) == set(db.ids())
    finally:
        attachment.release()


# ----------------------------------------------------------------------
# handle_eval in-process (the worker task body)
# ----------------------------------------------------------------------
register_measure(
    "order-gap-test",
    lambda: FunctionMeasure(
        lambda g1, g2: float(abs(g1.order - g2.order)), name="order-gap-test"
    ),
)


def test_handle_eval_inline_pairs_matches_pair_values(workload):
    db, query = workload
    ids = sorted(db.ids())[:4]
    task = {
        "id": "t1",
        "query": query,
        "measures": ("edit",),
        "ids": ids,
        "pairs": [(gid, db.get(gid)) for gid in ids],
    }
    out = handle_eval(task, OrderedDict(), OrderedDict(), OrderedDict(), region=1)
    measures = resolve_measures(("edit",))
    expected = [(gid, pair_values(db.get(gid), query, measures)) for gid in ids]
    assert out["results"] == expected
    assert out["skipped"] == []
    assert out["stats"]["attach"] == "inline"


@needs_shm
def test_handle_eval_frontier_skips_dominated_and_publishes(workload):
    db, query = workload
    ids = sorted(db.ids())[:2]
    first, second = ids
    measures = resolve_measures(("order-gap-test",))
    exact_first = pair_values(db.get(first), query, measures)
    board = FrontierBuffer.create(regions=2, dims=1)
    frontiers: OrderedDict = OrderedDict()
    try:
        task = {
            "id": "t2",
            "query": query,
            "measures": ("order-gap-test",),
            "ids": ids,
            "pairs": [(gid, db.get(gid)) for gid in ids],
            # The second candidate's bound is already dominated by the
            # first candidate's exact value, which the worker publishes
            # mid-chunk — so the second is skipped, never solved.
            "bounds": {second: (exact_first[0] + 1.0,)},
            "frontier": {
                "name": board.name,
                "mode": "pareto",
                "limit": 1,
                "tolerance": 0.0,
            },
        }
        out = handle_eval(task, OrderedDict(), OrderedDict(), frontiers, region=1)
        assert out["results"] == [(first, exact_first)]
        assert out["skipped"] == [second]
        assert out["stats"]["published"] == 1
        assert out["stats"]["frontier_pruned"] == 1
        assert board.poll() == {first: exact_first}
    finally:
        for buffer in frontiers.values():
            buffer.release()
        board.release()


# ----------------------------------------------------------------------
# End-to-end: pruning recovery, parity, robustness
# ----------------------------------------------------------------------
def _sharded_pair(database, shards=4):
    return (
        repro.connect(database, backend="sharded", shards=shards),
        repro.connect(
            database, backend="sharded", shards=shards, parallel=True, max_workers=2
        ),
    )


def test_sharded_parallel_recovers_cross_shard_pruning():
    w = make_workload(n_graphs=96, query_size=6, seed=7)
    query = w.queries[0]
    serial_session, parallel_session = _sharded_pair(w.database)
    with serial_session, parallel_session:
        for spec in (
            Query(query).skyline().build(),
            Query(query).skyband(2).build(),
            Query(query).topk(5, "edit").build(),
        ):
            serial = serial_session.execute(spec)
            parallel = parallel_session.execute(spec)
            assert parallel.ids == serial.ids
            # The tentpole gate: deferred evaluation must no longer
            # forfeit bound pruning (it used to evaluate ~7× more).
            assert (
                parallel.stats.exact_evaluations
                <= 2 * serial.stats.exact_evaluations
            )
            assert parallel.stats.pool is not None
            assert parallel.stats.pool["waves"] >= 1


def test_sharded_parallel_parity_threshold_and_tolerance():
    w = make_workload(n_graphs=48, query_size=5, seed=19)
    query = w.queries[0]
    serial_session, parallel_session = _sharded_pair(w.database)
    with serial_session, parallel_session:
        for spec in (
            Query(query).threshold(3.0, "edit").build(),
            Query(query).skyline().tolerance(0.25).build(),
        ):
            assert parallel_session.execute(spec).ids == (
                serial_session.execute(spec).ids
            )


def test_pool_telemetry_surfaces_in_explain_and_to_dict():
    w = make_workload(n_graphs=48, query_size=5, seed=23)
    with repro.connect(
        w.database, backend="sharded", shards=2, parallel=True, max_workers=2
    ) as session:
        result = session.execute(Query(w.queries[0]).skyline())
    stats = result.to_dict()["stats"]
    assert "pool" in stats and stats["pool"]["workers"] == 2
    assert stats["pool"]["chunks"] >= 1
    assert any("chunks" in row for row in stats["per_shard"])
    explained = result.explain()
    assert "worker pool:" in explained
    assert "pool(attach=" in explained


@needs_fork
def test_killed_worker_respawns_and_query_matches_oracle(tmp_path, workload):
    db, query = workload
    flag = tmp_path / "kill-claim"
    flag.write_text("armed")
    parent = os.getpid()

    def killer_distance(g1, g2):
        if os.getpid() != parent:
            try:
                os.remove(flag)  # atomic claim: exactly one worker dies
            except FileNotFoundError:
                pass
            else:
                os.kill(os.getpid(), signal.SIGKILL)
        return float(abs(g1.order - g2.order))

    register_measure(
        "killer-test",
        lambda: FunctionMeasure(killer_distance, name="killer-test"),
    )
    # The measure must exist in the workers, which fork lazily — tear the
    # pools down so the next drain forks fresh processes that inherit it.
    shutdown_pool()
    with repro.connect(db, backend="parallel", max_workers=2) as session:
        result = session.execute(Query(query).topk(3, "killer-test"))
        assert result.stats.pool["respawns"] >= 1
    assert not flag.exists()
    with repro.connect(db, backend="memory") as oracle_session:
        oracle = oracle_session.execute(Query(query).topk(3, "killer-test"))
    assert result.ids == oracle.ids
    assert result.distances == oracle.distances


# ----------------------------------------------------------------------
# Degradation ladder
# ----------------------------------------------------------------------
def test_sharded_parallel_parity_without_shared_memory(monkeypatch):
    monkeypatch.setattr(workers, "_SHM_DISABLED", True)
    w = make_workload(n_graphs=48, query_size=5, seed=29)
    query = w.queries[0]
    serial_session, parallel_session = _sharded_pair(w.database, shards=2)
    with serial_session, parallel_session:
        spec = Query(query).skyline().build()
        serial = serial_session.execute(spec)
        parallel = parallel_session.execute(spec)
    assert parallel.ids == serial.ids
    # Blobs fell back to temp files; no frontier, but the parent-side
    # wave filter still recovers pruning between waves.
    assert parallel.stats.pool["published"] == 0


def test_pool_start_failure_falls_back_to_inline_evaluation(
    monkeypatch, workload
):
    db, query = workload

    def refuse(self):
        raise WorkerPoolError("no processes today")

    monkeypatch.setattr(workers.WorkerPool, "ensure_started", refuse)
    with repro.connect(db, backend="parallel", max_workers=2) as session:
        result = session.execute(Query(query).skyline())
        assert result.stats.pool["attach"] == {"serial": 1}
        assert result.stats.pool["workers"] == 0
    with repro.connect(db, backend="memory") as oracle_session:
        oracle = oracle_session.execute(Query(query).skyline())
    assert result.ids == oracle.ids


# ----------------------------------------------------------------------
# Leak hygiene
# ----------------------------------------------------------------------
def test_shutdown_pool_releases_every_segment():
    w = make_workload(n_graphs=32, query_size=5, seed=31)
    session = repro.connect(
        w.database, backend="sharded", shards=2, parallel=True, max_workers=2
    )
    session.execute(Query(w.queries[0]).skyline())
    # Leak on purpose: no session.close(). shutdown_pool is the backstop
    # (and the atexit hook), and must still release everything.
    shutdown_pool()
    assert live_segments() == []
    if os.path.isdir("/dev/shm"):
        leaked = [
            name
            for name in os.listdir("/dev/shm")
            if name.startswith(workers.SEGMENT_PREFIX)
        ]
        assert leaked == []


def test_deadline_propagates_through_pool(workload):
    import time

    from repro.engine.deadline import Deadline, deadline_scope
    from repro.errors import DeadlineExceeded

    db, query = workload
    expired = Deadline(expires_at=time.monotonic() - 1.0, budget=0.001)
    with repro.connect(db, backend="parallel", max_workers=2) as session:
        with deadline_scope(expired):
            with pytest.raises(DeadlineExceeded):
                session.execute(Query(query).skyline())
