"""Served anytime queries: a deadline that used to guarantee a 504 on a
slow pair now yields a complete certified-interval answer (HTTP 200,
``approximate: true``) whenever at least one evaluation pass finished,
and the concurrency slot is freed immediately either way.

The slow pair is *real* work — large random graphs whose exact GED
search is exponential — because a sleeping ``FunctionMeasure`` cannot be
interrupted by a budget (only checked between pairs, satellite coverage
for that lives in ``test_server.py``).
"""

from __future__ import annotations

import time

import pytest

from repro.api.spec import Query
from repro.db import GraphDatabase
from repro.graph.generators import random_labeled_graph
from repro.server import ServerConfig, serve_in_thread
from tests.test_server import _Client


@pytest.fixture(scope="module")
def slow_database() -> GraphDatabase:
    """Six cheap 5-vertex graphs plus one 14-vertex graph whose exact
    GED against the 13-vertex query takes well over a second."""
    fast = [
        random_labeled_graph(5, 6, vertex_labels=("a", "b"), seed=s)
        for s in range(6)
    ]
    slow = random_labeled_graph(14, 26, vertex_labels=("a", "b"), seed=50)
    return GraphDatabase.from_graphs(fast + [slow])


@pytest.fixture(scope="module")
def slow_query():
    return random_labeled_graph(13, 24, vertex_labels=("a", "b"), seed=51)


def test_anytime_deadline_returns_certified_intervals_and_frees_slot(
    slow_database, slow_query
):
    spec = Query(slow_query).topk(3).build()
    config = ServerConfig(max_concurrency=1)
    with serve_in_thread(slow_database, config) as server:
        client = _Client(server.port)
        try:
            # Warm one-time imports (scipy assignment kernel) so the
            # timed request measures the engine, not module loading.
            status, _ = client.request(
                "POST", "/v1/query?deadline_ms=5000&anytime=1", spec.to_dict()
            )
            assert status == 200

            started = time.monotonic()
            status, payload = client.request(
                "POST", "/v1/query?deadline_ms=150&anytime=1", spec.to_dict()
            )
            elapsed = time.monotonic() - started
            assert status == 200
            # Far below the >1s a single exact evaluation of the slow
            # pair costs: the budget interrupted it mid-search.
            assert elapsed < 1.0
            assert payload["approximate"] is True
            intervals = payload["intervals"]
            assert intervals  # every surviving candidate reports bounds
            for vector in intervals.values():
                for lower, upper in vector:
                    assert upper is None or lower <= upper + 1e-9
            assert payload["stats"]["anytime"]["passes"] >= 1
            assert len(payload["answer"]) == 3

            # The slot was freed immediately: on a max_concurrency=1
            # server the very next ordinary query runs without queueing.
            cheap = Query(slow_database.graphs()[0]).skyline().build()
            status, payload = client.request(
                "POST", "/v1/query", cheap.to_dict()
            )
            assert status == 200 and payload["answer"]

            _, stats = client.request("GET", "/v1/stats")
            # No 504 was served: the anytime path absorbed the expiry.
            assert stats["admission"]["deadline_expired"] == 0
            assert stats["admission"]["active"] == 0
            assert stats["admission"]["completed"] == 3
        finally:
            client.close()


def test_anytime_flag_without_deadline_is_rejected(slow_database, slow_query):
    # deadline_ms=None drops the server-wide default deadline, so there
    # is nothing to derive a budget from.
    spec = Query(slow_query).topk(2).build()
    with serve_in_thread(
        slow_database, ServerConfig(deadline_ms=None)
    ) as server:
        client = _Client(server.port)
        try:
            status, payload = client.request(
                "POST", "/v1/query?anytime=1", spec.to_dict()
            )
            assert status == 400
            assert payload["error"]["code"] == "bad-request"
            assert "anytime" in payload["error"]["message"]
        finally:
            client.close()


def test_body_budget_serves_intervals_without_flag(slow_database, slow_query):
    # budget_ms in the spec itself opts in; no query-string flag needed.
    spec = Query(slow_query).topk(2).budget(ms=200).build()
    with serve_in_thread(slow_database, ServerConfig()) as server:
        client = _Client(server.port)
        try:
            status, payload = client.request(
                "POST", "/v1/query", spec.to_dict()
            )
            assert status == 200
            assert payload["intervals"]
            assert "approximate" in payload
            assert "anytime" in payload["stats"]
        finally:
            client.close()


def test_deadline_without_anytime_keeps_504_contract(
    slow_database, slow_query
):
    # Opting out of anytime preserves the hard-deadline semantics: the
    # slow pair cannot finish within the deadline, so the request 504s.
    spec = Query(slow_query).topk(3).build()
    with serve_in_thread(slow_database, ServerConfig(max_concurrency=1)) as server:
        client = _Client(server.port)
        try:
            status, payload = client.request(
                "POST", "/v1/query?deadline_ms=150", spec.to_dict()
            )
            assert status == 504
            assert payload["error"]["code"] == "deadline-exceeded"

            _, stats = client.request("GET", "/v1/stats")
            assert stats["admission"]["deadline_expired"] == 1
            assert stats["admission"]["active"] == 0
        finally:
            client.close()
