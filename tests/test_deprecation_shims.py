"""Deprecated shims warn exactly once each and keep returning seed answers."""

import warnings

import pytest

from repro import GraphDatabase, Query, SimilarityQueryEngine, SkylineExecutor, connect
from repro._deprecation import _WARNED
from repro.datasets import figure3_database, figure3_query

SEED_SKYLINE = ["g1", "g4", "g5", "g7"]


@pytest.fixture(autouse=True)
def reset_warned_keys():
    """Each test observes the first construction in a fresh process-state."""
    saved = set(_WARNED)
    _WARNED.clear()
    yield
    _WARNED.clear()
    _WARNED.update(saved)


def test_executor_shim_warns_exactly_once():
    db = GraphDatabase.from_graphs(figure3_database())
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        SkylineExecutor(db)
        SkylineExecutor(db)  # second construction stays silent
    deprecations = [w for w in caught if w.category is DeprecationWarning]
    assert len(deprecations) == 1
    assert "SkylineExecutor is deprecated" in str(deprecations[0].message)


def test_engine_shim_warns_exactly_once():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        SimilarityQueryEngine()
        SimilarityQueryEngine()
    deprecations = [w for w in caught if w.category is DeprecationWarning]
    assert len(deprecations) == 1
    assert "SimilarityQueryEngine is deprecated" in str(deprecations[0].message)


def test_shims_warn_independently():
    db = GraphDatabase.from_graphs(figure3_database())
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        SkylineExecutor(db)
        SimilarityQueryEngine()
    assert sum(1 for w in caught if w.category is DeprecationWarning) == 2


def test_executor_shim_results_unchanged_by_warning():
    db = GraphDatabase.from_graphs(figure3_database())
    query = figure3_query()
    with warnings.catch_warnings():
        warnings.simplefilter("always")
        shim = SkylineExecutor(db).execute(query)
    names = [db.get(i).name for i in shim.skyline_ids]
    with connect(db, backend="indexed") as session:
        assert names == session.execute(Query(query).skyline()).names
    assert names == SEED_SKYLINE


def test_engine_shim_results_unchanged_by_warning():
    graphs = figure3_database()
    query = figure3_query()
    with warnings.catch_warnings():
        warnings.simplefilter("always")
        result = SimilarityQueryEngine().skyline(graphs, query)
    assert [g.name for g in result.skyline] == SEED_SKYLINE
