"""Edge-case sweep: branches not reached by the main suites."""

import time

import pytest

from repro.core import SimilarityQueryEngine, graph_similarity_skyline
from repro.db.stats import PhaseTimer, QueryStats
from repro.errors import QueryError
from repro.graph import (
    LabeledGraph,
    canonical_form,
    edit_path_from_mapping,
    graph_edit_distance,
    is_isomorphic,
    maximum_common_subgraph,
    path_graph,
    star_graph,
)
from repro.skyline import dnc_skyline, naive_skyline


# ----------------------------------------------------------------------
# Edit-path id collisions
# ----------------------------------------------------------------------
def test_edit_path_with_colliding_vertex_ids():
    """g2-only vertices whose ids also exist in g1 must get fresh ids."""
    g1 = LabeledGraph.from_edges([(1, 2)], vertex_labels={1: "A", 2: "B"})
    # g2 reuses id 1 for a *different* role and has an extra vertex id 2
    g2 = LabeledGraph.from_edges(
        [(1, 2), (2, 3)], vertex_labels={1: "X", 2: "Y", 3: "Z"}
    )
    result = graph_edit_distance(g1, g2)
    path = edit_path_from_mapping(g1, g2, result.mapping)
    transformed = path.apply(g1)
    assert is_isomorphic(transformed, g2)
    assert path.cost() == pytest.approx(result.distance)


def test_edit_path_total_replacement():
    g1 = path_graph(["A", "B"])
    g2 = LabeledGraph.from_edges(
        [(0, 1)], vertex_labels={0: "X", 1: "Y"}
    )  # same ids, disjoint labels
    result = graph_edit_distance(g1, g2)
    path = edit_path_from_mapping(g1, g2, result.mapping)
    assert is_isomorphic(path.apply(g1), g2)


# ----------------------------------------------------------------------
# Divide & conquer fallback partitions
# ----------------------------------------------------------------------
def test_dnc_with_all_identical_vectors():
    vectors = [(1.0, 1.0)] * 40  # no dimension can split: fallback path
    assert dnc_skyline(vectors) == list(range(40))


def test_dnc_with_single_splittable_dimension():
    vectors = [(1.0, float(i % 5)) for i in range(40)]
    assert dnc_skyline(vectors) == naive_skyline(vectors)


# ----------------------------------------------------------------------
# Canonical forms of highly symmetric graphs (permutation cap fallback)
# ----------------------------------------------------------------------
def test_canonical_form_large_automorphism_class_is_deterministic():
    big_star = star_graph("C", ["L"] * 9)  # 9 interchangeable leaves
    first = canonical_form(big_star)
    second = canonical_form(big_star.copy())
    assert first == second


# ----------------------------------------------------------------------
# MCS vertex objective choosing differently from edge objective
# ----------------------------------------------------------------------
def test_mcs_objectives_can_disagree_on_shape():
    # g1: a triangle (3 edges / 3 vertices) plus a disjoint 4-path region
    # reachable only through a label-mismatched hinge, so the common
    # subgraphs are: the triangle (3 edges, 3 vertices) for g2a, and a
    # 4-vertex path (3 edges, 4 vertices) — vertex objective must prefer
    # more vertices when edges tie.
    g1 = LabeledGraph.from_edges(
        [("t1", "t2"), ("t2", "t3"), ("t3", "t1"),
         ("t1", "p1"), ("p1", "p2"), ("p2", "p3"), ("p3", "p4")],
        vertex_labels={"t1": "T", "t2": "T", "t3": "T",
                       "p1": "P", "p2": "P", "p3": "P", "p4": "P"},
    )
    g2 = LabeledGraph.from_edges(
        [("a", "b"), ("b", "c"), ("c", "a"),
         ("x1", "x2"), ("x2", "x3"), ("x3", "x4")],
        vertex_labels={"a": "T", "b": "T", "c": "T",
                       "x1": "P", "x2": "P", "x3": "P", "x4": "P"},
    )
    by_edges = maximum_common_subgraph(g1, g2, objective="edges")
    by_vertices = maximum_common_subgraph(g1, g2, objective="vertices")
    assert by_edges.size == 3
    assert by_vertices.order == 4  # the path, not the triangle
    assert by_vertices.size == 3


# ----------------------------------------------------------------------
# Stats / timers
# ----------------------------------------------------------------------
def test_phase_timer_accumulates():
    stats = QueryStats()
    with PhaseTimer(stats, "phase"):
        time.sleep(0.002)
    first = stats.phase_seconds["phase"]
    with PhaseTimer(stats, "phase"):
        time.sleep(0.002)
    assert stats.phase_seconds["phase"] > first


def test_query_stats_pruning_ratio_zero_division():
    assert QueryStats().pruning_ratio == 0.0


# ----------------------------------------------------------------------
# Engine misconfiguration
# ----------------------------------------------------------------------
def test_engine_rejects_empty_measures():
    with pytest.raises(QueryError):
        SimilarityQueryEngine(measures=())


def test_engine_tolerance_merges_near_ties(paper_db, paper_query):
    """A huge tolerance collapses all strict gaps: nothing dominates
    anything, so every graph is in the skyline."""
    result = graph_similarity_skyline(
        paper_db, paper_query, tolerance=100.0
    )
    assert len(result.skyline) == len(paper_db)


# ----------------------------------------------------------------------
# Deterministic candidate order in the executor
# ----------------------------------------------------------------------
def test_executor_candidate_order_is_stable(paper_db, paper_query):
    from repro.db import GraphDatabase, SkylineExecutor
    from repro.graph import GraphFeatures

    db = GraphDatabase.from_graphs(paper_db)
    executor = SkylineExecutor(db)
    features = GraphFeatures.of(paper_query)
    first = executor._candidate_order(features)
    second = executor._candidate_order(features)
    assert first == second


# ----------------------------------------------------------------------
# Text serialization stringification
# ----------------------------------------------------------------------
def test_text_serialization_stringifies_ids():
    from repro.graph import graph_from_text, graph_to_text

    g = LabeledGraph.from_edges([(1, 2, "x")], vertex_labels={1: "A", 2: "B"})
    rebuilt = graph_from_text(graph_to_text(g))
    assert rebuilt.has_vertex("1")  # ids became strings
    assert rebuilt.vertex_label("1") == "A"
