"""Cross-checks between the primary and alternative exact engines."""

import pytest

from repro.datasets import figure1_pair, figure3_database, figure3_query
from repro.graph import (
    LabeledGraph,
    graph_edit_distance,
    graph_edit_distance_astar,
    maximum_common_subgraph,
    maximum_common_subgraph_clique,
    path_graph,
    verify_embedding,
)
from tests.conftest import make_random_graph


# ----------------------------------------------------------------------
# Clique-based MCS vs McGregor
# ----------------------------------------------------------------------
def test_clique_mcs_on_paper_pair():
    g1, g2 = figure1_pair()
    assert maximum_common_subgraph_clique(g1, g2).size == 4


def test_clique_mcs_on_table2():
    query = figure3_query()
    expected = (4, 4, 4, 3, 5, 5, 6)
    for graph, target in zip(figure3_database(), expected):
        assert maximum_common_subgraph_clique(graph, query).size == target, graph.name


def test_clique_mcs_agrees_with_mcgregor_on_random_graphs():
    for seed in range(25):
        g1 = make_random_graph(seed, max_vertices=5)
        g2 = make_random_graph(seed + 800, max_vertices=5)
        primary = maximum_common_subgraph(g1, g2).size
        clique = maximum_common_subgraph_clique(g1, g2).size
        assert primary == clique, f"seed {seed}: {primary} vs {clique}"


def test_clique_mcs_result_is_valid_embedding():
    for seed in (4, 14, 24):
        g1 = make_random_graph(seed, max_vertices=5)
        g2 = make_random_graph(seed + 60, max_vertices=5)
        result = maximum_common_subgraph_clique(g1, g2)
        if result.size:
            sub = result.subgraph(g1)
            assert sub.is_connected()
            mapping = {v: result.mapping[v] for v in sub.vertices()}
            assert verify_embedding(sub, g2, mapping)


def test_clique_mcs_degenerate_inputs():
    empty = LabeledGraph()
    g = path_graph(["A", "B"])
    assert maximum_common_subgraph_clique(empty, g).size == 0
    assert maximum_common_subgraph_clique(g, g.copy()).size == 1
    disjoint = path_graph(["X", "Y"])
    assert maximum_common_subgraph_clique(g, disjoint).size == 0


# ----------------------------------------------------------------------
# A* GED vs depth-first branch and bound
# ----------------------------------------------------------------------
def test_astar_on_paper_pair():
    g1, g2 = figure1_pair()
    result = graph_edit_distance_astar(g1, g2)
    assert result.distance == 4.0
    assert result.optimal


def test_astar_agrees_with_dfs_on_random_graphs():
    for seed in range(20):
        g1 = make_random_graph(seed, max_vertices=5)
        g2 = make_random_graph(seed + 900, max_vertices=5)
        dfs = graph_edit_distance(g1, g2).distance
        astar = graph_edit_distance_astar(g1, g2).distance
        assert dfs == pytest.approx(astar), f"seed {seed}"


def test_astar_mapping_realises_distance():
    from repro.graph import induced_edit_cost

    for seed in (6, 16):
        g1 = make_random_graph(seed, max_vertices=5)
        g2 = make_random_graph(seed + 70, max_vertices=5)
        result = graph_edit_distance_astar(g1, g2)
        assert induced_edit_cost(g1, g2, result.mapping) == pytest.approx(
            result.distance
        )


def test_astar_node_limit_gives_upper_bound():
    g1 = make_random_graph(31, max_vertices=6)
    g2 = make_random_graph(73, max_vertices=6)
    exact = graph_edit_distance_astar(g1, g2)
    limited = graph_edit_distance_astar(g1, g2, node_limit=1)
    assert not limited.optimal
    assert limited.distance >= exact.distance - 1e-9


def test_astar_identical_graphs():
    g = path_graph(["A", "B", "C"])
    result = graph_edit_distance_astar(g, g.copy())
    assert result.distance == 0.0


def test_astar_empty_graphs():
    assert graph_edit_distance_astar(LabeledGraph(), LabeledGraph()).distance == 0.0
    g = path_graph(["A", "B"])
    assert graph_edit_distance_astar(LabeledGraph(), g).distance == 3.0
