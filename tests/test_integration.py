"""Integration tests: full pipelines over synthetic workloads."""

import pytest

from repro.core import SimilarityQueryEngine, graph_similarity_skyline
from repro.datasets import make_workload, molecule_like_graph
from repro.db import GraphDatabase, SkylineExecutor
from repro.errors import DatasetError
from repro.graph import ged
from repro.skyline.utils import dominates


def test_workload_construction():
    workload = make_workload(n_graphs=20, n_queries=2, query_size=7, seed=1)
    assert workload.size == 20
    assert len(workload.queries) == 2
    assert len(workload.provenance) == 20
    kinds = {kind for kind, _, _ in workload.provenance}
    assert kinds <= {"mutant", "distractor"}
    assert all(g.is_connected() for g in workload.database)


def test_workload_mutants_respect_radius():
    workload = make_workload(
        n_graphs=10, query_size=6, mutant_fraction=1.0, radius=(1, 3), seed=9
    )
    for graph, (kind, query_index, radius) in zip(
        workload.database, workload.provenance
    ):
        assert kind == "mutant"
        assert ged(workload.queries[query_index], graph) <= radius


def test_workload_validation():
    with pytest.raises(DatasetError):
        make_workload(n_graphs=0)
    with pytest.raises(DatasetError):
        make_workload(n_graphs=5, mutant_fraction=1.5)
    with pytest.raises(DatasetError):
        molecule_like_graph(1)


def test_molecule_graph_shape():
    graph = molecule_like_graph(10, seed=4)
    assert graph.order == 10
    assert graph.is_connected()
    assert graph.size >= 9


def test_end_to_end_engine_on_synthetic():
    workload = make_workload(n_graphs=16, query_size=6, seed=21)
    engine = SimilarityQueryEngine()
    answer = engine.query(workload.database, workload.queries[0], refine_k=3)
    assert 1 <= len(answer.skyline.skyline) <= 16
    if answer.refinement is not None:
        assert len(answer.graphs) == 3
    # close mutants should generally beat far distractors: check that the
    # skyline contains at least one graph whose GCS strictly dominates the
    # worst evaluated graph, unless everything is pairwise incomparable.
    vectors = [v.values for v in answer.skyline.vectors]
    members = set(answer.skyline.skyline_indices)
    for i, vector in enumerate(vectors):
        if i not in members:
            assert any(
                dominates(vectors[j], vector) for j in range(len(vectors)) if j != i
            )


def test_exact_match_always_in_skyline():
    """A database graph isomorphic to the query has GCS = 0 vector and
    must always be a skyline member."""
    workload = make_workload(n_graphs=12, query_size=6, seed=33)
    query = workload.queries[0]
    database = list(workload.database) + [query.copy(name="planted")]
    result = graph_similarity_skyline(database, query)
    assert any(g.name == "planted" for g in result.skyline)


def test_executor_and_engine_agree_on_workload():
    workload = make_workload(n_graphs=14, query_size=6, seed=5)
    query = workload.queries[0]
    engine_names = sorted(
        g.name
        for g in SimilarityQueryEngine().skyline(workload.database, query).skyline
    )
    db = GraphDatabase.from_graphs(workload.database)
    executor = SkylineExecutor(db)
    executor_names = sorted(
        db.get(i).name for i in executor.execute(query).skyline_ids
    )
    assert engine_names == executor_names


def test_skyline_size_grows_with_dimensions():
    """More similarity facets -> weakly larger skylines (typical Pareto
    behaviour; exercised here as a smoke check of the d-sweep bench)."""
    workload = make_workload(n_graphs=15, query_size=6, seed=8)
    query = workload.queries[0]
    small = graph_similarity_skyline(
        workload.database, query, measures=("edit",)
    )
    large = graph_similarity_skyline(
        workload.database, query, measures=("edit", "mcs", "union", "jaccard-edges")
    )
    # not a theorem for arbitrary data, but holds for nested measure sets
    # on generic workloads; at minimum the 1-d skyline members must stay
    # Pareto-optimal when dimensions are added with equal values elsewhere.
    assert len(large.skyline) >= 1
    assert len(small.skyline) >= 1


def test_threshold_and_topk_consistency():
    workload = make_workload(n_graphs=12, query_size=6, seed=13)
    query = workload.queries[0]
    db = GraphDatabase.from_graphs(workload.database)
    executor = SkylineExecutor(db)
    matches = executor.threshold_search(query, "edit", 3.0)
    for graph_id, distance in matches:
        assert distance <= 3.0
        assert ged(db.get(graph_id), query) == pytest.approx(distance)
