"""Live views: Session.watch stays equal to a from-scratch re-query.

The acceptance contract of the staged-engine PR: after any interleaving
of database inserts and removals, the watched skyline must match what a
fresh query over the mutated database returns, while repairing only the
affected candidates (one exact evaluation per inserted graph, none per
removal).
"""

import pytest

from repro import GraphDatabase, PairCache, Query, connect
from repro.datasets import figure3_database, make_workload
from repro.errors import QueryError


# The figure-3 fixtures live in conftest.py; module-local aliases keep
# the short parameter names this module's tests read naturally with.
@pytest.fixture
def db(paper_database):
    return paper_database


@pytest.fixture
def query(paper_query):
    return paper_query


def _fresh_answer(db, query):
    with connect(db) as session:
        return session.execute(Query(query).skyline()).ids


def test_view_matches_initial_query(db, query):
    with connect(db) as session:
        view = session.watch(Query(query).skyline())
        assert view.ids == session.execute(Query(query).skyline()).ids


def test_view_follows_interleaved_adds_and_removes(query):
    workload = make_workload(n_graphs=14, query_size=6, seed=5)
    db = GraphDatabase.from_graphs(workload.database[:8])
    pending = workload.database[8:]
    with connect(db) as session:
        view = session.watch(Query(query).skyline())
        db.insert(pending[0])
        assert view.ids == _fresh_answer(db, query)
        db.remove(view.ids[0])  # drop a skyline member → promotions
        assert view.ids == _fresh_answer(db, query)
        db.insert(pending[1])
        db.remove(db.ids()[2])
        db.insert(pending[2])
        assert view.ids == _fresh_answer(db, query)


def test_view_repairs_only_affected_candidates(db, query):
    with connect(db) as session:
        view = session.watch(Query(query).skyline())
        built = view.evaluations
        assert built == len(db)
        db.remove(2)
        view.refresh()
        assert view.evaluations == built  # removal costs no solving
        novel = make_workload(n_graphs=1, query_size=5, seed=99).database[0]
        db.insert(novel)
        view.refresh()
        assert view.evaluations == built + 1  # one pair per novel insert
        served = view.cache_served
        db.insert(figure3_database()[0])  # isomorphic to an already-solved pair
        view.refresh()
        assert view.evaluations == built + 1  # served from the content-addressed cache
        assert view.cache_served == served + 1
        assert view.repairs == 3


def test_view_refresh_is_version_gated(db, query):
    with connect(db) as session:
        view = session.watch(Query(query).skyline())
        assert view.refresh() is False  # unchanged database: no work
        db.insert(figure3_database()[1])
        assert view.refresh() is True
        assert view.refresh() is False


def test_view_shares_backend_pair_cache(db, query):
    cache = PairCache()
    with connect(db, cache=cache) as session:
        session.execute(Query(query).skyline())  # warms the cache
        view = session.watch(Query(query).skyline())
        assert view.evaluations == 0  # built entirely from cached pairs
        assert view.cache_served == len(db)
        assert view.ids == session.execute(Query(query).skyline()).ids


def test_view_result_snapshot_renders(db, query):
    with connect(db) as session:
        view = session.watch(Query(query).skyline())
        result = view.result()
        assert result.ids == view.ids
        assert result.plan.backend == "live-view"
        assert len(result.to_rows()) == len(db)
        assert "live-view" in result.explain()


def test_view_applies_limit_like_execute(db, query):
    with connect(db) as session:
        spec = Query(query).skyline().limit(1)
        view = session.watch(spec)
        executed = session.execute(spec)
        assert view.ids == executed.ids
        assert len(view) == 1
        db.insert(figure3_database()[3])
        assert view.ids == session.execute(spec).ids


def test_view_rejects_unsupported_specs(db, query):
    with connect(db) as session:
        with pytest.raises(QueryError, match="skyline"):
            session.watch(Query(query).topk(3))
        with pytest.raises(QueryError, match="refine"):
            session.watch(Query(query).skyline().refine(k=2))


def test_view_on_closed_session(db, query):
    session = connect(db)
    session.close()
    with pytest.raises(QueryError, match="closed"):
        session.watch(Query(query).skyline())


def test_view_respects_session_default_measures(db, query):
    with connect(db, measures=("edit",)) as session:
        view = session.watch(Query(query).skyline())
        assert view.ids == session.execute(Query(query).skyline()).ids
        assert view.names == ("edit",)
