"""Tests for index features and the bound functions they power."""

import pytest

from repro.graph import (
    GraphFeatures,
    dist_gu_lower_bound,
    dist_mcs_lower_bound,
    edit_distance_lower_bound,
    ged,
    mcs_size,
    mcs_upper_bound,
    path_graph,
)
from repro.measures import GraphUnionDistance, McsDistance, PairContext
from tests.conftest import make_random_graph


def test_features_extraction():
    g = path_graph(["A", "A", "B"])
    features = GraphFeatures.of(g)
    assert features.order == 3
    assert features.size == 2
    assert features.degree_sequence == (2, 1, 1)
    assert features.vertex_label_counter() == {"'A'": 2, "'B'": 1}


def test_features_are_hashable_and_comparable():
    f1 = GraphFeatures.of(path_graph(["A", "B"]))
    f2 = GraphFeatures.of(path_graph(["A", "B"]))
    assert f1 == f2
    assert hash(f1) == hash(f2)


def test_counters_are_cached_per_instance():
    """Micro-regression: the Counter forms are built once, not per call.

    The scalar bounds call these per database pair; rebuilding a Counter
    each time dominated their cost (the satellite fix this test pins).
    """
    f = GraphFeatures.of(path_graph(["A", "A", "B"]))
    assert f.vertex_label_counter() is f.vertex_label_counter()
    assert f.edge_label_counter() is f.edge_label_counter()
    # Caching must not leak into equality or hashing (fields only).
    g = GraphFeatures.of(path_graph(["A", "A", "B"]))
    g.vertex_label_counter()
    assert f == g and hash(f) == hash(g)


def test_edit_lower_bound_admissible():
    for seed in range(15):
        g1 = make_random_graph(seed, max_vertices=5)
        g2 = make_random_graph(seed + 50, max_vertices=5)
        bound = edit_distance_lower_bound(GraphFeatures.of(g1), GraphFeatures.of(g2))
        assert bound <= ged(g1, g2) + 1e-9, f"seed {seed}"


def test_mcs_upper_bound_sound():
    for seed in range(15):
        g1 = make_random_graph(seed, max_vertices=5)
        g2 = make_random_graph(seed + 60, max_vertices=5)
        cap = mcs_upper_bound(GraphFeatures.of(g1), GraphFeatures.of(g2))
        assert mcs_size(g1, g2) <= cap, f"seed {seed}"


def test_dist_mcs_lower_bound_sound():
    measure = McsDistance()
    for seed in range(15):
        g1 = make_random_graph(seed, max_vertices=5)
        g2 = make_random_graph(seed + 70, max_vertices=5)
        bound = dist_mcs_lower_bound(GraphFeatures.of(g1), GraphFeatures.of(g2))
        actual = measure.distance(g1, g2, PairContext(g1, g2))
        assert bound <= actual + 1e-9, f"seed {seed}"


def test_dist_gu_lower_bound_sound():
    measure = GraphUnionDistance()
    for seed in range(15):
        g1 = make_random_graph(seed, max_vertices=5)
        g2 = make_random_graph(seed + 80, max_vertices=5)
        bound = dist_gu_lower_bound(GraphFeatures.of(g1), GraphFeatures.of(g2))
        actual = measure.distance(g1, g2, PairContext(g1, g2))
        assert bound <= actual + 1e-9, f"seed {seed}"


def test_bounds_tight_for_identical_graphs():
    g = path_graph(["A", "B", "C"])
    f = GraphFeatures.of(g)
    assert edit_distance_lower_bound(f, f) == 0.0
    assert dist_mcs_lower_bound(f, f) == 0.0
    assert dist_gu_lower_bound(f, f) == 0.0


def test_bounds_with_empty_graph():
    from repro.graph import LabeledGraph

    empty = GraphFeatures.of(LabeledGraph())
    assert dist_mcs_lower_bound(empty, empty) == 0.0
    assert dist_gu_lower_bound(empty, empty) == 0.0
    nonempty = GraphFeatures.of(path_graph(["A", "B"]))
    assert dist_mcs_lower_bound(empty, nonempty) == 1.0
