"""CLI tests for ``repro wal …`` and ``repro fuzz --kill-recover``."""

from __future__ import annotations

import json

import pytest

from repro.api.ops import AddOp, RemoveOp, apply_mutation
from repro.cli import build_parser, main
from repro.db import DurableLog, GraphDatabase, load_database
from repro.graph.labeled_graph import LabeledGraph


def make_graph(name: str, n: int = 3) -> LabeledGraph:
    graph = LabeledGraph(name=name)
    for i in range(n):
        graph.add_vertex(i, label="C" if i % 2 else "N")
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    return graph


@pytest.fixture
def wal_dir(tmp_path):
    """A data dir with three adds and one remove logged."""
    database = GraphDatabase(name="cli")
    log = DurableLog.open(tmp_path / "data")
    handle_to_id: dict[str, int] = {}
    id_to_handle: dict[int, str] = {}
    log.initialize(database, handle_to_id)
    database.attach_wal(log)
    for i in range(3):
        apply_mutation(
            database,
            AddOp(f"g{i}", make_graph(f"g{i}", 2 + i)),
            handle_to_id,
            id_to_handle,
        )
    apply_mutation(database, RemoveOp("g1"), handle_to_id, id_to_handle)
    log.close()
    return tmp_path / "data"


def test_wal_inspect(wal_dir, capsys):
    assert main(["wal", "inspect", str(wal_dir)]) == 0
    out = capsys.readouterr().out
    assert "live records: 4 (lsn 1..4)" in out
    assert "recovered store: 2 graphs" in out


def test_wal_inspect_verbose_lists_records(wal_dir, capsys):
    assert main(["wal", "inspect", str(wal_dir), "--verbose"]) == 0
    out = capsys.readouterr().out
    assert "lsn 1: add" in out
    assert "lsn 4: remove" in out


def test_wal_restore_point_in_time(wal_dir, tmp_path, capsys):
    output = tmp_path / "restored.json"
    assert main(
        ["wal", "restore", str(wal_dir), str(output), "--lsn", "2"]
    ) == 0
    database = load_database(output)
    assert sorted(g.name for g in database.graphs()) == ["g0", "g1"]
    assert "restored" in capsys.readouterr().out


def test_wal_restore_head_by_default(wal_dir, tmp_path):
    output = tmp_path / "restored.json"
    assert main(["wal", "restore", str(wal_dir), str(output)]) == 0
    database = load_database(output)
    assert sorted(g.name for g in database.graphs()) == ["g0", "g2"]


def test_wal_compact(wal_dir, capsys):
    assert main(["wal", "compact", str(wal_dir)]) == 0
    assert "folded 4 records" in capsys.readouterr().out
    log = DurableLog.open(wal_dir)
    assert log.base_lsn == 4 and log.records() == []
    log.close()


def test_wal_inspect_missing_dir_is_reported(tmp_path, capsys):
    assert main(["wal", "inspect", str(tmp_path / "nope")]) == 1
    assert "error" in capsys.readouterr().err.lower()


def test_fuzz_kill_recover_smoke(capsys):
    code = main(
        [
            "fuzz",
            "--kill-recover",
            "--seed",
            "5",
            "--steps",
            "25",
            "--sync",
            "always",
            "--shards",
            "2",
            "--kill-at",
            "4",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "OK" in out


def test_fuzz_kill_recover_rejects_fault_combo(capsys):
    code = main(
        ["fuzz", "--kill-recover", "--seed", "5", "--fault", "bound-break"]
    )
    assert code == 2


def test_fuzz_kill_recover_parser_defaults():
    args = build_parser().parse_args(["fuzz", "--kill-recover"])
    assert args.kill_recover is True
    assert args.shards == 2
    assert args.sync is None
    assert args.kill_at is None


def test_fuzz_kill_recover_corpus_file(tmp_path, capsys):
    corpus = tmp_path / "corpus.json"
    corpus.write_text(json.dumps([{"seed": 9}]), encoding="utf-8")
    code = main(
        [
            "fuzz",
            "--kill-recover",
            "--corpus",
            str(corpus),
            "--steps",
            "20",
            "--sync",
            "none",
            "--kill-at",
            "3",
        ]
    )
    assert code == 0
    assert "seed 9: OK" in capsys.readouterr().out
