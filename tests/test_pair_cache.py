"""PairCache: canonical-hash-keyed cross-query/measure sharing.

Also pins the fix for the legacy ``QueryCache.query_hash`` bug: it used
to memoise the canonical hash by ``id(query)``, so a mutated graph — or a
new graph allocated at a recycled id after garbage collection — was
served a stale hash for a *different* graph.
"""

import gc

import pytest

from repro import PairCache, Query, connect
from repro.datasets import figure3_query
from repro.db import QueryCache
from repro.graph import LabeledGraph, path_graph
from repro.graph.canonical import canonical_hash


# Figure-3 database fixture lives in conftest.py; alias the short name.
@pytest.fixture
def db(paper_database):
    return paper_database


# ----------------------------------------------------------------------
# query_hash regression (satellite: id()-keyed memoisation was unsound)
# ----------------------------------------------------------------------
def test_query_hash_follows_mutation():
    cache = QueryCache()
    graph = LabeledGraph.from_edges([("A", "B", "-"), ("B", "C", "-")], name="p3")
    before = cache.query_hash(graph)
    assert before == canonical_hash(graph)
    graph.add_vertex("X", "Z")
    graph.add_edge("C", "X", "-")
    # id(graph) is unchanged, so the old id()-keyed memo returned `before`
    assert cache.query_hash(graph) == canonical_hash(graph) != before


def test_query_hash_correct_for_recycled_ids():
    """A stale hash can never be served for a graph at a recycled id.

    The memo (satellite: skip re-canonicalization for repeated queries)
    holds a strong reference to every memoised graph, so an id cannot be
    recycled *while* an entry that would match it is alive — and
    clearing the cache unpins the graph again.
    """
    import weakref

    cache = QueryCache()
    graph = path_graph(["A", "B", "C"], name="pinned")
    reference = weakref.ref(graph)
    cache.query_hash(graph)
    del graph
    gc.collect()
    assert reference() is not None  # pinned by the memo entry
    cache.clear()
    gc.collect()
    assert reference() is None  # unpinned once no entry can match


def test_query_hash_is_memoised_until_mutation(monkeypatch):
    """Repeated queries skip re-canonicalization; mutation invalidates."""
    from repro.db import cache as cache_module

    calls = []
    real = canonical_hash

    def counting(graph):
        calls.append(graph.name)
        return real(graph)

    monkeypatch.setattr(cache_module, "canonical_hash", counting)
    cache = PairCache()
    graph = path_graph(["A", "B", "C"], name="q")
    first = cache.query_hash(graph)
    assert cache.query_hash(graph) == first
    assert len(calls) == 1  # second call served from the memo
    graph.relabel_vertex(graph.vertices()[0], "Z")
    assert cache.query_hash(graph) == canonical_hash(graph)
    assert len(calls) == 2  # mutation bumped the counter, memo missed


# ----------------------------------------------------------------------
# Canonical-hash keying: sharing across queries, measures, isomorphs
# ----------------------------------------------------------------------
def test_warm_cache_serves_repeated_query(db):
    cache = PairCache()
    query = figure3_query()
    with connect(db, cache=cache) as session:
        cold = session.execute(Query(query).skyline())
        warm = session.execute(Query(query).skyline())
    assert cold.stats.exact_evaluations == len(db)
    assert warm.stats.exact_evaluations == 0
    assert warm.stats.served_from_cache == len(db)
    assert warm.names == cold.names


def test_cache_shared_across_sessions_and_backends(db):
    cache = PairCache()
    query = figure3_query()
    with connect(db, backend="memory", cache=cache) as session:
        session.execute(Query(query).skyline())
    with connect(db, backend="indexed", cache=cache) as session:
        warm = session.execute(Query(query).skyline())
    assert warm.stats.exact_evaluations == 0


def test_cache_shared_across_measure_subsets(db):
    cache = PairCache()
    query = figure3_query()
    with connect(db, cache=cache) as session:
        session.execute(Query(query).measures("edit", "mcs", "union").skyline())
        subset = session.execute(Query(query).measures("edit", "mcs").skyline())
        single = session.execute(Query(query).topk(3, "edit"))
    assert subset.stats.exact_evaluations == 0  # per-measure entries re-used
    assert single.stats.exact_evaluations == 0


def test_cache_serves_isomorphic_resubmission(db):
    cache = PairCache()
    query = figure3_query()
    relabeled = LabeledGraph.from_edges(
        [(f"v{u}", f"v{v}", label) for u, v, label in query.edges()],
        vertex_labels={
            f"v{u}": query.vertex_label(u) for u in query.vertices()
        },
        name="query-copy",
    )
    with connect(db, cache=cache) as session:
        session.execute(Query(query).skyline())
        warm = session.execute(Query(relabeled).skyline())
    assert warm.stats.exact_evaluations == 0  # same canonical hashes


def test_symmetric_pairs_share_entries():
    cache = PairCache(symmetric=True)
    a, b = canonical_hash(path_graph(["A", "B"])), canonical_hash(
        path_graph(["B", "C"])
    )
    cache.put(a, b, ("edit",), (2.0,))
    assert cache.get(b, a, ("edit",)) == (2.0,)
    asymmetric = PairCache(symmetric=False)
    asymmetric.put(a, b, ("edit",), (2.0,))
    assert asymmetric.get(b, a, ("edit",)) is None


def test_partial_vector_is_a_miss():
    cache = PairCache()
    cache.put("h1", "h2", ("edit",), (1.0,))
    assert cache.get("h1", "h2", ("edit", "mcs")) is None
    cache.put("h1", "h2", ("mcs",), (0.5,))
    assert cache.get("h1", "h2", ("edit", "mcs")) == (1.0, 0.5)


def test_lru_eviction_and_stats():
    cache = PairCache(max_entries=2)
    cache.put("a", "q", ("edit",), (1.0,))
    cache.put("b", "q", ("edit",), (2.0,))
    assert cache.get("a", "q", ("edit",)) == (1.0,)  # refresh "a"
    cache.put("c", "q", ("edit",), (3.0,))  # evicts "b"
    assert cache.get("b", "q", ("edit",)) is None
    assert len(cache) == 2
    assert 0.0 < cache.hit_rate < 1.0
    cache.clear()
    assert len(cache) == 0 and cache.hits == 0
    with pytest.raises(ValueError):
        PairCache(max_entries=0)


def test_querycache_invalidate_subject_is_invalidate_graph():
    cache = QueryCache()
    cache.put(0, "q", ("edit",), (1.0,))
    cache.put(1, "q", ("edit",), (2.0,))
    cache.invalidate_subject(0)  # id-keyed subclass: subject == graph id
    assert cache.get(0, "q", ("edit",)) is None
    assert cache.get(1, "q", ("edit",)) == (2.0,)


def test_invalidate_subject():
    cache = PairCache()
    cache.put("a", "q", ("edit",), (1.0,))
    cache.put("b", "q", ("edit",), (2.0,))
    cache.invalidate_subject("a")
    assert cache.get("a", "q", ("edit",)) is None
    assert cache.get("b", "q", ("edit",)) == (2.0,)


def test_entries_stay_sound_under_database_mutation(db):
    """Content-addressed keys: removing and re-adding a graph re-uses its
    cached pairs instead of serving anything stale."""
    cache = PairCache()
    query = figure3_query()
    with connect(db, cache=cache) as session:
        session.execute(Query(query).skyline())
        victim = db.get(0).copy()
        db.remove(0)
        db.insert(victim)
        warm = session.execute(Query(query).skyline())
    assert warm.stats.exact_evaluations == 0  # same structures, same keys
    reference = connect(db).execute(Query(query).skyline())
    assert warm.names == reference.names
