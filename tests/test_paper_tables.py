"""Golden tests: every numeric artifact of the paper, solver-verified.

These are the reproduction's core guarantees. Each test pins one published
quantity (Table I, Examples 2-4 / Figs. 1-2, Table II, Table III, the GSS,
the Section-VI top-k contrast, Tables IV-V) against the exact solvers run
on the reconstructed datasets.
"""

import itertools

import pytest

from repro.bench import compute_paper_example_report
from repro.core import graph_similarity_skyline, refine_by_diversity
from repro.datasets import (
    EXPECTED_DIVERSE_SUBSET,
    EXPECTED_DOMINANCE,
    EXPECTED_GSS,
    EXPECTED_SKYLINE,
    FIGURE1_EDIT_SEQUENCE,
    HOTELS,
    TABLE2_MCS,
    TABLE3_GCS,
    TABLE4_PAIRWISE_GED_MEASURED,
    TABLE4_PAIRWISE_MCS,
    TABLE4_PAPER,
    database_by_name,
    figure1_pair,
    figure3_database,
    figure3_query,
    hotel_names,
    hotel_vectors,
)
from repro.graph import (
    edit_path_from_mapping,
    ged,
    graph_edit_distance,
    is_subgraph_isomorphic,
    mcs_size,
)
from repro.measures import PairContext, default_measures
from repro.skyline import skyline


# ----------------------------------------------------------------------
# Table I (Example 1)
# ----------------------------------------------------------------------
def test_table1_hotel_skyline():
    indices = skyline(hotel_vectors())
    assert tuple(hotel_names()[i] for i in indices) == EXPECTED_SKYLINE


def test_table1_values_verbatim():
    assert HOTELS[0].price == 4.0 and HOTELS[0].distance_km == 150.0
    assert HOTELS[5].name == "H6" and HOTELS[5].price == 1.0


# ----------------------------------------------------------------------
# Figs. 1-2 / Examples 2-4
# ----------------------------------------------------------------------
def test_fig1_sizes():
    g1, g2 = figure1_pair()
    assert g1.size == 6 and g2.size == 6


def test_example2_edit_distance_four():
    g1, g2 = figure1_pair()
    assert ged(g1, g2) == 4.0


def test_example2_operation_kinds():
    """The optimal sequence is one edge deletion, one edge relabeling,
    one vertex relabeling, one edge insertion — exactly as narrated."""
    g1, g2 = figure1_pair()
    result = graph_edit_distance(g1, g2)
    path = edit_path_from_mapping(g1, g2, result.mapping)
    kinds = sorted(type(op).__name__ for op in path)
    expected = {
        "edge deletion": "EdgeDeletion",
        "edge relabeling": "EdgeRelabeling",
        "vertex relabeling": "VertexRelabeling",
        "edge insertion": "EdgeInsertion",
    }
    assert kinds == sorted(expected[kind] for kind in FIGURE1_EDIT_SEQUENCE)


def test_example3_mcs_distance():
    g1, g2 = figure1_pair()
    assert mcs_size(g1, g2) == 4
    assert 1 - 4 / max(g1.size, g2.size) == pytest.approx(0.33, abs=0.005)


def test_example4_gu_distance():
    g1, g2 = figure1_pair()
    assert 1 - 4 / (g1.size + g2.size - 4) == pytest.approx(0.50, abs=0.005)


# ----------------------------------------------------------------------
# Fig. 3 sizes and Table II
# ----------------------------------------------------------------------
def test_fig3_sizes():
    sizes = [g.size for g in figure3_database()]
    assert sizes == [6, 7, 7, 6, 8, 9, 10]
    assert figure3_query().size == 6


def test_fig3_g7_is_supergraph_of_query():
    """The paper: g7 ⊃ q."""
    by_name = database_by_name()
    assert is_subgraph_isomorphic(figure3_query(), by_name["g7"])


def test_table2_mcs_values():
    query = figure3_query()
    measured = tuple(mcs_size(g, query) for g in figure3_database())
    assert measured == TABLE2_MCS


# ----------------------------------------------------------------------
# Table III
# ----------------------------------------------------------------------
def test_table3_full_matrix():
    query = figure3_query()
    measures = default_measures()
    for graph, expected in zip(figure3_database(), TABLE3_GCS):
        context = PairContext(graph, query)
        measured = tuple(m.distance(graph, query, context) for m in measures)
        assert measured[0] == pytest.approx(expected[0]), graph.name
        assert measured[1] == pytest.approx(expected[1]), graph.name
        assert measured[2] == pytest.approx(expected[2]), graph.name


def test_table3_printed_roundings():
    """The printed two-decimal values of Table III match our measurements
    within printing tolerance."""
    printed = [
        (4, 0.33, 0.50), (4, 0.43, 0.56), (3, 0.43, 0.56), (2, 0.50, 0.67),
        (3, 0.38, 0.44), (4, 0.44, 0.50), (4, 0.40, 0.40),
    ]
    for expected, full in zip(printed, TABLE3_GCS):
        for printed_value, full_value in zip(expected, full):
            assert abs(printed_value - full_value) <= 0.005 + 1e-9


# ----------------------------------------------------------------------
# GSS and dominance (Section VI)
# ----------------------------------------------------------------------
def test_gss_membership():
    result = graph_similarity_skyline(figure3_database(), figure3_query())
    assert tuple(g.name for g in result.skyline) == EXPECTED_GSS


def test_dominance_pairs_from_paper():
    result = graph_similarity_skyline(figure3_database(), figure3_query())
    names = [g.name for g in result.graphs]
    for dominated, dominator in EXPECTED_DOMINANCE:
        dominators = {
            names[j] for j in result.dominators_of(names.index(dominated))
        }
        assert dominator in dominators, (dominated, dominator)


# ----------------------------------------------------------------------
# Tables IV and V (Section VII)
# ----------------------------------------------------------------------
def test_table4_pairwise_mcs_all_exact():
    by_name = database_by_name()
    for (a, b), expected in TABLE4_PAIRWISE_MCS.items():
        assert mcs_size(by_name[a], by_name[b]) == expected, (a, b)


def test_table4_pairwise_ged_matches_frozen_measurements():
    by_name = database_by_name()
    for (a, b), expected in TABLE4_PAIRWISE_GED_MEASURED.items():
        assert ged(by_name[a], by_name[b]) == expected, (a, b)


def test_table4_mcs_columns_match_paper_printout():
    """Columns v2 (DistMcs) and v3 (DistGu) agree with the paper in every
    cell (the paper truncates some values, hence 0.011 tolerance)."""
    report = compute_paper_example_report()
    for key, (_, v2_paper, v3_paper) in TABLE4_PAPER.items():
        measured = report.diversity_vectors[key]
        assert measured[1] == pytest.approx(v2_paper, abs=0.011), key
        assert measured[2] == pytest.approx(v3_paper, abs=0.011), key


def test_table4_v1_column_agreement():
    """v1 (DistN-Ed) agrees in the three cells whose pairwise edit
    distances are realisable together with Table III (see DESIGN.md §4);
    the remaining cells are within 0.04."""
    report = compute_paper_example_report()
    exact_cells = {("g1", "g4"), ("g4", "g5"), ("g5", "g7")}
    for key, (v1_paper, _, _) in TABLE4_PAPER.items():
        measured = report.diversity_vectors[key][0]
        if key in exact_cells:
            assert measured == pytest.approx(v1_paper, abs=0.011), key
        else:
            assert measured == pytest.approx(v1_paper, abs=0.04), key


def test_table5_final_subset():
    result = graph_similarity_skyline(figure3_database(), figure3_query())
    refined = refine_by_diversity(result.skyline, k=2)
    assert tuple(g.name for g in refined.subset) == EXPECTED_DIVERSE_SUBSET


def test_table5_s6_is_worst_candidate():
    """S6 = {g5, g7} has the maximal val in the paper (15) and here."""
    result = graph_similarity_skyline(figure3_database(), figure3_query())
    refined = refine_by_diversity(result.skyline, k=2)
    worst = max(refined.candidates, key=lambda c: c.val)
    assert worst.names == ("g5", "g7")


def test_fig3_graphs_connected():
    """All reconstructed Fig. 3 graphs are connected (like the drawings)."""
    for graph in figure3_database() + [figure3_query()]:
        assert graph.is_connected(), graph.name
