"""Unit tests of :mod:`repro.db.wal`: codec, repair, recovery, compaction."""

from __future__ import annotations

import json
import zlib

import pytest

from repro.api.ops import AddOp, RelabelOp, RemoveOp, apply_mutation
from repro.db import DurableLog, GraphDatabase, SyncPolicy
from repro.db.wal import decode_record, encode_record, recover
from repro.errors import QueryError, SerializationError, WalCorruptionError
from repro.graph.labeled_graph import LabeledGraph
from repro.shard.store import ShardedGraphDatabase


def make_graph(name: str, n: int = 3) -> LabeledGraph:
    graph = LabeledGraph(name=name)
    for i in range(n):
        graph.add_vertex(i, label="C" if i % 2 else "N")
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    return graph


def attached_log(tmp_path, sync="always", shards=1, **kwargs):
    """A fresh (db, log, handles) triple with the WAL attached."""
    if shards > 1:
        database = ShardedGraphDatabase(shards=shards, name="t")
    else:
        database = GraphDatabase(name="t")
    log = DurableLog.open(
        tmp_path / "wal", sync=sync, segments=shards, **kwargs
    )
    handle_to_id: dict[str, int] = {}
    id_to_handle: dict[int, str] = {}
    log.initialize(database, handle_to_id)
    database.attach_wal(log)
    return database, log, handle_to_id, id_to_handle


# ----------------------------------------------------------------------
# Record codec
# ----------------------------------------------------------------------
class TestRecordCodec:
    def test_round_trip(self):
        line = encode_record(3, 7, {"op": "remove", "graph_id": 1})
        record = decode_record(line.rstrip(b"\n"))
        assert record["lsn"] == 3
        assert record["version"] == 7
        assert record["op"] == {"op": "remove", "graph_id": 1}

    def test_any_flipped_byte_fails_checksum(self):
        line = encode_record(1, 1, {"op": "remove", "graph_id": 42})
        body = bytearray(line.rstrip(b"\n"))
        for index in range(len(body)):
            corrupted = bytearray(body)
            corrupted[index] ^= 0x20
            try:
                record = decode_record(bytes(corrupted))
            except WalCorruptionError:
                continue
            # A flip that still decodes must have produced JSON that
            # re-canonicalizes identically (e.g. inside ignorable
            # whitespace, which canonical dumps never emits) — with
            # separators-compact dumps there is no such byte.
            assert record == decode_record(bytes(body)), index

    def test_unserializable_payload_raises_before_write(self):
        with pytest.raises(SerializationError):
            encode_record(1, 1, {"op": "add", "graph": object()})

    def test_truncated_line_is_corrupt(self):
        line = encode_record(1, 1, {"op": "remove", "graph_id": 5})
        with pytest.raises(WalCorruptionError):
            decode_record(line[: len(line) // 2])

    def test_missing_crc_is_corrupt(self):
        raw = json.dumps({"lsn": 1, "op": {"op": "remove"}}).encode()
        with pytest.raises(WalCorruptionError):
            decode_record(raw)

    def test_missing_version_is_corrupt_not_keyerror(self):
        # Repair re-encodes records via record["version"], so a sealed
        # record without one must fail decode as corruption, not leak a
        # KeyError out of the repair pass.
        body = {"lsn": 1, "op": {"op": "remove", "graph_id": 0}}
        canonical = json.dumps(
            body, sort_keys=True, separators=(",", ":")
        ).encode()
        sealed = dict(body)
        sealed["crc"] = zlib.crc32(canonical) & 0xFFFFFFFF
        line = json.dumps(
            sealed, sort_keys=True, separators=(",", ":")
        ).encode()
        with pytest.raises(WalCorruptionError, match="version"):
            decode_record(line)


class TestSyncPolicy:
    def test_parse_modes(self):
        assert SyncPolicy.parse("always").mode == "always"
        assert SyncPolicy.parse("none").mode == "none"
        policy = SyncPolicy.parse("interval:0.25")
        assert policy.mode == "interval" and policy.interval == 0.25
        assert SyncPolicy.parse("interval").interval == pytest.approx(0.1)
        assert SyncPolicy.parse(policy) is policy

    @pytest.mark.parametrize(
        "bad", ["sometimes", "interval:-1", "interval:x", "always:5"]
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(QueryError):
            SyncPolicy.parse(bad)


# ----------------------------------------------------------------------
# Append + recover round-trips
# ----------------------------------------------------------------------
class TestRecovery:
    def test_mono_round_trip(self, tmp_path):
        database, log, h2i, i2h = attached_log(tmp_path)
        apply_mutation(database, AddOp("g0", make_graph("g0")), h2i, i2h)
        apply_mutation(database, AddOp("g1", make_graph("g1", 4)), h2i, i2h)
        apply_mutation(database, RelabelOp("g0", "g2", 1, "O"), h2i, i2h)
        apply_mutation(database, RemoveOp("g1"), h2i, i2h)
        log.close()

        state = recover(tmp_path / "wal")
        assert state.last_lsn == 4
        assert state.handle_to_id == h2i
        assert sorted(state.database.ids()) == sorted(database.ids())
        for graph_id in database.ids():
            assert (
                state.database.entry(graph_id).iso_hash
                == database.entry(graph_id).iso_hash
            )

    def test_acks_carry_monotone_lsns(self, tmp_path):
        database, log, h2i, i2h = attached_log(tmp_path)
        lsns = [
            apply_mutation(
                database, AddOp(f"g{i}", make_graph(f"g{i}")), h2i, i2h
            )["lsn"]
            for i in range(5)
        ]
        assert lsns == [1, 2, 3, 4, 5]
        log.close()

    def test_relabel_logs_one_record(self, tmp_path):
        database, log, h2i, i2h = attached_log(tmp_path)
        apply_mutation(database, AddOp("g0", make_graph("g0")), h2i, i2h)
        apply_mutation(database, RelabelOp("g0", "g1", 0, "S"), h2i, i2h)
        records = log.records()
        assert [r["op"]["op"] for r in records] == ["add", "relabel"]
        relabel = records[-1]["op"]
        assert relabel["graph_id"] == 0 and relabel["new_graph_id"] == 1
        log.close()

    def test_sharded_round_trip_preserves_placement(self, tmp_path):
        database, log, h2i, i2h = attached_log(tmp_path, shards=3)
        for i in range(12):
            apply_mutation(
                database,
                AddOp(f"g{i}", make_graph(f"g{i}", 2 + i % 4)),
                h2i,
                i2h,
            )
        apply_mutation(database, RemoveOp("g4"), h2i, i2h)
        apply_mutation(database, RelabelOp("g7", "g7b", 1, "P"), h2i, i2h)
        log.close()

        state = recover(tmp_path / "wal")
        recovered = state.database
        assert isinstance(recovered, ShardedGraphDatabase)
        assert state.handle_to_id == h2i
        assert sorted(recovered.ids()) == sorted(database.ids())
        for graph_id in database.ids():
            assert recovered.shard_of(graph_id) == database.shard_of(graph_id)

    def test_sharded_records_route_to_owning_segment(self, tmp_path):
        database, log, h2i, i2h = attached_log(tmp_path, shards=2)
        for i in range(6):
            apply_mutation(
                database, AddOp(f"g{i}", make_graph(f"g{i}")), h2i, i2h
            )
        log.close()
        per_segment = [
            len(
                [
                    line
                    for line in log.segment_path(i).read_bytes().splitlines()
                    if line
                ]
            )
            for i in range(2)
        ]
        # Hash placement: even ids on shard 0, odd on shard 1.
        assert per_segment == [3, 3]

    def test_recover_twice_equals_recover_once(self, tmp_path):
        database, log, h2i, i2h = attached_log(tmp_path)
        for i in range(6):
            apply_mutation(
                database, AddOp(f"g{i}", make_graph(f"g{i}")), h2i, i2h
            )
        apply_mutation(database, RemoveOp("g2"), h2i, i2h)
        log.close()
        first = recover(tmp_path / "wal")
        second = recover(tmp_path / "wal")
        assert first.last_lsn == second.last_lsn
        assert first.handle_to_id == second.handle_to_id
        assert sorted(first.database.ids()) == sorted(second.database.ids())

    def test_point_in_time_restore(self, tmp_path):
        database, log, h2i, i2h = attached_log(tmp_path)
        apply_mutation(database, AddOp("g0", make_graph("g0")), h2i, i2h)
        apply_mutation(database, AddOp("g1", make_graph("g1")), h2i, i2h)
        apply_mutation(database, RemoveOp("g0"), h2i, i2h)
        log.close()
        state = recover(tmp_path / "wal", upto_lsn=2)
        assert state.last_lsn == 2
        assert state.handle_to_id == {"g0": 0, "g1": 1}

    def test_restore_past_head_or_before_base_rejected(self, tmp_path):
        database, log, h2i, i2h = attached_log(tmp_path)
        apply_mutation(database, AddOp("g0", make_graph("g0")), h2i, i2h)
        with pytest.raises(QueryError):
            log.recover(upto_lsn=5)
        log.compact_from(database, h2i)
        with pytest.raises(QueryError):
            log.recover(upto_lsn=0)
        log.close()

    def test_ids_not_reused_after_recovery(self, tmp_path):
        database, log, h2i, i2h = attached_log(tmp_path)
        apply_mutation(database, AddOp("g0", make_graph("g0")), h2i, i2h)
        apply_mutation(database, AddOp("g1", make_graph("g1")), h2i, i2h)
        apply_mutation(database, RemoveOp("g1"), h2i, i2h)  # frees top id
        log.compact_from(database, h2i)  # snapshot must keep next_id=2
        log.close()
        state = recover(tmp_path / "wal")
        assert state.database.next_id == 2

    def test_raw_db_mutations_without_op_layer_recover(self, tmp_path):
        database, log, _, _ = attached_log(tmp_path)
        gid = database.insert(make_graph("raw0"), metadata={"k": "v"})
        database.insert(make_graph("raw1"))
        database.remove(gid)
        log.close()
        state = recover(tmp_path / "wal")
        assert sorted(state.database.ids()) == [1]
        assert state.handle_to_id == {"raw1": 1}

    def test_recover_without_snapshot_rejected(self, tmp_path):
        log = DurableLog.open(tmp_path / "wal")
        with pytest.raises(QueryError):
            log.recover()
        log.close()


# ----------------------------------------------------------------------
# Repair on open
# ----------------------------------------------------------------------
class TestRepair:
    def _populated(self, tmp_path, n=4, sync="always"):
        database, log, h2i, i2h = attached_log(tmp_path, sync=sync)
        for i in range(n):
            apply_mutation(
                database, AddOp(f"g{i}", make_graph(f"g{i}")), h2i, i2h
            )
        log.close()
        return log.segment_path(0)

    def test_partial_final_line_truncated(self, tmp_path):
        segment = self._populated(tmp_path)
        original = segment.read_bytes()
        segment.write_bytes(original + b'{"lsn": 99, "ver')
        log = DurableLog.open(tmp_path / "wal")
        assert log.repair.torn_records == 1
        assert log.recover().last_lsn == 4
        assert segment.read_bytes() == original  # physically repaired
        log.close()

    def test_checksum_failed_final_record_truncated(self, tmp_path):
        segment = self._populated(tmp_path)
        lines = segment.read_bytes().splitlines(keepends=True)
        bad = lines[-1].replace(b'"op": "add"', b'"op": "sub"', 1)
        bad = bad if bad != lines[-1] else lines[-1][:-10] + b"tampered}\n"
        segment.write_bytes(b"".join(lines[:-1]) + bad)
        log = DurableLog.open(tmp_path / "wal")
        assert log.repair.torn_records == 1
        assert log.recover().last_lsn == 3
        log.close()

    def test_mid_log_corruption_refused(self, tmp_path):
        segment = self._populated(tmp_path)
        lines = segment.read_bytes().splitlines(keepends=True)
        lines[1] = b'{"corrupt": true}\n'
        segment.write_bytes(b"".join(lines))
        with pytest.raises(WalCorruptionError, match="mid-log"):
            DurableLog.open(tmp_path / "wal")

    def test_appends_continue_after_tail_repair(self, tmp_path):
        segment = self._populated(tmp_path)
        segment.write_bytes(segment.read_bytes() + b"garbage-tail")
        log = DurableLog.open(tmp_path / "wal")
        state = log.recover()
        database = state.database
        database.attach_wal(log)
        ack = apply_mutation(
            database,
            AddOp("g9", make_graph("g9")),
            state.handle_to_id,
            state.id_to_handle,
        )
        assert ack["lsn"] == 5  # LSN sequence resumes after the repair
        log.close()
        assert recover(tmp_path / "wal").last_lsn == 5

    def test_cross_segment_gap_truncates_orphans(self, tmp_path):
        database, log, h2i, i2h = attached_log(tmp_path, shards=2)
        for i in range(6):
            apply_mutation(
                database, AddOp(f"g{i}", make_graph(f"g{i}")), h2i, i2h
            )
        log.close()
        # Hash placement alternates shards, so dropping segment 0's tail
        # record (lsn 5) orphans segment 1's lsn 6.
        seg0 = log.segment_path(0)
        lines = seg0.read_bytes().splitlines(keepends=True)
        seg0.write_bytes(b"".join(lines[:-1]))
        reopened = DurableLog.open(tmp_path / "wal")
        assert reopened.repair.orphaned_records == 1
        state = reopened.recover()
        assert state.last_lsn == 4
        assert sorted(state.handle_to_id) == ["g0", "g1", "g2", "g3"]
        reopened.close()

    def test_stale_records_from_interrupted_compaction_dropped(
        self, tmp_path
    ):
        database, log, h2i, i2h = attached_log(tmp_path)
        for i in range(3):
            apply_mutation(
                database, AddOp(f"g{i}", make_graph(f"g{i}")), h2i, i2h
            )
        # Simulate a crash after the snapshot replaced but before the
        # segment reset: write the snapshot, leave the records in place.
        payload = json.loads(
            (tmp_path / "wal" / "snapshot.json").read_text("utf-8")
        )
        from repro.db.wal import _snapshot_payload
        from repro.db.persistence import atomic_write_text

        atomic_write_text(
            tmp_path / "wal" / "snapshot.json",
            json.dumps(_snapshot_payload(database, h2i, log.last_lsn)),
        )
        log.close()
        assert payload["base_lsn"] == 0  # the pre-crash snapshot was empty
        reopened = DurableLog.open(tmp_path / "wal")
        assert reopened.repair.stale_records == 3
        state = reopened.recover()
        assert state.replayed == 0  # everything now lives in the snapshot
        assert sorted(state.handle_to_id) == ["g0", "g1", "g2"]
        reopened.close()


    def test_stale_rewrite_then_orphan_cut_uses_rewritten_offsets(
        self, tmp_path
    ):
        # One repair pass can both drop stale records (rewriting the
        # segment) and cut orphans; the cut must use post-rewrite byte
        # offsets or it leaves garbage behind.
        database, log, h2i, i2h = attached_log(tmp_path, shards=2)
        for i in range(6):
            apply_mutation(
                database, AddOp(f"g{i}", make_graph(f"g{i}")), h2i, i2h
            )
        # Pretend a compaction at lsn 2 crashed before the segment
        # reset: snapshot the state after the first two adds, leave
        # every record in place.
        oracle = ShardedGraphDatabase(shards=2, name="t")
        oh2i: dict[str, int] = {}
        oi2h: dict[int, str] = {}
        for i in range(2):
            apply_mutation(
                oracle, AddOp(f"g{i}", make_graph(f"g{i}")), oh2i, oi2h
            )
        from repro.db.persistence import atomic_write_text
        from repro.db.wal import _snapshot_payload

        atomic_write_text(
            tmp_path / "wal" / "snapshot.json",
            json.dumps(_snapshot_payload(oracle, oh2i, 2)),
        )
        log.close()
        # ...and the buffered tail of segment 0 (lsn 5) was lost, which
        # orphans lsn 6 in segment 1.
        seg0 = log.segment_path(0)
        lines = seg0.read_bytes().splitlines(keepends=True)
        seg0.write_bytes(b"".join(lines[:-1]))

        reopened = DurableLog.open(tmp_path / "wal")
        assert reopened.repair.stale_records == 2  # lsns 1 and 2
        assert reopened.repair.orphaned_records == 1  # lsn 6
        state = reopened.recover()
        assert state.last_lsn == 4
        assert sorted(state.handle_to_id) == ["g0", "g1", "g2", "g3"]
        reopened.close()
        # The segments were physically repaired: a second open is clean
        # and recovers identically.
        again = DurableLog.open(tmp_path / "wal")
        assert again.repair.clean
        assert again.recover().last_lsn == 4
        again.close()


# ----------------------------------------------------------------------
# Write-ahead rollback (annul)
# ----------------------------------------------------------------------
class TestAnnul:
    def test_empty_graph_relabel_rejected_before_append(self, tmp_path):
        database, log, h2i, i2h = attached_log(tmp_path)
        apply_mutation(
            database, AddOp("g0", LabeledGraph(name="g0")), h2i, i2h
        )
        with pytest.raises(QueryError, match="no vertices"):
            apply_mutation(database, RelabelOp("g0", "g1", 0, "O"), h2i, i2h)
        # No phantom record hit the log, the maps are intact, and the
        # log keeps serving.
        assert [r["op"]["op"] for r in log.records()] == ["add"]
        assert h2i == {"g0": 0} and i2h == {0: "g0"}
        ack = apply_mutation(database, AddOp("g2", make_graph("g2")), h2i, i2h)
        assert ack["lsn"] == 2
        log.close()
        state = recover(tmp_path / "wal")
        assert state.last_lsn == 2
        assert sorted(state.handle_to_id) == ["g0", "g2"]

    def test_apply_failure_after_append_annuls_the_record(self, tmp_path):
        database, log, h2i, i2h = attached_log(tmp_path)
        apply_mutation(database, AddOp("g0", make_graph("g0")), h2i, i2h)

        def boom(graph, *args, **kwargs):
            raise RuntimeError("injected insert failure")

        database.insert = boom
        try:
            with pytest.raises(RuntimeError):
                apply_mutation(
                    database, AddOp("g1", make_graph("g1")), h2i, i2h
                )
        finally:
            del database.insert
        # The write-ahead record was rolled back: no phantom write on
        # replay, the LSN is released, and the retry commits cleanly.
        assert [r["op"]["op"] for r in log.records()] == ["add"]
        assert h2i == {"g0": 0}
        ack = apply_mutation(database, AddOp("g1", make_graph("g1")), h2i, i2h)
        assert ack["lsn"] == 2
        log.close()
        state = recover(tmp_path / "wal")
        assert state.last_lsn == 2
        assert sorted(state.handle_to_id) == ["g0", "g1"]

    def test_annul_truncates_bytes_and_releases_lsn(self, tmp_path):
        database, log, h2i, i2h = attached_log(tmp_path)
        apply_mutation(database, AddOp("g0", make_graph("g0")), h2i, i2h)
        before = log.segment_path(0).read_bytes()
        lsn = log.append(
            {"op": "remove", "handle": "g0", "graph_id": 0},
            database.version + 1,
        )
        assert lsn == 2
        log.annul(lsn)
        assert log.last_lsn == 1
        log.sync()
        assert log.segment_path(0).read_bytes() == before
        log.close()

    def test_annul_accepts_only_the_newest_append(self, tmp_path):
        database, log, h2i, i2h = attached_log(tmp_path)
        apply_mutation(database, AddOp("g0", make_graph("g0")), h2i, i2h)
        with pytest.raises(QueryError, match="most recent"):
            log.annul(7)
        log.annul(1)
        with pytest.raises(QueryError, match="most recent"):
            log.annul(1)  # already rolled back
        log.close()


# ----------------------------------------------------------------------
# Compaction
# ----------------------------------------------------------------------
class TestCompaction:
    def test_compact_preserves_state_and_resets_segments(self, tmp_path):
        database, log, h2i, i2h = attached_log(tmp_path)
        for i in range(5):
            apply_mutation(
                database, AddOp(f"g{i}", make_graph(f"g{i}")), h2i, i2h
            )
        apply_mutation(database, RemoveOp("g1"), h2i, i2h)
        log.compact_from(database, h2i)
        assert log.records() == []
        assert log.base_lsn == 6
        state = log.recover()
        assert state.replayed == 0
        assert state.handle_to_id == h2i
        log.close()

    def test_auto_compaction_via_threshold(self, tmp_path):
        database, log, h2i, i2h = attached_log(tmp_path, compact_every=3)
        for i in range(7):
            apply_mutation(
                database, AddOp(f"g{i}", make_graph(f"g{i}")), h2i, i2h
            )
        # Compacted after ops 3 and 6; one live record (op 7) remains.
        assert log.base_lsn == 6
        assert len(log.records()) == 1
        log.close()
        state = recover(tmp_path / "wal")
        assert len(state.database) == 7
        assert state.last_lsn == 7

    def test_appends_after_compaction_recover(self, tmp_path):
        database, log, h2i, i2h = attached_log(tmp_path)
        apply_mutation(database, AddOp("g0", make_graph("g0")), h2i, i2h)
        log.compact_from(database, h2i)
        apply_mutation(database, AddOp("g1", make_graph("g1")), h2i, i2h)
        log.close()
        state = recover(tmp_path / "wal")
        assert state.base_lsn == 1
        assert state.last_lsn == 2
        assert sorted(state.handle_to_id) == ["g0", "g1"]


# ----------------------------------------------------------------------
# Lifecycle misc
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_reopen_with_conflicting_segments_rejected(self, tmp_path):
        database, log, *_ = attached_log(tmp_path, shards=2)
        log.close()
        with pytest.raises(QueryError, match="segments"):
            DurableLog.open(tmp_path / "wal", segments=4)

    def test_double_initialize_rejected(self, tmp_path):
        database, log, h2i, _ = attached_log(tmp_path)
        with pytest.raises(QueryError):
            log.initialize(database, h2i)
        log.close()

    def test_append_after_close_rejected(self, tmp_path):
        database, log, h2i, i2h = attached_log(tmp_path)
        log.close()
        with pytest.raises(QueryError):
            apply_mutation(database, AddOp("g0", make_graph("g0")), h2i, i2h)

    def test_failed_append_leaves_database_untouched(self, tmp_path):
        database, log, h2i, i2h = attached_log(tmp_path)
        log.close()  # appends now fail
        with pytest.raises(QueryError):
            apply_mutation(database, AddOp("g0", make_graph("g0")), h2i, i2h)
        # Write-ahead: the rejected mutation never applied.
        assert len(database) == 0
        assert h2i == {}

    def test_detach_stops_logging(self, tmp_path):
        database, log, h2i, i2h = attached_log(tmp_path)
        apply_mutation(database, AddOp("g0", make_graph("g0")), h2i, i2h)
        assert database.detach_wal() is log
        apply_mutation(database, AddOp("g1", make_graph("g1")), h2i, i2h)
        assert log.last_lsn == 1
        log.close()

    def test_sync_none_survives_clean_close(self, tmp_path):
        database, log, h2i, i2h = attached_log(tmp_path, sync="none")
        for i in range(4):
            apply_mutation(
                database, AddOp(f"g{i}", make_graph(f"g{i}")), h2i, i2h
            )
        log.close()  # close() always flushes + fsyncs
        assert recover(tmp_path / "wal").last_lsn == 4
