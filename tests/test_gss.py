"""Tests for the graph similarity skyline (Section V / Equation 4)."""

import pytest

from repro.core import graph_similarity_skyline
from repro.datasets import EXPECTED_GSS
from repro.graph import path_graph
from repro.skyline import ALGORITHMS


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_paper_skyline_every_algorithm(paper_db, paper_query, algorithm):
    result = graph_similarity_skyline(paper_db, paper_query, algorithm=algorithm)
    assert tuple(g.name for g in result.skyline) == EXPECTED_GSS


def test_result_metadata(paper_db, paper_query):
    result = graph_similarity_skyline(paper_db, paper_query)
    assert result.measures == ("edit", "mcs", "union")
    assert len(result.graphs) == 7
    assert len(result.vectors) == 7
    assert len(result) == 4
    assert result.query is paper_query


def test_result_contains_protocol(paper_db, paper_query):
    result = graph_similarity_skyline(paper_db, paper_query)
    assert paper_db[0] in result  # g1
    assert paper_db[1] not in result  # g2


def test_skyline_vectors_aligned(paper_db, paper_query):
    result = graph_similarity_skyline(paper_db, paper_query)
    for graph, vector in zip(result.skyline, result.skyline_vectors):
        index = result.graphs.index(graph)
        assert result.vectors[index] is vector


def test_dominators_of(paper_db, paper_query):
    result = graph_similarity_skyline(paper_db, paper_query)
    names = [g.name for g in result.graphs]
    # skyline members have no dominators
    for index in result.skyline_indices:
        assert result.dominators_of(index) == []
    # g2 (index 1) is dominated by g7; g6 (index 5) by g1
    assert "g7" in {names[j] for j in result.dominators_of(1)}
    assert "g1" in {names[j] for j in result.dominators_of(5)}


def test_to_rows_table(paper_db, paper_query):
    rows = graph_similarity_skyline(paper_db, paper_query).to_rows()
    assert len(rows) == 7
    g1_row = rows[0]
    assert g1_row["graph"] == "g1"
    assert g1_row["edit"] == 4.0
    assert g1_row["in_skyline"] is True
    g2_row = rows[1]
    assert g2_row["in_skyline"] is False


def test_empty_database(paper_query):
    result = graph_similarity_skyline([], paper_query)
    assert result.skyline == []
    assert result.measures == ()


def test_single_graph_database(paper_query):
    graph = path_graph(["A", "B"], name="only")
    result = graph_similarity_skyline([graph], paper_query)
    assert [g.name for g in result.skyline] == ["only"]


def test_identical_query_graph_dominates_everything(paper_db, paper_query):
    """A database copy of q itself has GCS (0,0,0) and is the sole skyline
    member unless others tie on every dimension."""
    database = list(paper_db) + [paper_query.copy(name="q-clone")]
    result = graph_similarity_skyline(database, paper_query)
    assert [g.name for g in result.skyline] == ["q-clone"]


def test_duplicate_graphs_both_in_skyline(paper_db, paper_query):
    g1_twin = paper_db[0].copy(name="g1-twin")
    database = list(paper_db) + [g1_twin]
    result = graph_similarity_skyline(database, paper_query)
    names = {g.name for g in result.skyline}
    assert {"g1", "g1-twin"} <= names


def test_custom_measures_change_skyline(paper_db, paper_query):
    # On DistEd alone the unique minimiser is g4 (distance 2).
    result = graph_similarity_skyline(paper_db, paper_query, measures=("edit",))
    assert [g.name for g in result.skyline] == ["g4"]
