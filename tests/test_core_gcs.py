"""Tests for GCS vectors and similarity-dominance (Definitions 11-12)."""

import pytest

from repro.core import (
    CompoundSimilarity,
    compound_similarity,
    gcs_matrix,
    similarity_dominates,
    similarity_incomparable,
)
from repro.graph import path_graph
from repro.measures import EditDistance, FunctionMeasure


def test_gcs_default_measures(fig1_g1, fig1_g2):
    vector = compound_similarity(fig1_g1, fig1_g2)
    assert vector.measures == ("edit", "mcs", "union")
    assert vector.values[0] == 4.0
    assert vector.values[1] == pytest.approx(1 - 4 / 6)
    assert vector.values[2] == pytest.approx(0.5)


def test_gcs_container_protocol(fig1_g1, fig1_g2):
    vector = compound_similarity(fig1_g1, fig1_g2)
    assert len(vector) == 3
    assert vector[0] == 4.0
    assert list(vector) == list(vector.values)
    assert vector.as_dict()["edit"] == 4.0
    assert "edit=4" in repr(vector)


def test_gcs_custom_measures(fig1_g1, fig1_g2):
    size_gap = FunctionMeasure(
        lambda a, b: abs(a.size - b.size), name="size-gap"
    )
    vector = compound_similarity(fig1_g1, fig1_g2, measures=[size_gap, "edit"])
    assert vector.measures == ("size-gap", "edit")
    assert vector.values == (0.0, 4.0)


def test_gcs_by_name_specs(fig1_g1, fig1_g2):
    vector = compound_similarity(fig1_g1, fig1_g2, measures=("mcs", "union"))
    assert vector.measures == ("mcs", "union")


def test_gcs_matrix_orders_and_dimensions(paper_db, paper_query):
    matrix = gcs_matrix(paper_db, paper_query)
    assert len(matrix) == len(paper_db)
    assert all(isinstance(vector, CompoundSimilarity) for vector in matrix)
    assert all(len(vector) == 3 for vector in matrix)


def test_gcs_matrix_empty_database(paper_query):
    assert gcs_matrix([], paper_query) == []


def test_self_gcs_is_zero(paper_query):
    vector = compound_similarity(paper_query, paper_query.copy())
    assert all(value == pytest.approx(0.0) for value in vector.values)


# ----------------------------------------------------------------------
# Definition 12
# ----------------------------------------------------------------------
def test_similarity_dominance_on_paper_pairs(paper_db, paper_query):
    by_name = {graph.name: graph for graph in paper_db}
    # The paper: g7 dominates g2, g5 dominates g3, g1 dominates g6.
    assert similarity_dominates(by_name["g7"], by_name["g2"], paper_query)
    assert similarity_dominates(by_name["g5"], by_name["g3"], paper_query)
    assert similarity_dominates(by_name["g1"], by_name["g6"], paper_query)
    # ... and never the other way round.
    assert not similarity_dominates(by_name["g2"], by_name["g7"], paper_query)
    assert not similarity_dominates(by_name["g6"], by_name["g1"], paper_query)


def test_similarity_dominance_is_irreflexive(paper_db, paper_query):
    g1 = paper_db[0]
    assert not similarity_dominates(g1, g1.copy(), paper_query)


def test_skyline_members_pairwise_incomparable(paper_db, paper_query):
    by_name = {graph.name: graph for graph in paper_db}
    members = [by_name[name] for name in ("g1", "g4", "g5", "g7")]
    for i, a in enumerate(members):
        for b in members[i + 1:]:
            assert similarity_incomparable(a, b, paper_query), (a.name, b.name)


def test_dominance_with_single_measure(paper_db, paper_query):
    by_name = {graph.name: graph for graph in paper_db}
    # On DistEd alone, g4 (distance 2) dominates g1 (distance 4).
    assert similarity_dominates(
        by_name["g4"], by_name["g1"], paper_query, measures=[EditDistance()]
    )
