"""VP-tree searches must equal the brute-force scan, and scan fewer rows.

Range search and k-nearest-rows over the signature edit-bound metric are
compared against a full vectorized scan on hypothesis-generated
populations; a larger deterministic population checks that the triangle-
inequality pruning actually skips rows (the sublinearity the bench then
measures at scale).
"""

import pytest

np = pytest.importorskip("numpy", reason="repro.index requires NumPy")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.features import GraphFeatures
from repro.index import SignatureMatrix, VPTree, signature_distances

from tests.conftest import make_random_graph, small_labeled_graphs

relaxed = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

populations = st.lists(small_labeled_graphs(max_vertices=5), min_size=0, max_size=20)
query_graphs = small_labeled_graphs(max_vertices=5)


def _setup(graphs, query):
    matrix = SignatureMatrix()
    for graph_id, graph in enumerate(graphs):
        matrix.add(graph_id, GraphFeatures.of(graph))
    packed = matrix.pack_query(GraphFeatures.of(query))
    rows = np.arange(len(matrix), dtype=np.int64)
    exact = signature_distances(matrix, rows, packed)
    return matrix, packed, exact


@relaxed
@given(
    graphs=populations,
    query=query_graphs,
    radius=st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
)
def test_range_search_equals_brute_force(graphs, query, radius):
    matrix, packed, exact = _setup(graphs, query)
    tree = VPTree(matrix, leaf_size=3)
    found = tree.range_rows(packed, radius).tolist()
    expected = np.flatnonzero(exact <= radius).tolist()
    assert found == expected


@relaxed
@given(
    graphs=populations,
    query=query_graphs,
    k=st.integers(min_value=1, max_value=6),
)
def test_nearest_rows_equals_brute_force(graphs, query, k):
    matrix, packed, exact = _setup(graphs, query)
    tree = VPTree(matrix, leaf_size=3)
    rows, distances = tree.nearest_rows(packed, k)
    ids = matrix.ids
    expected = sorted(
        range(len(matrix)), key=lambda row: (exact[row], int(ids[row]))
    )[:k]
    assert rows.tolist() == expected
    assert distances.tolist() == [exact[row] for row in expected]


def test_pruning_skips_rows_on_a_spread_population():
    graphs = [
        make_random_graph(seed, max_vertices=9, labels=("A", "B", "C", "D"))
        for seed in range(300)
    ]
    matrix = SignatureMatrix()
    for graph_id, graph in enumerate(graphs):
        matrix.add(graph_id, GraphFeatures.of(graph))
    tree = VPTree(matrix)
    packed = matrix.pack_query(GraphFeatures.of(make_random_graph(999)))

    hits = tree.range_rows(packed, 1.0)
    assert tree.last_rows_scanned < len(matrix), (
        f"range search scanned all {tree.last_rows_scanned} rows"
    )
    rows = np.arange(len(matrix), dtype=np.int64)
    exact = signature_distances(matrix, rows, packed)
    assert hits.tolist() == np.flatnonzero(exact <= 1.0).tolist()

    nearest, _ = tree.nearest_rows(packed, 5)
    assert tree.last_rows_scanned < len(matrix)
    expected = sorted(range(len(matrix)), key=lambda r: (exact[r], r))[:5]
    assert nearest.tolist() == expected


def test_empty_and_tiny_trees():
    matrix = SignatureMatrix()
    tree = VPTree(matrix)
    packed = matrix.pack_query(GraphFeatures.of(make_random_graph(1)))
    assert tree.range_rows(packed, 10.0).tolist() == []
    rows, distances = tree.nearest_rows(packed, 3)
    assert rows.tolist() == [] and distances.tolist() == []

    matrix.add(7, GraphFeatures.of(make_random_graph(2)))
    tree = VPTree(matrix)
    packed = matrix.pack_query(GraphFeatures.of(make_random_graph(2)))
    assert tree.range_rows(packed, 0.0).tolist() == [0]
    rows, _ = tree.nearest_rows(packed, 2)
    assert rows.tolist() == [0]
