"""Kill-and-recover corpus: fork, SIGKILL mid-workload, recover, check.

Pinned seeds run in tier-1; the open-ended search lives in the fuzz CI
job (``python -m repro fuzz --kill-recover``). Every case asserts the
durability contract from the WAL design:

* no acked write is lost under ``sync=always``,
* no phantom (never-acked) write appears under any policy,
* torn final records are truncated, not fatal,
* recovering twice equals recovering once.
"""

from __future__ import annotations

import sys

import pytest

from repro.testkit import generate_crash_workload, run_kill_recover
from repro.testkit.crash import mutation_steps, replay_prefix

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="kill-and-recover needs fork + SIGKILL"
)

# (seed, sync, shards, kill_at): small pinned corpus, one process each.
CORPUS = [
    (11, "always", 1, 5),
    (11, "always", 3, 9),
    (23, "always", 2, 1),
    (23, "interval:0.05", 2, 7),
    (37, "none", 1, 6),
    (37, "always", 2, None),  # seed-derived kill point
]


@pytest.mark.parametrize("seed,sync,shards,kill_at", CORPUS)
def test_kill_recover_corpus(seed, sync, shards, kill_at):
    workload = generate_crash_workload(seed, n_steps=40)
    report = run_kill_recover(
        workload, sync=sync, shards=shards, kill_at=kill_at
    )
    assert report.ok, report.summary()


def test_kill_after_last_step_is_clean_crash(tmp_path):
    workload = generate_crash_workload(51, n_steps=20)
    steps = mutation_steps(workload)
    report = run_kill_recover(
        workload, sync="always", shards=2, kill_at=len(steps)
    )
    assert report.ok, report.summary()
    assert report.recovered_lsn == len(steps)


def test_replay_prefix_matches_full_oracle():
    workload = generate_crash_workload(13, n_steps=30)
    steps = mutation_steps(workload)
    full = replay_prefix(steps, shards=2)
    half = replay_prefix(steps, shards=2, upto_applied=len(steps) // 2)
    # The half-prefix store holds a subset of handles created so far.
    full_db, full_handles, _ = full
    half_db, half_handles, _ = half
    assert len(half_db) <= len(full_db) or set(half_handles) != set(
        full_handles
    )
    assert full_db.next_id >= half_db.next_id
