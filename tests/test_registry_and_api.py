"""Release hygiene: registry-wide measure axioms and public API integrity."""

import pytest

import repro
import repro.core
import repro.db
import repro.graph
import repro.measures
import repro.skyline
from repro.graph import is_isomorphic
from repro.measures import available_measures, get_measure
from tests.conftest import make_random_graph


# ----------------------------------------------------------------------
# Every registered measure obeys the basic axioms on a sample
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sample_graphs():
    return [make_random_graph(seed, max_vertices=5) for seed in range(5)]


@pytest.mark.parametrize("name", sorted(
    # resolve lazily so new registrations are picked up automatically
    ["edit", "edit-normalized", "mcs", "union",
     "jaccard-edges", "degree-sequence", "wl-kernel", "spectral"]
))
def test_registered_measure_axioms(name, sample_graphs):
    measure = get_measure(name)
    for graph in sample_graphs:
        twin = graph.copy()
        assert is_isomorphic(graph, twin)
        assert measure.distance(graph, twin) == pytest.approx(0.0, abs=1e-9), (
            f"{name} violates identity on isomorphic graphs"
        )
    for i, g1 in enumerate(sample_graphs):
        for g2 in sample_graphs[i + 1:]:
            forward = measure.distance(g1, g2)
            backward = measure.distance(g2, g1)
            assert forward == pytest.approx(backward), f"{name} asymmetric"
            assert forward >= -1e-12, f"{name} negative"
            if measure.normalized:
                assert forward <= 1.0 + 1e-9, f"{name} exceeds [0, 1]"


def test_registry_covers_expected_measures():
    assert set(available_measures()) >= {
        "edit", "edit-normalized", "mcs", "union",
        "jaccard-edges", "degree-sequence", "wl-kernel", "spectral",
    }


# ----------------------------------------------------------------------
# __all__ integrity
# ----------------------------------------------------------------------
def _module(name: str):
    # repro.skyline the *module* is shadowed on the package by the
    # re-exported skyline() *function* (a datetime.datetime-style alias);
    # sys.modules always holds the real module.
    import importlib

    return importlib.import_module(name)


@pytest.mark.parametrize("module", [
    _module("repro"),
    _module("repro.graph"),
    _module("repro.measures"),
    _module("repro.skyline"),
    _module("repro.core"),
    _module("repro.db"),
], ids=lambda m: m.__name__)
def test_dunder_all_resolvable(module):
    assert module.__all__, f"{module.__name__} has an empty __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module.__name__}.{name} missing"
    assert len(set(module.__all__)) == len(module.__all__), "duplicate exports"


def test_version_string():
    assert repro.__version__ == "1.0.0"


def test_star_import_surface():
    namespace: dict = {}
    exec("from repro import *", namespace)  # noqa: S102 - deliberate
    assert "graph_similarity_skyline" in namespace
    assert "refine_by_diversity" in namespace
    assert "LabeledGraph" in namespace
