"""Tests for the database store and feature index."""

import pytest

from repro.db import FeatureIndex, GraphDatabase
from repro.errors import DatasetError
from repro.graph import GraphFeatures, LabeledGraph, path_graph
from repro.measures import EditDistance, default_measures
from tests.conftest import make_random_graph


# ----------------------------------------------------------------------
# GraphDatabase
# ----------------------------------------------------------------------
def test_insert_get_len():
    db = GraphDatabase()
    gid = db.insert(path_graph(["A", "B"], name="p"))
    assert len(db) == 1
    assert gid in db
    assert db.get(gid).name == "p"


def test_insert_copies_graph():
    db = GraphDatabase()
    graph = path_graph(["A", "B"])
    gid = db.insert(graph)
    graph.add_vertex(99, "Z")  # mutate caller's object afterwards
    assert db.get(gid).order == 2


def test_ids_and_graphs_in_insertion_order(paper_db):
    db = GraphDatabase.from_graphs(paper_db)
    assert db.ids() == list(range(7))
    assert [g.name for g in db.graphs()] == [g.name for g in paper_db]


def test_iteration_yields_pairs(paper_db):
    db = GraphDatabase.from_graphs(paper_db)
    pairs = list(db)
    assert pairs[0][0] == 0
    assert pairs[0][1].name == "g1"


def test_remove(paper_db):
    db = GraphDatabase.from_graphs(paper_db)
    db.remove(0)
    assert len(db) == 6
    assert 0 not in db
    with pytest.raises(DatasetError):
        db.get(0)
    with pytest.raises(DatasetError):
        db.remove(0)


def test_entry_exposes_features_and_metadata():
    db = GraphDatabase()
    gid = db.insert(path_graph(["A", "B"]), metadata={"source": "unit"})
    entry = db.entry(gid)
    assert entry.features.size == 1
    assert entry.metadata["source"] == "unit"
    with pytest.raises(DatasetError):
        db.entry(999)


def test_find_isomorphic():
    db = GraphDatabase()
    original = LabeledGraph.from_edges([("x", "y", "e")],
                                       vertex_labels={"x": "A", "y": "B"})
    gid = db.insert(original)
    # same structure, different ids and insertion order
    twin = LabeledGraph.from_edges([("q", "p", "e")],
                                   vertex_labels={"p": "A", "q": "B"})
    assert db.find_isomorphic(twin) == gid
    other = LabeledGraph.from_edges([("x", "y", "f")],
                                    vertex_labels={"x": "A", "y": "B"})
    assert db.find_isomorphic(other) is None


def test_deduplicating_bulk_load():
    g = path_graph(["A", "B", "C"], name="one")
    twin = path_graph(["A", "B", "C"], name="two")
    db = GraphDatabase.from_graphs([g, twin], deduplicate=True)
    assert len(db) == 1
    db_all = GraphDatabase.from_graphs([g, twin], deduplicate=False)
    assert len(db_all) == 2


def test_repr():
    db = GraphDatabase(name="mol")
    assert "mol" in repr(db)


# ----------------------------------------------------------------------
# FeatureIndex
# ----------------------------------------------------------------------
def test_index_add_discard():
    index = FeatureIndex()
    features = GraphFeatures.of(path_graph(["A", "B"]))
    index.add(1, features)
    assert 1 in index
    assert len(index) == 1
    assert index.features(1) is features
    index.discard(1)
    assert 1 not in index
    index.discard(1)  # idempotent


def test_optimistic_vector_is_lower_bound(paper_db, paper_query):
    from repro.measures import PairContext

    index = FeatureIndex()
    for i, graph in enumerate(paper_db):
        index.add(i, GraphFeatures.of(graph))
    measures = default_measures()
    query_features = GraphFeatures.of(paper_query)
    for i, graph in enumerate(paper_db):
        optimistic = index.optimistic_vector(i, query_features, measures)
        context = PairContext(graph, paper_query)
        exact = tuple(m.distance(graph, paper_query, context) for m in measures)
        assert all(o <= e + 1e-9 for o, e in zip(optimistic, exact)), graph.name


def test_optimistic_vector_unknown_measure_gets_zero(paper_db, paper_query):
    from repro.measures import FunctionMeasure

    index = FeatureIndex()
    index.add(0, GraphFeatures.of(paper_db[0]))
    odd = FunctionMeasure(lambda a, b: 42.0, name="odd")
    vector = index.optimistic_vector(0, GraphFeatures.of(paper_query), [odd])
    assert vector == (0.0,)


def test_threshold_candidates_sound(paper_db, paper_query):
    index = FeatureIndex()
    for i, graph in enumerate(paper_db):
        index.add(i, GraphFeatures.of(graph))
    measure = EditDistance()
    threshold = 3.0
    candidates = set(
        index.threshold_candidates(GraphFeatures.of(paper_query), measure, threshold)
    )
    # every graph truly within the threshold must be among the candidates
    for i, graph in enumerate(paper_db):
        if measure.distance(graph, paper_query) <= threshold:
            assert i in candidates, graph.name


def test_threshold_candidates_unknown_measure_returns_all(paper_db, paper_query):
    from repro.measures import FunctionMeasure

    index = FeatureIndex()
    for i, graph in enumerate(paper_db):
        index.add(i, GraphFeatures.of(graph))
    odd = FunctionMeasure(lambda a, b: 0.0, name="odd")
    assert len(index.threshold_candidates(
        GraphFeatures.of(paper_query), odd, 0.1)) == len(paper_db)
