"""Tests for the bench harness utilities (rendering, comparisons, report)."""

import pytest

from repro.bench import (
    agreement_summary,
    comparison_rows,
    compute_paper_example_report,
    format_value,
    query_side_vectors,
    render_table,
)
from repro.datasets import figure3_database, figure3_query


# ----------------------------------------------------------------------
# format_value / render_table
# ----------------------------------------------------------------------
def test_format_value():
    assert format_value(True) == "yes"
    assert format_value(False) == "no"
    assert format_value(4.0) == "4"
    assert format_value(0.3333, digits=2) == "0.33"
    assert format_value(0.3333, digits=3) == "0.333"
    assert format_value("text") == "text"
    assert format_value(7) == "7"


def test_render_table_alignment():
    table = render_table(
        ["name", "value"],
        [["alpha", 1.5], ["b", 20]],
        title="demo",
    )
    lines = table.splitlines()
    assert lines[0] == "demo"
    assert lines[1].startswith("name")
    assert set(lines[2]) == {"-"}
    assert "alpha" in lines[3]
    assert "20" in lines[4]


def test_render_table_empty_rows():
    table = render_table(["a", "b"], [])
    assert "a" in table and "b" in table


# ----------------------------------------------------------------------
# comparison helpers
# ----------------------------------------------------------------------
def test_comparison_rows_and_summary():
    paper = {"x": 0.33, "y": 0.50}
    measured = {"x": 0.3333, "y": 0.61}
    rows = comparison_rows(paper, measured, tolerance=0.01)
    verdicts = {row[0]: row[-1] for row in rows}
    assert verdicts == {"x": "OK", "y": "DIFF"}
    assert agreement_summary(rows) == "1/2 cells agree with the paper"


# ----------------------------------------------------------------------
# paper-example report
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def report():
    return compute_paper_example_report()


def test_report_covers_all_artifacts(report):
    assert len(report.mcs_with_query) == 7
    assert len(report.gcs) == 7
    assert report.skyline == ["g1", "g4", "g5", "g7"]
    assert len(report.pairwise_mcs) == 6
    assert len(report.diversity_vectors) == 6
    assert len(report.diversity_ranks) == 6
    assert report.diverse_subset == ["g1", "g4"]
    assert "g3" in report.topk_edit


def test_report_val_equals_rank_sum(report):
    for key, ranks in report.diversity_ranks.items():
        assert report.diversity_val[key] == sum(ranks)


def test_query_side_vectors_match_report(report):
    vectors = query_side_vectors(figure3_database(), figure3_query())
    for name, vector in vectors.items():
        assert vector == pytest.approx(report.gcs[name])
