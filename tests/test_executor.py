"""Tests for the pruning query executor."""

import pytest

from repro.core import graph_similarity_skyline
from repro.datasets import make_workload
from repro.db import GraphDatabase, SkylineExecutor
from repro.graph import path_graph
from repro.measures import EditDistance


@pytest.fixture
def paper_executor(paper_db):
    return SkylineExecutor(GraphDatabase.from_graphs(paper_db))


def test_executor_reproduces_paper_skyline(paper_executor, paper_db, paper_query):
    result = paper_executor.execute(paper_query)
    names = [g.name for g in result.skyline_graphs(paper_executor.database)]
    assert names == ["g1", "g4", "g5", "g7"]


def test_pruned_equals_unpruned_on_paper(paper_db, paper_query):
    db = GraphDatabase.from_graphs(paper_db)
    with_index = SkylineExecutor(db, use_index=True).execute(paper_query)
    without_index = SkylineExecutor(db, use_index=False).execute(paper_query)
    assert with_index.skyline_ids == without_index.skyline_ids


def test_pruned_equals_unpruned_on_synthetic_workload():
    workload = make_workload(n_graphs=24, query_size=6, seed=11)
    db = GraphDatabase.from_graphs(workload.database)
    query = workload.queries[0]
    pruned = SkylineExecutor(db, use_index=True).execute(query)
    full = SkylineExecutor(db, use_index=False).execute(query)
    assert pruned.skyline_ids == full.skyline_ids
    # sanity: the unpruned executor evaluated everything
    assert full.stats.exact_evaluations == len(db)
    assert pruned.stats.exact_evaluations <= full.stats.exact_evaluations


def test_executor_matches_core_gss_on_synthetic():
    workload = make_workload(n_graphs=18, query_size=6, seed=3)
    db = GraphDatabase.from_graphs(workload.database)
    query = workload.queries[0]
    executor_result = SkylineExecutor(db).execute(query)
    core_result = graph_similarity_skyline(db.graphs(), query)
    core_names = sorted(g.name for g in core_result.skyline)
    executor_names = sorted(
        db.get(i).name for i in executor_result.skyline_ids
    )
    assert executor_names == core_names


def test_stats_are_recorded(paper_executor, paper_query):
    result = paper_executor.execute(paper_query)
    stats = result.stats
    assert stats.database_size == 7
    assert stats.candidates_considered == 7
    assert stats.exact_evaluations + stats.pruned_by_index == 7
    assert stats.skyline_size == 4
    assert "evaluate" in stats.phase_seconds
    assert 0.0 <= stats.pruning_ratio <= 1.0
    assert "n=7" in stats.summary()


def test_executor_with_refinement(paper_executor, paper_query):
    result = paper_executor.execute(paper_query, refine_k=2)
    assert result.refinement is not None
    assert [g.name for g in result.refinement.subset] == ["g1", "g4"]


def test_executor_refinement_skipped_when_not_needed(paper_executor, paper_query):
    result = paper_executor.execute(paper_query, refine_k=4)
    assert result.refinement is None


def test_executor_refresh_index(paper_db, paper_query):
    db = GraphDatabase.from_graphs(paper_db[:3])
    executor = SkylineExecutor(db)
    db.insert(paper_db[3])
    executor.refresh_index()
    result = executor.execute(paper_query)
    assert result.stats.database_size == 4


def test_threshold_search_exact(paper_executor, paper_query):
    matches = paper_executor.threshold_search(paper_query, "edit", 3.0)
    names = sorted(
        paper_executor.database.get(gid).name for gid, _ in matches
    )
    # DistEd <= 3: g3 (3), g4 (2), g5 (3)
    assert names == ["g3", "g4", "g5"]
    distances = [d for _, d in matches]
    assert distances == sorted(distances)


def test_threshold_search_measure_instance(paper_executor, paper_query):
    matches = paper_executor.threshold_search(paper_query, EditDistance(), 0.0)
    assert matches == []


def test_executor_empty_database(paper_query):
    executor = SkylineExecutor(GraphDatabase())
    result = executor.execute(paper_query)
    assert result.skyline_ids == []
    assert result.stats.skyline_size == 0
