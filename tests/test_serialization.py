"""Tests for graph serialization round trips and error handling."""

import pytest

from repro.errors import SerializationError
from repro.graph import (
    LabeledGraph,
    graph_from_dict,
    graph_from_json,
    graph_from_text,
    graph_to_dict,
    graph_to_json,
    graph_to_text,
    path_graph,
)


@pytest.fixture
def sample() -> LabeledGraph:
    return LabeledGraph.from_edges(
        [("a", "b", "x"), ("b", "c", "y")],
        vertex_labels={"a": "A", "b": "B", "c": "C"},
        name="sample",
    )


def test_dict_round_trip(sample):
    payload = graph_to_dict(sample)
    rebuilt = graph_from_dict(payload)
    assert rebuilt == sample
    assert rebuilt.name == "sample"


def test_dict_preserves_isolated_vertices():
    g = path_graph(["A", "B"])
    g.add_vertex(9, "Z")
    rebuilt = graph_from_dict(graph_to_dict(g))
    assert rebuilt.order == 3
    assert rebuilt.vertex_label(9) == "Z"


def test_dict_malformed_payloads():
    with pytest.raises(SerializationError):
        graph_from_dict({"vertices": [[1, "A"]]})  # missing edges
    with pytest.raises(SerializationError):
        graph_from_dict({"vertices": [[1, "A"]], "edges": [[1, 2, "x"]]})
    with pytest.raises(SerializationError):
        graph_from_dict({"vertices": "nope", "edges": []})


def test_json_round_trip(sample):
    rebuilt = graph_from_json(graph_to_json(sample))
    assert rebuilt == sample


def test_json_rejects_unserializable_labels():
    g = LabeledGraph()
    g.add_vertex(0, object())
    with pytest.raises(SerializationError):
        graph_to_json(g)


def test_json_rejects_invalid_payload():
    with pytest.raises(SerializationError):
        graph_from_json("{not json")


def test_text_round_trip(sample):
    text = graph_to_text(sample)
    rebuilt = graph_from_text(text, name="sample")
    # text format stringifies everything; structure and labels survive
    assert rebuilt.order == 3
    assert rebuilt.size == 2
    assert rebuilt.vertex_label("a") == "A"
    assert rebuilt.edge_label("a", "b") == "x"
    assert rebuilt.name == "sample"


def test_text_ignores_comments_and_blanks():
    text = "# header\n\nv a A\nv b B\n# middle\ne a b x\n"
    g = graph_from_text(text)
    assert g.size == 1


def test_text_rejects_malformed_lines():
    with pytest.raises(SerializationError):
        graph_from_text("v only_id\n")
    with pytest.raises(SerializationError):
        graph_from_text("x a b c\n")
    with pytest.raises(SerializationError):
        graph_from_text("e a b x\n")  # endpoints never declared
