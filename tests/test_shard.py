"""Sharded store + scatter-gather backend: interface, parity, round-trips.

The contract under test: a :class:`~repro.shard.store.ShardedGraphDatabase`
is indistinguishable from a monolithic :class:`~repro.db.GraphDatabase`
through the public interface, and the ``sharded`` backend's scatter-gather
execution (local cascades, cross-shard bound sharing, merge consumers)
returns exactly the answers of the serial exhaustive ``memory`` backend
for every query kind, placement and shard count.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro import PairCache, Query, connect
from repro.datasets import figure3_database, figure3_query
from repro.db import GraphDatabase, load_database, save_database
from repro.errors import DatasetError, QueryError
from repro.shard import (
    HashPlacement,
    ShardedBackend,
    ShardedGraphDatabase,
    SizeBalancedPlacement,
    available_placements,
    get_placement,
)

from tests.conftest import small_labeled_graphs


@pytest.fixture
def sharded_fig3() -> ShardedGraphDatabase:
    return ShardedGraphDatabase.from_graphs(
        figure3_database(), name="fig3", shards=3
    )


def _kind_builders(query):
    return {
        "skyline": Query(query).measures("edit", "mcs").skyline(),
        "skyband": Query(query).measures("edit", "mcs").skyband(2),
        "topk": Query(query).topk(3, "edit"),
        "threshold": Query(query).threshold(3.0, "edit"),
    }


# ----------------------------------------------------------------------
# Store: the GraphDatabase interface over shards
# ----------------------------------------------------------------------
def test_store_presents_database_interface(sharded_fig3):
    monolith = GraphDatabase.from_graphs(figure3_database(), name="fig3")
    assert sharded_fig3.ids() == monolith.ids()
    assert len(sharded_fig3) == len(monolith)
    assert [g.name for g in sharded_fig3.graphs()] == [
        g.name for g in monolith.graphs()
    ]
    assert [e.graph_id for e in sharded_fig3.entries()] == monolith.ids()
    assert [gid for gid, _ in sharded_fig3] == monolith.ids()
    for graph_id in monolith.ids():
        assert graph_id in sharded_fig3
        assert sharded_fig3.get(graph_id) == monolith.get(graph_id)
        assert sharded_fig3.entry(graph_id).graph_id == graph_id
    assert sum(sharded_fig3.shard_sizes()) == len(monolith)
    assert "3 shards" in repr(sharded_fig3)


def test_hash_placement_routes_by_id(sharded_fig3):
    for graph_id in sharded_fig3.ids():
        assert sharded_fig3.shard_of(graph_id) == graph_id % 3
        shard = sharded_fig3.shards[graph_id % 3]
        assert graph_id in shard


def test_mutations_land_on_their_shards(sharded_fig3):
    query = figure3_query()
    before = sharded_fig3.version
    new_id = sharded_fig3.insert(query)
    assert sharded_fig3.version == before + 1
    owner = sharded_fig3.shard_of(new_id)
    assert new_id in sharded_fig3.shards[owner]
    # Only the owning shard's version moved: shard-local indexes on the
    # other shards stay valid (the point of per-shard versioning).
    shard_versions = [shard.version for shard in sharded_fig3.shards]
    sharded_fig3.remove(new_id)
    assert new_id not in sharded_fig3
    assert sharded_fig3.shards[owner].version == shard_versions[owner] + 1
    for index, shard in enumerate(sharded_fig3.shards):
        if index != owner:
            assert shard.version == shard_versions[index]
    with pytest.raises(DatasetError):
        sharded_fig3.remove(new_id)
    with pytest.raises(DatasetError):
        sharded_fig3.get(new_id)


def test_ids_are_never_reused_across_shards(sharded_fig3):
    query = figure3_query()
    first = sharded_fig3.insert(query)
    sharded_fig3.remove(first)
    second = sharded_fig3.insert(query)
    assert second > first


def test_find_isomorphic_searches_all_shards(sharded_fig3):
    for graph_id, graph in sharded_fig3:
        assert sharded_fig3.find_isomorphic(graph) == graph_id


def test_from_graphs_deduplicates_across_shards():
    graphs = figure3_database()
    doubled = graphs + [g.copy() for g in graphs]
    database = ShardedGraphDatabase.from_graphs(
        doubled, shards=3, deduplicate=True
    )
    assert len(database) == len(graphs)


def test_size_balanced_placement_balances_vertex_load():
    database = ShardedGraphDatabase.from_graphs(
        figure3_database(), shards=3, placement="size-balanced"
    )
    loads = [
        sum(e.graph.order for e in shard.entries()) for shard in database.shards
    ]
    assert max(loads) - min(loads) <= max(g.order for g in database.graphs())


def test_placement_registry():
    assert {"hash", "size-balanced"} <= set(available_placements())
    assert isinstance(get_placement("hash"), HashPlacement)
    policy = SizeBalancedPlacement()
    assert get_placement(policy) is policy
    with pytest.raises(QueryError, match="available"):
        get_placement("nope")
    with pytest.raises(DatasetError):
        ShardedGraphDatabase(shards=0)


def test_from_database_preserves_ids_and_metadata():
    monolith = GraphDatabase(name="meta")
    graphs = figure3_database()
    monolith.insert(graphs[0], metadata={"source": "paper"})
    monolith.insert(graphs[1])
    monolith.remove(0)
    monolith.insert(graphs[2], metadata={"n": 3})
    sharded = ShardedGraphDatabase.from_database(monolith, shards=2)
    assert sharded.ids() == monolith.ids() == [1, 2]
    assert sharded.entry(2).metadata == {"n": 3}
    # Fresh inserts continue after the preserved ids.
    assert sharded.insert(graphs[3]) == 3


# ----------------------------------------------------------------------
# Persistence: save/load round-trips a sharded database losslessly
# ----------------------------------------------------------------------
def test_save_load_round_trip_is_lossless(tmp_path, sharded_fig3):
    sharded_fig3.entry(0).metadata["origin"] = "fig3"
    # A removal leaves an id gap: preserve_ids must restore it verbatim
    # (the default load compacts, which is lossless for answers only).
    sharded_fig3.remove(1)
    path = tmp_path / "sharded.json"
    save_database(sharded_fig3, path)
    loaded = load_database(path, preserve_ids=True)
    assert loaded.ids() == sharded_fig3.ids()
    assert loaded.graphs() == sharded_fig3.graphs()
    assert loaded.entry(0).metadata == {"origin": "fig3"}
    # Re-sharding the loaded copy reproduces the exact same partitioning
    # (hash placement is a pure function of the preserved ids).
    resharded = ShardedGraphDatabase.from_database(loaded, shards=3)
    assert resharded.ids() == sharded_fig3.ids()
    for graph_id in resharded.ids():
        assert resharded.shard_of(graph_id) == sharded_fig3.shard_of(graph_id)
    query = figure3_query()
    with connect(resharded, backend="sharded") as session:
        answer = session.execute(Query(query).skyline()).ids
    with connect(sharded_fig3, backend="sharded") as session:
        assert session.execute(Query(query).skyline()).ids == answer


# ----------------------------------------------------------------------
# Backend: scatter-gather answers equal memory semantics
# ----------------------------------------------------------------------
def test_sharded_backend_matches_memory_all_kinds(sharded_fig3):
    query = figure3_query()
    with connect(figure3_database(), backend="memory") as session:
        expected = {
            kind: session.execute(builder).ids
            for kind, builder in _kind_builders(query).items()
        }
    with connect(sharded_fig3, backend="sharded") as session:
        for kind, builder in _kind_builders(query).items():
            assert session.execute(builder).ids == expected[kind], kind


def test_parallel_scatter_ships_shard_payloads(sharded_fig3):
    query = figure3_query()
    with connect(figure3_database(), backend="memory") as session:
        expected = session.execute(Query(query).topk(3, "edit")).ids
    with connect(
        sharded_fig3, backend="sharded", parallel=True, max_workers=2
    ) as session:
        result = session.execute(Query(query).topk(3, "edit"))
        assert result.ids == expected
        assert session.backend.max_workers == 2
        # One pooled evaluator per touched shard, each holding (at most)
        # that shard's payload — never a whole-database payload.
        evaluators = session.backend._evaluators
        assert set(evaluators) <= set(range(sharded_fig3.shard_count))


def test_tolerant_queries_fall_back_to_exhaustive_merge(sharded_fig3):
    query = figure3_query()
    spec = Query(query).skyline(algorithm="naive")
    import dataclasses

    tolerant = dataclasses.replace(spec.build(), tolerance=0.4)
    with connect(figure3_database(), backend="memory") as session:
        expected = session.execute(tolerant).ids
    with connect(sharded_fig3, backend="sharded") as session:
        result = session.execute(tolerant)
        assert result.ids == expected
        # Pruning is off under tolerance: every graph was evaluated.
        assert result.stats.exact_evaluations == len(sharded_fig3)


def test_sharded_backend_rejects_monolithic_database():
    database = GraphDatabase.from_graphs(figure3_database())
    with pytest.raises(QueryError, match="shards=N"):
        ShardedBackend(database)


def test_shards_rejected_with_backend_instance():
    # Re-partitioning would desynchronize session.database from the
    # database a ready-made backend instance is bound to.
    from repro.api.backends import MemoryBackend

    database = GraphDatabase.from_graphs(figure3_database())
    with pytest.raises(QueryError, match="backend instance"):
        repro.Session(database, backend=MemoryBackend(database), shards=2)


def test_fuzz_backend_remap_zeroes_tolerance_for_pruning_backends():
    from repro.cli import _remap_backend
    from repro.testkit import generate_workload
    from repro.testkit.workload import RunQuery

    # Seeds are cheap: find a workload containing a tolerant spec (only
    # generated for non-pruning backends).
    for seed in range(60):
        workload = generate_workload(seed=seed, n_steps=60)
        if any(
            isinstance(s, RunQuery) and s.query.tolerance > 0
            for s in workload.steps
        ):
            break
    else:  # pragma: no cover - generator always emits some within 60 seeds
        pytest.fail("no tolerant spec generated")
    remapped = _remap_backend(workload, "indexed")
    queries = [s for s in remapped.steps if isinstance(s, RunQuery)]
    assert queries and all(s.backend == "indexed" for s in queries)
    assert all(s.query.tolerance == 0.0 for s in queries)


def test_session_repartitions_and_follows_mutations(sharded_fig3):
    query = figure3_query()
    with connect(figure3_database(), backend="sharded", shards=4) as session:
        assert isinstance(session.database, ShardedGraphDatabase)
        assert session.database.shard_count == 4
        new_id = session.database.insert(query)
        result = session.execute(Query(query).topk(1, "edit"))
        assert result.ids == [new_id]
    # An already-sharded database with a matching count is used as-is.
    with connect(sharded_fig3, backend="sharded", shards=3) as session:
        assert session.database is sharded_fig3


def test_explain_and_to_dict_surface_per_shard_counts(sharded_fig3):
    query = figure3_query()
    with connect(sharded_fig3, backend="sharded") as session:
        result = session.execute(Query(query).measures("edit", "mcs").skyline())
    breakdown = result.stats.per_shard
    assert breakdown is not None and len(breakdown) == 3
    assert [row["shard"] for row in breakdown] == [0, 1, 2]
    assert [row["size"] for row in breakdown] == sharded_fig3.shard_sizes()
    assert sum(row["candidates"] for row in breakdown) == (
        result.stats.candidates_considered
    )
    assert sum(row["evaluated"] for row in breakdown) == (
        result.stats.exact_evaluations
    )
    assert result.to_dict()["stats"]["per_shard"] == breakdown
    text = result.explain()
    assert "3 shards" in text
    for row in breakdown:
        assert f"shard {row['shard']}: size={row['size']}" in text
    plan = session.plan(Query(query).skyline())
    assert plan.shards == 3
    assert "skyline-merge" in plan.stages


def test_shared_cache_composes_with_scatter(sharded_fig3):
    query = figure3_query()
    cache = PairCache()
    with connect(sharded_fig3, backend="sharded", cache=cache) as session:
        cold = session.execute(Query(query).skyline())
        warm = session.execute(Query(query).skyline())
    assert warm.ids == cold.ids
    assert warm.cache_info["served"] == len(sharded_fig3)
    assert warm.cache_info["pinned"] >= 1
    assert warm.cache_info["pin_limit"] == cache.pin_limit
    assert f"pinned={warm.cache_info['pinned']}/{cache.pin_limit}" in (
        warm.explain()
    )


def test_pair_cache_pin_limit_bounds_the_memo():
    cache = PairCache(pin_limit=2)
    graphs = figure3_database()
    for graph in graphs:
        cache.query_hash(graph)
    assert cache.pinned == 2  # LRU-capped, not one per query graph
    with pytest.raises(ValueError):
        PairCache(pin_limit=0)


def test_sharded_is_registered():
    assert "sharded" in repro.available_backends()


def test_representative_plan_runs_standalone(sharded_fig3):
    # build_plan returns the concatenated-scatter form of the same
    # cascade; running it through the ordinary engine loop (no merge
    # consumers involved) must still produce the memory answer.
    from repro.engine import run_plan

    query = figure3_query()
    spec = Query(query).measures("edit", "mcs").skyline().build()
    backend = ShardedBackend(sharded_fig3)
    answer = run_plan(sharded_fig3, spec, backend.build_plan(spec))
    with connect(figure3_database(), backend="memory") as session:
        assert answer.ids == session.execute(spec).ids


def test_scalar_shard_index_fallback(sharded_fig3):
    # The non-NumPy path: a per-shard FeatureIndex provider rebuilt off
    # the shard's own version counter.
    from repro.engine.scatter import _ShardIndexProvider

    shard = sharded_fig3.shards[0]
    provider = _ShardIndexProvider(shard)
    index = provider()
    assert sorted(index.ids()) == sorted(shard.ids())
    assert provider() is index  # unchanged shard -> cached index
    new_id = sharded_fig3.insert(figure3_query())
    if sharded_fig3.shard_of(new_id) == 0:
        assert new_id in provider().ids()
    else:
        assert provider() is index  # other-shard mutation: no rebuild


# ----------------------------------------------------------------------
# Property: parity with memory for random databases/placements/shards
# ----------------------------------------------------------------------
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    graphs=st.lists(
        small_labeled_graphs(max_vertices=4, connected=True),
        min_size=1,
        max_size=6,
    ),
    query=small_labeled_graphs(max_vertices=4, connected=True),
    shards=st.integers(min_value=1, max_value=4),
    placement=st.sampled_from(("hash", "size-balanced")),
    kind=st.sampled_from(("skyline", "skyband", "topk", "threshold")),
)
def test_sharded_parity_property(graphs, query, shards, placement, kind):
    builder = _kind_builders(query)[kind]
    with connect(graphs, backend="memory") as session:
        expected = session.execute(builder).ids
    with connect(
        graphs, backend="sharded", shards=shards, placement=placement
    ) as session:
        assert session.execute(builder).ids == expected
