"""Persistence and reconstruction under mutation (previously untested).

``repro.db.persistence`` round-trips were only pinned for static
databases; these tests cover the save -> mutate -> load interplay: a
saved file is a snapshot (later mutation cannot leak into it), answers
are preserved across reload even after removals force id compaction,
and the ``original_id`` breadcrumb records the pre-compaction ids.
``repro.reconstruct`` gains coverage for how verification reacts when a
verified assignment is mutated afterwards.
"""

import pytest

from repro import GraphDatabase, Query, connect
from repro.datasets import (
    database_by_name,
    figure3_database,
    figure3_query,
    make_workload,
)
from repro.db.persistence import load_database, save_database
from repro.reconstruct import (
    PairSolverCache,
    search_reconstruction,
    verify_assignment,
)


@pytest.fixture
def workload_db():
    workload = make_workload(n_graphs=10, query_size=5, seed=17)
    return GraphDatabase.from_graphs(workload.database), workload.queries[0]


def _skyline_names(database, query):
    with connect(database) as session:
        return session.execute(Query(query).skyline()).names


# ----------------------------------------------------------------------
# Persistence under mutation
# ----------------------------------------------------------------------
def test_saved_file_is_a_snapshot_immune_to_later_mutation(
    tmp_path, workload_db
):
    database, query = workload_db
    path = tmp_path / "snapshot.json"
    save_database(database, path)
    before = _skyline_names(database, query)
    database.remove(database.ids()[0])
    database.insert(figure3_database()[0])
    assert _skyline_names(load_database(path), query) == before


def test_save_mutate_save_load_preserves_query_answers(tmp_path, workload_db):
    database, query = workload_db
    save_database(database, tmp_path / "gen0.json")
    # Mutate: drop two graphs (forcing id compaction on reload), add one.
    for victim in database.ids()[1:3]:
        database.remove(victim)
    database.insert(figure3_database()[2], metadata={"origin": "fig3"})
    save_database(database, tmp_path / "gen1.json")
    loaded = load_database(tmp_path / "gen1.json")

    assert len(loaded) == len(database)
    for kind_query in (
        Query(query).skyline(),
        Query(query).skyband(2),
        Query(query).topk(3, measure="edit"),
        Query(query).threshold(4.0, measure="edit"),
    ):
        with connect(database) as live, connect(loaded) as reloaded:
            assert (
                reloaded.execute(kind_query).names
                == live.execute(kind_query).names
            )


def test_reload_after_removal_records_original_ids(tmp_path, workload_db):
    database, query = workload_db
    removed = database.ids()[0]
    database.remove(removed)
    save_database(database, tmp_path / "compacted.json")
    loaded = load_database(tmp_path / "compacted.json")
    # Ids compact to 0..n-1 on reload; every shifted entry keeps its
    # pre-compaction id in metadata, and metadata itself round-trips.
    assert loaded.ids() == list(range(len(database)))
    originals = {
        entry.metadata.get("original_id", entry.graph_id)
        for entry in loaded.entries()
    }
    assert originals == set(database.ids())
    assert removed not in originals


def test_mutated_reload_is_queryable_via_every_backend(tmp_path, workload_db):
    database, query = workload_db
    database.remove(database.ids()[3])
    path = tmp_path / "db.json"
    save_database(database, path)
    answers = {
        backend: _names(path, query, backend)
        for backend in ("memory", "indexed", "parallel")
    }
    assert answers["memory"] == answers["indexed"] == answers["parallel"]


def _names(path, query, backend):
    with connect(str(path), backend=backend) as session:
        return session.execute(Query(query).skyline()).names


# ----------------------------------------------------------------------
# Reconstruction verification under mutation
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def shipped_assignment():
    return database_by_name(), figure3_query()


def test_verifier_tracks_post_verification_mutation(shipped_assignment):
    assignment, query = shipped_assignment
    baseline = verify_assignment(assignment, query)
    mutated = {name: graph.copy() for name, graph in assignment.items()}
    victim = mutated["g1"]
    victim.relabel_vertex(victim.vertices()[0], "zz")
    report = verify_assignment(mutated, query)
    # A relabel keeps sizes (hard cells) but must move measured cells.
    assert report.soft_deviation != baseline.soft_deviation or not report.hard_ok


def test_solver_cache_does_not_leak_across_mutated_graphs(shipped_assignment):
    assignment, query = shipped_assignment
    cache = PairSolverCache()
    g1 = assignment["g1"]
    before = cache.ged(g1, query)
    mutated = g1.copy()
    mutated.relabel_vertex(mutated.vertices()[0], "zz")
    after = cache.ged(mutated, query)
    assert after != before  # keyed by content, not by name/identity
    assert cache.ged(g1, query) == before


def test_search_from_mutated_start_stays_hard_feasible(shipped_assignment):
    assignment, query = shipped_assignment
    result = search_reconstruction(
        assignment, query, iterations=6, seed=3
    )
    assert result.report.hard_ok
    assert result.history[-1] <= result.history[0]
    final = verify_assignment(result.assignment, query)
    assert final.hard_ok
