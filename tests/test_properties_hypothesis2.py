"""Second property-based suite: algebra, ranks, skyband, incremental."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.diversity import dense_ranks_descending
from repro.graph import graph_intersection, graph_union
from repro.skyline import (
    IncrementalSkyline,
    dominator_counts,
    k_skyband,
    naive_skyline,
    top_k_dominating,
)
from tests.conftest import small_labeled_graphs, vector_lists

SETTINGS = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# ----------------------------------------------------------------------
# Graph algebra
# ----------------------------------------------------------------------
@SETTINGS
@given(small_labeled_graphs(vertex_labels=("A",), edge_labels=("x",)),
       small_labeled_graphs(vertex_labels=("A",), edge_labels=("x",)))
def test_union_size_identity(g1, g2):
    """|union| = |g1| + |g2| - |intersection| for id-aligned graphs with
    a single label alphabet (no conflicts possible)."""
    union = graph_union(g1, g2)
    intersection = graph_intersection(g1, g2)
    assert union.size == g1.size + g2.size - intersection.size
    assert union.order == g1.order + g2.order - intersection.order


@SETTINGS
@given(small_labeled_graphs(vertex_labels=("A",), edge_labels=("x",)))
def test_union_intersection_with_self(graph):
    assert graph_union(graph, graph).size == graph.size
    assert graph_intersection(graph, graph).size == graph.size


@SETTINGS
@given(small_labeled_graphs(vertex_labels=("A",), edge_labels=("x",)),
       small_labeled_graphs(vertex_labels=("A",), edge_labels=("x",)))
def test_intersection_is_subgraph_of_both(g1, g2):
    intersection = graph_intersection(g1, g2)
    for u, v, label in intersection.edges():
        assert g1.has_edge(u, v) and g1.edge_label(u, v) == label
        assert g2.has_edge(u, v) and g2.edge_label(u, v) == label


# ----------------------------------------------------------------------
# Dense ranks
# ----------------------------------------------------------------------
@SETTINGS
@given(st.lists(st.integers(min_value=0, max_value=10).map(float), max_size=20))
def test_dense_ranks_properties(values):
    ranks = dense_ranks_descending(values)
    assert len(ranks) == len(values)
    if values:
        assert min(ranks) == 1
        assert max(ranks) == len(set(values))
        # equal values share ranks; larger values get smaller ranks
        for i, vi in enumerate(values):
            for j, vj in enumerate(values):
                if vi == vj:
                    assert ranks[i] == ranks[j]
                elif vi > vj:
                    assert ranks[i] < ranks[j]


# ----------------------------------------------------------------------
# k-skyband
# ----------------------------------------------------------------------
@SETTINGS
@given(vector_lists(max_points=20))
def test_skyband_k1_is_skyline(vectors):
    assert k_skyband(vectors, 1) == naive_skyline(vectors)


@SETTINGS
@given(vector_lists(max_points=20), st.integers(min_value=1, max_value=5))
def test_skyband_membership_definition(vectors, k):
    members = set(k_skyband(vectors, k))
    counts = dominator_counts(vectors)
    for i in range(len(vectors)):
        assert (i in members) == (counts[i] < k)


@SETTINGS
@given(vector_lists(max_points=15))
def test_topk_dominating_is_sorted_by_counts(vectors):
    from repro.skyline import dominance_counts

    order = top_k_dominating(vectors, len(vectors))
    counts = dominance_counts(vectors)
    scored = [counts[i] for i in order]
    assert scored == sorted(scored, reverse=True)


# ----------------------------------------------------------------------
# Incremental skyline
# ----------------------------------------------------------------------
@SETTINGS
@given(vector_lists(max_points=25, max_dim=3))
def test_incremental_insertions_match_batch(vectors):
    if not vectors:
        return
    tracker = IncrementalSkyline(dimension=len(vectors[0]))
    for index, vector in enumerate(vectors):
        tracker.insert(index, vector)
    assert sorted(tracker.skyline_keys()) == naive_skyline(vectors)


@SETTINGS
@given(
    vector_lists(max_points=15, max_dim=2),
    st.lists(st.integers(min_value=0, max_value=14), max_size=8),
)
def test_incremental_with_random_deletions_matches_batch(vectors, deletions):
    if not vectors:
        return
    tracker = IncrementalSkyline(dimension=len(vectors[0]))
    live = {}
    for index, vector in enumerate(vectors):
        tracker.insert(index, vector)
        live[index] = vector
    for victim in deletions:
        if victim in live:
            tracker.remove(victim)
            del live[victim]
    keys = list(live)
    expected = {keys[i] for i in naive_skyline([live[k] for k in keys])}
    assert set(tracker.skyline_keys()) == expected
