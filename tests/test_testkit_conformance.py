"""Differential conformance: the testkit harness versus the oracle.

The acceptance contract of the testkit PR: the pinned-seed corpus —
including one >= 500-step workload mixing mutations, all four query
kinds x all three backends x cache on/off, live views and persistence
round-trips — replays divergence-free, and an intentionally broken
pruning stage (sign-flipped bound) is caught and shrunk to a printable
minimal repro.
"""

import json
from pathlib import Path

import pytest

from repro import PairCache, Query, connect
from repro.cli import main
from repro.testkit import (
    FAULTS,
    Workload,
    WorkloadRunner,
    format_repro,
    generate_workload,
    run_workload,
    shrink_workload,
)

CORPUS = json.loads(
    (Path(__file__).parent / "fuzz_corpus.json").read_text(encoding="utf-8")
)
BIG = max(CORPUS, key=lambda entry: entry["steps"])


# ----------------------------------------------------------------------
# Pinned corpus conformance (the standing safety net)
# ----------------------------------------------------------------------
def test_corpus_has_a_500_step_workload():
    assert BIG["steps"] >= 500


@pytest.mark.parametrize(
    "entry", CORPUS, ids=[f"seed{e['seed']}-{e['steps']}steps" for e in CORPUS]
)
def test_pinned_corpus_replays_divergence_free(entry):
    workload = generate_workload(seed=entry["seed"], n_steps=entry["steps"])
    report = run_workload(workload)
    assert report.ok, report.divergence.describe()
    assert report.steps_run == entry["steps"]
    # Coverage: every (kind, backend) combination actually executed —
    # including the NumPy ``vectorized`` backend when present — and the
    # cross-query pair cache saw real traffic (cache-on runs served
    # identical answers — the runner compared them — with nonzero hits).
    from repro.testkit.workload import WORKLOAD_BACKENDS

    assert len(report.combos) == 4 * len(WORKLOAD_BACKENDS), report.combos
    assert report.cache_hits > 0
    assert report.view_checks > 0
    assert report.saveloads > 0
    assert report.mutations > 0


# ----------------------------------------------------------------------
# Harness self-test: a sign-flipped bound must be caught and shrunk
# ----------------------------------------------------------------------
def test_sign_flipped_bound_is_caught_and_shrunk():
    workload = generate_workload(seed=7, n_steps=80)
    report = run_workload(workload, fault="flip-bound")
    assert not report.ok, "the unsound bound stage went undetected"
    assert report.divergence.backend == "indexed"

    minimal, divergence = shrink_workload(
        workload, lambda cand: run_workload(cand, fault="flip-bound").divergence
    )
    assert len(minimal) < len(workload)
    assert len(minimal) <= 10  # a handful of steps, not the whole workload
    # The shrunk workload still reproduces in a fresh runner.
    assert run_workload(minimal, fault="flip-bound").divergence is not None
    # ... and removing any single remaining step makes the failure vanish
    # (1-minimality), which is what "minimal reproducing step list" means.
    for index in range(len(minimal)):
        reduced = Workload(
            seed=minimal.seed,
            steps=minimal.steps[:index] + minimal.steps[index + 1:],
        )
        if reduced.steps:
            assert run_workload(reduced, fault="flip-bound").ok

    repro_text = format_repro(minimal, divergence)
    assert "minimal reproducing workload" in repro_text
    assert "diverges here" in repro_text
    assert '"kind"' in repro_text  # the exact GraphQuery JSON is printed
    assert "expected" in divergence.describe()


def test_unknown_fault_rejected():
    from repro.errors import QueryError

    with pytest.raises(QueryError, match="flip-bound"):
        WorkloadRunner(fault="nope")
    assert "flip-bound" in FAULTS
    # The CLI turns it into a clean error line, not a traceback.
    assert main(["fuzz", "--seed", "1", "--steps", "5", "--fault", "nope"]) == 1


# ----------------------------------------------------------------------
# Runner robustness: subsequences replay, dead handles are no-ops
# ----------------------------------------------------------------------
def test_any_subsequence_of_a_workload_replays_clean():
    workload = generate_workload(seed=31, n_steps=60)
    # Drop every other step: removed adds turn later removes/queries into
    # skips, never into crashes or false divergences.
    thinned = Workload(seed=31, steps=workload.steps[::2])
    report = run_workload(thinned)
    assert report.ok, report.divergence.describe()


def test_workload_json_round_trip_replays_identically():
    workload = generate_workload(seed=13, n_steps=50)
    restored = Workload.from_json(workload.to_json())
    assert restored.to_dict() == workload.to_dict()
    assert run_workload(restored).ok


# ----------------------------------------------------------------------
# Satellite: PairCache counters surface through ResultSet.explain()
# ----------------------------------------------------------------------
def test_cache_counters_in_result_and_explain(paper_database, paper_query):
    cache = PairCache()
    with connect(paper_database, cache=cache) as session:
        cold = session.execute(Query(paper_query).skyline())
        warm = session.execute(Query(paper_query).skyline())
    assert cold.cache_info is not None
    assert cold.cache_info["hits"] == 0
    assert cold.cache_info["misses"] == len(paper_database)
    assert warm.cache_info["hits"] == len(paper_database)
    assert warm.cache_info["served"] == len(paper_database)
    assert warm.ids == cold.ids  # cache-served answers identical
    n = len(paper_database)
    assert f"pair cache: hits={n} misses=0 served={n}" in warm.explain()
    assert warm.to_dict()["cache"] == warm.cache_info


def test_uncached_result_has_no_cache_info(paper_database, paper_query):
    with connect(paper_database) as session:
        result = session.execute(Query(paper_query).skyline())
    assert result.cache_info is None
    assert "pair cache:" not in result.explain()
    assert "cache" not in result.to_dict()


# ----------------------------------------------------------------------
# CLI entry point
# ----------------------------------------------------------------------
def test_fuzz_cli_clean_run(capsys):
    assert main(["fuzz", "--seed", "11", "--steps", "30"]) == 0
    out = capsys.readouterr().out
    assert "seed 11: OK" in out


def test_fuzz_cli_catches_fault_and_saves_repro(tmp_path, capsys):
    failure = tmp_path / "failure.json"
    code = main([
        "fuzz", "--seed", "7", "--steps", "60",
        "--fault", "flip-bound", "--save-failure", str(failure),
    ])
    assert code == 1
    err = capsys.readouterr().err
    assert "minimal reproducing workload" in err
    assert failure.exists()
    # The saved shrunk workload replays: red with the fault, green without.
    assert main(["fuzz", "--replay", str(failure), "--fault", "flip-bound"]) == 1
    capsys.readouterr()
    assert main(["fuzz", "--replay", str(failure)]) == 0


def test_fuzz_cli_corpus_mode(tmp_path, capsys):
    corpus = tmp_path / "corpus.json"
    corpus.write_text(json.dumps([{"seed": 3, "steps": 25}]), encoding="utf-8")
    assert main(["fuzz", "--corpus", str(corpus)]) == 0
    assert "seed 3: OK" in capsys.readouterr().out
