"""Server durability: acked LSNs, stale-handle 409s, restart recovery."""

from __future__ import annotations

import http.client
import json

import pytest

from repro.api.ops import AddOp, RelabelOp, RemoveOp
from repro.db import GraphDatabase
from repro.db.wal import recover
from repro.graph.labeled_graph import LabeledGraph
from repro.server import ServerConfig, serve_in_thread
from repro.shard.store import ShardedGraphDatabase


class _Client:
    def __init__(self, port: int, timeout: float = 60.0) -> None:
        self.conn = http.client.HTTPConnection(
            "127.0.0.1", port, timeout=timeout
        )

    def request(self, method, path, payload=None):
        body = None if payload is None else json.dumps(payload)
        self.conn.request(method, path, body=body)
        response = self.conn.getresponse()
        return response.status, json.loads(response.read())

    def close(self) -> None:
        self.conn.close()


def make_graph(name: str, n: int = 3) -> LabeledGraph:
    graph = LabeledGraph(name=name)
    for i in range(n):
        graph.add_vertex(i, label="C" if i % 2 else "N")
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    return graph


def durable_config(tmp_path, **kwargs) -> ServerConfig:
    return ServerConfig(data_dir=str(tmp_path / "data"), **kwargs)


def test_acks_carry_committed_lsn(tmp_path):
    with serve_in_thread(
        GraphDatabase(name="d"), durable_config(tmp_path)
    ) as server:
        client = _Client(server.port)
        try:
            for expected_lsn in (1, 2):
                handle = f"g{expected_lsn}"
                status, payload = client.request(
                    "POST",
                    "/v1/mutate",
                    AddOp(handle, make_graph(handle)).to_dict(),
                )
                assert status == 200
                assert payload["lsn"] == expected_lsn
            status, payload = client.request(
                "POST", "/v1/mutate", RemoveOp("g1").to_dict()
            )
            assert status == 200 and payload["lsn"] == 3
        finally:
            client.close()


def test_nondurable_acks_have_no_lsn():
    with serve_in_thread(GraphDatabase(name="d"), ServerConfig()) as server:
        client = _Client(server.port)
        try:
            status, payload = client.request(
                "POST", "/v1/mutate", AddOp("g", make_graph("g")).to_dict()
            )
            assert status == 200
            assert "lsn" not in payload
        finally:
            client.close()


def test_stale_handle_conflict_is_structured(tmp_path):
    with serve_in_thread(
        GraphDatabase(name="d"), durable_config(tmp_path)
    ) as server:
        client = _Client(server.port)
        try:
            status, payload = client.request(
                "POST",
                "/v1/mutate",
                RelabelOp("ghost", "new", 0, "N").to_dict(),
            )
            assert status == 409
            error = payload["error"]
            assert error["code"] == "stale-handle"
            assert error["op"] == "relabel"
            assert error["handle"] == "ghost"
        finally:
            client.close()


def test_health_and_stats_expose_durability(tmp_path):
    config = durable_config(tmp_path, sync="interval:0.05")
    with serve_in_thread(GraphDatabase(name="d"), config) as server:
        client = _Client(server.port)
        try:
            client.request(
                "POST", "/v1/mutate", AddOp("g", make_graph("g")).to_dict()
            )
            _, health = client.request("GET", "/v1/health")
            assert health["durability"]["sync"].startswith("interval")
            assert health["durability"]["last_lsn"] == 1
            _, stats = client.request("GET", "/v1/stats")
            durability = stats["durability"]
            assert durability["last_lsn"] == 1
            assert durability["base_lsn"] == 0
            assert durability["segments"] == 1
        finally:
            client.close()


def test_nondurable_health_has_no_durability_block():
    with serve_in_thread(GraphDatabase(name="d"), ServerConfig()) as server:
        client = _Client(server.port)
        try:
            _, health = client.request("GET", "/v1/health")
            assert "durability" not in health
        finally:
            client.close()


def test_restart_recovers_and_continues_lsn_sequence(tmp_path):
    config = durable_config(tmp_path)
    with serve_in_thread(GraphDatabase(name="d"), config) as server:
        client = _Client(server.port)
        try:
            for i in range(3):
                client.request(
                    "POST",
                    "/v1/mutate",
                    AddOp(f"g{i}", make_graph(f"g{i}", 2 + i)).to_dict(),
                )
        finally:
            client.close()

    # Second boot: the corpus argument is superseded by the recovered log.
    with serve_in_thread(GraphDatabase(name="ignored"), config) as server:
        assert len(server.database) == 3
        client = _Client(server.port)
        try:
            status, payload = client.request(
                "POST", "/v1/mutate", RemoveOp("g1").to_dict()
            )
            assert status == 200 and payload["lsn"] == 4
            status, payload = client.request(
                "POST", "/v1/mutate", RemoveOp("g1").to_dict()
            )
            assert status == 409  # the removal durably happened once
        finally:
            client.close()

    state = recover(tmp_path / "data")
    assert state.last_lsn == 4
    assert sorted(state.handle_to_id) == ["g0", "g2"]


def test_restart_preserves_sharded_store_shape(tmp_path):
    config = durable_config(tmp_path)
    database = ShardedGraphDatabase(shards=3, name="d")
    with serve_in_thread(database, config) as server:
        client = _Client(server.port)
        try:
            for i in range(6):
                client.request(
                    "POST",
                    "/v1/mutate",
                    AddOp(f"g{i}", make_graph(f"g{i}")).to_dict(),
                )
        finally:
            client.close()
        placement = {gid: database.shard_of(gid) for gid in database.ids()}

    with serve_in_thread(
        ShardedGraphDatabase(shards=3, name="ignored"), config
    ) as server:
        recovered = server.database
        assert isinstance(recovered, ShardedGraphDatabase)
        assert {
            gid: recovered.shard_of(gid) for gid in recovered.ids()
        } == placement


def test_seeded_corpus_initializes_snapshot(tmp_path):
    seed = GraphDatabase.from_graphs(
        [make_graph("a", 2), make_graph("b", 4)]
    )
    config = durable_config(tmp_path)
    with serve_in_thread(seed, config) as server:
        client = _Client(server.port)
        try:
            _, stats = client.request("GET", "/v1/stats")
            assert stats["database"]["graphs"] == 2
        finally:
            client.close()

    # The pre-loaded corpus is in the snapshot, recoverable with no ops.
    state = recover(tmp_path / "data")
    assert len(state.database) == 2
    assert sorted(state.handle_to_id) == ["a", "b"]
