"""Mutation-codec round-trips on edge inputs, plus applicability checks.

The mutation codec is now also the WAL record payload, so every op must
survive ``to_dict`` → JSON → ``mutation_from_dict`` byte-exactly even
for adversarial labels and degenerate graphs.
"""

from __future__ import annotations

import json

import pytest

from repro.api.ops import (
    AddOp,
    RelabelOp,
    RemoveOp,
    apply_mutation,
    check_applicable,
    mutation_from_dict,
)
from repro.db import GraphDatabase
from repro.errors import QueryError, SerializationError, StaleHandleError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.serialization import graph_from_dict, graph_to_dict

EDGE_LABELS = [
    "π-bond",  # non-ASCII
    "naïve Ω ∑",  # mixed unicode
    " leading and trailing ",  # significant whitespace
    "tab\tand\nnewline",  # control characters
    "",  # empty string
    "𝔘𝔫𝔦𝔠𝔬𝔡𝔢",  # astral-plane characters
]


def round_trip(op):
    return mutation_from_dict(json.loads(json.dumps(op.to_dict())))


class TestRoundTrips:
    @pytest.mark.parametrize("label", EDGE_LABELS)
    def test_relabel_preserves_exotic_labels(self, label):
        op = RelabelOp(
            handle=f"h {label}", new_handle="h2", vertex_index=3, label=label
        )
        rebuilt = round_trip(op)
        assert rebuilt == op
        assert rebuilt.label == label

    def test_add_empty_graph(self):
        op = AddOp(handle="empty", graph=LabeledGraph(name="empty"))
        rebuilt = round_trip(op)
        assert rebuilt.handle == "empty"
        assert rebuilt.graph.order == 0
        assert rebuilt.graph.size == 0

    @pytest.mark.parametrize("label", EDGE_LABELS)
    def test_add_graph_with_exotic_vertex_labels(self, label):
        graph = LabeledGraph(name="g")
        graph.add_vertex(0, label=label)
        graph.add_vertex(1, label="C")
        graph.add_edge(0, 1)
        rebuilt = round_trip(AddOp(handle="g", graph=graph))
        assert graph_to_dict(rebuilt.graph) == graph_to_dict(graph)

    def test_remove_round_trip(self):
        op = RemoveOp(handle="χ handle")
        assert round_trip(op) == op

    def test_vertex_index_coerced_to_int(self):
        payload = RelabelOp("a", "b", 2, "N").to_dict()
        payload["vertex_index"] = "2"
        assert mutation_from_dict(payload).vertex_index == 2


class TestRejection:
    def test_unknown_op_names_known_ops(self):
        with pytest.raises(SerializationError, match="add, relabel, remove"):
            mutation_from_dict({"op": "explode"})

    def test_non_dict_payload(self):
        with pytest.raises(SerializationError, match="expected an object"):
            mutation_from_dict(["op", "add"])

    def test_missing_field(self):
        with pytest.raises(SerializationError, match="relabel"):
            mutation_from_dict({"op": "relabel", "handle": "a"})

    def test_bad_graph_payload(self):
        with pytest.raises(SerializationError):
            mutation_from_dict({"op": "add", "handle": "a", "graph": 7})


class TestApplicability:
    def _store(self):
        database = GraphDatabase(name="t")
        graph = LabeledGraph(name="g0")
        graph.add_vertex(0, label="C")
        handle_to_id: dict[str, int] = {}
        id_to_handle: dict[int, str] = {}
        apply_mutation(
            database, AddOp("g0", graph), handle_to_id, id_to_handle
        )
        return database, handle_to_id, id_to_handle

    def test_remove_dead_handle_is_stale(self):
        database, h2i, i2h = self._store()
        with pytest.raises(StaleHandleError) as exc_info:
            apply_mutation(database, RemoveOp("ghost"), h2i, i2h)
        assert exc_info.value.op == "remove"
        assert exc_info.value.handle == "ghost"

    def test_relabel_dead_source_is_stale(self):
        database, h2i, i2h = self._store()
        with pytest.raises(StaleHandleError):
            apply_mutation(
                database, RelabelOp("ghost", "new", 0, "N"), h2i, i2h
            )

    def test_duplicate_add_handle_is_conflict_not_stale(self):
        database, h2i, i2h = self._store()
        with pytest.raises(QueryError) as exc_info:
            check_applicable(AddOp("g0", LabeledGraph(name="x")), h2i)
        assert not isinstance(exc_info.value, StaleHandleError)

    def test_duplicate_relabel_target_is_conflict(self):
        database, h2i, i2h = self._store()
        graph = LabeledGraph(name="g1")
        graph.add_vertex(0, label="O")
        apply_mutation(database, AddOp("g1", graph), h2i, i2h)
        with pytest.raises(QueryError) as exc_info:
            apply_mutation(database, RelabelOp("g0", "g1", 0, "N"), h2i, i2h)
        assert not isinstance(exc_info.value, StaleHandleError)

    def test_rejected_op_mutates_nothing(self):
        database, h2i, i2h = self._store()
        before = dict(h2i)
        with pytest.raises(StaleHandleError):
            apply_mutation(database, RemoveOp("ghost"), h2i, i2h)
        assert h2i == before
        assert len(database) == 1

    def test_relabel_of_empty_graph_is_conflict_not_crash(self):
        # Empty graphs are codec-legal inserts, but relabel has no
        # vertex to select — must be a structured applicability error
        # (never ZeroDivisionError) and must mutate nothing.
        database, h2i, i2h = self._store()
        apply_mutation(
            database, AddOp("empty", LabeledGraph(name="empty")), h2i, i2h
        )
        before = dict(h2i)
        with pytest.raises(QueryError, match="no vertices") as exc_info:
            apply_mutation(
                database, RelabelOp("empty", "e2", 0, "N"), h2i, i2h
            )
        assert not isinstance(exc_info.value, StaleHandleError)
        assert h2i == before
        assert i2h == {graph_id: h for h, graph_id in before.items()}
        assert len(database) == 2

    def test_failed_relabel_leaves_handle_maps_consistent(self):
        # A failure between the remove and insert halves must not leave
        # handle_to_id and id_to_handle disagreeing with each other.
        database, h2i, i2h = self._store()
        before_h2i, before_i2h = dict(h2i), dict(i2h)

        def boom(graph, *args, **kwargs):
            raise RuntimeError("injected insert failure")

        database.insert = boom
        try:
            with pytest.raises(RuntimeError):
                apply_mutation(
                    database, RelabelOp("g0", "g1", 0, "N"), h2i, i2h
                )
        finally:
            del database.insert
        assert h2i == before_h2i
        assert i2h == before_i2h


def test_graph_codec_tuple_shapes_survive_json():
    graph = LabeledGraph(name="shape")
    graph.add_vertex(0, label="C")
    graph.add_vertex(1, label="N")
    graph.add_edge(0, 1)
    payload = json.loads(json.dumps(graph_to_dict(graph)))
    rebuilt = graph_from_dict(payload)
    assert graph_to_dict(rebuilt) == graph_to_dict(graph)
