"""The staged engine: plans, stages, evaluators, and their composition.

The backends' answer parity is covered by ``test_api_backends_property``;
this module tests the engine pieces directly — that backends really are
plan configurations, that custom plans compose, and that the statistics
come from one place.
"""

import pytest

from repro import GraphDatabase, PairCache, Query, connect
from repro.datasets import make_workload
from repro.api.backends import IndexedBackend, MemoryBackend
from repro.api.parallel import ParallelBackend
from repro.engine import (
    BoundOrderedSource,
    Candidate,
    DatabaseOrderSource,
    EvaluationPlan,
    ParetoPruneStage,
    PooledEvaluator,
    RankBoundStage,
    SerialEvaluator,
    Stage,
    ThresholdBoundStage,
    bound_pruning,
    cached_pairs,
    run_plan,
)


# The figure-3 fixtures live in conftest.py; module-local aliases keep
# the short parameter names this module's tests read naturally with.
@pytest.fixture
def db(paper_database):
    return paper_database


@pytest.fixture
def query(paper_query):
    return paper_query


# ----------------------------------------------------------------------
# Backends are plan configurations
# ----------------------------------------------------------------------
def test_backend_plans_are_declarative(db, query):
    spec = Query(query).skyline().build()
    memory = MemoryBackend(db).build_plan(spec)
    assert isinstance(memory.source, DatabaseOrderSource)
    assert memory.cascade == ()
    indexed = IndexedBackend(db).build_plan(spec)
    assert isinstance(indexed.source, BoundOrderedSource)
    assert indexed.cascade == (bound_pruning,)
    assert indexed.stage_labels == ("pareto-bound",)
    parallel = ParallelBackend(db, max_workers=2).build_plan(spec)
    assert isinstance(parallel.evaluator, PooledEvaluator)
    cached = MemoryBackend(db, cache=PairCache()).build_plan(spec)
    assert cached.cascade == (cached_pairs,)


def test_bound_stage_label_follows_kind(db, query):
    backend = IndexedBackend(db)
    labels = {
        kind: backend.build_plan(spec).stage_labels[0]
        for kind, spec in {
            "skyline": Query(query).skyline().build(),
            "skyband": Query(query).skyband(2).build(),
            "topk": Query(query).topk(3).build(),
            "threshold": Query(query).threshold(5.0).build(),
        }.items()
    }
    assert labels == {
        "skyline": "pareto-bound",
        "skyband": "pareto-bound",
        "topk": "rank-bound",
        "threshold": "threshold-bound",
    }


def test_plan_describe_shows_cascade(db, query):
    with connect(db, backend="indexed", cache=PairCache()) as session:
        plan = session.plan(Query(query).skyline())
        assert plan.stages == ("pareto-bound", "cached-pairs")
        assert "pareto-bound" in plan.describe()


def test_run_plan_direct_matches_backend(db, query):
    spec = Query(query).skyline().build()
    direct = run_plan(db, spec, EvaluationPlan(source=DatabaseOrderSource()))
    via_backend = MemoryBackend(db).run(spec)
    assert direct.ids == via_backend.ids
    assert direct.vectors.keys() == via_backend.vectors.keys()


# ----------------------------------------------------------------------
# Cross-cutting composition the old per-backend loops could not express
# ----------------------------------------------------------------------
def test_pruning_composes_with_cache(db, query):
    cache = PairCache()
    with connect(db, backend="indexed", cache=cache) as session:
        cold = session.execute(Query(query).skyline())
        warm = session.execute(Query(query).skyline())
    assert cold.stats.pruned_by_index == warm.stats.pruned_by_index
    assert warm.stats.exact_evaluations == 0
    assert warm.ids == cold.ids


def test_parallel_composes_with_cache(db, query):
    cache = PairCache()
    with connect(db, backend="parallel", max_workers=2, cache=cache) as session:
        cold = session.execute(Query(query).skyline())
        warm = session.execute(Query(query).skyline())
    assert cold.stats.exact_evaluations == len(db)  # written back after drain
    assert warm.stats.exact_evaluations == 0
    assert warm.ids == cold.ids


def test_custom_plan_composition(db, query):
    """A plan the shipped backends don't offer: bound-ordered pruning with
    a cache, assembled from engine parts."""
    cache = PairCache()
    backend = IndexedBackend(db, cache=cache)
    spec = Query(query).skyband(2).build()
    first = run_plan(db, spec, backend.build_plan(spec), cache=cache)
    second = run_plan(db, spec, backend.build_plan(spec), cache=cache)
    assert second.stats.exact_evaluations == 0 or second.stats.pruned_by_index
    assert first.ids == second.ids


def test_custom_stage_plugs_in(db, query):
    class RejectEverything(Stage):
        name = "reject-all"

        def decide(self, candidate):
            return "prune"

    spec = Query(query).skyline().build()
    answer = run_plan(
        db,
        spec,
        EvaluationPlan(
            source=DatabaseOrderSource(), cascade=(lambda ctx: RejectEverything(),)
        ),
    )
    assert answer.ids == []
    assert answer.stats.pruned_by_index == len(db)
    assert sorted(answer.pruned_ids) == db.ids()


# ----------------------------------------------------------------------
# Stage semantics in isolation
# ----------------------------------------------------------------------
def test_pareto_stage_counts_dominators():
    stage = ParetoPruneStage(prune_limit=2, tolerance=0.0)
    stage.observe(1, (1.0, 1.0))
    assert stage.decide(Candidate(9, (2.0, 2.0))) is None  # one dominator < limit
    stage.observe(2, (0.5, 0.5))
    assert stage.decide(Candidate(9, (2.0, 2.0))) == "prune"
    assert stage.decide(Candidate(9, None)) is None  # no bounds, no opinion


def test_rank_stage_prunes_beyond_kth_best():
    stage = RankBoundStage(k=2)
    assert stage.decide(Candidate(1, (9.0,))) is None  # fewer than k known
    stage.observe(1, (1.0,))
    stage.observe(2, (2.0,))
    assert stage.decide(Candidate(3, (2.5,))) == "prune"
    assert stage.decide(Candidate(3, (2.0,))) is None  # ties are kept


def test_threshold_stage():
    stage = ThresholdBoundStage(threshold=1.5)
    assert stage.decide(Candidate(1, (2.0,))) == "prune"
    assert stage.decide(Candidate(1, (1.5,))) is None


# ----------------------------------------------------------------------
# Statistics come from the one engine loop
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["memory", "indexed", "parallel"])
def test_candidate_accounting_is_exhaustive(backend, query):
    workload = make_workload(n_graphs=16, query_size=6, seed=21)
    db = GraphDatabase.from_graphs(workload.database)
    with connect(db, backend=backend) as session:
        stats = session.execute(Query(query).skyline()).stats
    assert stats.candidates_considered == len(db)
    assert (
        stats.exact_evaluations + stats.pruned_by_index + stats.served_from_cache
        == len(db)
    )


def test_pruned_ids_reported(db, query):
    answer = IndexedBackend(db).run(Query(query).topk(2).build())
    assert len(answer.pruned_ids) == answer.stats.pruned_by_index
    assert set(answer.pruned_ids).isdisjoint(answer.evaluated_ids)


def test_serial_and_pooled_evaluators_agree(db, query):
    spec = Query(query).skyline().build()
    serial = run_plan(
        db, spec, EvaluationPlan(source=DatabaseOrderSource(), evaluator=SerialEvaluator())
    )
    pooled = run_plan(
        db,
        spec,
        EvaluationPlan(
            source=DatabaseOrderSource(),
            evaluator=PooledEvaluator(max_workers=2, chunk_size=3),
        ),
    )
    assert serial.ids == pooled.ids
    assert {i: v.values for i, v in serial.vectors.items()} == {
        i: v.values for i, v in pooled.vectors.items()
    }
