"""Tests for incremental skylines, explanations and the query cache."""

import random

import pytest

from repro.core import explain_all, explain_membership, graph_similarity_skyline
from repro.db import GraphDatabase, QueryCache, SkylineExecutor
from repro.errors import QueryError
from repro.skyline import IncrementalSkyline, incremental_skyline, naive_skyline


# ----------------------------------------------------------------------
# IncrementalSkyline
# ----------------------------------------------------------------------
def test_incremental_basic_insertion():
    tracker = IncrementalSkyline(dimension=2)
    assert tracker.insert("a", (1.0, 3.0))
    assert tracker.insert("b", (3.0, 1.0))
    assert not tracker.insert("c", (4.0, 4.0))  # dominated by both
    assert set(tracker.skyline_keys()) == {"a", "b"}
    assert len(tracker) == 3
    assert "c" in tracker
    assert tracker.vector("c") == (4.0, 4.0)


def test_incremental_eviction():
    tracker = IncrementalSkyline(dimension=2)
    tracker.insert("a", (2.0, 2.0))
    assert tracker.insert("killer", (1.0, 1.0))
    assert tracker.skyline_keys() == ["killer"]
    assert tracker.skyline_size == 1


def test_incremental_removal_promotes_pool():
    tracker = IncrementalSkyline(dimension=2)
    tracker.insert("best", (1.0, 1.0))
    tracker.insert("shadowed", (2.0, 2.0))
    tracker.insert("deep", (3.0, 3.0))
    tracker.remove("best")
    assert tracker.skyline_keys() == ["shadowed"]  # deep stays dominated
    tracker.remove("shadowed")
    assert tracker.skyline_keys() == ["deep"]


def test_incremental_remove_pool_point_is_cheap():
    tracker = IncrementalSkyline(dimension=1)
    tracker.insert("a", (1.0,))
    tracker.insert("b", (2.0,))
    tracker.remove("b")
    assert tracker.skyline_keys() == ["a"]
    with pytest.raises(KeyError):
        tracker.remove("b")


def test_incremental_reinsert_replaces():
    tracker = IncrementalSkyline(dimension=2)
    tracker.insert("a", (5.0, 5.0))
    tracker.insert("a", (1.0, 1.0))  # replacement, not duplicate
    assert len(tracker) == 1
    assert tracker.skyline_keys() == ["a"]


def test_incremental_validation():
    with pytest.raises(ValueError):
        IncrementalSkyline(dimension=0)
    tracker = IncrementalSkyline(dimension=2)
    with pytest.raises(ValueError):
        tracker.insert("a", (1.0,))


def test_incremental_matches_batch_on_random_streams():
    rng = random.Random(0)
    for trial in range(20):
        n = rng.randint(0, 25)
        vectors = [
            (float(rng.randint(0, 6)), float(rng.randint(0, 6))) for _ in range(n)
        ]
        stream = incremental_skyline(list(enumerate(vectors)))
        assert sorted(stream) == naive_skyline(vectors), f"trial {trial}"


def test_incremental_matches_batch_under_deletions():
    rng = random.Random(1)
    for trial in range(15):
        tracker = IncrementalSkyline(dimension=2)
        live: dict[int, tuple[float, float]] = {}
        for step in range(30):
            if live and rng.random() < 0.3:
                victim = rng.choice(list(live))
                tracker.remove(victim)
                del live[victim]
            else:
                vector = (float(rng.randint(0, 5)), float(rng.randint(0, 5)))
                tracker.insert(step, vector)
                live[step] = vector
            keys = list(live)
            batch = {keys[i] for i in naive_skyline([live[k] for k in keys])}
            assert set(tracker.skyline_keys()) == batch, f"trial {trial} step {step}"


def test_incremental_rebuild_agrees():
    tracker = IncrementalSkyline(dimension=2)
    for i, vector in enumerate([(3.0, 1.0), (1.0, 3.0), (2.0, 2.0), (0.5, 4.0)]):
        tracker.insert(i, vector)
    before = set(tracker.skyline_keys())
    tracker.rebuild()
    assert set(tracker.skyline_keys()) == before


# ----------------------------------------------------------------------
# Explanations
# ----------------------------------------------------------------------
def test_explain_skyline_member(paper_db, paper_query):
    result = graph_similarity_skyline(paper_db, paper_query)
    explanation = explain_membership(result, "g1")
    assert explanation.in_skyline
    assert explanation.dominators == []
    assert "is in the skyline" in explanation.narrative()


def test_explain_dominated_graph(paper_db, paper_query):
    result = graph_similarity_skyline(paper_db, paper_query)
    explanation = explain_membership(result, "g6")
    assert not explanation.in_skyline
    dominator_names = {d.dominator for d in explanation.dominators}
    assert "g1" in dominator_names
    narrative = explanation.narrative()
    assert "NOT in the skyline" in narrative
    assert "dominated by g1" in narrative
    # the margin on the strictly-better dimension must be positive
    g1_margins = next(
        d.margins for d in explanation.dominators if d.dominator == "g1"
    )
    assert any(margin > 0 for margin in g1_margins)
    assert all(margin >= 0 for margin in g1_margins)


def test_explain_unknown_name(paper_db, paper_query):
    result = graph_similarity_skyline(paper_db, paper_query)
    with pytest.raises(QueryError):
        explain_membership(result, "nope")


def test_explain_all_covers_database(paper_db, paper_query):
    result = graph_similarity_skyline(paper_db, paper_query)
    explanations = explain_all(result)
    assert len(explanations) == len(paper_db)
    assert sum(1 for e in explanations if e.in_skyline) == 4


# ----------------------------------------------------------------------
# QueryCache
# ----------------------------------------------------------------------
def test_cache_hits_on_repeated_query(paper_db, paper_query):
    db = GraphDatabase.from_graphs(paper_db)
    cache = QueryCache()
    executor = SkylineExecutor(db, use_index=False, cache=cache)
    first = executor.execute(paper_query)
    assert first.stats.exact_evaluations == 7
    second = executor.execute(paper_query)
    assert second.stats.exact_evaluations == 0  # all served from cache
    assert second.skyline_ids == first.skyline_ids
    assert cache.hits == 7
    assert cache.hit_rate > 0


def test_cache_respects_measures_key(paper_db, paper_query):
    db = GraphDatabase.from_graphs(paper_db)
    cache = QueryCache()
    SkylineExecutor(db, use_index=False, cache=cache).execute(paper_query)
    edit_only = SkylineExecutor(
        db, measures=("edit",), use_index=False, cache=cache
    ).execute(paper_query)
    assert edit_only.stats.exact_evaluations == 7  # different measure vector


def test_cache_invalidate_graph(paper_db, paper_query):
    db = GraphDatabase.from_graphs(paper_db)
    cache = QueryCache()
    executor = SkylineExecutor(db, use_index=False, cache=cache)
    executor.execute(paper_query)
    cache.invalidate_graph(0)
    rerun = executor.execute(paper_query)
    assert rerun.stats.exact_evaluations == 1  # only g1 recomputed


def test_cache_lru_eviction():
    cache = QueryCache(max_entries=2)
    cache.put(1, "q", ("edit",), (1.0,))
    cache.put(2, "q", ("edit",), (2.0,))
    cache.get(1, "q", ("edit",))  # refresh 1
    cache.put(3, "q", ("edit",), (3.0,))  # evicts 2
    assert cache.get(2, "q", ("edit",)) is None
    assert cache.get(1, "q", ("edit",)) == (1.0,)
    assert len(cache) == 2


def test_cache_clear_and_validation():
    with pytest.raises(ValueError):
        QueryCache(max_entries=0)
    cache = QueryCache()
    cache.put(1, "q", ("edit",), (1.0,))
    cache.get(1, "q", ("edit",))
    cache.clear()
    assert len(cache) == 0
    assert cache.hits == 0
    assert cache.hit_rate == 0.0
