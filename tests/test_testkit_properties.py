"""Hypothesis properties of the workload generator and runner.

The harness itself must be trustworthy: generation is a pure function of
the seed, workloads survive the JSON wire format, arbitrary subsequences
replay (the shrinker's precondition), and small random workloads are
divergence-free against the oracle.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.testkit import Workload, generate_workload, run_workload
from repro.testkit.oracle import Oracle
from repro.testkit.workload import RunQuery

relaxed = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=2**32 - 1)


@given(seed=seeds)
@settings(max_examples=50, deadline=None)
def test_generation_is_deterministic(seed):
    first = generate_workload(seed=seed, n_steps=25)
    second = generate_workload(seed=seed, n_steps=25)
    assert first.to_json(sort_keys=True) == second.to_json(sort_keys=True)


@given(seed=seeds)
@settings(max_examples=30, deadline=None)
def test_workload_survives_json_round_trip(seed):
    workload = generate_workload(seed=seed, n_steps=20)
    restored = Workload.from_json(workload.to_json())
    assert restored.to_dict() == workload.to_dict()
    # Specs inside query steps revalidate on the way back in.
    for step in restored.steps:
        if isinstance(step, RunQuery):
            step.query.validate()


@given(seed=st.integers(min_value=0, max_value=10_000))
@relaxed
def test_small_workloads_replay_divergence_free(seed):
    report = run_workload(generate_workload(seed=seed, n_steps=12))
    assert report.ok, report.divergence.describe()


@given(seed=st.integers(min_value=0, max_value=10_000), data=st.data())
@relaxed
def test_any_subsequence_replays_divergence_free(seed, data):
    """The shrinker's precondition: dropping arbitrary steps can only
    skip work, never fabricate a divergence or crash."""
    workload = generate_workload(seed=seed, n_steps=14)
    keep = data.draw(
        st.lists(
            st.booleans(), min_size=len(workload), max_size=len(workload)
        )
    )
    subsequence = Workload(
        seed=seed,
        steps=tuple(s for s, kept in zip(workload.steps, keep) if kept),
    )
    report = run_workload(subsequence)
    assert report.ok, report.divergence.describe()


@given(seed=st.integers(min_value=0, max_value=5_000))
@relaxed
def test_oracle_mirror_tracks_membership(seed):
    """Oracle bookkeeping: handles() is insertion-ordered and remove()
    forgets memoized values (no stale vectors after re-adding)."""
    workload = generate_workload(seed=seed, n_steps=10)
    oracle = Oracle()
    from repro.testkit.workload import AddGraph, RemoveGraph

    for step in workload.steps:
        if isinstance(step, AddGraph):
            oracle.add(step.handle, step.graph)
        elif isinstance(step, RemoveGraph) and step.handle in oracle:
            oracle.remove(step.handle)
    handles = oracle.handles()
    assert len(handles) == len(set(handles)) == len(oracle)
    assert handles == sorted(handles, key=lambda h: int(h[1:]))
