"""Vectorized bound kernels must equal the scalar bounds *bit for bit*.

The acceptance contract of the vectorized index: enabling the batched
path changes nothing but speed. Every kernel output is compared to its
scalar ``features.py`` counterpart with exact ``==`` (no tolerance), on
hypothesis-generated graph populations and queries — including graphs
with disjoint label vocabularies, empty graphs, and a matrix that
reached its state through incremental adds/removes rather than a bulk
build.
"""

import pytest

np = pytest.importorskip("numpy", reason="repro.index requires NumPy")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.db.index import _normalized_edit_bound
from repro.graph import LabeledGraph
from repro.graph.features import (
    GraphFeatures,
    dist_gu_lower_bound,
    dist_mcs_lower_bound,
    edit_distance_lower_bound,
    mcs_upper_bound,
)
from repro.index import (
    FeatureStore,
    SignatureMatrix,
    VPTree,
    bound_matrix,
    dist_gu_lower_bounds,
    dist_mcs_lower_bounds,
    edit_lower_bounds,
    mcs_upper_bounds,
    normalized_edit_lower_bounds,
    signature_distances,
)
from repro.db import GraphDatabase
from repro.measures.base import resolve_measures

from tests.conftest import make_random_graph, small_labeled_graphs

relaxed = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

# Two disjoint label alphabets, so vocabularies are genuinely partial.
pop_graphs = st.lists(
    st.one_of(
        small_labeled_graphs(max_vertices=5),
        small_labeled_graphs(
            max_vertices=4, vertex_labels=("D", "E"), edge_labels=("z",)
        ),
    ),
    min_size=0,
    max_size=8,
)
query_graphs = st.one_of(
    small_labeled_graphs(max_vertices=5),
    small_labeled_graphs(max_vertices=4, vertex_labels=("D",), edge_labels=("z",)),
)


def _matrix_of(graphs) -> tuple[SignatureMatrix, list[GraphFeatures]]:
    matrix = SignatureMatrix()
    features = [GraphFeatures.of(g) for g in graphs]
    for graph_id, f in enumerate(features):
        matrix.add(graph_id, f)
    return matrix, features


@relaxed
@given(graphs=pop_graphs, query=query_graphs)
def test_kernels_bit_identical_to_scalar_bounds(graphs, query):
    matrix, features = _matrix_of(graphs)
    query_features = GraphFeatures.of(query)
    packed = matrix.pack_query(query_features)

    edit = edit_lower_bounds(matrix, packed)
    norm = normalized_edit_lower_bounds(matrix, packed)
    mcs_ub = mcs_upper_bounds(matrix, packed)
    d_mcs = dist_mcs_lower_bounds(matrix, packed)
    d_gu = dist_gu_lower_bounds(matrix, packed)

    for row, graph_id in enumerate(matrix.ids.tolist()):
        f = features[graph_id]
        assert edit[row] == edit_distance_lower_bound(f, query_features)
        assert norm[row] == _normalized_edit_bound(f, query_features)
        assert mcs_ub[row] == mcs_upper_bound(f, query_features)
        assert d_mcs[row] == dist_mcs_lower_bound(f, query_features)
        assert d_gu[row] == dist_gu_lower_bound(f, query_features)


@relaxed
@given(graphs=pop_graphs, query=query_graphs)
def test_bound_matrix_matches_scalar_optimistic_vectors(graphs, query):
    """The full (n, d) matrix equals FeatureIndex.optimistic_vector rows."""
    from repro.db.index import FeatureIndex

    matrix, features = _matrix_of(graphs)
    query_features = GraphFeatures.of(query)
    measures = resolve_measures(("edit", "edit-normalized", "mcs", "union"))
    packed = matrix.pack_query(query_features)
    batched = bound_matrix(matrix, packed, measures)

    index = FeatureIndex()
    for graph_id, f in enumerate(features):
        index.add(graph_id, f)
    for row, graph_id in enumerate(matrix.ids.tolist()):
        scalar = index.optimistic_vector(graph_id, query_features, measures)
        assert tuple(batched[row].tolist()) == scalar


def test_unknown_measure_gets_zero_column():
    matrix, _ = _matrix_of([make_random_graph(3), make_random_graph(4)])
    query_features = GraphFeatures.of(make_random_graph(5))
    measures = resolve_measures(("edit", "jaccard-edges"))
    batched = bound_matrix(matrix, matrix.pack_query(query_features), measures)
    assert batched.shape == (2, 2)
    assert np.all(batched[:, 1] == 0.0)


def test_empty_matrix_and_empty_graphs():
    matrix = SignatureMatrix()
    empty_features = GraphFeatures.of(LabeledGraph())
    measures = resolve_measures(("edit", "mcs", "union"))
    packed = matrix.pack_query(empty_features)
    assert bound_matrix(matrix, packed, measures).shape == (0, 3)

    matrix.add(0, empty_features)
    packed = matrix.pack_query(empty_features)
    assert tuple(bound_matrix(matrix, packed, measures)[0].tolist()) == (
        0.0,
        0.0,
        0.0,
    )


# ----------------------------------------------------------------------
# Incremental maintenance: the matrix state after arbitrary add/remove
# interleavings equals a bulk rebuild (row-level invalidation is exact).
# ----------------------------------------------------------------------
@relaxed
@given(
    graphs=st.lists(small_labeled_graphs(max_vertices=4), min_size=1, max_size=10),
    removals=st.lists(st.integers(min_value=0, max_value=9), max_size=6),
    query=query_graphs,
)
def test_incremental_maintenance_equals_rebuild(graphs, removals, query):
    incremental = SignatureMatrix()
    live: dict[int, GraphFeatures] = {}
    for graph_id, graph in enumerate(graphs):
        features = GraphFeatures.of(graph)
        incremental.add(graph_id, features)
        live[graph_id] = features
    for victim in removals:
        incremental.discard(victim)  # no-op when already gone
        live.pop(victim, None)

    rebuilt = SignatureMatrix()
    for graph_id, features in live.items():
        rebuilt.add(graph_id, features)

    assert set(incremental.ids.tolist()) == set(rebuilt.ids.tolist())
    query_features = GraphFeatures.of(query)
    measures = resolve_measures(("edit", "mcs", "union"))
    bounds_a = bound_matrix(incremental, incremental.pack_query(query_features), measures)
    bounds_b = bound_matrix(rebuilt, rebuilt.pack_query(query_features), measures)
    by_id_a = dict(zip(incremental.ids.tolist(), map(tuple, bounds_a.tolist())))
    by_id_b = dict(zip(rebuilt.ids.tolist(), map(tuple, bounds_b.tolist())))
    assert by_id_a == by_id_b


def test_feature_store_row_level_invalidation():
    database = GraphDatabase.from_graphs(
        [make_random_graph(seed) for seed in range(6)]
    )
    store = FeatureStore(database)
    store.sync()
    assert store.rows_added == 6 and store.rows_dropped == 0

    # An unmutated database costs one version comparison, no row work.
    store.sync()
    assert store.rows_added == 6 and store.syncs == 1

    removed = database.ids()[2]
    database.remove(removed)
    inserted = database.insert(make_random_graph(99))
    store.sync()
    # Only the touched rows moved — the other five were never refreshed.
    assert store.rows_added == 7 and store.rows_dropped == 1
    assert removed not in store.matrix and inserted in store.matrix


def test_vocabulary_growth_backfills_zero():
    matrix = SignatureMatrix()
    matrix.add(0, GraphFeatures.of(make_random_graph(1, labels=("A", "B"))))
    # A later graph introduces labels the first row has never seen.
    newcomer = make_random_graph(2, labels=("X", "Y"), edge_labels=("q",))
    matrix.add(1, GraphFeatures.of(newcomer))
    query_features = GraphFeatures.of(newcomer)
    packed = matrix.pack_query(query_features)
    edit = edit_lower_bounds(matrix, packed)
    f0 = GraphFeatures.of(make_random_graph(1, labels=("A", "B")))
    assert edit[matrix.row_of[0]] == edit_distance_lower_bound(f0, query_features)
    assert edit[matrix.row_of[1]] == 0.0


def test_signature_distances_is_a_metric_on_samples():
    """Spot-check the triangle inequality the VP-tree relies on."""
    graphs = [make_random_graph(seed, max_vertices=6) for seed in range(12)]
    matrix, features = _matrix_of(graphs)
    sigs = [matrix.pack_query(f) for f in features]
    n = len(graphs)
    d = np.zeros((n, n))
    for i in range(n):
        d[i] = signature_distances(matrix, np.arange(n, dtype=np.int64), sigs[i])
    for i in range(n):
        assert d[i, i] == 0.0
        for j in range(n):
            assert d[i, j] == d[j, i]
            for k in range(n):
                assert d[i, k] <= d[i, j] + d[j, k] + 1e-9
