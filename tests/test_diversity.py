"""Tests for the diversity refinement of Section VII (Tables IV-V)."""

import pytest

from repro.core import (
    dense_ranks_descending,
    graph_similarity_skyline,
    pairwise_distance_matrix,
    refine_by_diversity,
    subset_diversity,
)
from repro.datasets import EXPECTED_DIVERSE_SUBSET, TABLE5_PAPER
from repro.errors import QueryError
from repro.graph import path_graph
from repro.measures import diversity_measures


@pytest.fixture
def paper_gss(paper_db, paper_query):
    return graph_similarity_skyline(paper_db, paper_query).skyline


# ----------------------------------------------------------------------
# Dense ranking (the exact tie policy Table V requires)
# ----------------------------------------------------------------------
def test_dense_ranks_paper_v1_column():
    # Table IV v1 column -> Table V r1 column.
    values = [0.86, 0.83, 0.87, 0.80, 0.83, 0.75]
    assert dense_ranks_descending(values) == [2, 3, 1, 4, 3, 5]


def test_dense_ranks_paper_v2_column():
    values = [0.67, 0.50, 0.60, 0.62, 0.70, 0.50]
    assert dense_ranks_descending(values) == [2, 5, 4, 3, 1, 5]


def test_dense_ranks_paper_v3_column():
    values = [0.80, 0.60, 0.67, 0.73, 0.77, 0.61]
    assert dense_ranks_descending(values) == [1, 6, 4, 3, 2, 5]


def test_dense_ranks_all_equal():
    assert dense_ranks_descending([1.0, 1.0, 1.0]) == [1, 1, 1]


def test_dense_ranks_empty():
    assert dense_ranks_descending([]) == []


# ----------------------------------------------------------------------
# Subset diversity
# ----------------------------------------------------------------------
def test_subset_diversity_is_pairwise_minimum(paper_gss):
    measures = diversity_measures()
    matrix = pairwise_distance_matrix(paper_gss, measures)
    diversity = subset_diversity((0, 1, 2), matrix, len(measures))
    for d in range(len(measures)):
        manual = min(
            matrix[(0, 1)][d], matrix[(0, 2)][d], matrix[(1, 2)][d]
        )
        assert diversity[d] == pytest.approx(manual)


def test_pairwise_matrix_is_symmetric(paper_gss):
    measures = diversity_measures()
    matrix = pairwise_distance_matrix(paper_gss, measures)
    for (i, j), vector in matrix.items():
        assert matrix[(j, i)] == vector


# ----------------------------------------------------------------------
# Exhaustive refinement on the paper's example
# ----------------------------------------------------------------------
def test_paper_refinement_selects_g1_g4(paper_gss):
    result = refine_by_diversity(paper_gss, k=2)
    assert tuple(g.name for g in result.subset) == EXPECTED_DIVERSE_SUBSET


def test_candidate_count_is_choose_n_k(paper_gss):
    result = refine_by_diversity(paper_gss, k=2)
    assert len(result.candidates) == 6  # C(4, 2)
    result3 = refine_by_diversity(paper_gss, k=3)
    assert len(result3.candidates) == 4  # C(4, 3)


def test_candidates_carry_ranks_and_val(paper_gss):
    result = refine_by_diversity(paper_gss, k=2)
    for candidate in result.candidates:
        assert len(candidate.ranks) == 3
        assert candidate.val == sum(candidate.ranks)
        assert all(rank >= 1 for rank in candidate.ranks)


def test_winner_minimises_val(paper_gss):
    result = refine_by_diversity(paper_gss, k=2)
    best = result.best
    assert best.val == min(c.val for c in result.candidates)


def test_val_ordering_consistent_with_paper(paper_gss):
    """The paper's val ordering (S1 best, S5 second, then S3, S4, S2, S6)
    must be preserved up to the documented v1 perturbations: in particular
    S1 and S5 stay the two minima, S6 stays the maximum."""
    result = refine_by_diversity(paper_gss, k=2)
    by_names = {tuple(c.names): c.val for c in result.candidates}
    vals = sorted(by_names.items(), key=lambda item: item[1])
    two_best = {vals[0][0], vals[1][0]}
    assert two_best == {("g1", "g4"), ("g4", "g7")}
    assert vals[-1][0] == ("g5", "g7")


def test_refinement_k_equals_n(paper_gss):
    result = refine_by_diversity(paper_gss, k=4)
    assert len(result.candidates) == 1
    assert [g.name for g in result.subset] == [g.name for g in paper_gss]


def test_refinement_validation(paper_gss):
    with pytest.raises(QueryError):
        refine_by_diversity(paper_gss, k=1)
    with pytest.raises(QueryError):
        refine_by_diversity(paper_gss, k=9)
    with pytest.raises(QueryError):
        refine_by_diversity(paper_gss, k=2, method="alien")


# ----------------------------------------------------------------------
# Greedy heuristic (extension)
# ----------------------------------------------------------------------
def test_greedy_refinement_returns_k_graphs(paper_gss):
    result = refine_by_diversity(paper_gss, k=2, method="greedy")
    assert len(result.subset) == 2
    assert result.method == "greedy"
    assert len(result.candidates) == 1


def test_greedy_close_to_exhaustive_on_paper_example(paper_gss):
    """The greedy heuristic may pick a different subset, but on the paper
    example it must land on one of the two val-minimal candidates
    ({g1,g4} and {g4,g7} tie at the minimum under measured distances)."""
    greedy = refine_by_diversity(paper_gss, k=2, method="greedy")
    names = tuple(sorted(g.name for g in greedy.subset))
    assert names in {("g1", "g4"), ("g4", "g7")}


def test_greedy_larger_k(paper_gss):
    result = refine_by_diversity(paper_gss, k=3, method="greedy")
    assert len(result.subset) == 3
    assert len({g.name for g in result.subset}) == 3


# ----------------------------------------------------------------------
# Custom measures
# ----------------------------------------------------------------------
def test_refinement_with_custom_measures(paper_gss):
    result = refine_by_diversity(paper_gss, k=2, measures=("mcs",))
    assert result.measures == ("mcs",)
    assert len(result.subset) == 2
