"""Tests for the top-k baseline and the end-to-end query engine."""

import pytest

from repro.core import (
    QueryAnswer,
    SimilarityQueryEngine,
    top_k_by_measure,
)
from repro.errors import QueryError
from repro.graph import path_graph


# ----------------------------------------------------------------------
# Top-k baseline (Section VI comparison)
# ----------------------------------------------------------------------
def test_top3_edit_contains_g3(paper_db, paper_query):
    """The paper: a top-3 DistEd baseline returns g3 to the user."""
    result = top_k_by_measure(paper_db, paper_query, "edit", 3)
    names = [g.name for g in result.graphs(paper_db)]
    assert "g3" in names
    assert names[0] == "g4"  # unique DistEd minimiser


def test_skyline_rejects_g3_that_topk_returns(paper_db, paper_query):
    """The headline contrast of Section VI."""
    from repro.core import graph_similarity_skyline

    topk_names = {
        g.name
        for g in top_k_by_measure(paper_db, paper_query, "edit", 3).graphs(paper_db)
    }
    skyline_names = {
        g.name for g in graph_similarity_skyline(paper_db, paper_query).skyline
    }
    assert "g3" in topk_names
    assert "g3" not in skyline_names


def test_topk_ranking_sorted_and_capped(paper_db, paper_query):
    result = top_k_by_measure(paper_db, paper_query, "edit", 100)
    distances = [d for _, d in result.ranking]
    assert distances == sorted(distances)
    assert len(result.ranking) == len(paper_db)


def test_topk_tie_break_by_database_order(paper_db, paper_query):
    result = top_k_by_measure(paper_db, paper_query, "edit", 7)
    # g3 and g5 tie at distance 3; g3 comes first in the database
    names = [paper_db[i].name for i in result.indices]
    assert names.index("g3") < names.index("g5")


def test_topk_validation(paper_db, paper_query):
    with pytest.raises(QueryError):
        top_k_by_measure(paper_db, paper_query, "edit", 0)


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
def test_engine_skyline_matches_function(paper_db, paper_query):
    engine = SimilarityQueryEngine()
    result = engine.skyline(paper_db, paper_query)
    assert tuple(g.name for g in result.skyline) == ("g1", "g4", "g5", "g7")


def test_engine_query_with_refinement(paper_db, paper_query):
    engine = SimilarityQueryEngine()
    answer = engine.query(paper_db, paper_query, refine_k=2)
    assert isinstance(answer, QueryAnswer)
    assert answer.refinement is not None
    assert [g.name for g in answer.graphs] == ["g1", "g4"]


def test_engine_skips_refinement_when_skyline_small(paper_db, paper_query):
    engine = SimilarityQueryEngine()
    answer = engine.query(paper_db, paper_query, refine_k=4)
    assert answer.refinement is None  # skyline already has 4 members
    assert len(answer.graphs) == 4


def test_engine_without_refinement(paper_db, paper_query):
    answer = SimilarityQueryEngine().query(paper_db, paper_query)
    assert answer.refinement is None
    assert len(answer.graphs) == 4


def test_engine_top_k_defaults_to_first_measure(paper_db, paper_query):
    engine = SimilarityQueryEngine()
    result = engine.top_k(paper_db, paper_query, 3)
    assert result.measure == "edit"


def test_engine_custom_measures(paper_db, paper_query):
    engine = SimilarityQueryEngine(measures=("mcs", "union"))
    result = engine.skyline(paper_db, paper_query)
    assert result.measures == ("mcs", "union")


def test_engine_greedy_refinement(paper_db, paper_query):
    engine = SimilarityQueryEngine()
    answer = engine.query(
        paper_db, paper_query, refine_k=2, refine_method="greedy"
    )
    assert len(answer.graphs) == 2
