"""Session lifecycle: the context manager releases backend resources.

The serving layer holds sessions open across many requests, so leaks
here compound; these tests pin the cleanup contract the server relies
on — ``close()`` is idempotent, the context manager always calls it,
and the parallel backend's shared-memory database attachment (and any
``/dev/shm`` segments behind it) disappears with the session."""

from __future__ import annotations

import pytest

import repro
from repro import GraphDatabase, Query
from repro.datasets import make_workload
from repro.engine.workers import live_segments
from repro.errors import QueryError


@pytest.fixture(scope="module")
def database():
    workload = make_workload(n_graphs=8, query_size=5, seed=13)
    return GraphDatabase.from_graphs(workload.database), workload.queries[0]


def test_session_context_manager_closes(database):
    db, query = database
    with repro.connect(db) as session:
        result = session.execute(Query(query).skyline())
        assert result.ids
    with pytest.raises(QueryError, match="closed"):
        session.execute(Query(query).skyline())
    session.close()  # idempotent


def test_session_close_propagates_on_exception(database):
    db, query = database
    with pytest.raises(RuntimeError):
        with repro.connect(db) as session:
            raise RuntimeError("boom")
    with pytest.raises(QueryError, match="closed"):
        session.execute(Query(query).skyline())


def test_parallel_session_releases_attachment(database):
    db, query = database
    before = set(live_segments())
    with repro.connect(db, backend="parallel", max_workers=2) as session:
        result = session.execute(Query(query).topk(3, "edit"))
        assert len(result.ids) == 3
        assert result.stats.pool is not None
        # The drain parked a database attachment on the pool.
        assert session.backend._evaluator._attachment_key is not None
    # Closing the session released it: no attachment reference, and no
    # shared-memory segment this session created is still alive.
    assert session.backend._evaluator._attachment_key is None
    assert set(live_segments()) <= before


def test_parallel_mutation_ships_delta_not_rollover(database):
    db, query = database
    db = GraphDatabase.from_graphs(db.graphs())  # private copy to mutate
    with repro.connect(db, backend="parallel", max_workers=2) as session:
        first = session.execute(Query(query).topk(2, "edit"))
        assert first.stats.pool["attach"].get("cold") == 1
        pool = session.backend._evaluator._pool
        attachment = pool._attachments[id(db)]
        assert attachment.delta_count == 0
        db.insert(query.copy(name="fresh"))
        second = session.execute(Query(query).topk(2, "edit"))
        # The mutation shipped a row-level delta, not a full payload.
        assert second.stats.pool["attach"].get("delta") == 1
        assert attachment.delta_count == 1
        assert attachment.version == db.version
        third = session.execute(Query(query).topk(2, "edit"))
        assert third.stats.pool["attach"].get("warm") == 1
    # Session close dropped the attachment (and its blobs) from the pool.
    assert id(db) not in pool._attachments
