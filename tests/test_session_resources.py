"""Session lifecycle: the context manager releases backend resources.

The serving layer holds sessions open across many requests, so leaks
here compound; these tests pin the cleanup contract the server relies
on — ``close()`` is idempotent, the context manager always calls it,
and the parallel backend's pool-shared payload file disappears with
the session."""

from __future__ import annotations

import os

import pytest

import repro
from repro import GraphDatabase, Query
from repro.datasets import make_workload
from repro.errors import QueryError


@pytest.fixture(scope="module")
def database():
    workload = make_workload(n_graphs=8, query_size=5, seed=13)
    return GraphDatabase.from_graphs(workload.database), workload.queries[0]


def test_session_context_manager_closes(database):
    db, query = database
    with repro.connect(db) as session:
        result = session.execute(Query(query).skyline())
        assert result.ids
    with pytest.raises(QueryError, match="closed"):
        session.execute(Query(query).skyline())
    session.close()  # idempotent


def test_session_close_propagates_on_exception(database):
    db, query = database
    with pytest.raises(RuntimeError):
        with repro.connect(db) as session:
            raise RuntimeError("boom")
    with pytest.raises(QueryError, match="closed"):
        session.execute(Query(query).skyline())


def test_parallel_session_cleans_payload_file(database):
    db, query = database
    with repro.connect(db, backend="parallel", max_workers=2) as session:
        result = session.execute(Query(query).topk(3, "edit"))
        assert len(result.ids) == 3
        payload_path = session.backend._evaluator._payload_path
        assert payload_path is not None and os.path.exists(payload_path)
    # closing the session dropped the pool-shared payload file
    assert session.backend._evaluator._payload_path is None
    assert not os.path.exists(payload_path)


def test_parallel_payload_rolls_over_on_mutation(database):
    db, query = database
    db = GraphDatabase.from_graphs(db.graphs())  # private copy to mutate
    with repro.connect(db, backend="parallel", max_workers=2) as session:
        session.execute(Query(query).topk(2, "edit"))
        first = session.backend._evaluator._payload_path
        db.insert(query.copy(name="fresh"))
        session.execute(Query(query).topk(2, "edit"))
        second = session.backend._evaluator._payload_path
        assert first != second  # version rollover re-wrote the payload
        assert not os.path.exists(first)
        assert os.path.exists(second)
    assert not os.path.exists(second)
