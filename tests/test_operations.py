"""Unit tests for edit operations, edit paths and cost models (Sec. IV-A)."""

import pytest

from repro.errors import InvalidEditOperationError
from repro.graph import (
    EdgeDeletion,
    EdgeInsertion,
    EdgeRelabeling,
    EditPath,
    LabeledGraph,
    UniformCostModel,
    VertexDeletion,
    VertexInsertion,
    VertexRelabeling,
)


@pytest.fixture
def base() -> LabeledGraph:
    return LabeledGraph.from_edges([("a", "b", "x"), ("b", "c", "x")])


def test_vertex_insertion(base):
    out = VertexInsertion("d", "D").apply(base)
    assert out.has_vertex("d")
    assert out.vertex_label("d") == "D"
    assert base.order == 3  # original untouched


def test_vertex_insertion_conflict(base):
    with pytest.raises(InvalidEditOperationError):
        VertexInsertion("a", "A").apply(base)


def test_vertex_deletion_requires_isolation(base):
    with pytest.raises(InvalidEditOperationError):
        VertexDeletion("a").apply(base)
    isolated = VertexInsertion("z", "Z").apply(base)
    out = VertexDeletion("z").apply(isolated)
    assert not out.has_vertex("z")


def test_vertex_deletion_missing(base):
    with pytest.raises(InvalidEditOperationError):
        VertexDeletion("nope").apply(base)


def test_vertex_relabeling_checks_old_label(base):
    out = VertexRelabeling("a", "a", "Z").apply(base)
    assert out.vertex_label("a") == "Z"
    with pytest.raises(InvalidEditOperationError):
        VertexRelabeling("a", "WRONG", "Z").apply(base)
    with pytest.raises(InvalidEditOperationError):
        VertexRelabeling("nope", "a", "Z").apply(base)


def test_edge_insertion(base):
    out = EdgeInsertion("a", "c", "y").apply(base)
    assert out.edge_label("a", "c") == "y"
    with pytest.raises(InvalidEditOperationError):
        EdgeInsertion("a", "b", "y").apply(base)  # exists
    with pytest.raises(InvalidEditOperationError):
        EdgeInsertion("a", "zz", "y").apply(base)  # missing endpoint


def test_edge_deletion(base):
    out = EdgeDeletion("a", "b").apply(base)
    assert not out.has_edge("a", "b")
    with pytest.raises(InvalidEditOperationError):
        EdgeDeletion("a", "c").apply(base)


def test_edge_relabeling(base):
    out = EdgeRelabeling("a", "b", "x", "y").apply(base)
    assert out.edge_label("a", "b") == "y"
    with pytest.raises(InvalidEditOperationError):
        EdgeRelabeling("a", "b", "WRONG", "y").apply(base)
    with pytest.raises(InvalidEditOperationError):
        EdgeRelabeling("a", "c", "x", "y").apply(base)


def test_uniform_cost_model_defaults():
    costs = UniformCostModel()
    assert costs.vertex_substitution("A", "A") == 0.0
    assert costs.vertex_substitution("A", "B") == 1.0
    assert costs.edge_substitution("x", "x") == 0.0
    assert costs.edge_substitution("x", "y") == 1.0
    assert costs.vertex_deletion("A") == 1.0
    assert costs.vertex_insertion("A") == 1.0
    assert costs.edge_deletion("x") == 1.0
    assert costs.edge_insertion("x") == 1.0


def test_uniform_cost_model_custom_and_validation():
    costs = UniformCostModel(indel_cost=2.0, mismatch_cost=0.5)
    assert costs.vertex_deletion("A") == 2.0
    assert costs.vertex_substitution("A", "B") == 0.5
    with pytest.raises(ValueError):
        UniformCostModel(indel_cost=-1)


def test_operation_costs():
    costs = UniformCostModel()
    assert VertexInsertion("d", "D").cost(costs) == 1.0
    assert VertexDeletion("d").cost(costs) == 1.0
    assert VertexRelabeling("d", "A", "B").cost(costs) == 1.0
    assert VertexRelabeling("d", "A", "A").cost(costs) == 0.0
    assert EdgeInsertion("a", "b", "x").cost(costs) == 1.0
    assert EdgeDeletion("a", "b").cost(costs) == 1.0
    assert EdgeRelabeling("a", "b", "x", "y").cost(costs) == 1.0


def test_edit_path_cost_is_additive(base):
    path = EditPath(
        [
            EdgeDeletion("a", "b"),
            VertexRelabeling("a", "a", "Z"),
            EdgeInsertion("a", "c", "y"),
        ]
    )
    assert path.cost() == 3.0
    assert len(path) == 3
    assert len(list(path)) == 3


def test_edit_path_apply_order_matters(base):
    path = EditPath()
    path.append(EdgeDeletion("a", "b"))
    path.append(EdgeDeletion("b", "c"))
    path.append(VertexDeletion("b"))
    out = path.apply(base)
    assert not out.has_vertex("b")
    assert out.order == 2
    assert base.order == 3  # original untouched


def test_edit_path_invalid_sequence_raises(base):
    path = EditPath([VertexDeletion("b")])  # b still has edges
    with pytest.raises(InvalidEditOperationError):
        path.apply(base)


def test_edit_path_repr():
    assert "2 operations" in repr(EditPath([VertexDeletion("x"), VertexDeletion("y")]))
