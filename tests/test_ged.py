"""Tests for the exact graph edit distance solver (Definition 8)."""

import itertools

import pytest

from repro.graph import (
    LabeledGraph,
    UniformCostModel,
    edit_path_from_mapping,
    ged,
    graph_edit_distance,
    is_isomorphic,
    path_graph,
)
from repro.graph.ged_approx import induced_edit_cost
from tests.conftest import make_random_graph


def test_ged_identical_graphs_zero(triangle):
    assert ged(triangle, triangle.copy()) == 0.0


def test_ged_isomorphic_graphs_zero():
    """The paper notes edit distance between isomorphic graphs is zero."""
    g1 = LabeledGraph.from_edges([(1, 2, "x"), (2, 3, "y")],
                                 vertex_labels={1: "A", 2: "B", 3: "C"})
    g2 = LabeledGraph.from_edges([("w", "u", "x"), ("u", "v", "y")],
                                 vertex_labels={"u": "B", "v": "C", "w": "A"})
    assert ged(g1, g2) == 0.0


def test_ged_single_operations():
    base = path_graph(["A", "B", "C"], name="base")
    relabeled = base.copy()
    relabeled.relabel_vertex(0, "Z")
    assert ged(base, relabeled) == 1.0

    edge_less = base.copy()
    edge_less.remove_edge(0, 1)
    assert ged(base, edge_less) == 1.0

    extra_edge = base.copy()
    extra_edge.add_edge(0, 2, "w")
    assert ged(base, extra_edge) == 1.0

    extra_vertex = base.copy()
    extra_vertex.add_vertex(9, "Q")
    assert ged(base, extra_vertex) == 1.0


def test_ged_fig1_pair_is_four(fig1_g1, fig1_g2):
    """Example 2: DistEd(g1, g2) = 4."""
    assert ged(fig1_g1, fig1_g2) == 4.0


def test_ged_fig1_optimal_sequence_composition(fig1_g1, fig1_g2):
    """The optimal mapping realises exactly the paper's four operations:
    one edge deletion, one edge relabeling, one vertex relabeling, one
    edge insertion."""
    result = graph_edit_distance(fig1_g1, fig1_g2)
    path = edit_path_from_mapping(fig1_g1, fig1_g2, result.mapping)
    kinds = sorted(type(op).__name__ for op in path)
    assert kinds == [
        "EdgeDeletion",
        "EdgeInsertion",
        "EdgeRelabeling",
        "VertexRelabeling",
    ]
    assert path.cost() == 4.0


def test_ged_symmetry_uniform_costs():
    for seed in range(10):
        g1 = make_random_graph(seed, max_vertices=5)
        g2 = make_random_graph(seed + 100, max_vertices=5)
        assert ged(g1, g2) == ged(g2, g1), f"seed {seed}"


def test_ged_triangle_inequality_on_sample():
    graphs = [make_random_graph(seed, max_vertices=4) for seed in range(6)]
    distance = {}
    for i, j in itertools.combinations(range(len(graphs)), 2):
        distance[(i, j)] = distance[(j, i)] = ged(graphs[i], graphs[j])
    for i, j, k in itertools.permutations(range(len(graphs)), 3):
        assert distance[(i, j)] <= distance[(i, k)] + distance[(k, j)] + 1e-9


def test_ged_mapping_cost_matches_distance():
    for seed in range(10):
        g1 = make_random_graph(seed, max_vertices=5)
        g2 = make_random_graph(seed + 200, max_vertices=5)
        result = graph_edit_distance(g1, g2)
        assert result.optimal
        realised = induced_edit_cost(g1, g2, result.mapping)
        assert realised == pytest.approx(result.distance)


def test_ged_edit_path_transforms_g1_into_g2():
    for seed in (1, 5, 13, 27):
        g1 = make_random_graph(seed, max_vertices=5)
        g2 = make_random_graph(seed + 404, max_vertices=5)
        result = graph_edit_distance(g1, g2)
        path = edit_path_from_mapping(g1, g2, result.mapping)
        assert path.cost() == pytest.approx(result.distance)
        transformed = path.apply(g1)
        assert is_isomorphic(transformed, g2)


def test_ged_to_empty_graph():
    g = path_graph(["A", "B", "C"])
    empty = LabeledGraph()
    # delete 2 edges + 3 vertices (or insert, in the other direction)
    assert ged(g, empty) == 5.0
    assert ged(empty, g) == 5.0


def test_ged_custom_cost_model():
    base = path_graph(["A", "B"])
    relabeled = path_graph(["A", "Z"])
    cheap_relabel = UniformCostModel(indel_cost=10.0, mismatch_cost=0.5)
    assert ged(base, relabeled, costs=cheap_relabel) == 0.5
    # with expensive relabels, delete+insert the vertex is still worse
    # (it costs 2 indels for the vertex plus edge churn), relabel wins
    pricey = UniformCostModel(indel_cost=1.0, mismatch_cost=1.5)
    assert ged(base, relabeled, costs=pricey) == 1.5


def test_ged_respects_upper_bound_seed():
    g1 = path_graph(["A", "B", "C"])
    g2 = path_graph(["A", "B", "Z"])
    result = graph_edit_distance(g1, g2, upper_bound=10.0)
    assert result.distance == 1.0


def test_ged_node_limit_gives_upper_bound():
    g1 = make_random_graph(33, max_vertices=6)
    g2 = make_random_graph(77, max_vertices=6)
    exact = graph_edit_distance(g1, g2)
    limited = graph_edit_distance(g1, g2, node_limit=1)
    assert limited.expanded_nodes <= 1
    assert not limited.optimal
    assert limited.distance >= exact.distance  # seed UB is still valid


def test_ged_size_difference_lower_bound():
    for seed in range(8):
        g1 = make_random_graph(seed, max_vertices=5)
        g2 = make_random_graph(seed + 900, max_vertices=5)
        assert ged(g1, g2) >= abs(g1.size - g2.size)
        assert ged(g1, g2) >= abs(g1.order - g2.order)


def test_ged_deleted_vertex_mapping_reported():
    g1 = path_graph(["A", "B", "C"])  # 3 vertices
    g2 = path_graph(["A", "B"])  # 2 vertices
    result = graph_edit_distance(g1, g2)
    assert result.distance == 2.0  # delete edge B-C + vertex C
    assert None in result.mapping.values()


def test_ged_empty_vs_empty():
    assert ged(LabeledGraph(), LabeledGraph()) == 0.0
