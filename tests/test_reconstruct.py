"""Tests for the reconstruction constraints, verifier and search."""

import pytest

from repro.datasets import database_by_name, figure3_query
from repro.graph import path_graph
from repro.reconstruct import (
    PAPER_CONSTRAINTS,
    PairSolverCache,
    SKYLINE_NAMES,
    search_reconstruction,
    verify_assignment,
)


@pytest.fixture(scope="module")
def shipped():
    return database_by_name(), figure3_query()


def test_constraint_counts():
    assert PAPER_CONSTRAINTS.hard_cell_count() == 22
    assert PAPER_CONSTRAINTS.soft_cell_count() == 12


def test_shipped_dataset_satisfies_all_hard_constraints(shipped):
    assignment, query = shipped
    report = verify_assignment(assignment, query)
    assert report.hard_ok, [c for c in report.hard_cells if not c.exact]


def test_shipped_dataset_soft_agreement(shipped):
    """All 6 pairwise-mcs cells exact; 3 of 6 pairwise-ged cells exact;
    total soft deviation is exactly 3 edits (DESIGN.md §4)."""
    assignment, query = shipped
    report = verify_assignment(assignment, query)
    mcs_cells = [c for c in report.soft_cells if c.kind == "pair-mcs"]
    ged_cells = [c for c in report.soft_cells if c.kind == "pair-ged"]
    assert all(cell.exact for cell in mcs_cells)
    assert sum(1 for cell in ged_cells if cell.exact) == 3
    assert report.soft_deviation == 3.0


def test_report_summary_and_mismatches(shipped):
    assignment, query = shipped
    report = verify_assignment(assignment, query)
    assert "cells exact" in report.summary()
    assert "hard=OK" in report.summary()
    mismatched_keys = {cell.key for cell in report.mismatches()}
    assert mismatched_keys == {"(g1,g5)", "(g1,g7)", "(g4,g7)"}


def test_verifier_detects_hard_violation(shipped):
    assignment, query = shipped
    broken = dict(assignment)
    broken["g1"] = path_graph(["a", "b", "c"], name="g1")  # wrong size
    report = verify_assignment(broken, query)
    assert not report.hard_ok


def test_verifier_detects_disconnected(shipped):
    assignment, query = shipped
    bad = assignment["g1"].copy()
    # split g1 into two components without changing the edge count
    bad.remove_edge("a", "g")
    bad.add_edge("f", "g")
    broken = dict(assignment)
    broken["g1"] = bad
    report = verify_assignment(broken, query)
    # the structural cells may pass (still connected) but Table cells move;
    # at minimum the report must notice *something* changed
    assert not report.hard_ok or report.soft_deviation != 3.0


def test_pair_cache_reuses_results(shipped):
    assignment, query = shipped
    cache = PairSolverCache()
    first = cache.ged(assignment["g1"], query)
    second = cache.ged(assignment["g1"], query)
    assert first == second
    assert cache.mcs(assignment["g1"], query) == cache.mcs(query, assignment["g1"])


def test_search_rejects_infeasible_start(shipped):
    assignment, query = shipped
    broken = dict(assignment)
    broken["g1"] = path_graph(["a", "b"], name="g1")
    with pytest.raises(ValueError):
        search_reconstruction(broken, query, iterations=1)


def test_search_never_worsens_soft_deviation(shipped):
    assignment, query = shipped
    result = search_reconstruction(assignment, query, iterations=15, seed=3)
    assert result.report.hard_ok
    assert result.report.soft_deviation <= 3.0
    assert result.iterations == 15
    assert len(result.history) == 16  # initial value + one per iteration
    assert result.history == sorted(result.history, reverse=True)


def test_search_preserves_sizes(shipped):
    assignment, query = shipped
    result = search_reconstruction(assignment, query, iterations=10, seed=7)
    for name in SKYLINE_NAMES:
        assert result.assignment[name].size == PAPER_CONSTRAINTS.sizes[name]
