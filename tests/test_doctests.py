"""Run the doctests embedded in module and class docstrings.

Keeps the executable examples in the documentation honest — in particular
the package-level "quick tour", which doubles as the README's headline
claim (the paper's skyline and refined subset).
"""

import doctest

import pytest

import repro
import repro.graph.labeled_graph

MODULES_WITH_DOCTESTS = [
    repro,
    repro.graph.labeled_graph,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    failures, attempted = doctest.testmod(
        module, verbose=False, raise_on_error=False
    ).failed, doctest.testmod(module, verbose=False).attempted
    assert attempted > 0, f"{module.__name__} lost its doctest examples"
    assert failures == 0
