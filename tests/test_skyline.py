"""Tests for the generic skyline algorithms (Section II-A)."""

import pytest

from repro.datasets import EXPECTED_SKYLINE, hotel_names, hotel_vectors
from repro.errors import QueryError
from repro.skyline import (
    ALGORITHMS,
    bnl_skyline,
    dnc_skyline,
    dominance_counts,
    dominates,
    incomparable,
    is_skyline,
    naive_skyline,
    sfs_skyline,
    skyline,
    top_k_dominating,
    validate_vectors,
)

ALL_ALGOS = sorted(ALGORITHMS)


# ----------------------------------------------------------------------
# Dominance primitive (Definition 1)
# ----------------------------------------------------------------------
def test_dominates_definition():
    assert dominates((1.0, 2.0), (1.0, 3.0))
    assert dominates((0.0, 0.0), (1.0, 1.0))
    assert not dominates((1.0, 2.0), (1.0, 2.0))  # equal: not strict
    assert not dominates((1.0, 3.0), (2.0, 2.0))  # incomparable
    assert not dominates((2.0, 2.0), (1.0, 3.0))


def test_dominates_dimension_mismatch():
    with pytest.raises(ValueError):
        dominates((1.0,), (1.0, 2.0))


def test_dominates_with_tolerance():
    # without tolerance, any strict float gap counts
    assert dominates((1.0, 1.0), (1.0000001, 1.0000001))
    # with tolerance, near-ties on every dimension are not strict
    assert not dominates((1.0, 1.0), (1.0000001, 1.0000001), tolerance=1e-6)
    # a real gap on one dimension still dominates under tolerance
    assert dominates((1.0000001, 1.0), (1.0, 2.0), tolerance=1e-6)


def test_incomparable():
    assert incomparable((1.0, 3.0), (2.0, 2.0))
    assert not incomparable((1.0, 2.0), (2.0, 3.0))


def test_validate_vectors():
    assert validate_vectors([]) == 0
    assert validate_vectors([(1.0, 2.0)]) == 2
    with pytest.raises(ValueError):
        validate_vectors([(1.0,), (1.0, 2.0)])


# ----------------------------------------------------------------------
# Table I (Example 1)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ALL_ALGOS)
def test_hotel_skyline_matches_paper(algorithm):
    vectors = hotel_vectors()
    names = hotel_names()
    indices = skyline(vectors, algorithm=algorithm)
    assert tuple(names[i] for i in indices) == EXPECTED_SKYLINE


def test_hotel_dominance_examples():
    """H1 is dominated by H2, and H7 by H6 (Example 1)."""
    vectors = {name: v for name, v in zip(hotel_names(), hotel_vectors())}
    assert dominates(vectors["H2"], vectors["H1"])
    assert dominates(vectors["H6"], vectors["H7"])


# ----------------------------------------------------------------------
# Algorithm correctness & agreement
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ALL_ALGOS)
def test_empty_and_singleton(algorithm):
    assert skyline([], algorithm=algorithm) == []
    assert skyline([(1.0, 2.0)], algorithm=algorithm) == [0]


@pytest.mark.parametrize("algorithm", ALL_ALGOS)
def test_duplicates_all_kept(algorithm):
    vectors = [(1.0, 1.0), (1.0, 1.0), (2.0, 2.0)]
    assert skyline(vectors, algorithm=algorithm) == [0, 1]


@pytest.mark.parametrize("algorithm", ALL_ALGOS)
def test_single_dimension(algorithm):
    vectors = [(3.0,), (1.0,), (2.0,), (1.0,)]
    assert skyline(vectors, algorithm=algorithm) == [1, 3]


@pytest.mark.parametrize("algorithm", ALL_ALGOS)
def test_total_order_chain(algorithm):
    vectors = [(float(i), float(i)) for i in range(10)]
    assert skyline(vectors, algorithm=algorithm) == [0]


@pytest.mark.parametrize("algorithm", ALL_ALGOS)
def test_anti_chain_everyone_survives(algorithm):
    vectors = [(float(i), float(10 - i)) for i in range(10)]
    assert skyline(vectors, algorithm=algorithm) == list(range(10))


def test_algorithms_agree_on_random_data():
    import random

    rng = random.Random(0)
    for trial in range(25):
        n = rng.randint(0, 40)
        d = rng.randint(1, 4)
        vectors = [
            tuple(float(rng.randint(0, 8)) for _ in range(d)) for _ in range(n)
        ]
        reference = naive_skyline(vectors)
        assert is_skyline(vectors, reference)
        assert bnl_skyline(vectors) == reference, f"bnl trial {trial}"
        assert sfs_skyline(vectors) == reference, f"sfs trial {trial}"
        assert dnc_skyline(vectors) == reference, f"dnc trial {trial}"


def test_unknown_algorithm_rejected():
    with pytest.raises(QueryError):
        skyline([(1.0,)], algorithm="quantum")


def test_is_skyline_detects_bad_answers():
    vectors = [(1.0, 1.0), (2.0, 2.0)]
    assert is_skyline(vectors, [0])
    assert not is_skyline(vectors, [0, 1])  # includes dominated point
    assert not is_skyline(vectors, [])  # misses skyline point


# ----------------------------------------------------------------------
# Top-k dominating
# ----------------------------------------------------------------------
def test_dominance_counts():
    vectors = [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]
    assert dominance_counts(vectors) == [2, 1, 0]


def test_top_k_dominating_ranking():
    vectors = [(3.0, 3.0), (1.0, 1.0), (2.0, 2.0)]
    assert top_k_dominating(vectors, 2) == [1, 2]
    assert top_k_dominating(vectors, 10) == [1, 2, 0]  # capped at n
    with pytest.raises(ValueError):
        top_k_dominating(vectors, -1)


def test_top_k_dominating_tie_broken_by_order():
    vectors = [(1.0, 2.0), (2.0, 1.0), (3.0, 3.0)]
    # both 0 and 1 dominate exactly {2}; input order wins
    assert top_k_dominating(vectors, 1) == [0]
