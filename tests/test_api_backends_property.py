"""Property test: every execution backend returns identical answer sets.

The api layer's core contract — ``memory``, ``indexed`` and ``parallel``
may do arbitrarily different amounts of work, but for any database and any
query they must return exactly the same skyline / skyband / top-k ids.
Hypothesis drives random small databases and query graphs through all
three backends and compares the id sets; the serial exhaustive ``memory``
backend is the reference semantics.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Query, connect
from repro.db import GraphDatabase

from tests.conftest import small_labeled_graphs

BACKENDS = ("memory", "indexed", "parallel")

databases = st.lists(
    small_labeled_graphs(max_vertices=4, connected=True), min_size=1, max_size=5
)
queries = small_labeled_graphs(max_vertices=4, connected=True)

relaxed = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _answers(graphs, build):
    database = GraphDatabase.from_graphs(graphs)
    ids = {}
    for backend in BACKENDS:
        options = {"max_workers": 2} if backend == "parallel" else {}
        with connect(database, backend=backend, **options) as session:
            ids[backend] = set(session.execute(build()).ids)
    return ids


@relaxed
@given(graphs=databases, query=queries)
def test_skyline_parity_across_backends(graphs, query):
    ids = _answers(graphs, lambda: Query(query).measures("edit", "mcs").skyline())
    assert ids["memory"] == ids["indexed"] == ids["parallel"]
    assert ids["memory"]  # a non-empty database always has a skyline


@relaxed
@given(graphs=databases, query=queries, k=st.integers(min_value=1, max_value=3))
def test_skyband_parity_across_backends(graphs, query, k):
    ids = _answers(graphs, lambda: Query(query).measures("edit", "mcs").skyband(k))
    assert ids["memory"] == ids["indexed"] == ids["parallel"]


@relaxed
@given(graphs=databases, query=queries, k=st.integers(min_value=1, max_value=4))
def test_topk_parity_across_backends(graphs, query, k):
    database = GraphDatabase.from_graphs(graphs)
    rankings = {}
    for backend in BACKENDS:
        options = {"max_workers": 2} if backend == "parallel" else {}
        with connect(database, backend=backend, **options) as session:
            result = session.execute(Query(query).topk(k, "edit"))
            rankings[backend] = [(i, result.distance(i)) for i in result.ids]
    assert rankings["memory"] == rankings["indexed"] == rankings["parallel"]


@relaxed
@given(
    graphs=databases,
    query=queries,
    threshold=st.floats(min_value=0.0, max_value=6.0, allow_nan=False),
)
def test_threshold_parity_across_backends(graphs, query, threshold):
    ids = _answers(
        graphs, lambda: Query(query).measures("edit").threshold(threshold, "edit")
    )
    assert ids["memory"] == ids["indexed"] == ids["parallel"]
