"""Property test: every execution backend returns identical answer sets.

The api layer's core contract — ``memory``, ``indexed``, ``parallel``
and ``vectorized`` may do arbitrarily different amounts of work, but for
any database and any query they must return exactly the same skyline /
skyband / top-k ids. Hypothesis drives random small databases and query
graphs through all backends and compares the id sets; the serial
exhaustive ``memory`` backend is the reference semantics.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Query, connect
from repro.api.backends import available_backends
from repro.db import GraphDatabase

from tests.conftest import small_labeled_graphs

# ``vectorized`` joins the parity rotation whenever NumPy is importable
# (the backend registry gates on it), so the suite still runs without it.
# ``sharded`` sessions are opened through the same ``connect`` call — the
# session re-partitions the database into the default 2 shards.
BACKENDS = tuple(
    name
    for name in ("memory", "indexed", "parallel", "vectorized", "sharded")
    if name in available_backends()
)

databases = st.lists(
    small_labeled_graphs(max_vertices=4, connected=True), min_size=1, max_size=5
)
queries = small_labeled_graphs(max_vertices=4, connected=True)

relaxed = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _answers(graphs, build):
    database = GraphDatabase.from_graphs(graphs)
    ids = {}
    for backend in BACKENDS:
        options = {"max_workers": 2} if backend == "parallel" else {}
        with connect(database, backend=backend, **options) as session:
            ids[backend] = set(session.execute(build()).ids)
    return ids


@relaxed
@given(graphs=databases, query=queries)
def test_skyline_parity_across_backends(graphs, query):
    ids = _answers(graphs, lambda: Query(query).measures("edit", "mcs").skyline())
    assert all(ids[backend] == ids["memory"] for backend in BACKENDS)
    assert ids["memory"]  # a non-empty database always has a skyline


@relaxed
@given(graphs=databases, query=queries, k=st.integers(min_value=1, max_value=3))
def test_skyband_parity_across_backends(graphs, query, k):
    ids = _answers(graphs, lambda: Query(query).measures("edit", "mcs").skyband(k))
    assert all(ids[backend] == ids["memory"] for backend in BACKENDS)


@relaxed
@given(graphs=databases, query=queries, k=st.integers(min_value=1, max_value=4))
def test_topk_parity_across_backends(graphs, query, k):
    database = GraphDatabase.from_graphs(graphs)
    rankings = {}
    for backend in BACKENDS:
        options = {"max_workers": 2} if backend == "parallel" else {}
        with connect(database, backend=backend, **options) as session:
            result = session.execute(Query(query).topk(k, "edit"))
            rankings[backend] = [(i, result.distance(i)) for i in result.ids]
    assert all(rankings[backend] == rankings["memory"] for backend in BACKENDS)


@relaxed
@given(
    graphs=databases,
    query=queries,
    threshold=st.floats(min_value=0.0, max_value=6.0, allow_nan=False),
)
def test_threshold_parity_across_backends(graphs, query, threshold):
    ids = _answers(
        graphs, lambda: Query(query).measures("edit").threshold(threshold, "edit")
    )
    assert all(ids[backend] == ids["memory"] for backend in BACKENDS)
