"""Budget-aware anytime measures and the interval-based engine path.

Covers the certified ``[lower, upper]`` interval contract end to end:
solver truncation (DF-GED, A*-GED, McGregor MCS, clique MCS), the
``distance_interval`` API of the four paper measures, the engine's
budgeted execution (node budgets refine until the answer is certified
and must then equal the exhaustive oracle's), and the acceptance
scenario — a top-k query whose exact evaluation would blow a 1-second
wall returns certified intervals within a ~100 ms budget.
"""

from __future__ import annotations

import math
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.backends import create_backend
from repro.api.spec import Query
from repro.db import GraphDatabase
from repro.engine.deadline import Deadline, deadline_scope
from repro.errors import DeadlineExceeded
from repro.graph import Budget, Interval, induced_edit_cost
from repro.graph.cost_models import LabelMatrixCostModel, WeightedCostModel
from repro.graph.ged import graph_edit_distance
from repro.graph.ged_astar import graph_edit_distance_astar
from repro.graph.generators import random_labeled_graph
from repro.graph.mcs import maximum_common_subgraph
from repro.graph.mcs_clique import maximum_common_subgraph_clique
from repro.measures import (
    EditDistance,
    GraphUnionDistance,
    McsDistance,
    NormalizedEditDistance,
    PairContext,
)
from tests.conftest import small_labeled_graphs

MEASURES = (
    EditDistance(),
    NormalizedEditDistance(),
    McsDistance(),
    GraphUnionDistance(),
)


def _pair(seed: int, n: int = 6, m: int = 8):
    g1 = random_labeled_graph(n, m, vertex_labels=("a", "b"), seed=seed)
    g2 = random_labeled_graph(n, m, vertex_labels=("a", "b"), seed=seed + 1000)
    return g1, g2


# ----------------------------------------------------------------------
# Budget / Interval primitives
# ----------------------------------------------------------------------
def test_budget_exhaustion_rules():
    assert Budget().unlimited
    assert not Budget().exhausted(10**9)
    assert Budget(node_limit=5).exhausted(5)
    assert not Budget(node_limit=5).exhausted(4)
    assert Budget(expires_at=time.monotonic() - 1).exhausted()
    assert not Budget.of(seconds=60).exhausted()


def test_interval_contract():
    interval = Interval(1.0, 3.0)
    assert not interval.settled and interval.width == 2.0
    assert 1.0 in interval and 3.0 in interval and 2.5 in interval
    assert 0.5 not in interval
    exact = Interval.exact(2.0)
    assert exact.settled
    meet = interval.intersect(Interval(2.0, 10.0))
    assert (meet.lower, meet.upper) == (2.0, 3.0)
    # crossing endpoints clamp instead of inverting
    crossed = Interval(3.0, 1.0)
    assert crossed.lower <= crossed.upper
    assert Interval(0.0, math.inf).to_wire() == [0.0, None]


# ----------------------------------------------------------------------
# Solver truncation: certified bounds and realized incumbents
# ----------------------------------------------------------------------
def test_ged_budget_interval_brackets_exact():
    g1, g2 = _pair(3)
    exact = graph_edit_distance(g1, g2)
    for nodes in (1, 5, 50, 5000):
        result = graph_edit_distance(g1, g2, budget=Budget(node_limit=nodes))
        interval = result.interval()
        assert interval.lower <= exact.distance + 1e-9
        assert exact.distance <= interval.upper + 1e-9
        assert result.found  # the incumbent seed realizes every budget


@pytest.mark.parametrize(
    "costs",
    [
        WeightedCostModel(
            vertex_indel=2.0, vertex_mismatch=1.5,
            edge_indel=0.5, edge_mismatch=2.5,
        ),
        LabelMatrixCostModel(
            vertex_matrix={("a", "b"): 4.0},
            indel_cost=3.0, default_mismatch=2.0,
        ),
    ],
)
def test_ged_truncated_incumbent_is_finite_for_any_cost_model(costs):
    # Regression: node_limit with non-uniform costs and no upper_bound
    # used to report an unrealized/infinite "upper bound". Every run must
    # now carry a realized incumbent mapping whose induced cost *is* the
    # reported distance.
    g1, g2 = _pair(7)
    result = graph_edit_distance(g1, g2, costs=costs, node_limit=1)
    assert math.isfinite(result.distance)
    assert result.found
    assert result.mapping is not None
    realized = induced_edit_cost(g1, g2, result.mapping, costs)
    assert realized <= result.distance + 1e-6
    assert result.interval().lower <= result.distance + 1e-9


def test_ged_found_flag_distinguishes_unrealized_truncation():
    # An explicit (unrealizable) upper_bound with an immediate cutoff:
    # truncated with no solution found — found must be False and the
    # caller can tell this apart from "truncated with incumbent".
    g1, g2 = _pair(9)
    result = graph_edit_distance(
        g1, g2, upper_bound=1e-6, budget=Budget(node_limit=0)
    )
    assert not result.found
    assert not result.optimal


def test_ged_astar_budget_interval_brackets_exact():
    g1, g2 = _pair(11, n=5, m=6)
    exact = graph_edit_distance_astar(g1, g2)
    for nodes in (1, 10, 100):
        result = graph_edit_distance_astar(
            g1, g2, budget=Budget(node_limit=nodes)
        )
        interval = result.interval()
        assert interval.lower <= exact.distance + 1e-9
        assert exact.distance <= interval.upper + 1e-9


def test_mcs_budget_size_interval_brackets_exact():
    g1, g2 = _pair(13)
    exact = maximum_common_subgraph(g1, g2)
    for nodes in (1, 10, 1000):
        result = maximum_common_subgraph(g1, g2, budget=Budget(node_limit=nodes))
        low, high = result.size_interval()
        assert low <= exact.size <= high
        if result.optimal:
            assert low == high == exact.size


def test_mcs_clique_budget_truncates_soundly():
    pytest.importorskip("networkx")
    g1, g2 = _pair(17)
    exact = maximum_common_subgraph_clique(g1, g2)
    result = maximum_common_subgraph_clique(g1, g2, budget=Budget(node_limit=1))
    low, high = result.size_interval()
    assert low <= exact.size <= high


# ----------------------------------------------------------------------
# Hypothesis: interval soundness across all four measures and budgets
# ----------------------------------------------------------------------
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    small_labeled_graphs(max_vertices=4),
    small_labeled_graphs(max_vertices=4),
    st.sampled_from([0, 1, 3, 25, 10_000]),
)
def test_interval_contains_exact_for_all_measures(g1, g2, nodes):
    budget = Budget(node_limit=nodes)
    for measure in MEASURES:
        exact = measure.distance(g1, g2, PairContext(g1, g2))
        interval = measure.distance_interval(
            g1, g2, PairContext(g1, g2), budget
        )
        assert interval.lower <= exact + 1e-9, (measure.name, nodes)
        assert exact <= interval.upper + 1e-9, (measure.name, nodes)
        # unlimited budgets must settle to the exact value
        settled = measure.distance_interval(g1, g2, PairContext(g1, g2))
        assert settled.settled
        assert settled.upper == pytest.approx(exact)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    small_labeled_graphs(max_vertices=4),
    small_labeled_graphs(max_vertices=4),
)
def test_shared_context_refinement_converges(g1, g2):
    # Repeated budgeted calls through one PairContext must monotonically
    # tighten and finally settle on the exact distance.
    measure = EditDistance()
    exact = measure.distance(g1, g2, PairContext(g1, g2))
    context = PairContext(g1, g2)
    previous = None
    for nodes in (1, 10, 100, 10_000, 10**7):
        interval = measure.distance_interval(
            g1, g2, context, Budget(node_limit=nodes)
        )
        assert interval.lower <= exact + 1e-9 <= interval.upper + 2e-9
        if previous is not None:
            assert interval.lower >= previous.lower - 1e-9
            assert interval.upper <= previous.upper + 1e-9
        previous = interval
    assert previous.settled


# ----------------------------------------------------------------------
# Engine: certified node-budget answers equal the exhaustive oracle
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_db():
    graphs = [
        random_labeled_graph(5, 6, vertex_labels=("a", "b"), seed=s)
        for s in range(10)
    ]
    return GraphDatabase.from_graphs(graphs)


@pytest.fixture(scope="module")
def small_query():
    return random_labeled_graph(5, 6, vertex_labels=("a", "b"), seed=77)


@pytest.mark.parametrize("backend_name", ["memory", "indexed"])
def test_node_budget_answers_equal_oracle(backend_name, small_db, small_query):
    backend = create_backend(backend_name, small_db)
    builders = (
        Query(small_query).topk(3),
        Query(small_query).threshold(0.5),
        Query(small_query).skyline(),
        Query(small_query).skyband(2),
    )
    for builder in builders:
        oracle = backend.run(builder.build())
        budgeted = backend.run(builder.budget(nodes=100).build())
        assert budgeted.ids == oracle.ids, builder.build().kind
        assert budgeted.approximate is False
        assert budgeted.intervals is not None
        assert all(
            interval.settled or True  # intervals present for every state
            for vector in budgeted.intervals.values()
            for interval in vector
        )
        anytime = budgeted.stats.anytime
        assert anytime is not None and anytime["passes"] >= 1


def test_interval_payload_brackets_exact_distances(small_db, small_query):
    backend = create_backend("memory", small_db)
    spec = Query(small_query).topk(3).budget(nodes=50).build()
    answer = backend.run(spec)
    exact = backend.run(Query(small_query).topk(len(small_db)).build())
    for graph_id, intervals in answer.intervals.items():
        value = exact.distances[graph_id]
        assert intervals[0].lower <= value + 1e-9 <= intervals[0].upper + 2e-9


def test_anytime_result_set_round_trip(small_db, small_query):
    from repro.api.session import Session

    with Session(small_db, backend="memory") as session:
        result = session.execute(Query(small_query).skyline().budget(nodes=100))
        assert result.approximate is False
        assert result.intervals is not None
        payload = result.to_dict()
        assert payload["approximate"] is False
        wire = payload["intervals"]
        assert set(wire) == {str(gid) for gid in result.intervals}
        for vector in wire.values():
            for lower, upper in vector:
                assert upper is None or lower <= upper + 1e-9
        assert "anytime" in payload["stats"]
        assert "anytime:" in result.explain()


def test_wall_budget_returns_promptly_and_flags_approximate(small_db):
    # A query graph large enough that exact evaluation of every pair
    # would take far longer than the budget.
    query = random_labeled_graph(13, 22, vertex_labels=("a", "b"), seed=5)
    backend = create_backend("memory", small_db)
    backend.run(Query(query).topk(1).budget(ms=50).build())  # warm imports
    started = time.monotonic()
    answer = backend.run(Query(query).skyline().budget(ms=100).build())
    elapsed = time.monotonic() - started
    assert elapsed < 2.0
    assert answer.intervals is not None
    assert answer.stats.anytime["budget_spent_ms"] > 0


# ----------------------------------------------------------------------
# Acceptance: slow exact pair, 100 ms budget, certified intervals
# ----------------------------------------------------------------------
def test_topk_budget_beats_slow_exact_pair_with_certified_intervals():
    fast = [
        random_labeled_graph(5, 6, vertex_labels=("a", "b"), seed=s)
        for s in range(6)
    ]
    slow = random_labeled_graph(14, 26, vertex_labels=("a", "b"), seed=50)
    query = random_labeled_graph(13, 24, vertex_labels=("a", "b"), seed=51)
    database = GraphDatabase.from_graphs(fast + [slow])
    slow_id = database.ids()[-1]

    # The slow pair really does blow a 1-second wall for one exact GED.
    probe = graph_edit_distance(slow, query, budget=Budget.of(seconds=1.0))
    assert not probe.optimal

    backend = create_backend("memory", database)
    backend.run(Query(query).topk(1).budget(ms=50).build())  # warm imports
    started = time.monotonic()
    answer = backend.run(Query(query).topk(3).budget(ms=100).build())
    elapsed = time.monotonic() - started
    assert elapsed < 1.0  # far under the slow pair's exact runtime
    assert answer.intervals is not None
    assert slow_id in answer.intervals

    # Oracle verification on every pair whose exact distance is cheap.
    for graph_id, intervals in answer.intervals.items():
        if graph_id == slow_id:
            assert intervals[0].lower <= intervals[0].upper
            continue
        exact = graph_edit_distance(database.get(graph_id), query).distance
        assert intervals[0].lower <= exact + 1e-9 <= intervals[0].upper + 2e-9


# ----------------------------------------------------------------------
# Deadlines: zero-pass raises; VP-tree traversal is interruptible
# ----------------------------------------------------------------------
def test_anytime_zero_pass_expired_deadline_raises(small_db, small_query):
    backend = create_backend("memory", small_db)
    spec = Query(small_query).topk(2).budget(ms=5000).build()
    with deadline_scope(Deadline.after(1e-9)):
        time.sleep(0.001)
        with pytest.raises(DeadlineExceeded):
            backend.run(spec)


def test_anytime_expired_deadline_with_progress_returns_partial(
    small_db, small_query
):
    # Plenty of budget for at least one pass; the deadline expires during
    # the run — the engine must return the partial interval answer
    # instead of raising.
    backend = create_backend("memory", small_db)
    spec = Query(small_query).skyline().budget(ms=10_000).build()
    with deadline_scope(Deadline.after(0.15)):
        answer = backend.run(spec)
    assert answer.intervals is not None
    assert answer.stats.anytime["passes"] >= 1


def test_vptree_scan_checks_ambient_deadline():
    pytest.importorskip("numpy")
    from repro.graph.features import GraphFeatures
    from repro.index.store import FeatureStore

    graphs = [
        random_labeled_graph(5, 6, vertex_labels=("a", "b"), seed=s)
        for s in range(40)
    ]
    store = FeatureStore(GraphDatabase.from_graphs(graphs))
    tree = store.vptree()
    query = store.pack_query(GraphFeatures.of(graphs[0]))
    assert len(tree.range_rows(query, 4.0)) >= 1  # no deadline: fine
    with deadline_scope(Deadline.after(1e-9)):
        time.sleep(0.001)
        with pytest.raises(DeadlineExceeded):
            tree.range_rows(query, 4.0)
        with pytest.raises(DeadlineExceeded):
            tree.nearest_rows(query, 3)
