"""Tests for graph generators and the mutation workload model."""

import random

import pytest

from repro.errors import GraphError
from repro.graph import (
    LabeledGraph,
    cycle_graph,
    ged,
    grid_graph,
    is_isomorphic,
    mutate,
    mutation_database,
    path_graph,
    random_labeled_graph,
    star_graph,
)


def test_path_graph_shape():
    g = path_graph(["A", "B", "C", "D"])
    assert g.order == 4
    assert g.size == 3
    assert g.degree(0) == 1
    assert g.degree(1) == 2
    assert g.is_connected()


def test_cycle_graph_shape():
    g = cycle_graph(["A", "B", "C"])
    assert g.size == 3
    assert all(g.degree(v) == 2 for v in g.vertices())
    with pytest.raises(GraphError):
        cycle_graph(["A", "B"])


def test_star_graph_shape():
    g = star_graph("C", ["L1", "L2", "L3"])
    assert g.degree(0) == 3
    assert g.vertex_label(0) == "C"
    assert all(g.degree(v) == 1 for v in g.vertices() if v != 0)


def test_grid_graph_shape():
    g = grid_graph(2, 3)
    assert g.order == 6
    assert g.size == 7  # 2*2 horizontal + 3 vertical
    assert g.is_connected()
    with pytest.raises(GraphError):
        grid_graph(0, 3)


def test_random_graph_respects_counts_and_connectivity():
    for seed in range(10):
        g = random_labeled_graph(7, 9, seed=seed)
        assert g.order == 7
        assert g.size == 9
        assert g.is_connected()


def test_random_graph_deterministic_by_seed():
    g1 = random_labeled_graph(6, 8, seed=42)
    g2 = random_labeled_graph(6, 8, seed=42)
    assert g1 == g2
    g3 = random_labeled_graph(6, 8, seed=43)
    assert not is_isomorphic(g1, g3) or g1 != g3  # almost surely different


def test_random_graph_disconnected_allowed():
    g = random_labeled_graph(6, 2, connected=False, seed=1)
    assert g.size == 2


def test_random_graph_validation():
    with pytest.raises(GraphError):
        random_labeled_graph(3, 4)  # too many edges
    with pytest.raises(GraphError):
        random_labeled_graph(5, 2, connected=True)  # too few for connected


def test_mutate_bounds_edit_distance():
    base = path_graph(["A", "B", "C", "D", "E"], name="base")
    for seed in range(8):
        mutant = mutate(base, 3, seed=seed)
        assert ged(base, mutant) <= 3.0, f"seed {seed}"


def test_mutate_zero_operations_is_identity():
    base = path_graph(["A", "B", "C"])
    assert mutate(base, 0, seed=1) == base


def test_mutate_keeps_connectivity_by_default():
    base = cycle_graph(["A", "B", "C", "D"])
    for seed in range(8):
        assert mutate(base, 4, seed=seed).is_connected()


def test_mutate_gives_up_when_stuck():
    # Single vertex, one label, nothing to do except spin.
    g = LabeledGraph()
    g.add_vertex(0, "A")
    with pytest.raises(GraphError):
        mutate(g, 1, vertex_labels=("A",), edge_labels=("-",), seed=0)


def test_mutation_database_sizes_and_names():
    base = path_graph(["A", "B", "C", "D"], name="q")
    db = mutation_database(base, 12, radius=(1, 3), seed=5)
    assert len(db) == 12
    assert all(g.name.startswith("mutant-") for g in db)
    with pytest.raises(GraphError):
        mutation_database(base, 3, radius=(0, 2))
    with pytest.raises(GraphError):
        mutation_database(base, 3, radius=(4, 2))


def test_mutate_accepts_shared_rng():
    rng = random.Random(7)
    base = path_graph(["A", "B", "C"])
    first = mutate(base, 2, seed=rng)
    second = mutate(base, 2, seed=rng)
    # consuming one stream: almost surely different mutants
    assert first != second or ged(first, second) == 0
