"""Tests for GED bounds and heuristics (bipartite / beam / lower bound)."""

import pytest

from repro.graph import (
    LabeledGraph,
    UniformCostModel,
    beam_ged,
    bipartite_ged,
    ged,
    ged_lower_bound,
    induced_edit_cost,
    path_graph,
)
from tests.conftest import make_random_graph


def test_lower_bound_is_admissible():
    for seed in range(15):
        g1 = make_random_graph(seed, max_vertices=5)
        g2 = make_random_graph(seed + 111, max_vertices=5)
        assert ged_lower_bound(g1, g2) <= ged(g1, g2) + 1e-9, f"seed {seed}"


def test_lower_bound_zero_for_identical():
    g = path_graph(["A", "B", "C"])
    assert ged_lower_bound(g, g.copy()) == 0.0


def test_lower_bound_counts_label_differences():
    g1 = path_graph(["A", "B"])
    g2 = path_graph(["A", "Z"])
    assert ged_lower_bound(g1, g2) == 1.0


def test_lower_bound_generic_cost_model_degrades_to_zero():
    class Weird(UniformCostModel):
        pass

    weird = Weird()
    g1, g2 = path_graph(["A", "B"]), path_graph(["C", "D"])
    # subclass of UniformCostModel still gets the real bound
    assert ged_lower_bound(g1, g2, costs=weird) > 0

    from repro.graph.operations import CostModel

    class Opaque(CostModel):
        def vertex_substitution(self, a, b):
            return 0.5

        vertex_deletion = vertex_insertion = lambda self, label: 0.5
        edge_substitution = lambda self, a, b: 0.5
        edge_deletion = edge_insertion = lambda self, label: 0.5

    assert ged_lower_bound(g1, g2, costs=Opaque()) == 0.0


def test_bipartite_is_upper_bound():
    for seed in range(15):
        g1 = make_random_graph(seed, max_vertices=5)
        g2 = make_random_graph(seed + 222, max_vertices=5)
        estimate = bipartite_ged(g1, g2)
        exact = ged(g1, g2)
        assert estimate.distance >= exact - 1e-9, f"seed {seed}"


def test_bipartite_mapping_realises_reported_distance():
    g1 = make_random_graph(4, max_vertices=5)
    g2 = make_random_graph(44, max_vertices=5)
    estimate = bipartite_ged(g1, g2)
    assert induced_edit_cost(g1, g2, estimate.mapping) == pytest.approx(
        estimate.distance
    )


def test_bipartite_exact_on_identical():
    g = path_graph(["A", "B", "C", "D"])
    assert bipartite_ged(g, g.copy()).distance == 0.0


def test_bipartite_empty_graphs():
    empty = LabeledGraph()
    assert bipartite_ged(empty, empty).distance == 0.0
    g = path_graph(["A", "B"])
    assert bipartite_ged(empty, g).distance == 3.0  # 2 vertices + 1 edge


def test_beam_is_upper_bound_and_tightens():
    for seed in (3, 9, 15):
        g1 = make_random_graph(seed, max_vertices=5)
        g2 = make_random_graph(seed + 333, max_vertices=5)
        exact = ged(g1, g2)
        narrow = beam_ged(g1, g2, beam_width=1).distance
        wide = beam_ged(g1, g2, beam_width=64).distance
        assert narrow >= exact - 1e-9
        assert wide >= exact - 1e-9
        assert wide <= narrow + 1e-9  # wider beam never hurts


def test_beam_wide_matches_exact_on_small_graphs():
    for seed in (2, 8):
        g1 = make_random_graph(seed, max_vertices=4)
        g2 = make_random_graph(seed + 555, max_vertices=4)
        assert beam_ged(g1, g2, beam_width=4096).distance == pytest.approx(
            ged(g1, g2)
        )


def test_beam_rejects_bad_width():
    g = path_graph(["A", "B"])
    with pytest.raises(ValueError):
        beam_ged(g, g, beam_width=0)


def test_induced_cost_of_explicit_mapping():
    g1 = path_graph(["A", "B"])  # vertices 0,1
    g2 = path_graph(["A", "B"])
    assert induced_edit_cost(g1, g2, {0: 0, 1: 1}) == 0.0
    # cross mapping: both vertices mismatch, edge still maps
    assert induced_edit_cost(g1, g2, {0: 1, 1: 0}) == 2.0
    # deleting everything: 2 vertex dels + 1 edge del + reinsert all of g2
    assert induced_edit_cost(g1, g2, {0: None, 1: None}) == 6.0
