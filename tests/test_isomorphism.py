"""Tests for label-preserving (sub)graph isomorphism (Definitions 4-6)."""

import pytest

from repro.graph import (
    LabeledGraph,
    count_subgraph_isomorphisms,
    find_isomorphism,
    find_subgraph_isomorphism,
    is_isomorphic,
    is_subgraph_isomorphic,
    iter_subgraph_isomorphisms,
    path_graph,
    verify_embedding,
)
from tests.conftest import make_random_graph


def test_isomorphic_to_relabeled_copy():
    g1 = LabeledGraph.from_edges([(1, 2, "x"), (2, 3, "y")],
                                 vertex_labels={1: "A", 2: "B", 3: "C"})
    g2 = LabeledGraph.from_edges([("u", "v", "y"), ("w", "u", "x")],
                                 vertex_labels={"u": "B", "v": "C", "w": "A"})
    mapping = find_isomorphism(g1, g2)
    assert mapping is not None
    assert verify_embedding(g1, g2, mapping)
    assert is_isomorphic(g2, g1)


def test_vertex_labels_block_isomorphism():
    g1 = path_graph(["A", "B", "C"])
    g2 = path_graph(["A", "B", "D"])
    assert not is_isomorphic(g1, g2)


def test_edge_labels_block_isomorphism():
    g1 = LabeledGraph.from_edges([("A", "B", "x")])
    g2 = LabeledGraph.from_edges([("A", "B", "y")])
    assert not is_isomorphic(g1, g2)


def test_structure_blocks_isomorphism():
    path = path_graph(["A", "A", "A", "A"])
    star = LabeledGraph.from_edges([(0, 1), (0, 2), (0, 3)],
                                   vertex_labels={i: "A" for i in range(4)})
    assert path.size == star.size and path.order == star.order
    assert not is_isomorphic(path, star)


def test_subgraph_isomorphism_is_not_induced():
    """Definition 5 demands edge preservation one way only."""
    path = path_graph(["A", "B", "C"])
    triangle = LabeledGraph.from_edges(
        [("A", "B"), ("B", "C"), ("C", "A")]
    )
    assert is_subgraph_isomorphic(path, triangle)
    assert not is_subgraph_isomorphic(triangle, path)


def test_subgraph_isomorphism_respects_labels():
    pattern = LabeledGraph.from_edges([("A", "B", "x")])
    target_good = LabeledGraph.from_edges([("A", "B", "x"), ("B", "C", "y")])
    target_bad = LabeledGraph.from_edges([("A", "B", "y"), ("B", "C", "x")])
    assert is_subgraph_isomorphic(pattern, target_good)
    assert not is_subgraph_isomorphic(pattern, target_bad)


def test_size_pruning_fast_path():
    big = path_graph(["A"] * 5)
    small = path_graph(["A"] * 3)
    assert not is_subgraph_isomorphic(big, small)
    assert find_subgraph_isomorphism(big, small) is None


def test_count_embeddings_path_in_cycle():
    # An unlabeled-ish (single label) 2-edge path embeds into a triangle
    # once per (center, ordered pair of neighbors): 3 * 2 = 6 ways.
    pattern = path_graph(["A", "A", "A"])
    triangle = LabeledGraph.from_edges(
        [(0, 1), (1, 2), (2, 0)], vertex_labels={0: "A", 1: "A", 2: "A"}
    )
    assert count_subgraph_isomorphisms(pattern, triangle) == 6


def test_iter_yields_valid_distinct_embeddings():
    pattern = path_graph(["A", "A"])
    target = LabeledGraph.from_edges(
        [(0, 1), (1, 2)], vertex_labels={0: "A", 1: "A", 2: "A"}
    )
    embeddings = list(iter_subgraph_isomorphisms(pattern, target))
    assert len(embeddings) == 4  # 2 edges x 2 orientations
    assert all(verify_embedding(pattern, target, m) for m in embeddings)
    assert len({tuple(sorted(m.items())) for m in embeddings}) == 4


def test_disconnected_pattern():
    pattern = LabeledGraph.from_edges([(0, 1)], vertex_labels={0: "A", 1: "B"})
    pattern.add_vertex(2, "C")
    target = LabeledGraph.from_edges(
        [("a", "b"), ("b", "c")], vertex_labels={"a": "A", "b": "B", "c": "C"}
    )
    mapping = find_subgraph_isomorphism(pattern, target)
    assert mapping is not None
    assert verify_embedding(pattern, target, mapping)


def test_empty_pattern_embeds_everywhere():
    empty = LabeledGraph()
    target = path_graph(["A", "B"])
    assert is_subgraph_isomorphic(empty, target)
    assert is_isomorphic(empty, LabeledGraph())


def test_verify_embedding_rejects_bad_mappings():
    pattern = path_graph(["A", "B"])
    target = path_graph(["A", "B", "C"])
    assert not verify_embedding(pattern, target, {})  # wrong size
    assert not verify_embedding(pattern, target, {0: 0, 1: 2})  # no edge/label
    assert not verify_embedding(pattern, target, {0: 0, 1: 99})  # missing
    assert not verify_embedding(path_graph(["A", "A"]), target, {0: 0, 1: 0})


def test_cross_check_against_networkx():
    """Our matcher must agree with networkx's VF2 on random graphs."""
    import networkx

    def to_nx(graph):
        nx_graph = networkx.Graph()
        for v in graph.vertices():
            nx_graph.add_node(v, label=graph.vertex_label(v))
        for u, v, label in graph.edges():
            nx_graph.add_edge(u, v, label=label)
        return nx_graph

    def nx_iso(g1, g2):
        return networkx.is_isomorphic(
            to_nx(g1),
            to_nx(g2),
            node_match=lambda a, b: a["label"] == b["label"],
            edge_match=lambda a, b: a["label"] == b["label"],
        )

    for seed in range(40):
        g1 = make_random_graph(seed)
        g2 = make_random_graph(seed + 1000)
        assert is_isomorphic(g1, g2) == nx_iso(g1, g2)
        # a graph is always isomorphic to itself
        assert is_isomorphic(g1, g1.copy())
