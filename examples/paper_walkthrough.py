"""Walkthrough of the paper's running example (Sections IV, VI and VII).

Reproduces, in order:

1. Example 2   — the edit distance of the Fig. 1 pair (4 operations);
2. Examples 3-4 — DistMcs = 0.33 and DistGu = 0.50 for the same pair;
3. Table II    — |mcs(gi, q)| for the Fig. 3 database;
4. Table III   — the full GCS matrix and the skyline {g1, g4, g5, g7};
5. Section VI  — the top-3-by-DistEd contrast (g3 returned, skyline says no);
6. Tables IV-V — the diversity refinement selecting {g1, g4}.

Run:  python examples/paper_walkthrough.py
"""

from repro import graph_similarity_skyline, refine_by_diversity, top_k_by_measure
from repro.bench import render_table
from repro.datasets import figure1_pair, figure3_database, figure3_query
from repro.graph import edit_path_from_mapping, graph_edit_distance, mcs_size
from repro.measures import GraphUnionDistance, McsDistance, PairContext


def section_fig1() -> None:
    g1, g2 = figure1_pair()
    result = graph_edit_distance(g1, g2)
    path = edit_path_from_mapping(g1, g2, result.mapping)
    print("== Fig. 1 / Example 2 ==")
    print(f"DistEd(g1, g2) = {result.distance:.0f} (paper: 4)")
    print("optimal edit sequence:")
    for op in path:
        print(f"  - {type(op).__name__}: {op}")
    context = PairContext(g1, g2)
    print(f"|mcs| = {context.mcs.size} (paper: 4, Fig. 2)")
    print(f"DistMcs = {McsDistance().distance(g1, g2, context):.2f} (paper: 0.33)")
    print(f"DistGu  = {GraphUnionDistance().distance(g1, g2, context):.2f} (paper: 0.50)")
    print()


def section_fig3() -> None:
    database = figure3_database()
    query = figure3_query()

    print("== Table II ==")
    rows = [[f"({g.name}, q)", mcs_size(g, query)] for g in database]
    print(render_table(["pair", "|mcs|"], rows))
    print()

    result = graph_similarity_skyline(database, query)
    print("== Table III ==")
    rows = [
        [f"({g.name}, q)", v.values[0], round(v.values[1], 2), round(v.values[2], 2),
         "*" if g in result.skyline else ""]
        for g, v in zip(result.graphs, result.vectors)
    ]
    print(render_table(["pair", "DistEd", "DistMcs", "DistGu", "skyline"], rows))
    print()
    print(f"GSS(D, q) = {{{', '.join(g.name for g in result.skyline)}}} "
          "(paper: {g1, g4, g5, g7})")
    print()

    print("== Section VI: single-measure top-k contrast ==")
    ranked = top_k_by_measure(database, query, "edit", 3)
    names = [database[i].name for i in ranked.indices]
    print(f"top-3 by DistEd alone: {names}")
    print("g3 is returned by the baseline but similarity-dominated by g5 —")
    print("the skyline never shows it to the user.")
    print()

    print("== Tables IV-V: diversity refinement (k = 2) ==")
    refined = refine_by_diversity(result.skyline, k=2)
    rows = [
        ["{" + ",".join(c.names) + "}",
         ", ".join(f"{v:.2f}" for v in c.diversity),
         str(c.ranks), c.val,
         "WINNER" if c is refined.best else ""]
        for c in refined.candidates
    ]
    print(render_table(["subset", "Div(S)", "ranks", "val", ""], rows))
    print(f"maximally diverse subset: {[g.name for g in refined.subset]} "
          "(paper: ['g1', 'g4'])")


def main() -> None:
    section_fig1()
    section_fig3()


if __name__ == "__main__":
    main()
