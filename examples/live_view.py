"""Live views: a skyline that follows the database around.

``Session.watch(query)`` materializes a skyline answer and keeps it
incrementally correct while graphs are inserted into or removed from the
database — repairing only the affected candidates instead of re-running
the query. Repairs ride on the shared :class:`repro.PairCache`, so a
pair the session has ever solved (for any query, view, or backend) is
never solved again. This example:

1. opens a cached ``indexed`` session and watches a skyline query;
2. streams new compounds in, showing the per-insert repair cost;
3. deletes a skyline member, showing promotions at zero solving cost;
4. cross-checks the view against a from-scratch query.

Run:  python examples/live_view.py
"""

import repro
from repro import GraphDatabase, PairCache, Query
from repro.datasets import make_workload


def main() -> None:
    workload = make_workload(n_graphs=18, query_size=7, seed=23)
    database = GraphDatabase.from_graphs(workload.database[:12])
    query = workload.queries[0]
    cache = PairCache()

    with repro.connect(database, backend="indexed", cache=cache) as session:
        view = session.watch(Query(query).skyline())
        print(f"watching: {view!r}")
        print(f"initial skyline: {view.names_in_answer}")
        print()

        print("streaming compounds in:")
        for graph in workload.database[12:]:
            before = view.evaluations
            database.insert(graph)
            view.refresh()
            print(
                f"  + {graph.name:<14} repaired with "
                f"{view.evaluations - before} exact evaluation(s); "
                f"skyline = {view.names_in_answer}"
            )
        print()

        victim = view.ids[0]
        name = database.get(victim).name
        before = view.evaluations
        database.remove(victim)
        view.refresh()
        print(
            f"after deleting {name}: skyline = {view.names_in_answer} "
            f"({view.evaluations - before} evaluations spent; promotions "
            "come from vectors the view already holds)"
        )
        print()

        fresh = session.execute(Query(query).skyline())
        agreement = fresh.ids == view.ids
        print(f"view equals a from-scratch re-query: {agreement}")
        print(
            f"(the re-query solved {fresh.stats.exact_evaluations} pairs — "
            "the view already put every live pair in the shared cache)"
        )
        print(
            f"view lifetime: {view.repairs} repairs, "
            f"{view.evaluations} exact evaluations, "
            f"{view.cache_served} pairs served by the shared cache"
        )
        assert agreement


if __name__ == "__main__":
    main()
