"""The database layer: storage, index pruning, threshold queries.

Demonstrates the machinery around the core algorithm:

1. loading graphs into a :class:`GraphDatabase` (with iso-deduplication);
2. executing a skyline query through the :class:`SkylineExecutor` and
   reading its statistics — how many exact GED/MCS computations the
   feature index avoided;
3. range ("threshold") queries: all compounds within a given edit
   distance, verified exactly but pre-filtered by sound lower bounds.

Run:  python examples/database_indexing.py
"""

from repro import GraphDatabase, SkylineExecutor
from repro.bench import render_table
from repro.datasets import make_workload


def main() -> None:
    workload = make_workload(
        n_graphs=40, query_size=7, mutant_fraction=0.3, radius=(1, 3), seed=7
    )
    query = workload.queries[0]

    database = GraphDatabase.from_graphs(
        workload.database, name="compounds", deduplicate=True
    )
    print(f"loaded {len(database)} unique compounds "
          f"(from {len(workload.database)} raw graphs)")
    print()

    # --- skyline query, with and without index pruning ---------------
    rows = []
    for use_index in (False, True):
        executor = SkylineExecutor(database, use_index=use_index)
        result = executor.execute(query, refine_k=3)
        stats = result.stats
        rows.append([
            "with index" if use_index else "no index",
            stats.exact_evaluations,
            stats.pruned_by_index,
            f"{stats.pruning_ratio:.0%}",
            stats.skyline_size,
        ])
        if use_index:
            names = [g.name for g in result.skyline_graphs(database)]
            print(f"skyline: {names}")
            if result.refinement is not None:
                print(f"3 diverse representatives: "
                      f"{[g.name for g in result.refinement.subset]}")
    print()
    print(render_table(
        ["mode", "exact evaluations", "pruned", "saved", "skyline size"],
        rows,
        title="index pruning effect (identical answers)",
    ))
    print()

    # --- threshold search ---------------------------------------------
    executor = SkylineExecutor(database)
    for tau in (1.0, 2.0, 3.0):
        matches = executor.threshold_search(query, "edit", tau)
        names = [f"{database.get(gid).name}({dist:.0f})" for gid, dist in matches]
        print(f"compounds within DistEd <= {tau:.0f}: {names or '(none)'}")


if __name__ == "__main__":
    main()
