"""The database layer through the session API: backends, pruning, ranges.

Demonstrates the machinery around the core algorithm:

1. loading graphs into a :class:`GraphDatabase` (with iso-deduplication);
2. executing the same declarative ``Query`` on the ``memory`` (full scan)
   and ``indexed`` (lower-bound pruning) backends and comparing their
   statistics — how many exact GED/MCS computations the feature index
   avoided, for an identical answer;
3. range ("threshold") queries: all compounds within a given edit
   distance, verified exactly but pre-filtered by sound lower bounds;
4. the deprecated :class:`SkylineExecutor` shim, kept working for old
   callers — it routes through the same ``indexed`` backend.

Run:  python examples/database_indexing.py
"""

import repro
from repro import GraphDatabase, Query, SkylineExecutor
from repro.bench import render_table
from repro.datasets import make_workload


def main() -> None:
    workload = make_workload(
        n_graphs=40, query_size=7, mutant_fraction=0.3, radius=(1, 3), seed=7
    )
    query = workload.queries[0]

    database = GraphDatabase.from_graphs(
        workload.database, name="compounds", deduplicate=True
    )
    print(f"loaded {len(database)} unique compounds "
          f"(from {len(workload.database)} raw graphs)")
    print()

    # --- one query, two backends --------------------------------------
    spec = Query(query).skyline().refine(k=3)
    rows = []
    for backend in ("memory", "indexed"):
        with repro.connect(database, backend=backend) as session:
            result = session.execute(spec)
        stats = result.stats
        rows.append([
            backend,
            stats.exact_evaluations,
            stats.pruned_by_index,
            f"{stats.pruning_ratio:.0%}",
            len(result.ids),
        ])
        if backend == "indexed":
            print(f"skyline: {result.names}")
            if result.refinement is not None:
                print(f"3 diverse representatives: "
                      f"{[g.name for g in result.refinement.subset]}")
    print()
    print(render_table(
        ["backend", "exact evaluations", "pruned", "saved", "skyline size"],
        rows,
        title="index pruning effect (identical answers)",
    ))
    print()

    # --- threshold search ---------------------------------------------
    with repro.connect(database, backend="indexed") as session:
        for tau in (1.0, 2.0, 3.0):
            result = session.execute(Query(query).threshold(tau, "edit"))
            names = [
                f"{session.database.get(gid).name}({result.distance(gid):.0f})"
                for gid in result.ids
            ]
            print(f"compounds within DistEd <= {tau:.0f}: {names or '(none)'}")
    print()

    # --- the deprecated executor shim still works ---------------------
    executor = SkylineExecutor(database)  # deprecated; routes through 'indexed'
    legacy = executor.execute(query)
    print("legacy SkylineExecutor shim agrees: "
          f"{[g.name for g in legacy.skyline_graphs(database)]}")


if __name__ == "__main__":
    main()
