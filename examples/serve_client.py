"""Talking to the query service over HTTP.

Starts ``python -m repro serve`` as a subprocess on an ephemeral port,
then exercises the three endpoints a typical client uses:

* ``POST /v1/query`` — a skyline and a top-k query (the request body is
  ``GraphQuery.to_dict()``, the response is ``ResultSet.to_dict()``);
* ``POST /v1/watch`` — a streamed live skyline that updates as the
  database is mutated through ``POST /v1/mutate``;
* ``GET /v1/stats`` — the server's admission/cache/watch counters.

Run with: python examples/serve_client.py
"""

import http.client
import json
import signal
import socket
import subprocess
import sys
import tempfile
from pathlib import Path

import repro
from repro import GraphDatabase
from repro.api.ops import AddOp
from repro.api.spec import GraphQuery
from repro.datasets import figure3_database, figure3_query
from repro.db import save_database

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def request(port, method, path, payload=None, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    body = None if payload is None else json.dumps(payload)
    conn.request(method, path, body=body, headers=headers or {})
    response = conn.getresponse()
    result = json.loads(response.read())
    conn.close()
    return response.status, result


def main() -> None:
    # -- start the server over the paper's worked example ---------------
    with tempfile.TemporaryDirectory() as tmp:
        db_path = Path(tmp) / "fig3.json"
        save_database(
            GraphDatabase.from_graphs(figure3_database(), name="fig3"), db_path
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(db_path),
             "--port", "0"],
            stdout=subprocess.PIPE,
            text=True,
            env={"PYTHONPATH": SRC_DIR, "PATH": "/usr/bin:/bin"},
        )
        try:
            banner = proc.stdout.readline().strip()
            print(banner)
            port = int(banner.rsplit(":", 1)[1])

            # -- plain queries: the existing JSON formats over HTTP -----
            spec = GraphQuery(graph=figure3_query(), kind="skyline")
            status, answer = request(port, "POST", "/v1/query", spec.to_dict())
            print(f"skyline over HTTP ({status}): {answer['answer']}")

            topk = GraphQuery(
                graph=figure3_query(), kind="topk", k=3, measure="edit"
            )
            status, answer = request(port, "POST", "/v1/query", topk.to_dict())
            print(f"top-3 by edit distance ({status}): {answer['answer']}")

            # -- a live watch stream + a mutation ------------------------
            body = json.dumps(spec.to_dict()).encode()
            sock = socket.create_connection(("127.0.0.1", port), timeout=60)
            sock.sendall(
                b"POST /v1/watch HTTP/1.1\r\nHost: example\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n"
                + body
            )
            stream = sock.makefile("rb")
            while stream.readline() not in (b"\r\n", b"\n", b""):
                pass  # skip the response headers
            snapshot = json.loads(stream.readline())
            print(f"watch snapshot: {snapshot['answer']}")

            status, ack = request(
                port, "POST", "/v1/mutate",
                AddOp(handle="twin", graph=figure3_query()).to_dict(),
            )
            print(f"mutation acknowledged ({status}): "
                  f"database_size={ack['database_size']}")
            update = json.loads(stream.readline())
            print(f"watch update after insert: {update['answer']}")
            stream.close()
            sock.close()

            status, stats = request(port, "GET", "/v1/stats")
            print(f"served {stats['counters']['queries_served']} queries, "
                  f"{stats['counters']['mutations_applied']} mutation(s), "
                  f"{stats['watches']['opened']} watch stream(s)")
        finally:
            proc.send_signal(signal.SIGINT)
            proc.communicate(timeout=60)
    print(f"server exit code: {proc.returncode}")


if __name__ == "__main__":
    main()
