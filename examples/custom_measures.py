"""Plugging custom local measures into the compound similarity.

The paper's point is that similarity is multi-faceted: the GCS vector
(Definition 11) accepts *any* local distance measures. This example:

1. defines a custom measure from a plain function (size gap);
2. uses the library's extension measures (WL-kernel, Jaccard-edges);
3. shows how the skyline changes as facets are added — more dimensions
   means more Pareto-incomparable graphs, i.e. a richer answer set.

Run:  python examples/custom_measures.py
"""

from repro import LabeledGraph, graph_similarity_skyline
from repro.bench import render_table
from repro.datasets import make_workload
from repro.measures import FunctionMeasure


def size_gap(g1: LabeledGraph, g2: LabeledGraph) -> float:
    """|#edges difference| — a crude but sometimes useful facet."""
    return abs(g1.size - g2.size)


def main() -> None:
    workload = make_workload(n_graphs=20, query_size=7, seed=99)
    query = workload.queries[0]

    stacks = {
        "edit only": ("edit",),
        "paper (edit, mcs, union)": ("edit", "mcs", "union"),
        "+ WL kernel": ("edit", "mcs", "union", "wl-kernel"),
        "+ custom size gap": (
            "edit",
            "mcs",
            "union",
            FunctionMeasure(size_gap, name="size-gap"),
        ),
    }

    rows = []
    for label, measures in stacks.items():
        result = graph_similarity_skyline(workload.database, query, measures=measures)
        rows.append([label, len(measures), len(result.skyline),
                     ", ".join(g.name for g in result.skyline[:5])])

    print(render_table(
        ["measure stack", "d", "skyline size", "members (first 5)"],
        rows,
        title="skyline growth as similarity facets are added",
    ))
    print()
    print("every stack keeps the answers Pareto-optimal w.r.t. its own facets;")
    print("choosing the facets is how you tell the system what 'similar' means.")


if __name__ == "__main__":
    main()
