"""Dynamic databases: incremental skyline maintenance and explanations.

Graph databases change; recomputing GCS vectors is the expensive part,
and the skyline itself can be maintained online. This example:

1. streams compounds into an :class:`IncrementalSkyline`, paying one GCS
   evaluation per insert and watching the answer set evolve;
2. deletes a skyline member and shows dominated compounds being promoted;
3. asks the library to *explain* why a specific compound is (not) in the
   final answer.

Run:  python examples/dynamic_database.py
"""

from repro.core import compound_similarity, explain_membership, graph_similarity_skyline
from repro.datasets import make_workload
from repro.skyline import IncrementalSkyline


def main() -> None:
    workload = make_workload(n_graphs=15, query_size=7, seed=12)
    query = workload.queries[0]

    tracker = IncrementalSkyline(dimension=3)
    print("streaming compounds in:")
    for graph in workload.database:
        vector = compound_similarity(graph, query)
        joined = tracker.insert(graph.name, vector.values)
        status = "joins the skyline" if joined else "dominated on arrival"
        print(f"  + {graph.name:<14} GCS=({', '.join(f'{v:.2f}' for v in vector.values)}) "
              f"-> {status}; skyline size {tracker.skyline_size}")
    print()
    members = tracker.skyline_keys()
    print(f"final skyline: {members}")
    print()

    victim = members[0]
    tracker.remove(victim)
    print(f"after deleting {victim}: skyline = {tracker.skyline_keys()}")
    print("(previously dominated compounds are promoted automatically)")
    print()

    # Explanations come from the batch result object.
    result = graph_similarity_skyline(workload.database, query)
    outsider = next(
        g.name for g in result.graphs if g not in result.skyline
    )
    print(explain_membership(result, outsider).narrative())
    print()
    print(explain_membership(result, result.skyline[0].name).narrative())


if __name__ == "__main__":
    main()
