"""Durability walkthrough: write-ahead logging, crash recovery,
point-in-time restore.

Every mutation is appended to an on-disk WAL *before* it is applied
(write-ahead), so a crash at any instant loses at most the un-synced
tail. This example:

1. attaches a :class:`~repro.db.DurableLog` to a sharded store and runs
   mutations through the acked op layer (each ack carries its LSN);
2. simulates a crash by dropping the in-memory store, then
   :func:`~repro.db.recover`\\ s an identical store from disk;
3. rewinds to an earlier LSN — point-in-time restore;
4. compacts the log into a snapshot and shows appends continuing.

Run:  python examples/durability.py
"""

import tempfile
from pathlib import Path

from repro.api.ops import AddOp, RemoveOp, apply_mutation
from repro.db import DurableLog, recover
from repro.graph import LabeledGraph
from repro.shard.store import ShardedGraphDatabase


def molecule(name: str, atoms: str) -> LabeledGraph:
    graph = LabeledGraph(name=name)
    for i, label in enumerate(atoms):
        graph.add_vertex(i, label=label)
    for i in range(len(atoms) - 1):
        graph.add_edge(i, i + 1)
    return graph


def main() -> None:
    data_dir = Path(tempfile.mkdtemp(prefix="repro-wal-")) / "data"

    # 1. A durable sharded store: open a log, snapshot the (empty)
    # store, attach. From here on every mutation is logged first.
    database = ShardedGraphDatabase(shards=2, name="compounds")
    log = DurableLog.open(data_dir, sync="always", segments=2)
    handles: dict[str, int] = {}
    back: dict[int, str] = {}
    log.initialize(database, handles)
    database.attach_wal(log)

    for name, atoms in [
        ("ethanol", "CCO"),
        ("propanol", "CCCO"),
        ("butane", "CCCC"),
    ]:
        ack = apply_mutation(database, AddOp(name, molecule(name, atoms)),
                             handles, back)
        print(f"acked {name!r}: lsn={ack['lsn']} (durable once acked)")
    ack = apply_mutation(database, RemoveOp("butane"), handles, back)
    print(f"acked remove: lsn={ack['lsn']}")

    # 2. Crash. The process state is gone; the log is not.
    del database, handles, back
    state = recover(data_dir)
    print(f"\nrecovered to lsn {state.last_lsn}: "
          f"{sorted(state.handle_to_id)} "
          f"({type(state.database).__name__}, "
          f"{state.database.shard_count} shards)")

    # 3. Point-in-time: the state as of lsn 3, before the remove.
    past = recover(data_dir, upto_lsn=3)
    print(f"as of lsn 3: {sorted(past.handle_to_id)}")

    # 4. Compaction folds the log into a snapshot; appends continue.
    log = DurableLog.open(data_dir)
    state = log.recover()
    log.compact_from(state.database, state.handle_to_id)
    database = state.database
    database.attach_wal(log)
    ack = apply_mutation(database, AddOp("pentane", molecule("p", "CCCCC")),
                         state.handle_to_id, state.id_to_handle)
    print(f"\ncompacted at lsn {log.base_lsn}; next ack lsn={ack['lsn']}")
    log.close()
    final = recover(data_dir)
    print(f"final recovery: {sorted(final.handle_to_id)}")


if __name__ == "__main__":
    main()
