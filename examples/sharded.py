"""Sharded sessions: scatter-gather queries over a partitioned store.

``repro.connect(..., backend="sharded", shards=N)`` partitions the
database across N shard databases (each with its own shard-local bound
index) and answers every query kind by fanning the pruning cascade out
per shard, sharing bound evidence across shards, and merging the local
answers — local skylines through one global dominance pass, per-shard
top-k frontiers by rank. This example:

1. opens the same workload monolithically and sharded, showing the
   per-shard work breakdown in ``explain()``;
2. demonstrates cross-shard pruning: later shards evaluate fewer pairs
   because earlier shards already tightened the bounds;
3. mutates the store (inserts land on different shards) and shows only
   the owning shard's index follows;
4. cross-checks every answer against the monolithic ``memory`` backend.

Run:  python examples/sharded.py
"""

import repro
from repro import GraphDatabase, Query
from repro.datasets import make_workload


def main() -> None:
    workload = make_workload(n_graphs=20, n_queries=3, query_size=7, seed=23)
    database = GraphDatabase.from_graphs(workload.database)
    query = workload.queries[0]

    with repro.connect(database, backend="memory") as session:
        reference = session.execute(Query(query).skyline())
    print(f"monolithic skyline: {reference.names}")
    print()

    with repro.connect(database, backend="sharded", shards=4) as session:
        sharded_db = session.database
        print(f"partitioned store: {sharded_db!r}")
        result = session.execute(Query(query).skyline())
        print("scatter-gather plan and per-shard work:")
        for line in result.explain().splitlines()[: 2 + sharded_db.shard_count]:
            print(f"  {line}")
        agreement = result.ids == reference.ids
        print(f"sharded skyline equals monolithic: {agreement}")
        assert agreement
        print()

        topk = session.execute(Query(query).topk(3, "edit"))
        evaluated = [row["evaluated"] for row in topk.stats.per_shard]
        print(
            "top-3 with cross-shard pruning: per-shard exact evaluations = "
            f"{evaluated} (bounds observed in earlier shards prune later ones)"
        )
        print()

        print("inserting two mutants (they land on different shards):")
        versions = [shard.version for shard in sharded_db.shards]
        for graph in workload.queries[1:3]:
            graph_id = sharded_db.insert(graph)
            owner = sharded_db.shard_of(graph_id)
            print(f"  + {graph.name:<12} -> id {graph_id} on shard {owner}")
        moved = [
            index
            for index, shard in enumerate(sharded_db.shards)
            if shard.version != versions[index]
        ]
        print(f"shard versions that moved: {moved} (the rest keep their index)")
        print()

        fresh = session.execute(Query(query).skyline())
        with repro.connect(sharded_db, backend="memory") as check:
            expected = check.execute(Query(query).skyline())
        agreement = fresh.ids == expected.ids
        print(f"post-mutation answers still agree with memory: {agreement}")
        assert agreement


if __name__ == "__main__":
    main()
