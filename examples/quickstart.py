"""Quickstart: similarity skyline search through the session API.

Builds a handful of labeled graphs, opens a session over them with
``repro.connect``, and asks for the graphs most similar to a query under
the paper's three measures (edit distance, MCS distance, graph-union
distance) using the fluent ``Query`` builder. The Pareto-optimal answers
are printed with their similarity vectors.

Run:  python examples/quickstart.py
"""

import repro
from repro import LabeledGraph, Query


def build_database() -> list[LabeledGraph]:
    """Five toy graphs over a tiny label alphabet."""
    return [
        LabeledGraph.from_edges(
            [("a", "b"), ("b", "c"), ("c", "d")], name="path-abcd"
        ),
        LabeledGraph.from_edges(
            [("a", "b"), ("b", "c"), ("c", "a")], name="triangle-abc"
        ),
        LabeledGraph.from_edges(
            [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")], name="cycle-abcd"
        ),
        LabeledGraph.from_edges(
            [("a", "b"), ("b", "c"), ("c", "d"), ("b", "d")], name="kite"
        ),
        LabeledGraph.from_edges(
            [("x", "y"), ("y", "z")], name="path-xyz"
        ),
    ]


def main() -> None:
    database = build_database()
    query = LabeledGraph.from_edges(
        [("a", "b"), ("b", "c"), ("c", "d")], name="query"
    )

    with repro.connect(database) as session:
        result = session.execute(Query(query).skyline())

        print(f"query: {query.name} ({query.size} edges)")
        print(f"database: {len(session.database)} graphs "
              f"(backend: {session.backend_name})")
        print()
        print("GCS vectors (DistEd, DistMcs, DistGu) — smaller is more similar:")
        answered = set(result.ids)
        for graph_id in sorted(result.evaluated_ids):
            vector = result.vector(graph_id)
            name = session.database.get(graph_id).name
            marker = "  <- skyline" if graph_id in answered else ""
            values = ", ".join(f"{v:.2f}" for v in vector.values)
            print(f"  {name:<14} ({values}){marker}")
        print()
        print("answer (maximally similar in the Pareto sense):")
        for name in result.names:
            print(f"  {name}")


if __name__ == "__main__":
    main()
