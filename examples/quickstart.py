"""Quickstart: similarity skyline search over a small graph database.

Builds a handful of labeled graphs, asks for the graphs most similar to a
query under the paper's three measures (edit distance, MCS distance,
graph-union distance), and prints the Pareto-optimal answers with their
similarity vectors.

Run:  python examples/quickstart.py
"""

from repro import LabeledGraph, graph_similarity_skyline


def build_database() -> list[LabeledGraph]:
    """Five toy graphs over a tiny label alphabet."""
    return [
        LabeledGraph.from_edges(
            [("a", "b"), ("b", "c"), ("c", "d")], name="path-abcd"
        ),
        LabeledGraph.from_edges(
            [("a", "b"), ("b", "c"), ("c", "a")], name="triangle-abc"
        ),
        LabeledGraph.from_edges(
            [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")], name="cycle-abcd"
        ),
        LabeledGraph.from_edges(
            [("a", "b"), ("b", "c"), ("c", "d"), ("b", "d")], name="kite"
        ),
        LabeledGraph.from_edges(
            [("x", "y"), ("y", "z")], name="path-xyz"
        ),
    ]


def main() -> None:
    database = build_database()
    query = LabeledGraph.from_edges(
        [("a", "b"), ("b", "c"), ("c", "d")], name="query"
    )

    result = graph_similarity_skyline(database, query)

    print(f"query: {query.name} ({query.size} edges)")
    print(f"database: {len(database)} graphs")
    print()
    print("GCS vectors (DistEd, DistMcs, DistGu) — smaller is more similar:")
    for graph, vector in zip(result.graphs, result.vectors):
        marker = "  <- skyline" if graph in result.skyline else ""
        values = ", ".join(f"{v:.2f}" for v in vector.values)
        print(f"  {graph.name:<14} ({values}){marker}")
    print()
    print("answer (maximally similar in the Pareto sense):")
    for graph in result.skyline:
        print(f"  {graph.name}")


if __name__ == "__main__":
    main()
