"""Chemical-compound similarity search — the paper's motivating domain.

Builds a molecule-like database (atoms C/N/O/S, single/double bonds) in
which some compounds are small perturbations of a query molecule, then:

1. answers the query with the similarity skyline (all measures at once);
2. refines the skyline to 3 representative, mutually diverse compounds;
3. contrasts with the classic single-measure top-3 ranking;
4. shows how the construction ground truth (mutation radii) lines up
   with what the skyline found.

Run:  python examples/chemical_search.py
"""

from repro import SimilarityQueryEngine
from repro.bench import render_table
from repro.datasets import make_workload


def main() -> None:
    workload = make_workload(
        n_graphs=30,
        query_size=8,
        mutant_fraction=0.4,
        radius=(1, 5),
        seed=2024,
    )
    query = workload.queries[0]
    provenance = {
        graph.name: origin
        for graph, origin in zip(workload.database, workload.provenance)
    }

    engine = SimilarityQueryEngine()
    answer = engine.query(workload.database, query, refine_k=3)
    skyline = answer.skyline

    print(f"database: {workload.size} compounds; query: {query.order} atoms, "
          f"{query.size} bonds")
    print()

    rows = []
    for graph, vector in zip(skyline.graphs, skyline.vectors):
        kind, _, radius = provenance[graph.name]
        rows.append([
            graph.name,
            kind if kind == "distractor" else f"mutant (≤{radius} edits)",
            vector.values[0],
            round(vector.values[1], 2),
            round(vector.values[2], 2),
            "*" if graph in skyline.skyline else "",
        ])
    rows.sort(key=lambda row: row[2])
    print(render_table(
        ["compound", "origin", "DistEd", "DistMcs", "DistGu", "skyline"],
        rows[:12],
        title="12 closest compounds by DistEd (full GCS shown)",
    ))
    print()

    print(f"similarity skyline: {len(skyline.skyline)} compounds")
    if answer.refinement is not None:
        names = [graph.name for graph in answer.refinement.subset]
        print(f"3 diverse representatives: {names}")
    print()

    top3 = engine.top_k(workload.database, query, 3)
    top_names = [workload.database[i].name for i in top3.indices]
    skyline_names = {graph.name for graph in skyline.skyline}
    only_topk = [name for name in top_names if name not in skyline_names]
    print(f"classic top-3 by edit distance: {top_names}")
    if only_topk:
        print(f"note: {only_topk} appear in the top-3 although the skyline "
              "dominates them — exactly the effect the paper highlights.")
    else:
        print("here the top-3 all happen to be skyline members.")


if __name__ == "__main__":
    main()
