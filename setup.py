"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``. This file exists so the
package can be installed in environments without the ``wheel`` package
(offline boxes), where PEP 517 editable installs are unavailable:
``python setup.py develop`` or ``pip install -e . --no-build-isolation``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Similarity skyline queries over graph databases "
        "(reproduction of Abbaci et al., GDM/ICDE 2011)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    # NumPy backs repro.index (the vectorized bound kernels, packed
    # feature matrix and VP-tree) and the "vectorized" backend, so
    # installed users always get the fast path. Source checkouts that
    # cannot install it still import cleanly: the backend is simply not
    # registered and the scalar bounds remain in use (tests for the
    # vectorized path skip themselves).
    install_requires=["numpy>=1.22"],
)
