"""Bench A11 — durability overhead: WAL throughput and recovery time.

The write-ahead log sits on every mutation path, so its cost decides
whether durability is affordable. Two questions:

* **Append overhead** — sustained mutation ops/sec with ``sync=always``
  (fsync per op, the strongest guarantee) vs ``sync=interval`` (flush
  per op, fsync amortized) vs an undurable baseline. The always/interval
  gap is the price of per-op fsync on this filesystem.
* **Recovery time** — wall-clock to rebuild the store from a 10k-op
  log, the worst case after a crash with compaction disabled.

The acceptance gates are deliberately loose sanity floors — they only
trip if logging collapses (an accidental per-op reopen, a quadratic
replay), not on machine noise. Results land in ``BENCH_wal.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.api.ops import AddOp, RemoveOp, apply_mutation
from repro.db import DurableLog, GraphDatabase
from repro.db.wal import recover
from repro.graph.labeled_graph import LabeledGraph

APPEND_OPS = 2_000
RECOVERY_OPS = 10_000
#: interval-sync must stay within a small factor of undurable appends;
#: always-sync pays an fsync per op, so it only gets a collapse floor.
MIN_OPS_PER_SEC = {"baseline": 500.0, "interval": 200.0, "always": 25.0}
#: 10k-op replay is linear graph rebuilding; minutes would mean a bug.
MAX_RECOVERY_SECONDS = 60.0
OUTPUT = Path(__file__).resolve().parent / "BENCH_wal.json"


def _make_graph(name: str, spread: int) -> LabeledGraph:
    graph = LabeledGraph(name=name)
    n = 3 + spread % 4
    for i in range(n):
        graph.add_vertex(i, label="C" if i % 2 else "N")
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    return graph


def _run_mutations(database, handle_to_id, id_to_handle, n_ops) -> float:
    """Apply ``n_ops`` add/remove mutations; returns elapsed seconds."""
    start = time.perf_counter()
    for i in range(n_ops):
        if i % 5 == 4 and handle_to_id:
            handle = next(iter(handle_to_id))
            apply_mutation(
                database, RemoveOp(handle), handle_to_id, id_to_handle
            )
        else:
            apply_mutation(
                database,
                AddOp(f"g{i}", _make_graph(f"g{i}", i)),
                handle_to_id,
                id_to_handle,
            )
    return time.perf_counter() - start


def _bench_append(tmp_path: Path, sync: str | None) -> dict:
    database = GraphDatabase(name="bench")
    handle_to_id: dict[str, int] = {}
    id_to_handle: dict[int, str] = {}
    log = None
    if sync is not None:
        log = DurableLog.open(tmp_path / f"wal-{sync}", sync=sync)
        log.initialize(database, handle_to_id)
        database.attach_wal(log)
    ops = APPEND_OPS if sync != "always" else APPEND_OPS // 4
    elapsed = _run_mutations(database, handle_to_id, id_to_handle, ops)
    if log is not None:
        log.close()
    return {
        "ops": ops,
        "seconds": elapsed,
        "ops_per_sec": ops / elapsed,
    }


@pytest.mark.benchmark(group="a11-wal")
def test_wal_append_throughput_and_recovery(tmp_path):
    report: dict = {
        "append": {
            "baseline": _bench_append(tmp_path, None),
            "interval": _bench_append(tmp_path, "interval:0.1"),
            "always": _bench_append(tmp_path, "always"),
        }
    }
    for name, floor in MIN_OPS_PER_SEC.items():
        observed = report["append"][name]["ops_per_sec"]
        assert observed >= floor, (
            f"{name} mutation throughput collapsed: "
            f"{observed:.1f} ops/s < floor {floor}"
        )

    # Recovery: replay a 10k-op log (sync=none — building it fast is
    # fine, recovery cost is independent of the append sync policy).
    data_dir = tmp_path / "wal-recovery"
    database = GraphDatabase(name="bench")
    handle_to_id: dict[str, int] = {}
    id_to_handle: dict[int, str] = {}
    log = DurableLog.open(data_dir, sync="none")
    log.initialize(database, handle_to_id)
    database.attach_wal(log)
    _run_mutations(database, handle_to_id, id_to_handle, RECOVERY_OPS)
    log.close()

    start = time.perf_counter()
    state = recover(data_dir)
    recovery_seconds = time.perf_counter() - start
    assert state.last_lsn == RECOVERY_OPS
    assert len(state.database) == len(database)
    assert recovery_seconds <= MAX_RECOVERY_SECONDS, (
        f"10k-op recovery took {recovery_seconds:.1f}s "
        f"(> {MAX_RECOVERY_SECONDS}s floor)"
    )
    report["recovery"] = {
        "ops": RECOVERY_OPS,
        "seconds": recovery_seconds,
        "ops_per_sec": RECOVERY_OPS / recovery_seconds,
        "recovered_graphs": len(state.database),
    }
    report["floors"] = {
        "min_ops_per_sec": MIN_OPS_PER_SEC,
        "max_recovery_seconds": MAX_RECOVERY_SECONDS,
    }

    OUTPUT.write_text(json.dumps(report, indent=2), encoding="utf-8")
    always = report["append"]["always"]["ops_per_sec"]
    interval = report["append"]["interval"]["ops_per_sec"]
    print(
        f"\nWAL append: always {always:.0f} ops/s, interval "
        f"{interval:.0f} ops/s "
        f"(x{interval / always:.1f}); recovery of {RECOVERY_OPS} ops in "
        f"{recovery_seconds:.2f}s"
    )
