"""Bench A4 — ablation: index pruning on vs off in the executor.

The executor can skip the exact GED/MCS of candidates whose optimistic
(lower-bound) GCS vector is already dominated by an evaluated exact
vector. This bench runs the same query with pruning enabled and disabled,
asserts identical skylines, and reports how many exact evaluations the
index saved. Expected shape: identical answers; pruning saves most work on
workloads with many far-away distractors.
"""

import pytest

from repro.bench import render_table
from repro.datasets import make_workload
from repro.db import GraphDatabase, SkylineExecutor


@pytest.fixture(scope="module")
def setup():
    workload = make_workload(
        n_graphs=40, query_size=7, mutant_fraction=0.3, radius=(1, 3), seed=77
    )
    db = GraphDatabase.from_graphs(workload.database)
    return db, workload.queries[0]


@pytest.mark.benchmark(group="a4-index")
@pytest.mark.parametrize("use_index", [True, False], ids=["pruned", "full"])
def test_executor_index_ablation(benchmark, setup, use_index):
    db, query = setup
    executor = SkylineExecutor(db, use_index=use_index)

    result = benchmark.pedantic(
        executor.execute, args=(query,), rounds=1, iterations=1
    )

    reference = SkylineExecutor(db, use_index=False).execute(query)
    assert result.skyline_ids == reference.skyline_ids

    stats = result.stats
    print()
    print(render_table(
        ["mode", "evaluated", "pruned", "pruning ratio", "skyline"],
        [[
            "pruned" if use_index else "full",
            stats.exact_evaluations,
            stats.pruned_by_index,
            round(stats.pruning_ratio, 3),
            stats.skyline_size,
        ]],
        title="A4 — executor pruning",
    ))
