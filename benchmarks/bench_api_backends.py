"""Bench A6 — execution backends on the E1 scalability workload.

Runs the same declarative skyline query through every registered backend
over the molecule-like synthetic database of `bench_scalability_dbsize`
and reports wall-clock plus work counters. Expected shape: ``indexed``
does strictly fewer exact evaluations than ``memory``; ``parallel``
matches ``memory``'s work but divides the wall-clock by roughly the
worker count on multi-core hosts (on a single-core host the pool can only
add overhead, so the speed assertion is gated on ``os.cpu_count()``).

All backends must return the identical skyline — that part is asserted
unconditionally.
"""

import os
import time

import pytest

import repro
from repro import GraphDatabase, Query
from repro.bench import render_table
from repro.datasets import make_workload

N_GRAPHS = 40
BACKENDS = ("memory", "indexed", "parallel")


@pytest.fixture(scope="module")
def workload_db():
    workload = make_workload(n_graphs=N_GRAPHS, query_size=7, seed=42)
    return GraphDatabase.from_graphs(workload.database), workload.queries[0]


@pytest.mark.benchmark(group="a6-backends")
def test_backends_identical_answers_and_timings(workload_db):
    database, query = workload_db
    spec = Query(query).skyline()
    answers = {}
    rows = []
    timings = {}
    for backend in BACKENDS:
        with repro.connect(database, backend=backend) as session:
            start = time.perf_counter()
            result = session.execute(spec)
            elapsed = time.perf_counter() - start
        answers[backend] = result.names
        timings[backend] = elapsed
        rows.append([
            backend,
            round(elapsed * 1000, 1),
            result.stats.exact_evaluations,
            result.stats.pruned_by_index,
            len(result.ids),
        ])
    print()
    print(render_table(
        ["backend", "ms", "exact evals", "pruned", "skyline"],
        rows,
        title=f"A6 — backends on E1 workload (n={N_GRAPHS})",
    ))

    reference = answers["memory"]
    for backend in BACKENDS:
        assert answers[backend] == reference, backend

    # The index must save exact work; the pool must save wall-clock when
    # there are cores to fan out over.
    with repro.connect(database, backend="indexed") as session:
        indexed = session.execute(spec)
    with repro.connect(database, backend="memory") as session:
        memory = session.execute(spec)
    assert indexed.stats.exact_evaluations <= memory.stats.exact_evaluations
    if (os.cpu_count() or 1) > 1:
        assert timings["parallel"] < timings["memory"], (
            f"parallel {timings['parallel']:.3f}s not faster than "
            f"memory {timings['memory']:.3f}s on {os.cpu_count()} cores"
        )
