"""Bench A10 — cost-based adaptive planner: ``auto`` versus every fixed backend.

Runs two workload classes through every fixed backend (``memory``,
``indexed``, ``parallel``, ``vectorized`` when NumPy is present,
``sharded`` over a 2-shard split) plus the adaptive ``auto`` backend:

* ``interactive`` — a small database with the full testkit query-kind
  mix (skyline, skyband, top-k, threshold). Fixed overheads dominate
  here, so the exhaustive process-pool plan (``parallel``) is the wrong
  choice and the planner must stay serial.
* ``bulk-pruned`` — a larger database where the pruning cascade pays:
  the exhaustive plans (``memory``, ``parallel``) evaluate every pair
  exactly while the index-backed plans prune most of them.

Each session runs the whole spec list once untimed (index/store build,
pool spawn, planner calibration — all session-persistent), then the
timed measurements interleave backends round-robin for ``REPEATS``
rounds — slow drift in machine load hits every backend equally instead
of whichever ran last. Per spec the best round counts, and the class
total is the sum of the per-spec bests. The acceptance gates are the
ISSUE-10 criteria:

* per class, ``auto`` total wall clock ≤ 1.1× the best fixed backend;
* on at least one class ``auto`` strictly beats the worst fixed backend
  by ≥ 1.5×;
* answers are property-equal to ``memory`` on every spec.

Results are printed as a table and written to ``BENCH_planner.json``
next to this file, so CI can archive the numbers.
"""

import json
import time
from pathlib import Path

import pytest

import repro
from repro import GraphDatabase, Query
from repro.bench import render_table
from repro.datasets import make_workload
from repro.engine.planner import availability

REPEATS = 5
EXTRA_ROUNDS = 3
WORKERS = 2
OUTPUT = Path(__file__).resolve().parent / "BENCH_planner.json"

#: Workload classes: database shape + the testkit query-kind mix.
CLASSES = {
    "interactive": {"n_graphs": 36, "query_size": 6, "seed": 101},
    "bulk-pruned": {"n_graphs": 120, "query_size": 5, "seed": 202},
}


def _specs(query, kind_class):
    if kind_class == "interactive":
        return [
            Query(query).measures("edit", "mcs").skyline(),
            Query(query).measures("edit", "mcs").skyband(2),
            Query(query).topk(3, "edit"),
            Query(query).threshold(0.5, "edit"),
        ]
    return [
        Query(query).measures("edit", "mcs").skyline(),
        Query(query).topk(5, "edit"),
        Query(query).threshold(0.4, "edit"),
    ]


def _fixed_backends():
    names = ["memory", "indexed", "parallel", "sharded"]
    if "vectorized" in repro.available_backends():
        names.insert(2, "vectorized")
    return names


def _session_options(backend):
    if backend == "parallel":
        return {"max_workers": WORKERS}
    return {}


def _run_class(database, specs, backends):
    """{backend: (results, class seconds)} with interleaved timing rounds.

    Class seconds = sum over specs of the best-of-``REPEATS`` rounds.
    """
    sessions = {
        backend: repro.connect(
            database, backend=backend, **_session_options(backend)
        )
        for backend in backends
    }
    try:
        for session in sessions.values():
            for spec in specs:  # warmup: index/store build, pool spawn,
                session.execute(spec)  # planner calibration
        best = {}

        def _round(names):
            for backend in names:
                session = sessions[backend]
                for i, spec in enumerate(specs):
                    start = time.perf_counter()
                    result = session.execute(spec)
                    elapsed = time.perf_counter() - start
                    key = (backend, i)
                    if key not in best or elapsed < best[key][1]:
                        best[key] = (result, elapsed)

        for _ in range(REPEATS):
            _round(backends)
        # Gate 1 compares the *fast* backends against each other with a
        # tight 1.1x margin; give those extra rounds so a noise spike in
        # one round cannot decide the gate (the slow exhaustive backends
        # lose by >10x — no extra precision needed there).
        cheap = [
            backend
            for backend in backends
            if sum(best[(backend, i)][1] for i in range(len(specs))) < 0.25
        ]
        for _ in range(EXTRA_ROUNDS):
            _round(cheap)
    finally:
        for session in sessions.values():
            session.close()
    return {
        backend: (
            [best[(backend, i)][0] for i in range(len(specs))],
            sum(best[(backend, i)][1] for i in range(len(specs))),
        )
        for backend in backends
    }


@pytest.fixture(scope="module")
def class_workloads():
    out = {}
    for name, shape in CLASSES.items():
        workload = make_workload(
            n_graphs=shape["n_graphs"],
            query_size=shape["query_size"],
            seed=shape["seed"],
        )
        database = GraphDatabase.from_graphs(workload.database)
        out[name] = (database, _specs(workload.queries[0], name))
    return out


@pytest.mark.benchmark(group="a10-planner")
def test_auto_backend_beats_the_wrong_fixed_choice(class_workloads):
    fixed = _fixed_backends()
    rows = []
    payload = {
        "classes": {
            name: dict(shape, specs=len(class_workloads[name][1]))
            for name, shape in CLASSES.items()
        },
        "repeats": REPEATS,
        "availability": availability(),
        "results": {},
        "gates": {},
    }

    beat_ratio = 0.0
    for class_name, (database, specs) in class_workloads.items():
        runs = _run_class(database, specs, fixed + ["auto"])

        reference = [r.ids for r in runs["memory"][0]]
        for backend, (results, _) in runs.items():
            answers = [r.ids for r in results]
            assert answers == reference, (class_name, backend)

        times = {backend: elapsed for backend, (_, elapsed) in runs.items()}
        best_fixed = min(fixed, key=times.get)
        worst_fixed = max(fixed, key=times.get)
        auto_s = times["auto"]
        beat_ratio = max(beat_ratio, times[worst_fixed] / auto_s)

        plans = [
            (r.stats.planner or {}).get("summary", "?")
            for r in runs["auto"][0]
        ]
        for backend in fixed + ["auto"]:
            rows.append([
                class_name,
                backend,
                round(times[backend] * 1000, 1),
                round(times[backend] / auto_s, 2),
                {best_fixed: "best fixed", worst_fixed: "worst fixed"}.get(
                    backend, ""
                ),
            ])
        payload["results"][class_name] = {
            "seconds": times,
            "best_fixed": best_fixed,
            "worst_fixed": worst_fixed,
            "auto_vs_best": auto_s / times[best_fixed],
            "worst_vs_auto": times[worst_fixed] / auto_s,
            "auto_plans": plans,
        }

        # Gate 1: auto is within 1.1x of the best fixed backend per class.
        payload["gates"][f"{class_name}/auto<=1.1x-best"] = (
            auto_s <= 1.1 * times[best_fixed]
        )
        assert auto_s <= 1.1 * times[best_fixed], (
            f"{class_name}: auto {auto_s * 1000:.1f}ms vs best fixed "
            f"{best_fixed} {times[best_fixed] * 1000:.1f}ms"
        )

    # Gate 2: on at least one class auto beats the worst fixed backend 1.5x.
    payload["gates"]["some-class-worst>=1.5x-auto"] = beat_ratio >= 1.5
    print()
    print(render_table(
        ["class", "backend", "ms", "x auto", "note"],
        rows,
        title=f"A10 — adaptive planner vs fixed backends (best of {REPEATS})",
    ))
    OUTPUT.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    print(f"wrote {OUTPUT}")
    assert beat_ratio >= 1.5, (
        f"auto never beat the worst fixed backend by 1.5x (max {beat_ratio:.2f}x)"
    )
