"""Benches A6/A7 — ablation: alternative exact engines.

* **A6**: McGregor-style branch and bound vs modular-edge-product maximal
  cliques for the maximum common connected subgraph. Identical results
  (asserted); the branch and bound usually wins on sparse labeled graphs
  because label pruning bites before the product graph is even built.
* **A7**: depth-first branch and bound vs best-first A* for the exact
  edit distance. Identical distances (asserted); A* expands fewer states
  (optimal for the shared heuristic) but pays heap and state-copy
  overhead — the bench shows where each engine wins.
"""

import pytest

from repro.bench import render_table
from repro.datasets import molecule_like_graph
from repro.graph import (
    graph_edit_distance,
    graph_edit_distance_astar,
    maximum_common_subgraph,
    maximum_common_subgraph_clique,
)

PAIRS = [
    (molecule_like_graph(6, seed=50 + 2 * i), molecule_like_graph(6, seed=51 + 2 * i))
    for i in range(5)
]


@pytest.mark.benchmark(group="a6-mcs-engines")
def test_mcs_mcgregor(benchmark):
    sizes = benchmark(
        lambda: [maximum_common_subgraph(g1, g2).size for g1, g2 in PAIRS]
    )
    assert all(size >= 0 for size in sizes)


@pytest.mark.benchmark(group="a6-mcs-engines")
def test_mcs_clique(benchmark):
    sizes = benchmark.pedantic(
        lambda: [maximum_common_subgraph_clique(g1, g2).size for g1, g2 in PAIRS],
        rounds=1,
        iterations=1,
    )
    reference = [maximum_common_subgraph(g1, g2).size for g1, g2 in PAIRS]
    assert sizes == reference


@pytest.mark.benchmark(group="a7-ged-engines")
def test_ged_depth_first(benchmark):
    results = benchmark(
        lambda: [graph_edit_distance(g1, g2) for g1, g2 in PAIRS]
    )
    expansions = sum(result.expanded_nodes for result in results)
    print(f"\nDF-GED expanded nodes (total over {len(PAIRS)} pairs): {expansions}")


@pytest.mark.benchmark(group="a7-ged-engines")
def test_ged_astar(benchmark):
    results = benchmark.pedantic(
        lambda: [graph_edit_distance_astar(g1, g2) for g1, g2 in PAIRS],
        rounds=1,
        iterations=1,
    )
    reference = [graph_edit_distance(g1, g2).distance for g1, g2 in PAIRS]
    assert [result.distance for result in results] == pytest.approx(reference)
    expansions = sum(result.expanded_nodes for result in results)
    print()
    print(render_table(
        ["engine", "expanded nodes"],
        [["A*", expansions],
         ["DF-BnB", sum(graph_edit_distance(g1, g2).expanded_nodes
                        for g1, g2 in PAIRS)]],
        title="A7 — search effort",
    ))
