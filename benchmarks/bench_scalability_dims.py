"""Bench E2 — announced experiments: scaling GCS dimensionality.

The paper's approach generalises to any number d of local measures
(Definition 11). This bench sweeps d from 1 to 5 on a fixed synthetic
database and reports skyline size. Expected shape (classic skyline
behaviour): the skyline grows with d — with one measure the "skyline" is
the set of distance minimisers; every added facet makes more graphs
Pareto-incomparable. Runtime is dominated by the d = 1 presence of DistEd
(exact GED), so added cheap dimensions barely change it.
"""

import pytest

from repro.bench import render_table
from repro.core import graph_similarity_skyline
from repro.datasets import make_workload

MEASURE_STACKS = {
    1: ("edit",),
    2: ("edit", "mcs"),
    3: ("edit", "mcs", "union"),
    4: ("edit", "mcs", "union", "jaccard-edges"),
    5: ("edit", "mcs", "union", "jaccard-edges", "degree-sequence"),
}


@pytest.fixture(scope="module")
def workload():
    return make_workload(n_graphs=30, query_size=7, seed=17)


@pytest.mark.benchmark(group="e2-dimensionality")
@pytest.mark.parametrize("d", sorted(MEASURE_STACKS))
def test_skyline_size_vs_dimensionality(benchmark, workload, d):
    query = workload.queries[0]
    measures = MEASURE_STACKS[d]

    result = benchmark.pedantic(
        graph_similarity_skyline,
        args=(workload.database, query),
        kwargs={"measures": measures},
        rounds=1,
        iterations=1,
    )

    assert len(result.skyline) >= 1
    print()
    print(render_table(
        ["d", "measures", "skyline size"],
        [[d, "+".join(measures), len(result.skyline)]],
        title="E2 — skyline size vs dimensionality",
    ))


def test_skyline_growth_shape(workload):
    """Non-benchmark check of the expected monotone-ish growth: the d = 3
    skyline is at least as large as the d = 1 skyline on this workload."""
    query = workload.queries[0]
    small = graph_similarity_skyline(
        workload.database, query, measures=MEASURE_STACKS[1]
    )
    large = graph_similarity_skyline(
        workload.database, query, measures=MEASURE_STACKS[3]
    )
    assert len(large.skyline) >= len(small.skyline)
