"""Bench A1 — ablation: generic skyline algorithm choice.

All four algorithms compute identical skylines (property-tested); this
bench times them on identical synthetic GCS-like vector sets. Expected
shape: naive is quadratic everywhere; BNL/SFS win when the skyline is a
small fraction of the input (the similarity-search regime); divide &
conquer pays recursion overhead at these sizes.
"""

import random

import pytest

from repro.skyline import ALGORITHMS, naive_skyline, skyline


def make_vectors(n: int, d: int = 3, seed: int = 0) -> list[tuple[float, ...]]:
    rng = random.Random(seed)
    return [
        tuple(round(rng.uniform(0.0, 1.0), 3) for _ in range(d)) for _ in range(n)
    ]


@pytest.fixture(scope="module")
def vectors():
    return make_vectors(1500)


@pytest.mark.benchmark(group="a1-skyline-algos")
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_skyline_algorithm_ablation(benchmark, vectors, algorithm):
    result = benchmark(skyline, vectors, algorithm=algorithm)
    assert result == naive_skyline(vectors)


@pytest.mark.benchmark(group="a1-skyline-algos-correlated")
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_skyline_algorithm_ablation_correlated(benchmark, algorithm):
    """Correlated dimensions -> tiny skyline -> window algorithms shine."""
    rng = random.Random(3)
    vectors = []
    for _ in range(1500):
        base = rng.uniform(0.0, 1.0)
        vectors.append(tuple(
            round(min(1.0, max(0.0, base + rng.uniform(-0.05, 0.05))), 3)
            for _ in range(3)
        ))
    result = benchmark(skyline, vectors, algorithm=algorithm)
    assert result == naive_skyline(vectors)
