"""Bench A2 — ablation: exact GED vs bipartite vs beam search.

Times the three edit-distance engines on a fixed set of random
molecule-like pairs and reports their accuracy (mean overestimation
relative to exact). Expected shape: bipartite is orders of magnitude
faster but overestimates; beam tightens with width at growing cost; exact
is feasible at these sizes thanks to its multiset lower bounds.
"""

import pytest

from repro.bench import render_table
from repro.datasets import molecule_like_graph
from repro.graph import beam_ged, bipartite_ged, graph_edit_distance

PAIRS = [
    (molecule_like_graph(6, seed=2 * i), molecule_like_graph(6, seed=2 * i + 1))
    for i in range(6)
]


def run_exact():
    return [graph_edit_distance(g1, g2).distance for g1, g2 in PAIRS]


def run_bipartite():
    return [bipartite_ged(g1, g2).distance for g1, g2 in PAIRS]


def run_beam(width: int):
    return [beam_ged(g1, g2, beam_width=width).distance for g1, g2 in PAIRS]


@pytest.mark.benchmark(group="a2-ged-engines")
def test_ged_exact(benchmark):
    distances = benchmark.pedantic(run_exact, rounds=1, iterations=1)
    assert all(d >= 0 for d in distances)


@pytest.mark.benchmark(group="a2-ged-engines")
def test_ged_bipartite(benchmark):
    estimates = benchmark(run_bipartite)
    exact = run_exact()
    assert all(e >= x - 1e-9 for e, x in zip(estimates, exact))
    gap = sum(e - x for e, x in zip(estimates, exact)) / len(exact)
    print(f"\nbipartite mean overestimation: {gap:.2f} edits")


@pytest.mark.benchmark(group="a2-ged-engines")
@pytest.mark.parametrize("width", [1, 8, 64])
def test_ged_beam(benchmark, width):
    estimates = benchmark.pedantic(run_beam, args=(width,), rounds=1, iterations=1)
    exact = run_exact()
    assert all(e >= x - 1e-9 for e, x in zip(estimates, exact))
    gap = sum(e - x for e, x in zip(estimates, exact)) / len(exact)
    print()
    print(render_table(
        ["beam width", "mean overestimation (edits)"],
        [[width, round(gap, 3)]],
        title="A2 — beam accuracy",
    ))
