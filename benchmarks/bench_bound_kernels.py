"""Bench A8 — vectorized bound kernels and VP-tree candidate generation.

Times the candidate-filtering layer at database sizes where interpreter
overhead dominates the scalar path:

* **bound-stage throughput** — all four feature bounds (edit lb, |mcs|
  ub, DistMcs lb, DistGu lb) for every graph against one query: the
  per-graph scalar loop over ``repro.graph.features`` versus one batched
  kernel pass over the packed :class:`~repro.index.SignatureMatrix`;
* **candidate generation** — threshold-query candidate sets via the
  VP-tree's metric range search versus the vectorized linear scan, with
  the fraction of rows the tree actually touched.

Results go to ``BENCH_bounds.json`` next to this file (archived by CI).
The regression floor asserted here is the PR's acceptance criterion:
**≥ 5× bound-stage speedup at 2 000 graphs**, and VP-tree range search
must touch a strict subset of the rows while returning the exact
linear-scan candidate set.
"""

import json
import random
import time
from pathlib import Path

import numpy as np
import pytest

from repro.datasets.synthetic import molecule_like_graph
from repro.graph.features import (
    GraphFeatures,
    dist_gu_lower_bound,
    dist_mcs_lower_bound,
    edit_distance_lower_bound,
    mcs_upper_bound,
)
from repro.index import SignatureMatrix, VPTree, bound_matrix, signature_distances
from repro.bench import render_table
from repro.measures.base import resolve_measures

SIZES = (2_000, 10_000)
SPEEDUP_FLOOR = 5.0  # asserted at the smallest size; CI fails below it
OUTPUT = Path(__file__).resolve().parent / "BENCH_bounds.json"


@pytest.fixture(scope="module")
def populations():
    """Feature populations per size (graphs themselves are not needed)."""
    rng = random.Random(42)
    features = [
        GraphFeatures.of(molecule_like_graph(rng.randint(4, 9), seed=rng))
        for _ in range(max(SIZES))
    ]
    query = GraphFeatures.of(molecule_like_graph(6, seed=rng, name="q"))
    return features, query


def _scalar_pass(features, query):
    return [
        (
            edit_distance_lower_bound(f, query),
            mcs_upper_bound(f, query),
            dist_mcs_lower_bound(f, query),
            dist_gu_lower_bound(f, query),
        )
        for f in features
    ]


def _best_of(repeats, fn):
    best, value = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


@pytest.mark.benchmark(group="a8-bound-kernels")
def test_bound_kernel_and_index_throughput(populations):
    all_features, query = populations
    measures = resolve_measures(("edit", "mcs", "union"))
    rows = []
    payload = {"sizes": {}, "speedup_floor": SPEEDUP_FLOOR}

    for size in SIZES:
        features = all_features[:size]
        matrix = SignatureMatrix()
        for graph_id, f in enumerate(features):
            matrix.add(graph_id, f)
        packed = matrix.pack_query(query)

        scalar_s, scalar_values = _best_of(3, lambda: _scalar_pass(features, query))
        vector_s, batched = _best_of(
            3, lambda: bound_matrix(matrix, packed, measures)
        )
        # The vectorized pass must be the same numbers, not just faster.
        sample = random.Random(7).sample(range(size), 50)
        for row in sample:
            assert batched[row, 0] == scalar_values[row][0]
            assert batched[row, 1] == scalar_values[row][2]
            assert batched[row, 2] == scalar_values[row][3]
        speedup = scalar_s / vector_s

        # Candidate generation: VP-tree range search vs linear scan for a
        # selective threshold query on the edit bound.
        tree_build_s, tree = _best_of(1, lambda: VPTree(matrix))
        radius = 2.0
        linear_s, linear_hits = _best_of(
            3,
            lambda: np.flatnonzero(
                signature_distances(
                    matrix, np.arange(len(matrix), dtype=np.int64), packed
                )
                <= radius
            ),
        )
        tree_s, tree_hits = _best_of(3, lambda: tree.range_rows(packed, radius))
        assert tree_hits.tolist() == linear_hits.tolist()
        scanned_fraction = tree.last_rows_scanned / size
        assert tree.last_rows_scanned < size, "VP-tree degenerated to a full scan"

        rows.append([
            size,
            round(scalar_s * 1e3, 2),
            round(vector_s * 1e3, 3),
            round(speedup, 1),
            round(tree_build_s * 1e3, 1),
            round(linear_s * 1e3, 3),
            round(tree_s * 1e3, 3),
            f"{scanned_fraction:.1%}",
            len(tree_hits),
        ])
        payload["sizes"][str(size)] = {
            "scalar_bound_seconds": scalar_s,
            "vector_bound_seconds": vector_s,
            "bound_speedup": speedup,
            "bounds_per_second_scalar": size / scalar_s,
            "bounds_per_second_vector": size / vector_s,
            "vptree_build_seconds": tree_build_s,
            "linear_range_seconds": linear_s,
            "vptree_range_seconds": tree_s,
            "vptree_rows_scanned": tree.last_rows_scanned,
            "vptree_scanned_fraction": scanned_fraction,
            "range_hits": len(tree_hits),
        }

    print()
    print(render_table(
        ["n", "scalar ms", "vector ms", "speedup", "build ms",
         "linear ms", "vptree ms", "scanned", "hits"],
        rows,
        title="A8 — bound kernels: scalar vs vectorized + VP-tree range",
    ))
    OUTPUT.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    print(f"wrote {OUTPUT}")

    floor_speedup = payload["sizes"][str(SIZES[0])]["bound_speedup"]
    assert floor_speedup >= SPEEDUP_FLOOR, (
        f"vectorized bound stage only {floor_speedup:.1f}x over scalar at "
        f"n={SIZES[0]}; the floor is {SPEEDUP_FLOOR}x"
    )
