"""Bench A8 — incremental skyline maintenance vs batch recomputation.

Simulates a living database: vectors stream in one at a time and the
answer set must stay current after every arrival. Expected shape: batch
recomputation after each insert costs O(n^2) per step (cubic over the
stream), while the incremental tracker pays one window comparison per
insert — the gap widens with stream length. Deletion cost is measured
separately (the expensive promotion path).
"""

import random

import pytest

from repro.skyline import IncrementalSkyline, bnl_skyline

STREAM = 400


def make_stream(n: int, seed: int = 0) -> list[tuple[float, float, float]]:
    rng = random.Random(seed)
    return [
        (rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1)) for _ in range(n)
    ]


@pytest.mark.benchmark(group="a8-incremental")
def test_incremental_stream(benchmark):
    stream = make_stream(STREAM)

    def run() -> int:
        tracker = IncrementalSkyline(dimension=3)
        for index, vector in enumerate(stream):
            tracker.insert(index, vector)
        return tracker.skyline_size

    size = benchmark(run)
    assert size >= 1


@pytest.mark.benchmark(group="a8-incremental")
def test_batch_recompute_per_insert(benchmark):
    stream = make_stream(STREAM)

    def run() -> int:
        live: list[tuple[float, float, float]] = []
        members: list[int] = []
        for vector in stream:
            live.append(vector)
            members = bnl_skyline(live)
        return len(members)

    size = benchmark.pedantic(run, rounds=1, iterations=1)
    # both strategies must agree on the final answer
    tracker = IncrementalSkyline(dimension=3)
    for index, vector in enumerate(stream):
        tracker.insert(index, vector)
    assert size == tracker.skyline_size


@pytest.mark.benchmark(group="a8-incremental-deletion")
def test_incremental_with_deletions(benchmark):
    stream = make_stream(STREAM, seed=5)

    def run() -> int:
        rng = random.Random(1)
        tracker = IncrementalSkyline(dimension=3)
        live: list[int] = []
        for index, vector in enumerate(stream):
            tracker.insert(index, vector)
            live.append(index)
            if len(live) > 50:  # sliding-window style deletions
                victim = live.pop(rng.randrange(len(live)))
                tracker.remove(victim)
        return tracker.skyline_size

    size = benchmark.pedantic(run, rounds=1, iterations=1)
    assert size >= 1
