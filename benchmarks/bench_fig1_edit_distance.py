"""Bench F1 — Fig. 1 / Example 2: DistEd(g1, g2) = 4.

Regenerates the edit distance of the worked pair and verifies the optimal
sequence has the paper's exact operation mix (edge deletion, edge
relabeling, vertex relabeling, edge insertion). Times the exact solver
and both heuristics on the same pair.
"""

import pytest

from repro.graph import (
    beam_ged,
    bipartite_ged,
    edit_path_from_mapping,
    graph_edit_distance,
)


@pytest.mark.benchmark(group="fig1-edit-distance")
def test_fig1_exact_ged(benchmark, fig1):
    g1, g2 = fig1

    result = benchmark(graph_edit_distance, g1, g2)

    assert result.distance == 4.0
    path = edit_path_from_mapping(g1, g2, result.mapping)
    kinds = sorted(type(op).__name__ for op in path)
    assert kinds == [
        "EdgeDeletion", "EdgeInsertion", "EdgeRelabeling", "VertexRelabeling",
    ]
    print(f"\nFig.1: DistEd = {result.distance:.0f} "
          f"via {', '.join(type(op).__name__ for op in path)}")


@pytest.mark.benchmark(group="fig1-edit-distance")
def test_fig1_bipartite_upper_bound(benchmark, fig1):
    g1, g2 = fig1
    estimate = benchmark(bipartite_ged, g1, g2)
    assert estimate.distance >= 4.0  # upper bound on the exact value


@pytest.mark.benchmark(group="fig1-edit-distance")
def test_fig1_beam_upper_bound(benchmark, fig1):
    g1, g2 = fig1
    estimate = benchmark(beam_ged, g1, g2, beam_width=16)
    assert estimate.distance >= 4.0
