"""Bench A8 — testkit throughput: the harness must stay fast.

The differential harness is only a usable safety net if a few hundred
steps replay in seconds: every future scaling PR (sharding, async) is
supposed to run the pinned corpus in CI on every push. This bench
replays a pinned workload, reports steps/sec and per-category rates, and
fails if throughput collapses below a floor that keeps the ~60s CI fuzz
budget honest. Results land in ``BENCH_testkit.json`` for archiving.
"""

import json
import time
from pathlib import Path

import pytest

from repro.bench import render_table
from repro.testkit import generate_workload, run_workload
from repro.testkit.workload import WORKLOAD_BACKENDS

SEED = 2026
N_STEPS = 200
#: steps/sec floor: far below observed (~50/s) but catches a collapse.
MIN_STEPS_PER_SEC = 5.0
OUTPUT = Path(__file__).resolve().parent / "BENCH_testkit.json"


@pytest.mark.benchmark(group="a8-testkit-throughput")
def test_testkit_replay_throughput():
    workload = generate_workload(seed=SEED, n_steps=N_STEPS)
    start = time.perf_counter()
    report = run_workload(workload)
    elapsed = time.perf_counter() - start
    assert report.ok, report.divergence.describe()

    steps_per_sec = report.steps_run / elapsed
    rows = [
        ["steps", report.steps_run, round(steps_per_sec, 1)],
        ["queries (x2: cache off+on)", report.queries,
         round(report.queries / elapsed, 1)],
        ["mutations", report.mutations, round(report.mutations / elapsed, 1)],
        ["view checks", report.view_checks,
         round(report.view_checks / elapsed, 1)],
        ["save/load round-trips", report.saveloads,
         round(report.saveloads / elapsed, 1)],
    ]
    print()
    print(render_table(
        ["category", "count", "per second"],
        rows,
        title=f"A8 — testkit replay throughput (seed={SEED}, {elapsed:.2f}s)",
    ))

    OUTPUT.write_text(json.dumps({
        "workload": {"seed": SEED, "steps": N_STEPS},
        "seconds": elapsed,
        "steps_per_sec": steps_per_sec,
        "queries": report.queries,
        "mutations": report.mutations,
        "view_checks": report.view_checks,
        "saveloads": report.saveloads,
        "combos": report.combos,
        "cache": {"hits": report.cache_hits, "misses": report.cache_misses},
    }, indent=2), encoding="utf-8")
    print(f"wrote {OUTPUT}")

    assert len(report.combos) == 4 * len(WORKLOAD_BACKENDS), report.combos
    assert steps_per_sec >= MIN_STEPS_PER_SEC, (
        f"harness too slow: {steps_per_sec:.1f} steps/s "
        f"(floor {MIN_STEPS_PER_SEC})"
    )
