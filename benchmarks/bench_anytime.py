"""Bench A11 — anytime queries under a fixed wall budget.

Before this PR a deadline could not interrupt a single exact evaluation:
one adversarial pair (here: 12-14-vertex random graphs, exponential
DF-GED) pinned the worker past any deadline and the query 504'd. The
anytime path must instead return a certified ``[lower, upper]`` interval
answer within the budget, every time.

Gates:

* **p99 latency**: over repeated budgeted queries (top-k and skyline)
  against a database whose slow members each cost seconds to evaluate
  exactly, the p99 wall time stays under ``LATENCY_CAP`` × the budget —
  the slack absorbs per-candidate slice granularity and engine overhead,
  while the un-budgeted path would blow it by orders of magnitude.
* **Interval soundness**: zero violations of ``lower ≤ exact ≤ upper``
  across sampled pairs × all four paper measures × node budgets, checked
  against the exhaustive evaluator.

Numbers land in ``BENCH_anytime.json`` for the CI artifact trail.
"""

import json
import time
from pathlib import Path

import pytest

import repro
from repro import Query
from repro.bench import render_table
from repro.db import GraphDatabase
from repro.graph import Budget
from repro.graph.generators import random_labeled_graph
from repro.measures import (
    EditDistance,
    GraphUnionDistance,
    McsDistance,
    NormalizedEditDistance,
    PairContext,
)

N_FAST = 40
N_SLOW = 8
BUDGET_MS = 100
REPEATS = 25
#: p99 cap as a multiple of the budget (slice granularity + overhead).
LATENCY_CAP = 5.0
#: Pairs sampled for the soundness sweep (fast graphs only — the oracle
#: needs the exact value).
SOUNDNESS_PAIRS = 12
NODE_BUDGETS = (1, 10, 100, 10_000)
OUTPUT = Path(__file__).resolve().parent / "BENCH_anytime.json"

MEASURES = (
    EditDistance(),
    NormalizedEditDistance(),
    McsDistance(),
    GraphUnionDistance(),
)


@pytest.fixture(scope="module")
def anytime_setup():
    fast = [
        random_labeled_graph(5, 6, vertex_labels=("a", "b"), seed=s)
        for s in range(N_FAST)
    ]
    slow = [
        random_labeled_graph(12 + s % 3, 22 + s, vertex_labels=("a", "b"), seed=500 + s)
        for s in range(N_SLOW)
    ]
    query = random_labeled_graph(12, 21, vertex_labels=("a", "b"), seed=999)
    return GraphDatabase.from_graphs(fast + slow), fast, query


def _percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


@pytest.mark.benchmark(group="a11-anytime")
def test_anytime_p99_and_interval_soundness(anytime_setup):
    database, fast, query = anytime_setup
    specs = {
        "topk": Query(query).topk(5).budget(ms=BUDGET_MS),
        "skyline": Query(query).skyline().budget(ms=BUDGET_MS),
    }

    rows = []
    payload = {
        "workload": {
            "n_fast": N_FAST,
            "n_slow": N_SLOW,
            "budget_ms": BUDGET_MS,
            "repeats": REPEATS,
        },
        "latency_cap_x_budget": LATENCY_CAP,
        "kinds": {},
    }
    with repro.connect(database, backend="memory") as session:
        session.execute(Query(query).topk(1).budget(ms=50))  # warm imports
        for kind, spec in specs.items():
            latencies = []
            passes = 0
            open_intervals = 0
            for _ in range(REPEATS):
                start = time.perf_counter()
                result = session.execute(spec)
                latencies.append(time.perf_counter() - start)
                assert result.intervals is not None
                passes += result.stats.anytime["passes"]
                open_intervals += sum(
                    1
                    for vector in result.intervals.values()
                    if any(not interval.settled for interval in vector)
                )
            p50 = _percentile(latencies, 0.50)
            p99 = _percentile(latencies, 0.99)
            rows.append([
                kind,
                round(p50 * 1000, 1),
                round(p99 * 1000, 1),
                round(passes / REPEATS, 1),
                round(open_intervals / REPEATS, 1),
            ])
            payload["kinds"][kind] = {
                "p50_ms": p50 * 1000,
                "p99_ms": p99 * 1000,
                "mean_passes": passes / REPEATS,
                "mean_open_intervals": open_intervals / REPEATS,
            }

    # Soundness sweep: certified intervals must bracket the exact value
    # for every sampled pair, measure, and budget.
    violations = 0
    checks = 0
    for index in range(SOUNDNESS_PAIRS):
        g = fast[(index * 7) % len(fast)]
        h = fast[(index * 11 + 3) % len(fast)]
        for measure in MEASURES:
            exact = measure.distance(g, h, PairContext(g, h))
            for nodes in NODE_BUDGETS:
                interval = measure.distance_interval(
                    g, h, PairContext(g, h), Budget(node_limit=nodes)
                )
                checks += 1
                if not (
                    interval.lower <= exact + 1e-9
                    and exact <= interval.upper + 1e-9
                ):
                    violations += 1
    payload["soundness"] = {"checks": checks, "violations": violations}

    print()
    print(render_table(
        ["kind", "p50 ms", "p99 ms", "passes/q", "open/q"],
        rows,
        title=(
            f"A11 — anytime queries, budget {BUDGET_MS}ms over "
            f"{N_FAST + N_SLOW} graphs ({N_SLOW} adversarial); "
            f"soundness {checks} checks / {violations} violations"
        ),
    ))
    OUTPUT.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    print(f"wrote {OUTPUT}")

    cap = LATENCY_CAP * BUDGET_MS / 1000.0
    for kind in specs:
        p99 = payload["kinds"][kind]["p99_ms"] / 1000.0
        assert p99 <= cap, (
            f"{kind}: p99 {p99 * 1000:.1f}ms exceeds "
            f"{LATENCY_CAP}x the {BUDGET_MS}ms budget"
        )
    assert violations == 0, f"{violations}/{checks} interval soundness violations"
