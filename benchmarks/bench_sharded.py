"""Bench A9 — scatter-gather: sharded execution versus the monolith.

Runs one synthetic workload through the scatter-gather backend at 1, 2
and 4 shards (serial and parallel evaluation) against the monolithic
``memory`` and ``parallel`` baselines, for the skyline and top-k kinds.
Every variant must return the identical answer set; the acceptance gate
is the ROADMAP's scaling claim — **4-shard parallel top-k must not be
slower than the monolithic parallel backend** (cross-shard rank-bound
sharing means the sharded run *evaluates strictly fewer pairs*: the
monolithic parallel plan has no pruning cascade at all). Wall-clock is
best-of-``REPEATS`` to keep the gate robust against scheduler noise.

Results are printed as a table and written to ``BENCH_sharded.json``
next to this file, so CI can archive the numbers.
"""

import json
import time
from pathlib import Path

import pytest

import repro
from repro import GraphDatabase, Query
from repro.bench import render_table
from repro.datasets import make_workload
from repro.shard import ShardedGraphDatabase

N_GRAPHS = 96
K = 5
REPEATS = 3
WORKERS = 2
OUTPUT = Path(__file__).resolve().parent / "BENCH_sharded.json"


@pytest.fixture(scope="module")
def workload_db():
    workload = make_workload(n_graphs=N_GRAPHS, query_size=6, seed=41)
    return GraphDatabase.from_graphs(workload.database), workload.queries[0]


def _best_of(database, spec, backend, **options):
    best = None
    for _ in range(REPEATS):
        with repro.connect(database, backend=backend, **options) as session:
            start = time.perf_counter()
            result = session.execute(spec)
            elapsed = time.perf_counter() - start
        if best is None or elapsed < best[1]:
            best = (result, elapsed)
    return best


@pytest.mark.benchmark(group="a9-sharded-scatter")
def test_sharded_scatter_gather_scaling(workload_db):
    database, query = workload_db
    specs = {
        "skyline": Query(query).measures("edit", "mcs").skyline(),
        "topk": Query(query).topk(K, "edit"),
    }
    sharded = {
        shards: ShardedGraphDatabase.from_database(database, shards=shards)
        for shards in (1, 2, 4)
    }

    rows = []
    payload = {
        "workload": {"n_graphs": N_GRAPHS, "seed": 41, "k": K},
        "repeats": REPEATS,
        "variants": {},
    }
    runs = {}
    for kind, spec in specs.items():
        runs[(kind, "memory")] = _best_of(database, spec, "memory")
        runs[(kind, "parallel")] = _best_of(
            database, spec, "parallel", max_workers=WORKERS
        )
        for shards, store in sharded.items():
            runs[(kind, f"sharded-{shards}")] = _best_of(store, spec, "sharded")
            runs[(kind, f"sharded-{shards}-parallel")] = _best_of(
                store, spec, "sharded", parallel=True, max_workers=WORKERS
            )

    for (kind, variant), (result, elapsed) in runs.items():
        stats = result.stats
        rows.append([
            kind,
            variant,
            round(elapsed * 1000, 1),
            stats.exact_evaluations,
            stats.pruned_by_index,
            len(result.ids),
        ])
        payload["variants"][f"{kind}/{variant}"] = {
            "seconds": elapsed,
            "exact_evaluations": stats.exact_evaluations,
            "pruned_by_index": stats.pruned_by_index,
            "answer_size": len(result.ids),
        }
    print()
    print(render_table(
        ["kind", "variant", "ms", "exact evals", "pruned", "answer"],
        rows,
        title=f"A9 — scatter-gather scaling (n={N_GRAPHS}, best of {REPEATS})",
    ))
    OUTPUT.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    print(f"wrote {OUTPUT}")

    # Identical answers everywhere.
    for kind in specs:
        reference = runs[(kind, "memory")][0].ids
        for variant in (
            "parallel",
            "sharded-1", "sharded-2", "sharded-4",
            "sharded-1-parallel", "sharded-2-parallel", "sharded-4-parallel",
        ):
            assert runs[(kind, variant)][0].ids == reference, (kind, variant)

    # Cross-shard pruning does real work: the sharded top-k evaluates
    # strictly fewer pairs than the exhaustive monolithic parallel plan.
    mono_evals = runs[("topk", "parallel")][0].stats.exact_evaluations
    shard_evals = runs[("topk", "sharded-4-parallel")][0].stats.exact_evaluations
    assert shard_evals < mono_evals, (shard_evals, mono_evals)

    # The acceptance gate: 4-shard parallel top-k is not slower than the
    # monolithic parallel backend.
    mono_time = runs[("topk", "parallel")][1]
    shard_time = runs[("topk", "sharded-4-parallel")][1]
    assert shard_time <= mono_time, (
        f"4-shard parallel topk {shard_time * 1000:.1f}ms slower than "
        f"monolithic parallel {mono_time * 1000:.1f}ms"
    )
