"""Bench T1 — Table I / Example 1: the hotel skyline.

Regenerates the paper's introductory skyline (S = {H2, H4, H6}) and times
each generic skyline algorithm on it. The assertion *is* the reproduction;
the timing shows the (tiny) constant factors at n = 7.
"""

import pytest

from repro.bench import render_table
from repro.datasets import EXPECTED_SKYLINE, HOTELS, hotel_names, hotel_vectors
from repro.skyline import ALGORITHMS, skyline


@pytest.mark.benchmark(group="table1-hotels")
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_table1_hotel_skyline(benchmark, algorithm):
    vectors = hotel_vectors()
    names = hotel_names()

    indices = benchmark(skyline, vectors, algorithm=algorithm)

    result = tuple(names[i] for i in indices)
    assert result == EXPECTED_SKYLINE

    rows = [
        [hotel.name, hotel.price, hotel.distance_km, hotel.name in result]
        for hotel in HOTELS
    ]
    print()
    print(render_table(
        ["hotel", "price", "distance (km)", "in skyline"],
        rows,
        title=f"Table I ({algorithm}) — skyline = {result}",
    ))
