"""Bench T5 — Table V: rank-sum refinement selects S = {g1, g4}.

Regenerates the per-dimension dense ranks, val(S) for all six candidates,
and the final maximally diverse subset {g1, g4} (the paper's 𝕊). Under the
measured pairwise distances, {g1,g4} and {g4,g7} tie at the minimal val
and the deterministic enumeration-order tie-break returns the paper's
subset; {g5, g7} stays the worst candidate exactly as in the paper.
Times the full Section-VII refinement.
"""

import pytest

from repro.bench import render_table
from repro.core import graph_similarity_skyline, refine_by_diversity
from repro.datasets import EXPECTED_DIVERSE_SUBSET, TABLE5_PAPER


@pytest.mark.benchmark(group="table5-refinement")
def test_table5_rank_sum_refinement(benchmark, fig3_db, fig3_query):
    members = graph_similarity_skyline(fig3_db, fig3_query).skyline

    refined = benchmark(refine_by_diversity, members, 2)

    assert tuple(g.name for g in refined.subset) == EXPECTED_DIVERSE_SUBSET
    worst = max(refined.candidates, key=lambda c: c.val)
    assert worst.names == ("g5", "g7")

    rows = []
    for candidate in refined.candidates:
        paper_ranks, paper_val = TABLE5_PAPER[candidate.names]
        rows.append([
            "{" + ",".join(candidate.names) + "}",
            str(candidate.ranks),
            candidate.val,
            str(paper_ranks),
            paper_val,
            "WINNER" if candidate is refined.best else "",
        ])
    print()
    print(render_table(
        ["subset", "ranks (meas)", "val (meas)", "ranks (paper)", "val (paper)", ""],
        rows,
        title="Table V — candidate evaluation (measured vs paper)",
    ))
    print(f"selected subset: {[g.name for g in refined.subset]} (paper: ['g1', 'g4'])")


@pytest.mark.benchmark(group="table5-refinement")
def test_table5_greedy_heuristic(benchmark, fig3_db, fig3_query):
    """Extension: the greedy max-min heuristic on the same input."""
    members = graph_similarity_skyline(fig3_db, fig3_query).skyline
    refined = benchmark(refine_by_diversity, members, 2, None, "greedy")
    assert len(refined.subset) == 2
