"""Bench A10 — serving overhead: QPS and tail latency of the query service.

The server wraps ``Session.execute`` in HTTP framing, admission control
and a deadline scope; this bench measures what that wrapper costs. A
fixed number of concurrent clients replays cached-friendly skyline and
top-k queries against an in-thread server and reports sustained QPS plus
p50/p99 latency per kind. The acceptance gate is a deliberately low QPS
floor — far under the observed rate, it only catches a serving-layer
collapse (an accidental lock serializing everything, an event-loop stall),
not machine noise. Results land in ``BENCH_server.json`` for archiving.
"""

import json
import statistics
import threading
import time
from http.client import HTTPConnection
from pathlib import Path

import pytest

from repro import GraphDatabase
from repro.api.spec import GraphQuery
from repro.bench import render_table
from repro.datasets import make_workload
from repro.server import ServerConfig, serve_in_thread

N_GRAPHS = 24
CLIENTS = 4
REQUESTS_PER_CLIENT = 25
#: QPS floor: observed is hundreds/s once the pair cache is warm; the
#: floor only trips when serving itself breaks down.
MIN_QPS = 10.0
OUTPUT = Path(__file__).resolve().parent / "BENCH_server.json"


def _request(conn: HTTPConnection, spec_payload: dict) -> float:
    start = time.perf_counter()
    conn.request("POST", "/v1/query", body=json.dumps(spec_payload))
    response = conn.getresponse()
    payload = json.loads(response.read())
    elapsed = time.perf_counter() - start
    assert response.status == 200, payload
    return elapsed


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(len(ordered) * fraction))
    return ordered[index]


@pytest.mark.benchmark(group="a10-server-throughput")
def test_server_sustained_qps_and_tail_latency():
    workload = make_workload(n_graphs=N_GRAPHS, query_size=5, seed=23)
    database = GraphDatabase.from_graphs(workload.database)
    specs = {
        "skyline": GraphQuery(graph=workload.queries[0], kind="skyline"),
        "topk": GraphQuery(
            graph=workload.queries[0], kind="topk", k=3, measure="edit"
        ),
    }
    config = ServerConfig(max_concurrency=CLIENTS, max_queue=CLIENTS * 4)
    report: dict[str, dict] = {}
    with serve_in_thread(database, config) as server:
        # one warm-up pass per kind fills the shared pair cache, so the
        # measured window benches serving overhead, not GED evaluation.
        warm = HTTPConnection("127.0.0.1", server.port, timeout=120)
        for spec in specs.values():
            _request(warm, spec.to_dict())
        warm.close()

        for kind, spec in specs.items():
            payload = spec.to_dict()
            latencies: list[list[float]] = [[] for _ in range(CLIENTS)]
            errors: list[BaseException] = []

            def client(slot: int) -> None:
                try:
                    conn = HTTPConnection(
                        "127.0.0.1", server.port, timeout=120
                    )
                    for _ in range(REQUESTS_PER_CLIENT):
                        latencies[slot].append(_request(conn, payload))
                    conn.close()
                except BaseException as exc:
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(slot,))
                for slot in range(CLIENTS)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=600)
            elapsed = time.perf_counter() - start
            assert not errors, errors

            flat = [sample for series in latencies for sample in series]
            assert len(flat) == CLIENTS * REQUESTS_PER_CLIENT
            report[kind] = {
                "requests": len(flat),
                "seconds": elapsed,
                "qps": len(flat) / elapsed,
                "p50_ms": _percentile(flat, 0.50) * 1000,
                "p99_ms": _percentile(flat, 0.99) * 1000,
                "mean_ms": statistics.fmean(flat) * 1000,
            }
        stats = server.admission.snapshot()

    rows = [
        [kind, values["requests"], round(values["qps"], 1),
         round(values["p50_ms"], 2), round(values["p99_ms"], 2)]
        for kind, values in report.items()
    ]
    print()
    print(render_table(
        ["kind", "requests", "QPS", "p50 ms", "p99 ms"],
        rows,
        title=f"A10 — serving throughput ({CLIENTS} clients)",
    ))

    OUTPUT.write_text(json.dumps({
        "database_graphs": N_GRAPHS,
        "clients": CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "kinds": report,
        "admission": stats,
    }, indent=2), encoding="utf-8")
    print(f"wrote {OUTPUT}")

    assert stats["rejected"] == 0, stats
    for kind, values in report.items():
        assert values["qps"] >= MIN_QPS, (
            f"serving collapsed on {kind}: {values['qps']:.1f} QPS "
            f"(floor {MIN_QPS})"
        )
