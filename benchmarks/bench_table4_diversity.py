"""Bench T4 — Table IV: diversity vectors of all C(4,2) skyline subsets.

Regenerates Div(S) = (v1, v2, v3) for every pair of skyline members using
(DistN-Ed, DistMcs, DistGu) and prints the paper-vs-measured comparison.
Agreement: every v2/v3 cell exact; v1 exact in the three cells realisable
together with Table III (see DESIGN.md §4 and EXPERIMENTS.md), within 0.04
elsewhere. Times the full pairwise-diversity computation (6 exact GED + 6
exact MCS instances).
"""

import pytest

from repro.bench import agreement_summary, render_table
from repro.core import graph_similarity_skyline, pairwise_distance_matrix
from repro.datasets import TABLE4_PAPER
from repro.measures import diversity_measures


@pytest.mark.benchmark(group="table4-diversity")
def test_table4_diversity_vectors(benchmark, fig3_db, fig3_query):
    members = graph_similarity_skyline(fig3_db, fig3_query).skyline
    measures = diversity_measures()

    matrix = benchmark(pairwise_distance_matrix, members, measures)

    names = [g.name for g in members]
    rows = []
    exact_v1_cells = {("g1", "g4"), ("g4", "g5"), ("g5", "g7")}
    for (a, b), paper in TABLE4_PAPER.items():
        i, j = names.index(a), names.index(b)
        measured = matrix[(i, j)]
        # v2 / v3 (DistMcs, DistGu): exact in every cell
        assert measured[1] == pytest.approx(paper[1], abs=0.011), (a, b)
        assert measured[2] == pytest.approx(paper[2], abs=0.011), (a, b)
        # v1 (DistN-Ed): exact where realisable, close elsewhere
        tolerance = 0.011 if (a, b) in exact_v1_cells else 0.04
        assert measured[0] == pytest.approx(paper[0], abs=tolerance), (a, b)
        rows.append([
            f"{{{a},{b}}}",
            f"{measured[0]:.2f}/{paper[0]:.2f}",
            f"{measured[1]:.2f}/{paper[1]:.2f}",
            f"{measured[2]:.2f}/{paper[2]:.2f}",
            "OK" if abs(measured[0] - paper[0]) <= 0.011 else "v1 off",
        ])
    print()
    print(render_table(
        ["subset", "v1 meas/paper", "v2 meas/paper", "v3 meas/paper", "verdict"],
        rows,
        title="Table IV — Div(S) per candidate subset (measured/paper)",
    ))
