"""Bench T3 — Table III + Section VI: the GCS matrix and the skyline.

Regenerates the full (DistEd, DistMcs, DistGu) matrix, the skyline
GSS(D, q) = {g1, g4, g5, g7}, the dominance pairs the paper calls out, and
the top-3-by-DistEd contrast (g3 is returned by the baseline but rejected
by the skyline). Times the end-to-end skyline query (7 exact GED + 7 exact
MCS + skyline) and the matrix-only part.
"""

import pytest

from repro.bench import render_table
from repro.core import gcs_matrix, graph_similarity_skyline, top_k_by_measure
from repro.datasets import EXPECTED_DOMINANCE, EXPECTED_GSS, TABLE3_GCS


@pytest.mark.benchmark(group="table3-gcs")
def test_table3_gcs_matrix(benchmark, fig3_db, fig3_query):
    matrix = benchmark(gcs_matrix, fig3_db, fig3_query)

    for graph, vector, expected in zip(fig3_db, matrix, TABLE3_GCS):
        assert vector.values[0] == pytest.approx(expected[0]), graph.name
        assert vector.values[1] == pytest.approx(expected[1]), graph.name
        assert vector.values[2] == pytest.approx(expected[2]), graph.name

    rows = [
        [f"({g.name}, q)", v.values[0], round(v.values[1], 2), round(v.values[2], 2)]
        for g, v in zip(fig3_db, matrix)
    ]
    print()
    print(render_table(
        ["pair", "DistEd", "DistMcs", "DistGu"], rows,
        title="Table III — GCS(gi, q)",
    ))


@pytest.mark.benchmark(group="table3-skyline")
def test_section6_skyline_query(benchmark, fig3_db, fig3_query):
    result = benchmark(graph_similarity_skyline, fig3_db, fig3_query)

    assert tuple(g.name for g in result.skyline) == EXPECTED_GSS
    names = [g.name for g in result.graphs]
    for dominated, dominator in EXPECTED_DOMINANCE:
        dominators = {names[j] for j in result.dominators_of(names.index(dominated))}
        assert dominator in dominators
    print(f"\nGSS(D, q) = {{{', '.join(g.name for g in result.skyline)}}} "
          f"(paper: {{g1, g4, g5, g7}})")


@pytest.mark.benchmark(group="table3-skyline")
def test_section6_topk_contrast(benchmark, fig3_db, fig3_query):
    """k = 3 under DistEd alone returns g3; the skyline rejects it."""
    ranked = benchmark(top_k_by_measure, fig3_db, fig3_query, "edit", 3)

    topk_names = {fig3_db[i].name for i in ranked.indices}
    assert "g3" in topk_names
    assert "g3" not in EXPECTED_GSS
    print(f"\ntop-3 by DistEd = {sorted(topk_names)}; "
          f"g3 in top-3 but not in GSS — the paper's Section VI point")
