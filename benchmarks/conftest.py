"""Shared fixtures for the reproduction benchmarks."""

from __future__ import annotations

import pytest

from repro.datasets import figure1_pair, figure3_database, figure3_query


@pytest.fixture(scope="session")
def fig1():
    return figure1_pair()


@pytest.fixture(scope="session")
def fig3_db():
    return figure3_database()


@pytest.fixture(scope="session")
def fig3_query():
    return figure3_query()
