"""Bench E1 — the experiments the paper announces: scaling database size.

"We plan to conduct some experiments on real-life data to demonstrate the
effectiveness and efficiency of the approach" (Section VIII). This bench
runs the full skyline query over molecule-like synthetic databases of
growing size and reports runtime plus skyline size. Expected shape:
runtime grows roughly linearly in n (one exact GED + MCS per graph
dominates; the skyline step is negligible), and the skyline stays a small
fraction of the database.
"""

import pytest

from repro.bench import render_table
from repro.core import graph_similarity_skyline
from repro.datasets import make_workload

SIZES = (10, 20, 40, 80)


@pytest.mark.benchmark(group="e1-dbsize")
@pytest.mark.parametrize("n", SIZES)
def test_skyline_query_scaling_with_database_size(benchmark, n):
    workload = make_workload(n_graphs=n, query_size=7, seed=42)
    query = workload.queries[0]

    result = benchmark.pedantic(
        graph_similarity_skyline,
        args=(workload.database, query),
        rounds=1,
        iterations=1,
    )

    assert 1 <= len(result.skyline) <= n
    print()
    print(render_table(
        ["n", "skyline size", "skyline fraction"],
        [[n, len(result.skyline), round(len(result.skyline) / n, 3)]],
        title="E1 — skyline size vs database size",
    ))
