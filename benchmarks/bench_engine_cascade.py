"""Bench A7 — staged engine: cascade ablation and PairCache warm/cold.

Runs one skyline workload through engine plans that differ in exactly one
stage at a time:

* ``memory``          — empty cascade, serial evaluator (reference);
* ``indexed``         — + feature-bound Pareto pruning;
* ``cache-cold``      — pruning + an empty shared :class:`PairCache`;
* ``cache-warm``      — the same plan again, pairs already cached;
* ``refined-warm``    — a *refined* query (same graph, measure subset)
                        over the warm cache: cross-query/measure re-use;
* ``parallel``        — pooled evaluator, no cascade.

All variants must return the identical answer set. The warm run must do
zero exact evaluations and beat the cold run's wall-clock — the
acceptance criterion of the staged-engine refactor. Results are printed
as a table and written to ``BENCH_engine.json`` next to this file, so CI
can archive the numbers.
"""

import json
import time
from pathlib import Path

import pytest

import repro
from repro import GraphDatabase, PairCache, Query
from repro.bench import render_table
from repro.datasets import make_workload

N_GRAPHS = 32
OUTPUT = Path(__file__).resolve().parent / "BENCH_engine.json"


@pytest.fixture(scope="module")
def workload_db():
    workload = make_workload(n_graphs=N_GRAPHS, query_size=7, seed=42)
    return GraphDatabase.from_graphs(workload.database), workload.queries[0]


def _run(database, spec, backend, **options):
    with repro.connect(database, backend=backend, **options) as session:
        start = time.perf_counter()
        result = session.execute(spec)
        elapsed = time.perf_counter() - start
    return result, elapsed


@pytest.mark.benchmark(group="a7-engine-cascade")
def test_cascade_ablation_and_cache_warmup(workload_db):
    database, query = workload_db
    skyline = Query(query).skyline()
    cache = PairCache()

    runs = {}
    runs["memory"] = _run(database, skyline, "memory")
    runs["indexed"] = _run(database, skyline, "indexed")
    runs["cache-cold"] = _run(database, skyline, "indexed", cache=cache)
    runs["cache-warm"] = _run(database, skyline, "indexed", cache=cache)
    refined = Query(query).measures("edit", "mcs").skyline()
    runs["refined-warm"] = _run(database, refined, "indexed", cache=cache)
    runs["parallel"] = _run(database, skyline, "parallel")

    rows = []
    payload = {"workload": {"n_graphs": N_GRAPHS, "seed": 42}, "variants": {}}
    for variant, (result, elapsed) in runs.items():
        stats = result.stats
        rows.append([
            variant,
            round(elapsed * 1000, 1),
            stats.exact_evaluations,
            stats.pruned_by_index,
            stats.served_from_cache,
            len(result.ids),
        ])
        payload["variants"][variant] = {
            "seconds": elapsed,
            "exact_evaluations": stats.exact_evaluations,
            "pruned_by_index": stats.pruned_by_index,
            "served_from_cache": stats.served_from_cache,
            "answer_size": len(result.ids),
            "answer": result.names,
        }
    print()
    print(render_table(
        ["variant", "ms", "exact evals", "pruned", "cached", "answer"],
        rows,
        title=f"A7 — cascade ablation + cache warm/cold (n={N_GRAPHS})",
    ))
    OUTPUT.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    print(f"wrote {OUTPUT}")

    # Identical answers across every plan variant (refined queries aside).
    reference = runs["memory"][0].names
    for variant in ("indexed", "cache-cold", "cache-warm", "parallel"):
        assert runs[variant][0].names == reference, variant

    # Each stage must save the work it claims to save.
    assert (
        runs["indexed"][0].stats.exact_evaluations
        <= runs["memory"][0].stats.exact_evaluations
    )
    warm_result, warm_elapsed = runs["cache-warm"]
    cold_result, cold_elapsed = runs["cache-cold"]
    assert warm_result.stats.exact_evaluations == 0
    assert warm_elapsed < cold_elapsed, (
        f"warm cache {warm_elapsed:.4f}s not faster than cold {cold_elapsed:.4f}s"
    )
    # The refined query re-uses every pair the full query solved: the only
    # pairs it may still solve are candidates the cold run pruned before
    # caching (a differently-shaped cascade can let them through).
    refined_stats = runs["refined-warm"][0].stats
    assert refined_stats.served_from_cache > 0
    assert (
        refined_stats.exact_evaluations
        <= runs["cache-cold"][0].stats.pruned_by_index
    )
