"""Bench T2 — Table II: |mcs(gi, q)| for the Fig. 3 database.

Regenerates the full column (4, 4, 4, 3, 5, 5, 6) with the exact MCS
solver and times the column computation (7 MCS instances).
"""

import pytest

from repro.bench import render_table
from repro.datasets import TABLE2_MCS
from repro.graph import mcs_size


@pytest.mark.benchmark(group="table2-mcs")
def test_table2_mcs_column(benchmark, fig3_db, fig3_query):
    column = benchmark(
        lambda: tuple(mcs_size(g, fig3_query) for g in fig3_db)
    )

    assert column == TABLE2_MCS

    rows = [
        [f"({g.name}, q)", measured, expected, "OK"]
        for g, measured, expected in zip(fig3_db, column, TABLE2_MCS)
    ]
    print()
    print(render_table(
        ["pair", "measured |mcs|", "paper", "verdict"],
        rows,
        title="Table II — |mcs(gi, q)|",
    ))
