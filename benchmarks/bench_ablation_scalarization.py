"""Bench A5 — ablation: Pareto skyline vs weighted-sum scalarization.

The classical alternative to the paper's approach collapses the GCS into
one weighted score. This bench quantifies what scalarization loses: for a
grid of weight vectors, which skyline members a weighted-sum top-1 can
ever surface. Expected shape: every scalarization winner is a skyline
member (the textbook inclusion — asserted), but non-convex Pareto optima
are unreachable for *any* weights, so the union of winners over the whole
weight grid typically covers only part of the skyline. Timings compare a
full skyline query against a single scalarized ranking.
"""

import itertools

import pytest

from repro.bench import render_table
from repro.core import graph_similarity_skyline, top_k_by_measure
from repro.datasets import make_workload
from repro.measures import WeightedSumMeasure

MEASURES = ("edit", "mcs", "union")


@pytest.fixture(scope="module")
def workload():
    return make_workload(n_graphs=25, query_size=7, seed=55)


@pytest.mark.benchmark(group="a5-scalarization")
def test_skyline_query(benchmark, workload):
    query = workload.queries[0]
    result = benchmark.pedantic(
        graph_similarity_skyline,
        args=(workload.database, query),
        kwargs={"measures": MEASURES},
        rounds=1,
        iterations=1,
    )
    assert len(result.skyline) >= 1


@pytest.mark.benchmark(group="a5-scalarization")
def test_weighted_sum_ranking(benchmark, workload):
    query = workload.queries[0]
    aggregated = WeightedSumMeasure(MEASURES, (1.0, 1.0, 1.0))
    result = benchmark.pedantic(
        top_k_by_measure,
        args=(workload.database, query, aggregated, 3),
        rounds=1,
        iterations=1,
    )
    assert len(result.indices) == 3


def test_scalarization_coverage_of_skyline(workload):
    """Sweep a weight grid; report which skyline members scalarization can
    surface at all. Winners must always be skyline members."""
    query = workload.queries[0]
    skyline = graph_similarity_skyline(workload.database, query, measures=MEASURES)
    skyline_names = {g.name for g in skyline.skyline}
    reachable: set[str] = set()
    grid = [0.2, 1.0, 5.0]
    for weights in itertools.product(grid, repeat=3):
        aggregated = WeightedSumMeasure(MEASURES, weights)
        winner_index = top_k_by_measure(
            workload.database, query, aggregated, 1
        ).indices[0]
        winner = workload.database[winner_index]
        winner_vector = skyline.vectors[winner_index].values
        # inclusion theorem: the winner's vector equals a skyline vector
        assert any(
            skyline.vectors[i].values == winner_vector
            for i in skyline.skyline_indices
        ), weights
        if winner.name in skyline_names:
            reachable.add(winner.name)
    coverage = len(reachable) / len(skyline_names)
    print()
    print(render_table(
        ["skyline size", "reachable by weighted sums", "coverage"],
        [[len(skyline_names), len(reachable), f"{coverage:.0%}"]],
        title="A5 — what linear scalarization can surface",
    ))
    assert 0.0 < coverage <= 1.0
