"""Bench A10 — the persistent worker pool at the 10k-graph tier.

The economics this PR had to fix (see ``ISSUE`` 7 / ROADMAP): the old
per-query ``ProcessPoolExecutor`` path re-shipped the database on every
query and forfeited cross-shard pruning — parallel shards evaluated ~7×
more pairs than serial and lost wall-clock by seconds. This bench runs a
10k-graph workload through serial sharded execution and the
persistent-pool parallel path (skyline and top-k), separating the
**cold** first query (workers fork, database parks in shared memory)
from the **steady state** every later query of every session enjoys.

Gates, in order of what can actually regress:

* **Answers identical** across every variant — always.
* **Pruning recovered**: parallel exact-evaluation counts within 2× of
  serial (the shared frontier at work; the old path was ~7×) — always.
* **Wall-clock**: the host's usable parallelism is *measured* (a fixed
  CPU-bound probe run 1-way then 2-way). Where hardware concurrency is
  real (probe speedup ≥ 1.5×, e.g. CI runners) steady-state parallel
  must beat serial outright. On a single effective core no parallel
  scheme can win wall-clock, so the gate degrades to a bounded-overhead
  cap — steady-state parallel within 1.5× of serial — which still fails
  the old spawn-per-query economics by a wide margin. The probe result
  is recorded in ``BENCH_parallel.json`` so the archived numbers say
  which gate applied.
"""

import json
import multiprocessing
import time
from pathlib import Path

import pytest

import repro
from repro import Query
from repro.bench import render_table
from repro.datasets import make_workload
from repro.engine.workers import shutdown_pool
from repro.shard import ShardedGraphDatabase

N_GRAPHS = 10_000
K = 10
SHARDS = 4
WORKERS = 2
REPEATS = 3
#: Probe speedup above which the host is treated as genuinely parallel.
PARALLEL_HOST_SPEEDUP = 1.5
#: Steady-state overhead cap on a serialized host (old path: ~5-10×).
OVERHEAD_CAP = 1.5
OUTPUT = Path(__file__).resolve().parent / "BENCH_parallel.json"


def _spin(n: int) -> int:
    total = 0
    for i in range(n):
        total += i * i
    return total


def _probe_parallelism() -> float:
    """Measured speedup of running two fixed CPU-bound halves in two
    processes versus serially in one — ~2.0 on a real dual core, ~1.0
    on a single effective core (containers with cpu quotas, CI noise)."""
    work = 2_000_000
    start = time.perf_counter()
    _spin(work)
    _spin(work)
    serial = time.perf_counter() - start
    processes = [
        multiprocessing.Process(target=_spin, args=(work,)) for _ in range(2)
    ]
    start = time.perf_counter()
    for process in processes:
        process.start()
    for process in processes:
        process.join()
    concurrent = time.perf_counter() - start
    return serial / concurrent if concurrent > 0 else 1.0


@pytest.fixture(scope="module")
def workload_store():
    workload = make_workload(n_graphs=N_GRAPHS, query_size=6, seed=41)
    store = ShardedGraphDatabase.from_graphs(workload.database, shards=SHARDS)
    return store, workload.queries[0]


@pytest.mark.benchmark(group="a10-parallel-pool")
def test_persistent_pool_parallel_wins_at_10k(workload_store):
    store, query = workload_store
    specs = {
        "skyline": Query(query).skyline(),
        "topk": Query(query).topk(K, "edit"),
    }
    probe_speedup = _probe_parallelism()
    parallel_host = probe_speedup >= PARALLEL_HOST_SPEEDUP

    shutdown_pool()  # measure the cold fork/park honestly
    rows = []
    runs = {}
    payload = {
        "workload": {"n_graphs": N_GRAPHS, "shards": SHARDS, "seed": 41, "k": K},
        "repeats": REPEATS,
        "workers": WORKERS,
        "probe_speedup": round(probe_speedup, 3),
        "parallel_host": parallel_host,
        "wall_clock_gate": "parallel < serial"
        if parallel_host
        else f"parallel <= {OVERHEAD_CAP}x serial (single effective core)",
        "variants": {},
    }
    for kind, spec in specs.items():
        with repro.connect(store, backend="sharded") as session:
            best = None
            for _ in range(REPEATS):
                start = time.perf_counter()
                result = session.execute(spec)
                elapsed = time.perf_counter() - start
                if best is None or elapsed < best[1]:
                    best = (result, elapsed)
            runs[(kind, "serial")] = best + (None,)
        with repro.connect(
            store, backend="sharded", parallel=True, max_workers=WORKERS
        ) as session:
            start = time.perf_counter()
            cold_result = session.execute(spec)
            cold = time.perf_counter() - start
            best = None
            for _ in range(REPEATS):
                start = time.perf_counter()
                result = session.execute(spec)
                elapsed = time.perf_counter() - start
                if best is None or elapsed < best[1]:
                    best = (result, elapsed)
            assert cold_result.ids == best[0].ids
            runs[(kind, "parallel")] = best + (cold,)

    for (kind, variant), (result, elapsed, cold) in runs.items():
        stats = result.stats
        pool = stats.pool or {}
        rows.append([
            kind,
            variant,
            round(elapsed * 1000, 1),
            round(cold * 1000, 1) if cold is not None else "-",
            stats.exact_evaluations,
            pool.get("frontier_pruned", "-"),
            len(result.ids),
        ])
        payload["variants"][f"{kind}/{variant}"] = {
            "seconds": elapsed,
            "cold_seconds": cold,
            "exact_evaluations": stats.exact_evaluations,
            "answer_size": len(result.ids),
            "pool": pool or None,
        }
    print()
    print(render_table(
        ["kind", "variant", "ms", "cold ms", "exact evals", "frontier", "answer"],
        rows,
        title=(
            f"A10 — persistent pool at n={N_GRAPHS} "
            f"(best of {REPEATS}, probe speedup {probe_speedup:.2f}x)"
        ),
    ))
    OUTPUT.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    print(f"wrote {OUTPUT}")

    for kind in specs:
        serial_result, serial_time, _ = runs[(kind, "serial")]
        parallel_result, parallel_time, _ = runs[(kind, "parallel")]
        # Identical answers.
        assert parallel_result.ids == serial_result.ids, kind
        # Cross-shard pruning recovered: within 2× of serial (was ~7×).
        assert (
            parallel_result.stats.exact_evaluations
            <= 2 * serial_result.stats.exact_evaluations
        ), (
            kind,
            parallel_result.stats.exact_evaluations,
            serial_result.stats.exact_evaluations,
        )
        # Wall-clock, against what the hardware can actually deliver.
        cap = serial_time if parallel_host else OVERHEAD_CAP * serial_time
        assert parallel_time <= cap, (
            f"{kind}: steady-state parallel {parallel_time * 1000:.1f}ms vs "
            f"serial {serial_time * 1000:.1f}ms "
            f"(probe speedup {probe_speedup:.2f}x, cap {cap * 1000:.1f}ms)"
        )
