"""Bench A3 — ablation: exhaustive rank-sum vs greedy max-min diversity.

The paper's exhaustive method evaluates all C(n, k) subsets; the greedy
farthest-point heuristic evaluates O(n k) pairs. This bench grows the
skyline it refines and shows the blow-up. Expected shape: identical or
near-identical subset quality at small n, with exhaustive cost exploding
combinatorially while greedy stays flat.
"""

import pytest

from repro.bench import render_table
from repro.core import refine_by_diversity, subset_diversity, pairwise_distance_matrix
from repro.datasets import molecule_like_graph
from repro.measures import diversity_measures

SKYLINE_SIZES = (5, 7, 9)


def fake_skyline(n: int):
    return [molecule_like_graph(6, seed=100 + i, name=f"s{i}") for i in range(n)]


@pytest.mark.benchmark(group="a3-diversity")
@pytest.mark.parametrize("n", SKYLINE_SIZES)
def test_exhaustive_refinement(benchmark, n):
    graphs = fake_skyline(n)
    result = benchmark.pedantic(
        refine_by_diversity, args=(graphs, 3), kwargs={"method": "exhaustive"},
        rounds=1, iterations=1,
    )
    assert len(result.subset) == 3


@pytest.mark.benchmark(group="a3-diversity")
@pytest.mark.parametrize("n", SKYLINE_SIZES)
def test_greedy_refinement(benchmark, n):
    graphs = fake_skyline(n)
    result = benchmark.pedantic(
        refine_by_diversity, args=(graphs, 3), kwargs={"method": "greedy"},
        rounds=1, iterations=1,
    )
    assert len(result.subset) == 3


def test_greedy_quality_close_to_exhaustive():
    """Greedy's min-pairwise-diversity must reach a large fraction of the
    exhaustive optimum on each dimension-aggregate."""
    graphs = fake_skyline(7)
    measures = diversity_measures()
    matrix = pairwise_distance_matrix(graphs, measures)
    exhaustive = refine_by_diversity(graphs, 3, method="exhaustive")
    greedy = refine_by_diversity(graphs, 3, method="greedy")

    def mean_diversity(indices):
        div = subset_diversity(tuple(indices), matrix, len(measures))
        return sum(div) / len(div)

    best = mean_diversity(exhaustive.best.indices)
    approx = mean_diversity(greedy.best.indices)
    assert approx >= 0.7 * best
    print()
    print(render_table(
        ["method", "mean min-pairwise diversity"],
        [["exhaustive", round(best, 3)], ["greedy", round(approx, 3)]],
        title="A3 — subset quality",
    ))
