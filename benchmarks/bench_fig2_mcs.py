"""Bench F2 — Fig. 2 / Examples 3-4: the mcs of the Fig. 1 pair.

Regenerates |mcs(g1, g2)| = 4 and the derived distances
DistMcs = 0.33 (Example 3) and DistGu = 0.50 (Example 4); times the MCS
solver on the pair.
"""

import pytest

from repro.graph import maximum_common_subgraph
from repro.measures import GraphUnionDistance, McsDistance, PairContext


@pytest.mark.benchmark(group="fig2-mcs")
def test_fig2_mcs_size(benchmark, fig1):
    g1, g2 = fig1

    result = benchmark(maximum_common_subgraph, g1, g2)

    assert result.size == 4
    sub = result.subgraph(g1)
    assert sub.is_connected()
    print(f"\nFig.2: |mcs| = {result.size}, vertices = {sorted(map(str, sub.vertices()))}")


@pytest.mark.benchmark(group="fig2-mcs")
def test_examples_3_and_4_distances(benchmark, fig1):
    g1, g2 = fig1

    def both():
        context = PairContext(g1, g2)
        return (
            McsDistance().distance(g1, g2, context),
            GraphUnionDistance().distance(g1, g2, context),
        )

    dist_mcs, dist_gu = benchmark(both)
    assert dist_mcs == pytest.approx(0.33, abs=0.005)
    assert dist_gu == pytest.approx(0.50, abs=0.005)
    print(f"\nDistMcs = {dist_mcs:.2f} (paper 0.33), DistGu = {dist_gu:.2f} (paper 0.50)")
