"""Cooperative per-query deadlines for the staged engine.

A :class:`Deadline` is a monotonic-clock expiry the engine checks
*cooperatively*: :func:`repro.engine.core.run_plan` tests it once per
candidate (and the pooled evaluator between chunk results), raising
:class:`~repro.errors.DeadlineExceeded` the moment it has passed. Nothing
is interrupted mid-pair — the granularity is one exact evaluation — but
that is exactly the granularity a server needs: an expired query stops
burning CPU at the next candidate and frees its admission slot.

The deadline travels through a :class:`contextvars.ContextVar` rather
than through every backend signature: callers wrap execution in
:func:`deadline_scope` and every :class:`~repro.engine.core.RunContext`
created inside the scope — including the per-shard contexts of the
scatter-gather backend — picks it up via :func:`current_deadline`. The
contextvar is thread-local by construction, so concurrent server
requests running on an executor thread pool each see only their own
deadline.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from collections.abc import Iterator

from repro.errors import DeadlineExceeded


class Deadline:
    """An absolute expiry on the monotonic clock.

    Build one with :meth:`after` (relative seconds); ``check()`` raises
    :class:`~repro.errors.DeadlineExceeded` once the clock passes it.
    """

    __slots__ = ("expires_at", "budget")

    def __init__(self, expires_at: float, budget: float | None = None) -> None:
        self.expires_at = expires_at
        #: The original relative budget in seconds (for error messages).
        self.budget = budget

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now (must be positive)."""
        if seconds <= 0:
            raise ValueError("deadline budget must be positive")
        return cls(time.monotonic() + seconds, budget=seconds)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self) -> None:
        """Raise :class:`~repro.errors.DeadlineExceeded` when expired."""
        if self.expired():
            budget = (
                f" (budget {self.budget * 1000:.0f}ms)"
                if self.budget is not None
                else ""
            )
            raise DeadlineExceeded(
                f"query deadline exceeded{budget}; evaluation cancelled"
            )

    def __repr__(self) -> str:
        return f"<Deadline remaining={self.remaining() * 1000:.1f}ms>"


_CURRENT: ContextVar[Deadline | None] = ContextVar(
    "repro_engine_deadline", default=None
)


def current_deadline() -> Deadline | None:
    """The ambient deadline of this context (``None`` = unbounded)."""
    return _CURRENT.get()


@contextmanager
def deadline_scope(deadline: Deadline | None) -> Iterator[Deadline | None]:
    """Make ``deadline`` ambient for every engine run inside the block.

    ``None`` explicitly clears an inherited deadline, so nested scopes
    can opt sub-work out. Scopes restore the previous value on exit even
    when the block raises.
    """
    token = _CURRENT.set(deadline)
    try:
        yield deadline
    finally:
        _CURRENT.reset(token)
