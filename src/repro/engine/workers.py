"""Persistent shared-memory worker pool: long-lived processes, shipped bounds.

The per-query ``ProcessPoolExecutor`` this module replaces paid two taxes
that swamped the actual work (see ``BENCH_sharded.json`` before this
module existed): every query re-shipped its database payload across the
process boundary, and deferred evaluation blinded the bound stages — a
pooled run evaluated ~7× more pairs than the serial scan it was supposed
to beat. Three mechanisms fix the economics:

**Persistent workers** (:class:`WorkerPool`). Workers are plain
``multiprocessing`` processes started once per pool size and reused by
every query of every session; a task is a dict on a queue, not a fresh
executor + pickled closure. A worker that dies mid-query (OOM killer,
signal) is detected by the result loop, the pool rebuilds itself and
resubmits only the unfinished tasks — unlike ``ProcessPoolExecutor``,
which turns one lost worker into a permanently broken pool.

**Shared-memory attachments with row-level deltas**
(:class:`DatabaseAttachment`). A database crosses the process boundary
as a *base blob* (pickled ``{graph_id: graph}`` parked in a
``multiprocessing.shared_memory`` segment, a temp file when shared
memory is unavailable) plus a chain of *delta blobs* — ``(added graphs,
removed ids)`` diffs keyed by ``database.version``. Graph ids are never
reused and stored graphs never mutate in place (a relabel is
remove + re-insert under a fresh id), so the id-set diff is exactly the
set of stale entries; a mutation between queries ships kilobytes, not
the database. Workers cache materialized payloads per attachment token
and replay only the deltas they have not seen. The shard
``SignatureMatrix`` additionally crosses as raw array bytes that workers
map back into zero-copy NumPy views (:mod:`repro.index.shm`), so bound
vectors need not be shipped per candidate at all.

**A shared best-so-far frontier** (:class:`FrontierBuffer` /
:class:`BoundSharing`). Deferred evaluation loses mid-scan pruning: the
bound stages observe nothing until the drain. The frontier is a small
shared-memory board of *exact* vectors — one single-writer region per
worker; a writer publishes a row and then bumps its region's count, so
readers never see a torn row (plain store ordering, no locks). Workers
check each candidate's optimistic bound against the board before solving
it and publish every vector they solve; the parent filters not-yet-shipped
candidates between waves. Published vectors are exact vectors of real
database graphs and bounds are componentwise ≤ the exact vectors, so a
candidate whose bound already has ``prune_limit`` published dominators
(or ``k`` published better scalars, for top-k) provably cannot enter the
answer — the same soundness argument as the in-process bound stages.
Rows carry the graph id and readers deduplicate by it, so a resubmitted
task double-publishing after a worker respawn can never inflate the
dominator count (which would be unsound for skyband/top-k).

Degradation is graceful and layered: no shared memory → blobs fall back
to temp files and the frontier is simply absent (parent-side wave
filtering still recovers most pruning); blobs unwritable → tasks ship
graphs inline; ``multiprocessing`` unusable → the evaluator solves
in-process, still frontier-filtered. Every owned segment is tracked and
released by :func:`shutdown_pool` (also registered ``atexit``), and
:func:`live_segments` exposes the live set so tests can assert nothing
leaks.
"""

from __future__ import annotations

import atexit
import os
import pickle
import queue as queue_module
import struct
import tempfile
import time
import uuid
import weakref
from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.errors import ReproError
from repro.skyline.utils import dominates
from repro.engine.evaluate import Evaluator, pair_values

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.core import RunContext
    from repro.engine.plan import Candidate


class WorkerPoolError(ReproError):
    """The worker pool could not run a task (start failure, worker error,
    or more consecutive worker deaths than the rebuild budget allows)."""


# ----------------------------------------------------------------------
# Shared-memory plumbing
# ----------------------------------------------------------------------
#: Segment names are prefixed so leak checks (and humans inspecting
#: /dev/shm) can attribute them; the suffix is random to avoid collisions.
SEGMENT_PREFIX = "repro_"

#: Set to True (tests) to force the no-shared-memory degradation path.
_SHM_DISABLED = False
_SHM_PROBE: bool | None = None

#: Every segment/file owner created by this process, for ``atexit``
#: cleanup and the :func:`live_segments` leak check.
_LIVE_OWNERS: "set[object]" = set()


def _segment_name() -> str:
    return SEGMENT_PREFIX + uuid.uuid4().hex[:16]


def shared_memory_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` works here (probed once)."""
    global _SHM_PROBE
    if _SHM_DISABLED:
        return False
    if _SHM_PROBE is None:
        try:
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(
                create=True, size=8, name=_segment_name()
            )
            segment.close()
            segment.unlink()
            _SHM_PROBE = True
        except Exception:
            _SHM_PROBE = False
    return _SHM_PROBE


def attach_segment(name: str):
    """Attach an existing segment without resource-tracker ownership.

    The attaching side must not register the segment with its
    ``resource_tracker`` — the creating process owns the lifetime, and a
    tracked attach makes the first worker to exit unlink segments other
    workers (and the parent) still use (CPython gh-82300). ``track=False``
    exists from 3.13; older interpreters need registration suppressed
    during the attach (suppressed, not unregistered after: under fork the
    workers share the parent's tracker process, so an unregister from a
    worker would evict the *parent's* legitimate registration and make
    the parent's eventual unlink warn).
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _register(path, rtype):
            if rtype != "shared_memory":
                original(path, rtype)

        resource_tracker.register = _register
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def live_segments() -> list[str]:
    """Names of the shared-memory segments this process currently owns
    (blobs, frontiers, matrix exports) — the leak-check surface."""
    names: list[str] = []
    for owner in _LIVE_OWNERS:
        names.extend(owner.segment_names())
    return sorted(names)


class _Blob:
    """One immutable byte payload parked for workers to read.

    Preferred transport is a shared-memory segment (attach is a page-table
    mapping, not a copy); a temp file when shared memory is unavailable or
    full. ``ref()`` is the picklable handle tasks carry; ``release()`` is
    idempotent.
    """

    __slots__ = ("kind", "name", "size", "_segment")

    def __init__(self, kind: str, name: str, size: int) -> None:
        self.kind = kind  # "shm" | "file"
        self.name = name
        self.size = size
        self._segment = None

    @classmethod
    def create(cls, data: bytes) -> "_Blob":
        if shared_memory_available():
            try:
                from multiprocessing import shared_memory

                segment = shared_memory.SharedMemory(
                    create=True, size=max(1, len(data)), name=_segment_name()
                )
                segment.buf[: len(data)] = data
                blob = cls("shm", segment.name, len(data))
                blob._segment = segment
                _LIVE_OWNERS.add(blob)
                return blob
            except Exception:
                pass
        handle, path = tempfile.mkstemp(prefix="repro-pool-", suffix=".blob")
        with os.fdopen(handle, "wb") as stream:
            stream.write(data)
        blob = cls("file", path, len(data))
        _LIVE_OWNERS.add(blob)
        return blob

    def ref(self) -> tuple[str, str, int]:
        return (self.kind, self.name, self.size)

    def segment_names(self) -> list[str]:
        return [self.name] if self.kind == "shm" and self._segment else []

    def release(self) -> None:
        _LIVE_OWNERS.discard(self)
        if self.kind == "shm":
            segment, self._segment = self._segment, None
            if segment is not None:
                try:
                    segment.close()
                    segment.unlink()
                except Exception:
                    pass
        else:
            try:
                os.remove(self.name)
            except OSError:
                pass


def read_blob(ref: tuple[str, str, int]) -> bytes:
    """Worker side: the bytes behind a :meth:`_Blob.ref` handle."""
    kind, name, size = ref
    if kind == "shm":
        segment = attach_segment(name)
        try:
            return bytes(segment.buf[:size])
        finally:
            segment.close()
    with open(name, "rb") as handle:
        return handle.read()


# ----------------------------------------------------------------------
# Database attachments (base + delta chain)
# ----------------------------------------------------------------------
#: Deltas accumulated before the chain is rebased into a fresh base blob
#: (cold workers replay the whole chain, so it must stay short).
_REBASE_CHAIN_LIMIT = 8


class DatabaseAttachment:
    """One database parked across the process boundary, kept current by
    version-keyed deltas instead of full payload rollover.

    The id-set diff is sound as an invalidation unit because graph ids
    are never reused and stored graphs never mutate in place — every
    mutation is an insert or a remove of a whole entry (a relabel is
    remove + re-insert under a fresh id), and ``database.version`` bumps
    on each. A worker holding any version present in the shipped chain
    replays only the later deltas; anything older (or a rebased-away
    version) rebuilds from the base blob.
    """

    def __init__(self, database) -> None:
        self.token = uuid.uuid4().hex
        self.broken = False
        self._database_ref = weakref.ref(database)
        self._version: int | None = None
        self._ids: frozenset[int] = frozenset()
        self._base: tuple[int, _Blob] | None = None
        self._deltas: list[tuple[int, _Blob]] = []

    def database_ref(self):
        return self._database_ref()

    def refresh(self, database) -> str:
        """Sync blobs with the database; ``"warm"``/``"delta"``/``"cold"``."""
        if (
            self._base is not None
            and self._database_ref() is database
            and self._version == database.version
        ):
            return "warm"
        live = frozenset(database.ids())
        cold = (
            self._base is None
            or self._database_ref() is not database
            or len(self._deltas) >= _REBASE_CHAIN_LIMIT
        )
        if cold:
            data = pickle.dumps(
                {graph_id: database.get(graph_id) for graph_id in sorted(live)},
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            blob = _Blob.create(data)
            self._drop_blobs()
            self._base = (database.version, blob)
        else:
            added = {
                graph_id: database.get(graph_id)
                for graph_id in sorted(live - self._ids)
            }
            removed = sorted(self._ids - live)
            data = pickle.dumps(
                (added, removed), protocol=pickle.HIGHEST_PROTOCOL
            )
            self._deltas.append((database.version, _Blob.create(data)))
        self._database_ref = weakref.ref(database)
        self._version = database.version
        self._ids = live
        return "cold" if cold else "delta"

    @property
    def version(self) -> int | None:
        return self._version

    @property
    def delta_count(self) -> int:
        return len(self._deltas)

    def chain(self) -> list[tuple[str, int, tuple[str, str, int]]]:
        """The picklable blob chain tasks carry: base first, deltas in
        version order."""
        base_version, base_blob = self._base
        links = [("base", base_version, base_blob.ref())]
        links.extend(
            ("delta", version, blob.ref()) for version, blob in self._deltas
        )
        return links

    def spec(self) -> dict:
        """The per-task attachment descriptor."""
        return {
            "token": self.token,
            "version": self._version,
            "chain": self.chain(),
        }

    def _drop_blobs(self) -> None:
        if self._base is not None:
            self._base[1].release()
            self._base = None
        for _, blob in self._deltas:
            blob.release()
        self._deltas = []

    def release(self) -> None:
        self._drop_blobs()
        self._version = None
        self._ids = frozenset()


# ----------------------------------------------------------------------
# The shared best-so-far frontier
# ----------------------------------------------------------------------
_FRONTIER_HEADER = struct.Struct("<3q")  # regions, capacity, dims
_COUNT = struct.Struct("<q")

#: Exact-vector rows one region can hold; pruning needs only the first
#: few strong vectors, so a small fixed board suffices (overflow just
#: stops publishing — never unsound).
_FRONTIER_CAPACITY = 1024


class FrontierBuffer:
    """A lock-free-ish shared board of exact ``(graph_id, vector)`` rows.

    Layout: a 3-int64 header (regions, capacity, dims), then per region
    one int64 row count followed by ``capacity`` rows of ``1 + dims``
    float64 (graph id, vector). Each region has a **single writer** (the
    parent owns region 0, worker slot ``i`` owns region ``i + 1``), which
    makes the protocol safe without locks: a writer fills the row and
    *then* increments its count, so a reader that observes count ``n``
    sees ``n`` fully-written rows. Readers keep per-region cursors
    (counts only grow, rows never change) and deduplicate by graph id —
    required because a task resubmitted after a worker death may publish
    a vector twice, and double counting would be unsound for
    skyband/top-k limits.
    """

    def __init__(self, segment, regions, capacity, dims, owner) -> None:
        self._segment = segment
        self.regions = regions
        self.capacity = capacity
        self.dims = dims
        self.owner = owner
        self._row = struct.Struct(f"<{1 + dims}d")
        self._cursors = [0] * regions
        self._seen: dict[int, tuple[float, ...]] = {}
        # Writers resume after rows already on the board (a respawned
        # worker re-attaches to a region with published rows; overwriting
        # them could tear a row under a concurrent reader).
        self._written = [
            _COUNT.unpack_from(segment.buf, self._region_offset(r))[0]
            for r in range(regions)
        ]

    @classmethod
    def create(cls, regions: int, dims: int, capacity: int = _FRONTIER_CAPACITY):
        from multiprocessing import shared_memory

        row_bytes = (1 + dims) * 8
        size = _FRONTIER_HEADER.size + regions * (8 + capacity * row_bytes)
        segment = shared_memory.SharedMemory(
            create=True, size=size, name=_segment_name()
        )
        segment.buf[:size] = b"\x00" * size
        _FRONTIER_HEADER.pack_into(segment.buf, 0, regions, capacity, dims)
        buffer = cls(segment, regions, capacity, dims, owner=True)
        _LIVE_OWNERS.add(buffer)
        return buffer

    @classmethod
    def attach(cls, name: str) -> "FrontierBuffer":
        segment = attach_segment(name)
        regions, capacity, dims = _FRONTIER_HEADER.unpack_from(segment.buf, 0)
        return cls(segment, regions, capacity, dims, owner=False)

    @property
    def name(self) -> str:
        return self._segment.name

    def _region_offset(self, region: int) -> int:
        stride = 8 + self.capacity * (1 + self.dims) * 8
        return _FRONTIER_HEADER.size + region * stride

    def publish(self, region: int, graph_id: int, values) -> bool:
        """Append one exact row to ``region`` (single writer per region)."""
        count = self._written[region]
        if count >= self.capacity:
            return False
        offset = self._region_offset(region)
        row_offset = offset + 8 + count * self._row.size
        self._row.pack_into(
            self._segment.buf, row_offset, float(graph_id), *values
        )
        _COUNT.pack_into(self._segment.buf, offset, count + 1)
        self._written[region] = count + 1
        return True

    def poll(self) -> dict[int, tuple[float, ...]]:
        """Absorb newly published rows; the full id-deduplicated map."""
        for region in range(self.regions):
            offset = self._region_offset(region)
            count = min(
                _COUNT.unpack_from(self._segment.buf, offset)[0], self.capacity
            )
            cursor = self._cursors[region]
            while cursor < count:
                row = self._row.unpack_from(
                    self._segment.buf, offset + 8 + cursor * self._row.size
                )
                self._seen.setdefault(int(row[0]), row[1:])
                cursor += 1
            self._cursors[region] = cursor
        return self._seen

    def segment_names(self) -> list[str]:
        return [self._segment.name] if self.owner and self._segment else []

    def release(self) -> None:
        _LIVE_OWNERS.discard(self)
        segment, self._segment = self._segment, None
        if segment is None:
            return
        try:
            segment.close()
            if self.owner:
                segment.unlink()
        except Exception:
            pass


class FrontierJudge:
    """Decides "already out of the answer" from published exact vectors.

    Mirrors the in-process bound stages exactly:

    * ``pareto`` (skyline/skyband): ≥ ``limit`` published vectors
      dominate the candidate's optimistic bound
      (:func:`repro.skyline.utils.dominates`, NaN-as-tie included) —
      :class:`~repro.engine.plan.ParetoPruneStage`'s test.
    * ``rank`` (top-k): ≥ ``limit`` published scalars are strictly below
      the candidate's bound — equivalent to
      :class:`~repro.engine.plan.RankBoundStage`'s "bound exceeds the
      k-th best" cutoff (at least ``k`` better values exist iff the
      k-th smallest is below the bound).

    Threshold queries never build a judge: their cutoff is static, so
    there is nothing to share.
    """

    __slots__ = ("mode", "limit", "tolerance")

    def __init__(self, mode: str, limit: int, tolerance: float = 0.0) -> None:
        self.mode = mode  # "pareto" | "rank"
        self.limit = limit
        self.tolerance = tolerance

    def prunes(self, bounds, vectors) -> bool:
        """Whether ``bounds`` is already provably outside the answer."""
        if bounds is None:
            return False
        count = 0
        if self.mode == "rank":
            cutoff = bounds[0]
            for vector in vectors:
                if vector[0] < cutoff:
                    count += 1
                    if count >= self.limit:
                        return True
            return False
        for vector in vectors:
            if dominates(vector, bounds, self.tolerance):
                count += 1
                if count >= self.limit:
                    return True
        return False

    def config(self) -> dict:
        return {
            "mode": self.mode,
            "limit": self.limit,
            "tolerance": self.tolerance,
        }


class BoundSharing:
    """Per-query exact-vector sharing across workers and shards.

    Holds the parent-side vector map (fed by drained results and by
    frontier polls) and, when shared memory is available, the
    :class:`FrontierBuffer` workers publish into. The sharded backend
    creates one per query and hands it to every shard's evaluator, so
    vectors solved while shard ``i`` drains prune candidates of shards
    ``i+1..N`` *and* of sibling workers mid-wave — recovering the
    cross-shard pruning the serial path gets from its shared bound stage.
    """

    def __init__(self, judge: FrontierJudge, dims: int, frontier) -> None:
        self.judge = judge
        self.dims = dims
        self.frontier = frontier
        self._vectors: dict[int, tuple[float, ...]] = {}

    @classmethod
    def for_spec(cls, spec, dims: int, workers: int) -> "BoundSharing | None":
        """A sharing channel for ``spec``, or ``None`` when pruning on
        shared exact vectors would be unsound or useless (threshold's
        static bound; tolerant dominance, which is not transitive)."""
        kind = spec.kind
        if kind == "threshold":
            return None
        if kind in ("skyline", "skyband") and spec.tolerance > 0:
            return None
        if kind in ("skyline", "skyband"):
            judge = FrontierJudge("pareto", 1 if kind == "skyline" else spec.k)
        else:
            judge = FrontierJudge("rank", spec.k)
        frontier = None
        if shared_memory_available():
            try:
                frontier = FrontierBuffer.create(regions=workers + 1, dims=dims)
            except Exception:
                frontier = None
        return cls(judge, dims, frontier)

    @property
    def vectors(self) -> dict[int, tuple[float, ...]]:
        return self._vectors

    def poll(self) -> dict[int, tuple[float, ...]]:
        """Absorb worker-published vectors into the parent-side map."""
        if self.frontier is not None:
            for graph_id, vector in self.frontier.poll().items():
                self._vectors.setdefault(graph_id, vector)
        return self._vectors

    def observe(self, graph_id: int, values) -> None:
        self._vectors.setdefault(graph_id, tuple(values))

    def split(self, items):
        """``(kept, pruned_ids)`` of ``[(graph_id, bounds)]`` work items
        against every known exact vector (NumPy fast path when present)."""
        if not self._vectors:
            return items, []
        vectors = list(self._vectors.values())
        if len(items) * len(vectors) > 256:
            split = self._split_numpy(items, vectors)
            if split is not None:
                return split
        kept, pruned = [], []
        judge = self.judge
        for graph_id, bounds in items:
            if bounds is not None and judge.prunes(bounds, vectors):
                pruned.append(graph_id)
            else:
                kept.append((graph_id, bounds))
        return kept, pruned

    def _split_numpy(self, items, vectors):
        try:
            import numpy as np
        except Exception:
            return None
        rows = [i for i, (_, bounds) in enumerate(items) if bounds is not None]
        if not rows:
            return items, []
        bounds = np.asarray([items[i][1] for i in rows], dtype=np.float64)
        exact = np.asarray(vectors, dtype=np.float64)
        judge = self.judge
        if judge.mode == "rank":
            counts = (exact[:, 0][None, :] < bounds[:, 0][:, None]).sum(axis=1)
        else:
            tol = judge.tolerance
            # dominates() semantics, NaN-as-tie included (NaN comparisons
            # are False, so a NaN dimension neither blocks nor helps).
            no_dim_worse = np.logical_not(
                exact[None, :, :] > bounds[:, None, :] + tol
            ).all(axis=2)
            some_dim_better = (exact[None, :, :] < bounds[:, None, :] - tol).any(
                axis=2
            )
            counts = (no_dim_worse & some_dim_better).sum(axis=1)
        prunable = set()
        for position, row in enumerate(rows):
            if counts[position] >= judge.limit:
                prunable.add(row)
        kept = [item for i, item in enumerate(items) if i not in prunable]
        pruned = [items[i][0] for i in sorted(prunable)]
        return kept, pruned

    def worker_config(self) -> dict | None:
        """The per-task frontier descriptor (``None`` without a board —
        workers then evaluate unfiltered and the parent prunes between
        waves)."""
        if self.frontier is None:
            return None
        config = self.judge.config()
        config["name"] = self.frontier.name
        return config

    def release(self) -> None:
        if self.frontier is not None:
            self.frontier.release()
            self.frontier = None


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Materialized payloads per worker, keyed by attachment token (bounded:
#: long-lived workers serving many databases must not hoard dead ones).
_WORKER_PAYLOAD_LIMIT = 4
_WORKER_FRONTIER_LIMIT = 4


def _resolve_worker_measures(measure_specs):
    from repro.measures.base import default_measures, resolve_measures

    if measure_specs is None:
        return default_measures()
    return resolve_measures(measure_specs)


def ensure_payload(db_spec: dict, payloads: OrderedDict):
    """Materialize (or update) one attachment in a worker's cache.

    Returns ``(graphs, kind)`` where ``kind`` records how much shipping
    the worker actually paid: ``"warm"`` (cache hit), ``"delta"`` (replayed
    the chain suffix), ``"cold"`` (loaded the base blob).
    """
    token, version = db_spec["token"], db_spec["version"]
    chain = db_spec["chain"]
    entry = payloads.get(token)
    if entry is not None and entry[0] == version:
        payloads.move_to_end(token)
        return entry[1], "warm"
    versions = [link[1] for link in chain]
    graphs = None
    kind = "cold"
    todo = chain
    if entry is not None and entry[0] in versions:
        graphs = entry[1]
        todo = chain[versions.index(entry[0]) + 1 :]
        kind = "delta"
    for op, _, ref in todo:
        data = read_blob(ref)
        if op == "base":
            graphs = pickle.loads(data)
        else:
            added, removed = pickle.loads(data)
            for graph_id in removed:
                graphs.pop(graph_id, None)
            graphs.update(added)
    payloads[token] = (version, graphs)
    payloads.move_to_end(token)
    while len(payloads) > _WORKER_PAYLOAD_LIMIT:
        payloads.popitem(last=False)
    return graphs, kind


def _attach_frontier(config: dict, frontiers: OrderedDict):
    buffer = frontiers.get(config["name"])
    if buffer is None:
        buffer = FrontierBuffer.attach(config["name"])
        frontiers[config["name"]] = buffer
        while len(frontiers) > _WORKER_FRONTIER_LIMIT:
            _, evicted = frontiers.popitem(last=False)
            evicted.release()
    else:
        frontiers.move_to_end(config["name"])
    return buffer


def _matrix_bounds(task: dict, matrices: OrderedDict):
    """Per-id optimistic vectors recomputed from the shared matrix."""
    from repro.index.shm import matrix_bounds

    return matrix_bounds(
        task["matrix"],
        task["rows"],
        task["qsig"],
        _resolve_worker_measures(task["measures"]),
        matrices,
    )


def handle_eval(
    task: dict,
    payloads: OrderedDict,
    matrices: OrderedDict,
    frontiers: OrderedDict,
    region: int,
) -> dict:
    """Evaluate one chunk task (pure: unit-testable in-process).

    Resolves the graphs (attachment cache or inline pairs), optionally
    recomputes bounds from the shared matrix, then walks the chunk's ids:
    frontier-check, solve, publish. ``skipped`` ids were frontier-pruned
    (never solved); ``partial`` flags a mid-chunk deadline abandon.
    """
    stats = {"frontier_pruned": 0, "published": 0, "partial": False}
    if task.get("pairs") is not None:
        graphs = dict(task["pairs"])
        stats["attach"] = "inline"
    else:
        graphs, stats["attach"] = ensure_payload(task["db"], payloads)
    measures = _resolve_worker_measures(task["measures"])
    bounds_of = task.get("bounds") or {}
    if task.get("matrix") is not None:
        try:
            bounds_of = _matrix_bounds(task, matrices)
        except Exception:
            bounds_of = {}  # no bounds → no worker-side pruning, still sound
    frontier = None
    judge = None
    config = task.get("frontier")
    if config is not None:
        try:
            frontier = _attach_frontier(config, frontiers)
            judge = FrontierJudge(
                config["mode"], config["limit"], config["tolerance"]
            )
        except Exception:
            frontier = None
    query = task["query"]
    expires_at = task.get("deadline")
    results: list[tuple[int, tuple[float, ...]]] = []
    skipped: list[int] = []
    for graph_id in task["ids"]:
        if expires_at is not None and time.monotonic() >= expires_at:
            stats["partial"] = True
            break
        if frontier is not None:
            vectors = frontier.poll()
            bounds = bounds_of.get(graph_id)
            if bounds is not None and judge.prunes(bounds, vectors.values()):
                skipped.append(graph_id)
                stats["frontier_pruned"] += 1
                continue
        values = pair_values(graphs[graph_id], query, measures)
        results.append((graph_id, values))
        if frontier is not None and frontier.publish(region, graph_id, values):
            stats["published"] += 1
    return {"results": results, "skipped": skipped, "stats": stats}


def _worker_main(slot: int, task_queue, result_queue) -> None:
    """Long-lived worker loop: pull task dicts, push result dicts."""
    payloads: OrderedDict = OrderedDict()
    matrices: OrderedDict = OrderedDict()
    frontiers: OrderedDict = OrderedDict()
    region = slot + 1  # region 0 is reserved for the parent
    while True:
        task = task_queue.get()
        if task is None:
            break
        try:
            out = handle_eval(task, payloads, matrices, frontiers, region)
            out.update(id=task["id"], run=task.get("run"), ok=True)
        except Exception as exc:  # ship the failure, keep the worker alive
            out = {
                "id": task.get("id"),
                "run": task.get("run"),
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
            }
        try:
            result_queue.put(out)
        except Exception:
            break
    for buffer in frontiers.values():
        buffer.release()
    for attached in matrices.values():
        attached.release()


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
#: Consecutive full-pool rebuilds tolerated within one ``run`` call.
_MAX_REBUILDS = 3
#: Result-queue poll interval; also the worker-death detection latency.
_POLL_SECONDS = 0.05


class WorkerPool:
    """A persistent set of worker processes plus this process's
    attachments (databases, matrix exports) parked for them.

    Tasks go down one queue, results come back up another; a ``run``
    scopes its results by a random run id, so results of abandoned tasks
    (deadline expiry, rebuilds) are dropped as stale instead of polluting
    the next query. Worker death is detected while waiting for results
    and answered with a full rebuild — fresh queues, fresh processes —
    and resubmission of the still-unfinished tasks only.
    """

    def __init__(self, max_workers: int) -> None:
        import multiprocessing
        import threading

        self.max_workers = max(1, max_workers)
        method = os.environ.get("REPRO_POOL_START_METHOD") or None
        self._mp = multiprocessing.get_context(method)
        # One pool serves every session and server client in the process;
        # runs are serialized because each run treats foreign run ids on
        # the shared result queue as stale and drops them.
        self._run_lock = threading.Lock()
        self._processes: list = []
        self._task_queue = None
        self._result_queue = None
        self._attachments: dict[int, DatabaseAttachment] = {}
        self._exports: dict[int, object] = {}
        self._closed = False
        #: Full-pool rebuilds over the pool's lifetime (telemetry).
        self.respawns = 0

    @property
    def started(self) -> bool:
        return bool(self._processes)

    def ensure_started(self) -> None:
        """Start (or top up) the worker set; raises on spawn failure."""
        if self._closed:
            raise WorkerPoolError("worker pool is closed")
        try:
            if self._task_queue is None:
                self._task_queue = self._mp.Queue()
                self._result_queue = self._mp.Queue()
            while len(self._processes) < self.max_workers:
                self._spawn(len(self._processes))
            for slot, process in enumerate(self._processes):
                if not process.is_alive():
                    self.respawns += 1
                    self._spawn(slot)
        except WorkerPoolError:
            raise
        except Exception as exc:
            raise WorkerPoolError(f"worker pool failed to start: {exc}") from exc

    def _spawn(self, slot: int) -> None:
        process = self._mp.Process(
            target=_worker_main,
            args=(slot, self._task_queue, self._result_queue),
            name=f"repro-pool-{slot}",
            daemon=True,
        )
        process.start()
        if slot < len(self._processes):
            self._processes[slot] = process
        else:
            self._processes.append(process)

    def _rebuild(self, pending_tasks) -> None:
        """Replace every worker and queue; requeue the unfinished tasks."""
        self.respawns += 1
        for process in self._processes:
            try:
                process.terminate()
            except Exception:
                pass
        for process in self._processes:
            try:
                process.join(timeout=5)
            except Exception:
                pass
        self._discard_queues()
        self._task_queue = self._mp.Queue()
        self._result_queue = self._mp.Queue()
        self._processes = []
        for slot in range(self.max_workers):
            self._spawn(slot)
        for task in pending_tasks:
            self._task_queue.put(task)

    def _discard_queues(self) -> None:
        for attr in ("_task_queue", "_result_queue"):
            q = getattr(self, attr)
            if q is not None:
                try:
                    q.close()
                    q.cancel_join_thread()
                except Exception:
                    pass
            setattr(self, attr, None)

    def run(self, tasks: list[dict], deadline=None) -> list[dict]:
        """Execute ``tasks``; results aligned with the input order.

        Raises :class:`~repro.errors.DeadlineExceeded` via ``deadline``
        (abandoned tasks' late results are dropped as stale by run id)
        and :class:`WorkerPoolError` on a worker-reported failure or a
        rebuild-budget overrun.
        """
        if not tasks:
            return []
        with self._run_lock:
            self.ensure_started()
            run_id = uuid.uuid4().hex
            outstanding: dict[object, dict] = {}
            for task in tasks:
                task["run"] = run_id
                outstanding[task["id"]] = task
                self._task_queue.put(task)
            results: dict[object, dict] = {}
            rebuilds = 0
            while outstanding:
                if deadline is not None:
                    deadline.check()
                try:
                    out = self._result_queue.get(timeout=_POLL_SECONDS)
                except queue_module.Empty:
                    if any(not p.is_alive() for p in self._processes):
                        if rebuilds >= _MAX_REBUILDS:
                            raise WorkerPoolError(
                                "worker pool kept losing workers "
                                f"({rebuilds} rebuilds); giving up"
                            )
                        rebuilds += 1
                        self._rebuild(list(outstanding.values()))
                    continue
                if out.get("run") != run_id or out.get("id") not in outstanding:
                    continue  # stale result of an abandoned/resubmitted task
                if not out.get("ok"):
                    raise WorkerPoolError(
                        "worker task failed: "
                        f"{out.get('error', 'unknown error')}"
                    )
                del outstanding[out["id"]]
                results[out["id"]] = out
            return [results[task["id"]] for task in tasks]

    # -- parked state -----------------------------------------------------
    def attach(self, database):
        """``(attachment, kind)`` for ``database`` (``(None, "broken")``
        when its payload cannot be parked — tasks then ship graphs
        inline)."""
        key = id(database)
        attachment = self._attachments.get(key)
        if attachment is not None and attachment.database_ref() is not database:
            # id() reuse after the original database was collected.
            attachment.release()
            attachment = None
        if attachment is None:
            attachment = DatabaseAttachment(database)
            self._attachments[key] = attachment
        if attachment.broken:
            return None, "broken"
        try:
            kind = attachment.refresh(database)
        except OSError:
            attachment.broken = True  # latched: retrying a full dump per
            return None, "broken"  # drain would repeat the expense
        return attachment, kind

    def release_attachment(self, key: int) -> None:
        attachment = self._attachments.pop(key, None)
        if attachment is not None:
            attachment.release()

    def export_matrix(self, store):
        """``(meta, matrix)`` of a shard's SignatureMatrix parked in
        shared memory, or ``None`` (no NumPy / no shared memory / export
        failure — callers fall back to inline bounds)."""
        if not shared_memory_available():
            return None
        key = id(store)
        export = self._exports.get(key)
        if export is not None and export.store_ref() is not store:
            export.release()
            export = None
            del self._exports[key]
        try:
            if export is None:
                from repro.index.shm import SharedMatrixExport

                export = SharedMatrixExport(store)
                self._exports[key] = export
            return export.refresh()
        except Exception:
            return None

    def release_export(self, key: int) -> None:
        export = self._exports.pop(key, None)
        if export is not None:
            export.release()

    def close(self) -> None:
        """Stop the workers and release every parked segment."""
        self._closed = True
        if self._task_queue is not None:
            for _ in self._processes:
                try:
                    self._task_queue.put(None)
                except Exception:
                    break
        for process in self._processes:
            try:
                process.join(timeout=2)
            except Exception:
                pass
        for process in self._processes:
            if process.is_alive():
                try:
                    process.terminate()
                    process.join(timeout=2)
                except Exception:
                    pass
        self._processes = []
        self._discard_queues()
        for key in list(self._attachments):
            self.release_attachment(key)
        for key in list(self._exports):
            self.release_export(key)


# ----------------------------------------------------------------------
# Process-wide pool registry
# ----------------------------------------------------------------------
_POOLS: dict[int, WorkerPool] = {}


def get_pool(max_workers: int) -> WorkerPool:
    """The process-wide persistent pool for ``max_workers``.

    Pools are cached per size so sessions with different worker counts
    coexist; one pool serves every session and server client with that
    size. Workers fork lazily on first use and stay warm until
    :func:`shutdown_pool`.
    """
    max_workers = max(1, max_workers)
    pool = _POOLS.get(max_workers)
    if pool is None:
        pool = _POOLS[max_workers] = WorkerPool(max_workers)
    return pool


def shared_pool(max_workers: int) -> WorkerPool:
    """Backward-compatible alias of :func:`get_pool`."""
    return get_pool(max_workers)


def shutdown_pool() -> None:
    """Tear down every pool and release every shared-memory segment this
    process still owns (idempotent; also registered ``atexit``)."""
    while _POOLS:
        _, pool = _POOLS.popitem()
        pool.close()
    for owner in list(_LIVE_OWNERS):
        try:
            owner.release()
        except Exception:
            pass


atexit.register(shutdown_pool)


# ----------------------------------------------------------------------
# The evaluator
# ----------------------------------------------------------------------
#: First-wave size per worker; later waves grow geometrically, so the
#: wave count is logarithmic when pruning stops biting.
_WAVE_BASE = 2
_WAVE_GROWTH = 4


class PooledEvaluator(Evaluator):
    """Deferred evaluation on the persistent worker pool, drained in
    bound-ordered waves with cross-worker pruning.

    ``evaluate`` only records ``(graph_id, bounds)``; ``drain`` attaches
    the database (warm/delta/cold, see :class:`DatabaseAttachment`),
    optionally parks the shard's SignatureMatrix (``matrix_source``), and
    ships candidate-id chunks. With a :class:`BoundSharing` channel
    (``sharing``, set per query by the sharded backend) the drain runs in
    **waves**: a small first wave of the most promising candidates, then
    — between waves — the parent filters everything not yet shipped
    against all exact vectors known so far (drained + frontier-published),
    while workers frontier-check each candidate mid-chunk. Without
    sharing (the exhaustive ``parallel`` backend) the drain is a single
    full-throughput wave.

    Degradation: broken attachment → tasks ship graphs inline; pool
    start failure → in-process evaluation (still sharing-filtered). Both
    keep answers identical, property-tested against serial.

    Parameters match the pre-persistent evaluator: ``max_workers``
    (default ``os.cpu_count()``), ``chunk_size`` (``None`` auto-sizes to
    ~4 chunks per worker within a wave).
    """

    interleaved = False

    def __init__(
        self, max_workers: int | None = None, chunk_size: int | None = None
    ) -> None:
        self.max_workers = max(1, max_workers or os.cpu_count() or 1)
        self.chunk_size = chunk_size
        #: Per-query :class:`BoundSharing` (sharded backend) or ``None``.
        self.sharing: BoundSharing | None = None
        #: Zero-arg callable returning the shard's FeatureStore (or None).
        self.matrix_source = None
        self._pending: list[tuple[int, tuple[float, ...] | None]] = []
        self._drained_pruned: list[int] = []
        self._pool: WorkerPool | None = None
        self._attachment_key: int | None = None
        self._export_key: int | None = None

    def begin(self, ctx) -> None:
        self._pending = []
        self._drained_pruned = []

    def evaluate(self, ctx, candidate):
        self._pending.append((candidate.graph_id, candidate.bounds))
        return None

    def drained_pruned_ids(self):
        return self._drained_pruned

    def chunk(self, pairs: list) -> list[list]:
        """Split work items into pool tasks (auto-sized unless fixed)."""
        if not pairs:
            return []
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(pairs) // (self.max_workers * 4)))
        return [pairs[i : i + size] for i in range(0, len(pairs), size)]

    # -- lifecycle --------------------------------------------------------
    def release(self) -> None:
        """Release this evaluator's parked state (attachment + matrix
        export); the pool itself stays warm for other sessions."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if self._attachment_key is not None:
            pool.release_attachment(self._attachment_key)
            self._attachment_key = None
        if self._export_key is not None:
            pool.release_export(self._export_key)
            self._export_key = None

    def discard_payload(self) -> None:
        """Backward-compatible alias of :meth:`release`."""
        self.release()

    # -- drain ------------------------------------------------------------
    def drain(self, ctx):
        pending, self._pending = self._pending, []
        self._drained_pruned = []
        if not pending:
            return []
        sharing = self.sharing
        stats = {
            "workers": self.max_workers,
            "attach": {},
            "chunks": 0,
            "waves": 0,
            "frontier_pruned": 0,
            "published": 0,
            "respawns": 0,
        }
        pool = None
        try:
            pool = get_pool(self.max_workers)
            pool.ensure_started()
        except Exception:
            pool = None
        if pool is None:
            results = self._drain_inline(ctx, pending, sharing, stats)
        else:
            results = self._drain_pooled(ctx, pool, pending, sharing, stats)
        ctx.stats.pool = stats
        results.sort()
        return results

    def _drain_inline(self, ctx, pending, sharing, stats):
        """No usable pool: solve in-process, still sharing-filtered."""
        stats["workers"] = 0
        stats["attach"] = {"serial": 1}
        results = []
        for graph_id, bounds in pending:
            if ctx.deadline is not None:
                ctx.deadline.check()
            if sharing is not None:
                sharing.poll()
                if bounds is not None and sharing.judge.prunes(
                    bounds, sharing.vectors.values()
                ):
                    self._drained_pruned.append(graph_id)
                    stats["frontier_pruned"] += 1
                    continue
            values = pair_values(
                ctx.database.get(graph_id), ctx.spec.graph, ctx.measures
            )
            results.append((graph_id, values))
            if sharing is not None:
                sharing.observe(graph_id, values)
        return results

    def _drain_pooled(self, ctx, pool, pending, sharing, stats):
        respawns_before = pool.respawns
        self._pool = pool
        attachment, attach_kind = pool.attach(ctx.database)
        if attachment is not None:
            self._attachment_key = id(ctx.database)
            db_spec = attachment.spec()
        else:
            db_spec = None
        stats["attach"] = {attach_kind: 1}

        matrix_ship = self._matrix_ship(ctx, pool, pending, sharing)
        frontier_config = sharing.worker_config() if sharing is not None else None
        expires_at = ctx.deadline.expires_at if ctx.deadline is not None else None

        def build_task(chunk_items):
            ids = [graph_id for graph_id, _ in chunk_items]
            task = {
                "id": uuid.uuid4().hex,
                "op": "eval",
                "query": ctx.spec.graph,
                "measures": ctx.measure_specs,
                "ids": ids,
                "db": db_spec,
                "deadline": expires_at,
            }
            if db_spec is None:
                task["pairs"] = [
                    (graph_id, ctx.database.get(graph_id)) for graph_id in ids
                ]
                task["ids"] = ids
            if frontier_config is not None:
                task["frontier"] = frontier_config
                if matrix_ship is not None:
                    meta, row_of, qsig = matrix_ship
                    task["matrix"] = meta
                    task["rows"] = [row_of[graph_id] for graph_id in ids]
                    task["qsig"] = qsig
                else:
                    task["bounds"] = {
                        graph_id: bounds
                        for graph_id, bounds in chunk_items
                        if bounds is not None
                    }
            return task

        results = []
        remaining = list(pending)
        wave_size = (
            len(remaining)
            if sharing is None
            else max(1, self.max_workers * _WAVE_BASE)
        )
        while remaining:
            # Between draining one wave's results and submitting the
            # next: pool.run checks only while waiting on futures, so an
            # expired deadline used to slip one full extra wave through.
            if ctx.deadline is not None:
                ctx.deadline.check()
            if sharing is not None:
                sharing.poll()
                remaining, pruned = sharing.split(remaining)
                if pruned:
                    self._drained_pruned.extend(pruned)
                    stats["frontier_pruned"] += len(pruned)
                if not remaining:
                    break
            wave, remaining = remaining[:wave_size], remaining[wave_size:]
            tasks = [build_task(chunk) for chunk in self.chunk(wave)]
            stats["chunks"] += len(tasks)
            stats["waves"] += 1
            for out in pool.run(tasks, deadline=ctx.deadline):
                results.extend(out["results"])
                if out["skipped"]:
                    self._drained_pruned.extend(out["skipped"])
                task_stats = out["stats"]
                stats["frontier_pruned"] += task_stats["frontier_pruned"]
                stats["published"] += task_stats["published"]
                worker_attach = task_stats.get("attach")
                if worker_attach and worker_attach != "warm":
                    key = f"worker-{worker_attach}"
                    stats["attach"][key] = stats["attach"].get(key, 0) + 1
                if sharing is not None:
                    for graph_id, values in out["results"]:
                        sharing.observe(graph_id, values)
            wave_size *= _WAVE_GROWTH
        stats["respawns"] = pool.respawns - respawns_before
        return results

    def _matrix_ship(self, ctx, pool, pending, sharing):
        """``(meta, row_of, qsig)`` when candidate bounds can be
        recomputed worker-side from the shared matrix; ``None`` → bounds
        ship inline (only needed at all when a frontier exists)."""
        if sharing is None or sharing.frontier is None:
            return None
        if self.matrix_source is None:
            return None
        try:
            store = self.matrix_source()
        except Exception:
            return None
        if store is None:
            return None
        exported = pool.export_matrix(store)
        if exported is None:
            return None
        meta, matrix = exported
        row_of = matrix.row_of
        if any(graph_id not in row_of for graph_id, _ in pending):
            return None
        self._export_key = id(store)
        packed = matrix.pack_query(ctx.query_features)
        qsig = (
            packed.order,
            packed.size,
            packed.vertex_vector.tolist(),
            packed.edge_vector.tolist(),
        )
        return meta, dict(row_of), qsig


#: The evaluator's persistent-pool identity, under its historical name.
PersistentPoolEvaluator = PooledEvaluator
