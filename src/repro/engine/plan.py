"""Evaluation plans: candidate sources and the pruning cascade.

An :class:`EvaluationPlan` is the declarative configuration the staged
engine (:mod:`repro.engine.core`) executes for every query:

    candidate source  →  pruning cascade  →  exact evaluator  →  consumer

* the **source** enumerates candidate database graphs, optionally with
  optimistic (lower-bound) vectors and a visiting order that makes the
  downstream pruning effective;
* the **cascade** is an ordered list of :class:`Stage` factories; each
  stage may soundly prune a candidate (provably outside the answer set),
  serve its exact vector without solving (cached pairs), or pass it on;
* the **evaluator** (:mod:`repro.engine.evaluate`) solves the survivors
  exactly, serially or batched across a process pool;
* the **consumer** (:mod:`repro.engine.consume`) turns exact vectors into
  the answer for the query kind.

Stages receive feedback: every exact vector the engine obtains (solved,
cached, or returned by a worker) is :meth:`Stage.observe`-d, which is how
Pareto pruning accumulates dominators and how the cached-pair stage
writes back. A stage that never observes enough evidence simply never
prunes — cascade soundness cannot depend on the evaluator choice, which
is what lets pruning, caching and parallelism compose freely.
"""

from __future__ import annotations

import abc
from bisect import insort
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.skyline.utils import dominates

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.core import RunContext
    from repro.engine.evaluate import Evaluator


@dataclass(frozen=True)
class Candidate:
    """One database graph headed into the cascade.

    ``bounds`` is the optimistic (componentwise lower-bound) vector under
    the run's measures, or ``None`` when the source computes no bounds —
    bound-based stages then pass such candidates through untouched.
    """

    graph_id: int
    bounds: tuple[float, ...] | None = None


class Stage(abc.ABC):
    """One cascade member: prune, serve, or pass each candidate.

    :meth:`decide` returns ``"prune"`` (the candidate provably cannot
    change the answer set), an exact vector ``tuple`` (served without
    solving), or ``None`` (no opinion — next stage, then the evaluator).
    """

    #: Registry/display name, used in plan descriptions and per-stage stats.
    name: str = "stage"

    @abc.abstractmethod
    def decide(self, candidate: Candidate) -> "str | tuple[float, ...] | None":
        """Judge one candidate before exact evaluation."""

    def observe(self, graph_id: int, values: tuple[float, ...]) -> None:
        """Feedback: an exact vector became known (solved, cached or pooled)."""


StageFactory = Callable[["RunContext"], Stage]


class ParetoPruneStage(Stage):
    """Skyline/skyband pruning by exact dominators of the optimistic bound.

    Optimistic vectors are componentwise ≤ the exact vectors, so a
    candidate whose optimistic vector already has ≥ ``prune_limit`` exact
    dominators is dominated by at least that many graphs — and by
    transitivity so is anything it would have dominated. ``prune_limit``
    is 1 for the skyline and ``k`` for the k-skyband.
    """

    name = "pareto-bound"

    def __init__(self, prune_limit: int, tolerance: float) -> None:
        self.prune_limit = prune_limit
        self.tolerance = tolerance
        self._exact: list[tuple[float, ...]] = []

    def decide(self, candidate: Candidate) -> "str | None":
        if candidate.bounds is None:
            return None
        count = 0
        for vector in self._exact:
            if dominates(vector, candidate.bounds, self.tolerance):
                count += 1
                if count >= self.prune_limit:
                    return "prune"
        return None

    def observe(self, graph_id: int, values: tuple[float, ...]) -> None:
        self._exact.append(values)


class RankBoundStage(Stage):
    """Top-k pruning: bound exceeds the current k-th best exact distance.

    With candidates visited in ascending bound order, the first prune
    implies every later candidate is pruned too — the classic sorted-scan
    cutoff, expressed per candidate so it stays sound under any order.
    """

    name = "rank-bound"

    def __init__(self, k: int) -> None:
        self.k = k
        self._best: list[float] = []

    def decide(self, candidate: Candidate) -> "str | None":
        if candidate.bounds is None or len(self._best) < self.k:
            return None
        if candidate.bounds[0] > self._best[-1]:
            return "prune"
        return None

    def observe(self, graph_id: int, values: tuple[float, ...]) -> None:
        insort(self._best, values[0])
        del self._best[self.k :]


class ThresholdBoundStage(Stage):
    """Range pruning: the lower bound already exceeds the threshold."""

    name = "threshold-bound"

    def __init__(self, threshold: float) -> None:
        self.threshold = threshold

    def decide(self, candidate: Candidate) -> "str | None":
        if candidate.bounds is not None and candidate.bounds[0] > self.threshold:
            return "prune"
        return None


class CachedPairStage(Stage):
    """Serve exact vectors from a shared pair cache; write back new ones.

    Works with both cache flavours in :mod:`repro.db.cache` through the
    ``subject_key``/``get``/``put`` protocol. The stage never prunes —
    a hit replaces the exact solve, a miss passes through — so it is
    sound in any cascade position; placing it after the bound stages
    keeps cache traffic off already-pruned candidates.
    """

    name = "cached-pairs"

    def __init__(self, ctx: "RunContext") -> None:
        self.cache = ctx.cache
        self.ctx = ctx
        self.query_hash = self.cache.query_hash(ctx.spec.graph)
        self._served: set[int] = set()

    def _subject(self, graph_id: int):
        return self.cache.subject_key(self.ctx.database.entry(graph_id))

    def decide(self, candidate: Candidate) -> "tuple[float, ...] | None":
        values = self.cache.get(
            self._subject(candidate.graph_id), self.query_hash, self.ctx.names
        )
        if values is not None:
            self._served.add(candidate.graph_id)
        return values

    def observe(self, graph_id: int, values: tuple[float, ...]) -> None:
        if graph_id not in self._served:
            self.cache.put(
                self._subject(graph_id), self.query_hash, self.ctx.names, values
            )


def bound_stage_for(spec) -> Stage:
    """The scalar bound-pruning stage for ``spec``'s query kind.

    The single definition of the kind → stage dispatch: Pareto dominator
    counting for skyline/skyband, the k-th-best cutoff for topk, the
    bound-vs-threshold test for range queries. Callers that hold a spec
    but no run context (e.g. the sharded backend, which shares one stage
    instance across its per-shard runs) use this directly.
    """
    if spec.kind == "skyline":
        return ParetoPruneStage(1, spec.tolerance)
    if spec.kind == "skyband":
        return ParetoPruneStage(spec.k, spec.tolerance)
    if spec.kind == "topk":
        return RankBoundStage(spec.k)
    return ThresholdBoundStage(spec.threshold)


def bound_pruning(ctx: "RunContext") -> Stage:
    """Cascade entry for :func:`bound_stage_for` (one pluggable factory
    covers all four kinds, so plans stay kind-agnostic)."""
    return bound_stage_for(ctx.spec)


def cached_pairs(ctx: "RunContext") -> Stage:
    """Cascade entry for the shared pair cache (requires ``ctx.cache``)."""
    return CachedPairStage(ctx)


# ----------------------------------------------------------------------
# Candidate sources
# ----------------------------------------------------------------------
class CandidateSource(abc.ABC):
    """Enumerates (and orders) the candidates of one run.

    A source may also *pre-filter*: candidates it can soundly prove
    irrelevant in one batched pass (e.g. the vectorized threshold
    pre-filter of :class:`repro.index.IndexedSource`) are appended to
    ``ctx.prefiltered`` instead of being returned — the engine counts
    them exactly like cascade prunes (``QueryStats.pruned_by_batch``)
    and the per-candidate cascade runs only on the survivors.
    """

    #: Whether :meth:`candidates` computes index bounds (timed as "bounds").
    computes_bounds: bool = False

    @abc.abstractmethod
    def candidates(self, ctx: "RunContext") -> list[Candidate]:
        """The run's candidate list, in visiting order."""


class DatabaseOrderSource(CandidateSource):
    """Every database graph in insertion order, no bounds."""

    def candidates(self, ctx: "RunContext") -> list[Candidate]:
        return [Candidate(graph_id) for graph_id in ctx.database.ids()]


class BoundOrderedSource(CandidateSource):
    """Candidates with feature-index lower bounds, most promising first.

    Vector kinds are visited in ascending optimistic-sum order (strong
    dominators surface early, maximizing Pareto prunes); topk in ascending
    scalar-bound order (the sorted-scan cutoff); threshold keeps database
    order (pruning there is order-independent). Ties break by id, so the
    order is deterministic.
    """

    computes_bounds = True

    def __init__(self, index_provider: Callable[[], "object"]) -> None:
        self._index_provider = index_provider

    def pairs(
        self, query_features, measures
    ) -> list[tuple[int, tuple[float, ...]]]:
        """(id, optimistic vector) pairs sorted by (sum, id) — the legacy
        executor's candidate order, kept observable for its tests."""
        index = self._index_provider()
        order = [
            (graph_id, index.optimistic_vector(graph_id, query_features, measures))
            for graph_id in index.ids()
        ]
        order.sort(key=lambda item: (sum(item[1]), item[0]))
        return order

    def candidates(self, ctx: "RunContext") -> list[Candidate]:
        index = self._index_provider()
        bounded = [
            (
                graph_id,
                index.optimistic_vector(
                    graph_id, ctx.query_features, ctx.measures
                ),
            )
            for graph_id in index.ids()
        ]
        if ctx.spec.kind in ("skyline", "skyband"):
            bounded.sort(key=lambda item: (sum(item[1]), item[0]))
        elif ctx.spec.kind == "topk":
            bounded.sort(key=lambda item: (item[1][0], item[0]))
        return [Candidate(graph_id, bounds) for graph_id, bounds in bounded]


@dataclass(frozen=True)
class EvaluationPlan:
    """One engine configuration: source → cascade → evaluator.

    The three shipped backends are nothing but instances of this — see
    :mod:`repro.api.backends` — and custom plans compose the same parts
    (e.g. bound pruning with a pooled evaluator, or a cache-only cascade
    over database order).
    """

    source: CandidateSource
    cascade: tuple[StageFactory, ...] = ()
    evaluator: "Evaluator | None" = None
    #: Cascade stage labels for plan descriptions (no stages instantiated).
    stage_labels: tuple[str, ...] = field(default=())
