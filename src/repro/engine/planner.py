"""Cost-based adaptive planning: pick the cheapest plan per query.

The fixed backends (``memory``/``indexed``/``vectorized``/``parallel``/
``sharded``) are hand-picked points in one plan space — candidate source
× bound stage × evaluator — and each of them is the wrong point for some
slice of the workload: batched kernels pay a setup cost that tiny
databases never amortize, exhaustive scans waste exact solves that a
bound stage would have pruned, and the process pool's fork/attach cost
dwarfs a handful of cheap pairs. This module closes the loop the ROADMAP
names: a System-R-style cost model over our own plan space, driven by

* **static inputs** — database size, average graph order, shard count,
  NumPy/pool availability, the query's kind/k/threshold/tolerance/budget;
* **observed feedback** — a per-session :class:`SelectivityProfile` of
  per-stage prune rates and per-pair exact-evaluation cost, fed back from
  the :class:`~repro.db.stats.QueryStats` of every executed query.

Because selectivities are observed, the model self-corrects: the first
query of a kind runs on priors, later ones on measured reality.

Mis-predictions are also caught *mid-query*: :class:`AdaptiveStage`
watches a bound stage's prune rate over a calibration prefix and drops
the stage when the rate collapsed below prediction (sound — removing a
pruning stage only adds exact evaluations), and :class:`AdaptiveEvaluator`
starts serially, measures the true per-pair cost, and re-plans the
remaining candidates onto the process pool when the projected serial
remainder exceeds the pool's amortized startup. Both record re-plan
events that surface in ``ResultSet.explain()``.

The decision layer is consumed by :class:`repro.api.auto.AutoBackend`
(registered as the ``"auto"`` backend).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.engine.evaluate import Evaluator, SerialEvaluator
from repro.engine.plan import Candidate, Stage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.spec import GraphQuery
    from repro.db.stats import QueryStats
    from repro.engine.core import RunContext
    from repro.engine.workers import PooledEvaluator


# ----------------------------------------------------------------------
# Cost-model coefficients (seconds). Absolute accuracy does not matter —
# decisions compare plans against each other, and the two quantities
# that dominate (per-pair exact cost, per-stage selectivity) are
# *measured* and override these priors after the first few queries.
# ----------------------------------------------------------------------
#: Per-candidate scalar feature-index bound computation.
SCALAR_BOUND_SECONDS = 2.0e-5
#: Per-candidate batched (NumPy) bound computation.
BATCH_BOUND_SECONDS = 1.0e-6
#: Fixed per-query overhead of the batched kernels (dispatch, packing,
#: store sync; measured against the scalar cascade, the crossover where
#: batching wins sits near ~80 candidates).
BATCH_SETUP_SECONDS = 1.5e-3
#: Per-candidate cascade bookkeeping (stage walk, counters).
CASCADE_CHECK_SECONDS = 3.0e-6
#: Cold worker-pool start (fork + first shared-memory attachment).
POOL_START_SECONDS = 1.2
#: Per-chunk task overhead (pickle, queue round-trip).
POOL_CHUNK_SECONDS = 2.0e-3
#: Per-pair exact-evaluation prior per squared vertex (GED + MCS are
#: superquadratic, but the profile replaces this after one query).
PAIR_SECONDS_PER_ORDER2 = 5.0e-5

#: Prior fraction of candidates the bound stage prunes, per query kind.
PRIOR_SELECTIVITY = {
    "skyline": 0.45,
    "skyband": 0.30,
    "topk": 0.50,
    "threshold": 0.50,
}

#: Calibration prefix before a mid-query re-plan may trigger.
CALIBRATION_MIN = 16
#: Drop a bound stage when observed/predicted prune rate falls below this.
STAGE_DROP_RATIO = 0.25
#: ... and the observed rate is also below this absolute rate.
STAGE_DROP_FLOOR = 0.10
#: Don't bother gating stages predicted to prune less than this.
GATE_MIN_PREDICTED = 0.10


def _pair_seconds_prior(avg_order: float) -> float:
    """Prior cost of one exact (GED+MCS) pair at ``avg_order`` vertices."""
    return PAIR_SECONDS_PER_ORDER2 * max(1.0, avg_order) ** 2


# ----------------------------------------------------------------------
# Observed-selectivity profile
# ----------------------------------------------------------------------
class SelectivityProfile:
    """Thread-safe EWMA store of observed selectivities and costs.

    One instance lives per ``auto`` backend — i.e. per session, and (the
    server caches one session per backend name) shared across every
    client of a server. Keys are ``(query kind, stage name)`` for prune
    rates and the query kind alone for per-pair cost, so skylines don't
    poison top-k estimates and vice versa.
    """

    def __init__(self, alpha: float = 0.3) -> None:
        self._alpha = alpha
        self._lock = threading.Lock()
        self._selectivity: dict[tuple[str, str], float] = {}
        self._pair_seconds: dict[str, float] = {}
        self._samples: dict[object, int] = {}
        self.queries = 0

    def _update(self, table: dict, key, value: float) -> None:
        previous = table.get(key)
        if previous is None:
            table[key] = value
        else:
            table[key] = previous + self._alpha * (value - previous)
        self._samples[key] = self._samples.get(key, 0) + 1

    def observe(
        self,
        kind: str,
        stats: "QueryStats",
        stage_names: tuple[str, ...] = (),
    ) -> None:
        """Fold one executed query's stats into the profile.

        ``stage_names`` are the bound stages the plan *ran* — passing
        them records zero-selectivity observations too, which is exactly
        the feedback that steers the planner away from useless stages.
        """
        considered = stats.candidates_considered
        if considered <= 0:
            return
        prefiltered = stats.pruned_by_batch
        survivors = max(1, considered - prefiltered)
        with self._lock:
            self.queries += 1
            if prefiltered or "batch-prefilter" in stage_names:
                self._update(
                    self._selectivity,
                    (kind, "batch-prefilter"),
                    prefiltered / considered,
                )
            for name in stage_names:
                if name == "batch-prefilter":
                    continue
                pruned = stats.pruned_by_stage.get(name, 0)
                self._update(
                    self._selectivity, (kind, name), pruned / survivors
                )
            if stats.exact_evaluations > 0:
                per_pair = (
                    stats.phase_seconds.get("evaluate", 0.0)
                    / stats.exact_evaluations
                )
                if per_pair > 0.0:
                    self._update(self._pair_seconds, kind, per_pair)

    def selectivity(self, kind: str, stage_name: str) -> float | None:
        """Observed EWMA prune rate of ``stage_name`` for ``kind``."""
        with self._lock:
            return self._selectivity.get((kind, stage_name))

    def pair_seconds(self, kind: str) -> float | None:
        """Observed EWMA seconds per exact pair for ``kind``."""
        with self._lock:
            return self._pair_seconds.get(kind)

    def snapshot(self) -> dict:
        """Diagnostics payload (explain(), ``repro backends``)."""
        with self._lock:
            return {
                "queries": self.queries,
                "selectivity": {
                    f"{kind}/{stage}": round(value, 4)
                    for (kind, stage), value in sorted(
                        self._selectivity.items()
                    )
                },
                "pair_ms": {
                    kind: round(value * 1000.0, 4)
                    for kind, value in sorted(self._pair_seconds.items())
                },
            }


# ----------------------------------------------------------------------
# The decision
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanDecision:
    """One planner verdict: which plan to run and why.

    ``source`` ∈ ``database-order`` / ``bound-ordered`` / ``indexed``;
    ``stage`` is the bound stage's display name or ``None`` (no pruning);
    ``evaluator`` ∈ ``serial`` / ``pooled`` / ``adaptive`` (serial with a
    mid-query switch armed). ``predicted`` maps stage names to predicted
    prune fractions, ``costs`` maps every *considered* plan label to its
    predicted wall-clock (seconds) — losers included, so ``explain()``
    can show the decision, not just the winner.
    """

    source: str
    stage: str | None
    batch: bool
    evaluator: str
    predicted: dict[str, float] = field(default_factory=dict)
    costs: dict[str, float] = field(default_factory=dict)
    reasons: tuple[str, ...] = ()
    #: Predicted number of candidates surviving to exact evaluation.
    survivors: int = 0

    @property
    def summary(self) -> str:
        prune = self.stage or "no-prune"
        return f"{self.source}+{prune}/{self.evaluator}"


class QueryPlanner:
    """Enumerate candidate plans, cost each, pick the cheapest.

    The plan space matches what the fixed backends span: three candidate
    sources (exhaustive scan, scalar feature-index bounds, vectorized
    bounds + threshold pre-filter), the bound stage on/off and batch vs
    scalar, serial vs pooled evaluation. Soundness constraints prune the
    space first (tolerant Pareto pruning is not transitive; the anytime
    path is serial by design; batch stages need NumPy), then each
    survivor is costed from the profile and the cheapest wins —
    deterministic tie-break on enumeration order.
    """

    def __init__(
        self,
        profile: SelectivityProfile,
        numpy_available: bool | None = None,
        max_workers: int | None = None,
    ) -> None:
        if numpy_available is None:
            from repro.api.backends import _numpy_available

            numpy_available = _numpy_available()
        self.profile = profile
        self.numpy_available = numpy_available
        self.max_workers = max(1, max_workers or os.cpu_count() or 1)

    # -- soundness gates -------------------------------------------------
    @staticmethod
    def prunes(spec: "GraphQuery") -> bool:
        """Whether bound pruning is sound for ``spec`` (tolerant
        dominance is not transitive — same rule as the sharded backend)."""
        return not (
            spec.kind in ("skyline", "skyband") and spec.tolerance > 0
        )

    def pool_usable(self, spec: "GraphQuery") -> bool:
        """Whether pooled evaluation is even an option for ``spec``."""
        return self.max_workers > 1 and not spec.anytime

    # -- cost model ------------------------------------------------------
    def _predicted_selectivity(self, kind: str, stage_name: str) -> float:
        observed = self.profile.selectivity(kind, stage_name)
        if observed is None:
            # Batch and scalar Pareto stages have identical semantics —
            # an observation of one predicts the other.
            sibling = (
                stage_name[: -len("(batch)")]
                if stage_name.endswith("(batch)")
                else f"{stage_name}(batch)"
            )
            observed = self.profile.selectivity(kind, sibling)
        if observed is not None:
            return observed
        return PRIOR_SELECTIVITY.get(kind, 0.4)

    def _pair_seconds(self, kind: str, avg_order: float) -> float:
        observed = self.profile.pair_seconds(kind)
        if observed is not None:
            return observed
        return _pair_seconds_prior(avg_order)

    def _eval_seconds(
        self, survivors: float, pair_seconds: float, pool_started: bool
    ) -> tuple[float, float]:
        """(serial, pooled) predicted evaluation seconds for survivors."""
        serial = survivors * pair_seconds
        workers = self.max_workers
        # The pooled drain auto-sizes to ~4 chunks per worker.
        chunks = min(max(survivors, 0.0), float(workers * 4))
        start = 0.0 if pool_started else POOL_START_SECONDS
        pooled = (
            start
            + chunks * POOL_CHUNK_SECONDS
            + survivors * pair_seconds / workers
        )
        return serial, pooled

    def decide(
        self,
        spec: "GraphQuery",
        db_size: int,
        avg_order: float,
        pool_started: bool = False,
    ) -> PlanDecision:
        """Cost every legal plan for ``spec`` and return the cheapest."""
        kind = spec.kind
        n = float(db_size)
        pair_s = self._pair_seconds(kind, avg_order)
        pruning = self.prunes(spec)
        pool_ok = self.pool_usable(spec)
        reasons: list[str] = []
        if not pruning:
            reasons.append(
                "tolerant dominance is not transitive: bound pruning off"
            )
        if spec.anytime:
            reasons.append("anytime budget: evaluation is serial by design")
        elif not pool_ok:
            reasons.append(
                f"pool not usable (workers={self.max_workers})"
            )

        from repro.engine.plan import bound_stage_for

        scalar_stage = bound_stage_for(spec).name
        batch_stage = scalar_stage
        if self.numpy_available and kind in ("skyline", "skyband"):
            batch_stage = f"{scalar_stage}(batch)"

        # (label, source, stage, batch, setup_s, per_candidate_s, sel)
        options: list[tuple[str, str, str | None, bool, float, float, float]] = [
            ("exhaustive", "database-order", None, False, 0.0, 0.0, 0.0)
        ]
        if pruning:
            sel = self._predicted_selectivity(kind, scalar_stage)
            options.append(
                (
                    "scalar-index",
                    "bound-ordered",
                    scalar_stage,
                    False,
                    0.0,
                    SCALAR_BOUND_SECONDS + CASCADE_CHECK_SECONDS,
                    sel,
                )
            )
            if self.numpy_available:
                if kind == "threshold":
                    # The vectorized source pre-filters before the
                    # cascade; the residual threshold stage prunes ~0.
                    sel = self._predicted_selectivity(
                        kind, "batch-prefilter"
                    )
                else:
                    sel = self._predicted_selectivity(kind, batch_stage)
                options.append(
                    (
                        "vectorized",
                        "indexed",
                        batch_stage,
                        True,
                        BATCH_SETUP_SECONDS,
                        BATCH_BOUND_SECONDS + CASCADE_CHECK_SECONDS,
                        sel,
                    )
                )

        costs: dict[str, float] = {}
        best: tuple[float, PlanDecision] | None = None
        for label, source, stage, batch, setup_s, per_cand_s, sel in options:
            survivors = n * (1.0 - min(max(sel, 0.0), 1.0))
            serial_s, pooled_s = self._eval_seconds(
                survivors, pair_s, pool_started
            )
            filter_s = setup_s + n * per_cand_s
            serial_total = filter_s + serial_s
            evaluator_plans = [("serial", serial_total)]
            if pool_ok:
                evaluator_plans.append(("pooled", filter_s + pooled_s))
            for evaluator, total in evaluator_plans:
                costs[f"{label}/{evaluator}"] = total
                if best is not None and total >= best[0]:
                    continue
                predicted = {}
                if batch and spec.kind == "threshold":
                    # The pre-filter does the pruning in the source; the
                    # residual cascade stage sees only survivors.
                    predicted["batch-prefilter"] = sel
                    predicted[stage] = 0.0
                elif stage is not None:
                    predicted[stage] = sel
                best = (
                    total,
                    PlanDecision(
                        source=source,
                        stage=stage,
                        batch=batch,
                        evaluator=evaluator,
                        predicted=predicted,
                        survivors=int(survivors),
                    ),
                )
        assert best is not None  # the exhaustive option always exists
        decision = best[1]
        # Serial winners keep the pool in reserve: the adaptive evaluator
        # measures true per-pair cost and switches if serial was a
        # mis-prediction. Pure-serial environments can't switch.
        evaluator = decision.evaluator
        if evaluator == "serial" and pool_ok:
            evaluator = "adaptive"
        return PlanDecision(
            source=decision.source,
            stage=decision.stage,
            batch=decision.batch,
            evaluator=evaluator,
            predicted=decision.predicted,
            costs=costs,
            reasons=tuple(reasons),
            survivors=decision.survivors,
        )


# ----------------------------------------------------------------------
# Mid-query re-planning
# ----------------------------------------------------------------------
def stage_warmup(spec) -> int:
    """Exact evaluations a bound stage needs before it *can* prune.

    Dominance- and rank-based stages prune against established exact
    vectors: the Pareto stage needs at least one, the rank/skyband
    stages need ``k``. Counting candidates seen before that point
    toward the drop-gate calibration would read structural warm-up as
    a collapsed prune rate (pruning is back-loaded on bound-ordered
    sources) and drop a perfectly good stage. Threshold bounds prune
    each candidate independently — no warm-up.
    """
    if spec.kind in ("topk", "skyband"):
        return int(spec.k or 1)
    if spec.kind == "skyline":
        return 1
    return 0


class AdaptiveStage(Stage):
    """Wrap a bound stage; drop it when its prune rate collapses.

    The calibration clock starts only once the inner stage has received
    ``warmup`` exact observations (see :func:`stage_warmup`) — before
    that it has no pruning power by construction. After a calibration
    prefix of ``calibration`` counted candidates, if the observed prune
    rate fell below ``STAGE_DROP_RATIO ×`` the predicted selectivity
    (and below ``STAGE_DROP_FLOOR`` absolutely — a stage still pruning
    a third of the database stays even when the prediction was higher),
    the inner stage is dropped for the remainder: its
    ``decide``/``observe`` stop running, so a Pareto scan over a growing
    dominator set stops taxing every candidate. Dropping a *pruning*
    stage is always sound — survivors are evaluated exactly.

    The wrapper borrows the inner stage's ``name`` so per-stage prune
    counts and profile feedback attribute to the real stage.
    """

    def __init__(
        self,
        inner: Stage,
        predicted: float,
        events: list,
        calibration: int = CALIBRATION_MIN,
        warmup: int = 0,
        shard: int | None = None,
    ) -> None:
        self.name = inner.name
        self.inner = inner
        self.predicted = predicted
        self.events = events
        self.calibration = max(1, calibration)
        self.warmup = max(0, warmup)
        self.shard = shard
        self.observes = 0
        self.seen = 0
        self.pruned = 0
        self.dropped = False

    @property
    def observed(self) -> float:
        return self.pruned / self.seen if self.seen else 0.0

    def decide(self, candidate: Candidate) -> "str | tuple[float, ...] | None":
        if self.dropped:
            return None
        verdict = self.inner.decide(candidate)
        if self.observes < self.warmup:
            return verdict
        self.seen += 1
        if verdict == "prune":
            self.pruned += 1
        if self.seen == self.calibration:
            observed = self.observed
            if observed < min(
                self.predicted * STAGE_DROP_RATIO, STAGE_DROP_FLOOR
            ):
                self.dropped = True
                event = {
                    "event": "drop-stage",
                    "stage": self.name,
                    "after_candidates": self.seen,
                    "predicted": round(self.predicted, 4),
                    "observed": round(observed, 4),
                }
                if self.shard is not None:
                    event["shard"] = self.shard
                self.events.append(event)
        return verdict

    def observe(self, graph_id: int, values: tuple[float, ...]) -> None:
        if not self.dropped:
            self.observes += 1
            self.inner.observe(graph_id, values)


class AdaptiveEvaluator(Evaluator):
    """Serial evaluation with a mid-query switch to the process pool.

    The planner picks this when serial looks cheapest but a pool exists:
    the first ``calibration`` pairs are solved inline while their wall
    cost is measured; if the projected cost of the remaining survivors —
    ``remaining × measured per-pair × (1 − 1/workers)`` saved — exceeds
    the pool's amortized startup, the remainder is deferred onto the
    wrapped :class:`~repro.engine.workers.PooledEvaluator` and drained
    after the scan (a re-plan event is recorded). The engine handles
    mixed interleaved/deferred results natively, so the switch is
    invisible to correctness: every survivor is still evaluated exactly.
    """

    interleaved = True

    def __init__(
        self,
        pooled: "PooledEvaluator",
        expected_survivors: int,
        events: list,
        calibration: int = CALIBRATION_MIN,
        pool_started: bool = False,
        shard: int | None = None,
    ) -> None:
        self._serial = SerialEvaluator()
        self._pooled = pooled
        self._expected = max(0, expected_survivors)
        self._events = events
        self._calibration = max(1, calibration)
        self._pool_started = pool_started
        self._shard = shard
        self._evaluated = 0
        self._spent = 0.0
        self.switched = False

    def begin(self, ctx: "RunContext") -> None:
        self._pooled.begin(ctx)
        self._evaluated = 0
        self._spent = 0.0
        self.switched = False

    def _should_switch(self) -> bool:
        if self._evaluated < self._calibration:
            return False
        per_pair = self._spent / self._evaluated
        remaining = max(0, self._expected - self._evaluated)
        workers = self._pooled.max_workers
        saved = remaining * per_pair * (1.0 - 1.0 / workers)
        start = 0.0 if self._pool_started else POOL_START_SECONDS
        chunks = len(self._pooled.chunk(list(range(remaining))))
        return saved > start + chunks * POOL_CHUNK_SECONDS

    def evaluate(self, ctx, candidate):
        if self.switched:
            return self._pooled.evaluate(ctx, candidate)
        begin = time.perf_counter()
        values = self._serial.evaluate(ctx, candidate)
        self._spent += time.perf_counter() - begin
        self._evaluated += 1
        if self._evaluated == self._calibration and self._should_switch():
            self.switched = True
            event = {
                "event": "switch-evaluator",
                "from": "serial",
                "to": "pooled",
                "after_pairs": self._evaluated,
                "pair_ms": round(self._spent / self._evaluated * 1000.0, 4),
                "expected_remaining": max(
                    0, self._expected - self._evaluated
                ),
            }
            if self._shard is not None:
                event["shard"] = self._shard
            self._events.append(event)
        return values

    def drain(self, ctx):
        if self.switched:
            return self._pooled.drain(ctx)
        return []

    def drained_pruned_ids(self):
        if self.switched:
            return self._pooled.drained_pruned_ids()
        return ()


# ----------------------------------------------------------------------
# Environment diagnostics (the ``repro backends`` CLI)
# ----------------------------------------------------------------------
def availability() -> dict:
    """What the planner has to work with on this host.

    Reported by ``python -m repro backends`` so users can see why
    ``auto`` picked what it picked: NumPy gates the vectorized source
    and batch stages, ``cpu_count`` gates pooled evaluation, and an
    already-started pool zeroes the startup term of the cost model.
    """
    from repro.api.backends import _numpy_available, available_backends

    numpy_version: str | None = None
    if _numpy_available():
        import numpy

        numpy_version = numpy.__version__
    cpu_count = os.cpu_count() or 1
    from repro.engine import workers

    started = sorted(
        size for size, pool in workers._POOLS.items() if pool.started
    )
    return {
        "backends": available_backends(),
        "numpy": numpy_version,
        "cpu_count": cpu_count,
        "pool_usable": cpu_count > 1,
        "pools_started": started,
    }
