"""Budget-aware anytime execution with certified distance intervals.

:func:`run_plan_anytime` is the engine path behind every spec that
carries a :attr:`~repro.api.spec.GraphQuery.budget_ms` /
``budget_nodes`` knob. Where :func:`~repro.engine.core.run_plan` solves
every cascade survivor *exactly* (and can therefore block arbitrarily
long inside one exponential search), this path runs every evaluation
under a :class:`~repro.graph.budget.Budget` and reasons over the
certified ``[lower, upper]`` :class:`~repro.graph.budget.Interval`
vectors the measures return:

1. **First pass** — candidates walk the same pruning cascade, then each
   survivor gets one budgeted evaluation under a fair share of the
   remaining wall clock (cache hits and bound prunes behave exactly as
   in the exact path; settled vectors feed the stages, so cache
   write-back and cross-candidate feedback are preserved).
2. **Progressive refinement** — only candidates whose intervals
   *straddle* the answer frontier (they could still change the answer)
   are re-evaluated, widest interval first, with the per-pass expansion
   budget doubled each round. Candidates whose intervals already decide
   their fate are never touched again, however wide their intervals.
3. **Consume over intervals** — the top-k / threshold / skyline /
   skyband consumers select over intervals. When no straddlers remain
   the answer is *certified* equal to the exhaustive oracle's (proof
   sketches inline below). When the wall clock expires first, the
   answer is the best-effort selection over certified upper bounds and
   the result is flagged ``approximate``.

A deadline (:mod:`repro.engine.deadline`) tightens the wall clock, and
:class:`~repro.errors.DeadlineExceeded` is raised only when it expired
before a *single* evaluation pass completed — an expired deadline with
work done returns the partial, certified answer instead of failing.

This path is deliberately serial (``plan.evaluator`` is ignored):
restart-based refinement keeps per-pair state in a
:class:`~repro.measures.base.PairContext`, which cannot ship to pool
workers cheaply. Sharded backends still scatter-gather: each shard runs
this path and the merge consumers union intervals.
"""

from __future__ import annotations

import math
import time
from typing import TYPE_CHECKING

from repro.core.gcs import CompoundSimilarity
from repro.db.stats import PhaseTimer
from repro.graph.budget import Budget, Interval
from repro.measures.base import PairContext
from repro.engine.consume import finish_distances, finish_vectors
from repro.engine.plan import Stage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.backends import BackendAnswer
    from repro.engine.core import RunContext
    from repro.engine.plan import EvaluationPlan

#: Minimum wall-clock slice handed to one evaluation pass (seconds).
_MIN_SLICE = 1e-3
#: Hard cap on refinement rounds — a backstop against measures that can
#: never settle; doubling node budgets makes real solvers settle far
#: earlier.
_MAX_ROUNDS = 1000
#: Slack for "lower <= frontier" straddler tests.
_EPS = 1e-9


class _CandidateState:
    """Mutable per-candidate record across evaluation passes."""

    __slots__ = ("graph_id", "bounds", "context", "intervals", "passes",
                 "node_budget", "observed")

    def __init__(self, graph_id, bounds, node_budget):
        self.graph_id = graph_id
        self.bounds = bounds
        self.context: PairContext | None = None
        self.intervals: tuple[Interval, ...] | None = None
        self.passes = 0
        self.node_budget = node_budget
        self.observed = False

    @property
    def settled(self) -> bool:
        return self.intervals is not None and all(
            interval.settled for interval in self.intervals
        )


def _initial_intervals(ctx: "RunContext", state: _CandidateState) -> tuple:
    """Pre-evaluation intervals: index lower bounds up to the trivial cap."""
    out = []
    for index, measure in enumerate(ctx.measures):
        lower = 0.0
        if state.bounds is not None and index < len(state.bounds):
            bound = state.bounds[index]
            if bound == bound:  # NaN-safe
                lower = max(0.0, float(bound))
        upper = 1.0 if measure.normalized else math.inf
        out.append(Interval(lower=min(lower, upper), upper=upper))
    return tuple(out)


def _intervals_of(ctx: "RunContext", state: _CandidateState) -> tuple:
    return (
        state.intervals
        if state.intervals is not None
        else _initial_intervals(ctx, state)
    )


def _width(intervals: tuple[Interval, ...]) -> float:
    return max(interval.width for interval in intervals)


def _evaluate(
    ctx: "RunContext",
    stages: list[Stage],
    state: _CandidateState,
    slice_end: float | None,
    refining: bool,
) -> None:
    """One budgeted evaluation pass over every measure dimension."""
    stats = ctx.stats
    anytime = stats.anytime
    graph = ctx.database.get(state.graph_id)
    if state.context is None:
        state.context = PairContext(graph, ctx.spec.graph)
    budget = Budget(expires_at=slice_end, node_limit=state.node_budget)
    values = tuple(
        measure.distance_interval(graph, ctx.spec.graph, state.context, budget)
        for measure in ctx.measures
    )
    base = _intervals_of(ctx, state)
    state.intervals = tuple(
        before.intersect(after) for before, after in zip(base, values)
    )
    state.passes += 1
    anytime["passes"] += 1
    if refining:
        anytime["refined"] += 1
    if not state.observed and state.settled:
        # Settled == exact: feed the stages like the exact engine does
        # (cache write-back, cross-candidate bound feedback).
        state.observed = True
        stats.exact_evaluations += 1
        exact = tuple(interval.upper for interval in state.intervals)
        for stage in stages:
            stage.observe(state.graph_id, exact)


# ----------------------------------------------------------------------
# Straddler analysis: which candidates could still change the answer?
# ----------------------------------------------------------------------

def _certainly_dominates(a: tuple, b: tuple) -> bool:
    """``a`` dominates ``b`` in *every* realization of both intervals.

    For settled pairs this is exactly Definition 1 (tolerance 0).
    """
    return all(x.upper <= y.lower for x, y in zip(a, b)) and any(
        x.upper < y.lower for x, y in zip(a, b)
    )


def _possibly_dominates(a: tuple, b: tuple) -> bool:
    """``a`` dominates ``b`` in *some* realization of both intervals."""
    return all(x.lower <= y.upper for x, y in zip(a, b)) and any(
        x.lower < y.upper for x, y in zip(a, b)
    )


def vector_membership(
    spec, entries: dict[int, tuple]
) -> tuple[set[int], set[int]]:
    """``(certain_in, certain_out)`` skyline/skyband membership sets.

    A candidate is certainly out once >= K others *certainly* dominate it
    (its true dominator count is at least that) and certainly in once
    fewer than K others *possibly* dominate it (its true count is at
    most that); K = 1 for skyline, ``spec.k`` for the k-skyband. When the
    two sets cover every candidate, membership equals the exhaustive
    oracle's. (Also the gather-phase primitive: the sharded skyline merge
    re-runs this over the union of per-shard intervals.)
    """
    k = spec.k if spec.kind == "skyband" else 1
    certain_in: set[int] = set()
    certain_out: set[int] = set()
    items = list(entries.items())
    for gid, intervals in items:
        certain = 0
        possible = 0
        for other_gid, other in items:
            if other_gid == gid:
                continue
            if _certainly_dominates(other, intervals):
                certain += 1
            if _possibly_dominates(other, intervals):
                possible += 1
        if certain >= k:
            certain_out.add(gid)
        elif possible < k:
            certain_in.add(gid)
    return certain_in, certain_out


def straddler_ids(spec, entries: dict[int, tuple]) -> set[int]:
    """Ids of unsettled interval vectors that could still change the answer.

    An empty set certifies the current intervals decide the answer
    exactly (see the per-kind arguments below). ``entries`` maps graph id
    to its interval vector; this is also the merge-phase certification
    primitive for sharded anytime runs.
    """
    unsettled = {
        gid
        for gid, intervals in entries.items()
        if any(not interval.settled for interval in intervals)
    }
    if not unsettled:
        return set()
    if spec.kind == "topk":
        # kth = k-th smallest upper bound: every candidate whose lower
        # exceeds it has true distance strictly beyond the k best uppers,
        # so it can neither enter the top k nor perturb its order. No
        # straddlers => the k smallest by (upper, id) are all settled and
        # equal the oracle's answer.
        uppers = sorted(intervals[0].upper for intervals in entries.values())
        kth = uppers[spec.k - 1] if len(uppers) >= spec.k else math.inf
        return {
            gid for gid in unsettled if entries[gid][0].lower <= kth + _EPS
        }
    if spec.kind == "threshold":
        # Only candidates whose interval contains the threshold are
        # undecided: lower > t certifies exclusion, upper <= t certifies
        # inclusion (and settling is needed for the reported distance).
        return {
            gid
            for gid in unsettled
            if entries[gid][0].lower <= spec.threshold + _EPS
        }
    # Vector kinds. With a dominance tolerance the interval algebra
    # would have to mix two slacks; certify only via full settlement.
    if spec.tolerance > 0:
        return unsettled
    certain_in, certain_out = vector_membership(spec, entries)
    if len(certain_in) + len(certain_out) == len(entries):
        return set()
    # Membership counting is global (a certainly-out candidate still
    # dominates others), so refine every open interval rather than
    # guessing which one blocks certification.
    return unsettled


def _straddlers(
    ctx: "RunContext", states: dict[int, _CandidateState]
) -> list[_CandidateState]:
    """The :func:`straddler_ids` states of this run, for refinement."""
    entries = {gid: _intervals_of(ctx, s) for gid, s in states.items()}
    return [states[gid] for gid in straddler_ids(ctx.spec, entries)]


# ----------------------------------------------------------------------
# The run
# ----------------------------------------------------------------------

def run_plan_anytime(ctx: "RunContext", plan: "EvaluationPlan") -> "BackendAnswer":
    """Execute an anytime (budgeted) spec; see the module docstring."""
    from repro.api.backends import BackendAnswer

    spec = ctx.spec
    stats = ctx.stats
    deadline = ctx.deadline
    started = time.monotonic()
    wall: float | None = None
    if spec.budget_ms is not None:
        wall = started + spec.budget_ms / 1000.0
    if deadline is not None:
        wall = deadline.expires_at if wall is None else min(wall, deadline.expires_at)

    anytime: dict[str, object] = {
        "passes": 0,
        "refined": 0,
        "settled": 0,
        "interval_pruned": 0,
        "starved": 0,
        "budget_spent_ms": 0.0,
    }
    stats.anytime = anytime

    if plan.source.computes_bounds:
        with PhaseTimer(stats, "bounds"):
            candidates = list(plan.source.candidates(ctx))
    else:
        candidates = list(plan.source.candidates(ctx))
    stages: list[Stage] = [factory(ctx) for factory in plan.cascade]

    pruned_ids: list[int] = list(ctx.prefiltered)
    stats.candidates_considered += len(ctx.prefiltered)
    stats.pruned_by_index += len(ctx.prefiltered)
    stats.pruned_by_batch += len(ctx.prefiltered)
    if ctx.prefiltered:
        stats.count_prune("batch-prefilter", len(ctx.prefiltered))

    states: dict[int, _CandidateState] = {}

    def expired() -> bool:
        return wall is not None and time.monotonic() >= wall

    def slice_end(remaining: int) -> float | None:
        if wall is None:
            return None
        now = time.monotonic()
        share = max(_MIN_SLICE, (wall - now) / max(1, remaining))
        return min(wall, now + share)

    with PhaseTimer(stats, "evaluate"):
        # First pass: cascade walk + one budgeted evaluation each, under
        # a fair share of the remaining wall clock. Candidates the wall
        # clock starves are still scanned (counters, cascade prunes) and
        # enter the interval analysis with their index lower bounds.
        remaining = len(candidates)
        for candidate in candidates:
            remaining -= 1
            stats.candidates_considered += 1
            verdict: "str | tuple | None" = None
            decided: Stage | None = None
            for stage in stages:
                verdict = stage.decide(candidate)
                if verdict is not None:
                    decided = stage
                    break
            if verdict == "prune":
                stats.pruned_by_index += 1
                stats.count_prune(getattr(decided, "name", "stage"))
                pruned_ids.append(candidate.graph_id)
                continue
            state = _CandidateState(
                candidate.graph_id, candidate.bounds, spec.budget_nodes
            )
            states[state.graph_id] = state
            if isinstance(verdict, tuple):
                stats.served_from_cache += 1
                state.intervals = tuple(Interval.exact(v) for v in verdict)
                state.observed = True
                for stage in stages:
                    stage.observe(state.graph_id, verdict)
                continue
            if expired():
                continue  # starved: interval stays at the index bounds
            _evaluate(ctx, stages, state, slice_end(remaining + 1), refining=False)

        # Progressive refinement: straddlers only, widest interval first,
        # expansion budget doubled per round.
        rounds = 0
        while not expired() and rounds < _MAX_ROUNDS:
            straddlers = _straddlers(ctx, states)
            if not straddlers:
                break
            rounds += 1
            straddlers.sort(
                key=lambda s: (-_width(_intervals_of(ctx, s)), s.graph_id)
            )
            for position, state in enumerate(straddlers):
                if expired():
                    break
                if state.node_budget is not None:
                    state.node_budget *= 2
                _evaluate(
                    ctx,
                    stages,
                    state,
                    slice_end(len(straddlers) - position),
                    refining=True,
                )

    evaluated_any = any(s.intervals is not None for s in states.values())
    if deadline is not None and deadline.expired() and not evaluated_any:
        deadline.check()  # raises DeadlineExceeded: zero passes completed

    straddlers = _straddlers(ctx, states)
    approximate = bool(straddlers)
    unsettled = sum(1 for s in states.values() if not s.settled)
    anytime["settled"] = len(states) - unsettled
    anytime["interval_pruned"] = unsettled - len(straddlers)
    anytime["starved"] = sum(1 for s in states.values() if s.intervals is None)
    anytime["budget_spent_ms"] = round((time.monotonic() - started) * 1000.0, 3)

    intervals_payload = {
        gid: _intervals_of(ctx, state) for gid, state in states.items()
    }
    answer_obj = _consume(ctx, states, approximate, pruned_ids)
    answer_obj.intervals = intervals_payload
    answer_obj.approximate = approximate
    return answer_obj


def _consume(
    ctx: "RunContext",
    states: dict[int, _CandidateState],
    approximate: bool,
    pruned_ids: list[int],
) -> "BackendAnswer":
    """Select the answer over intervals (see :func:`_straddlers` for the
    certification arguments; with ``approximate`` the same selections are
    best-effort over certified upper bounds)."""
    from repro.api.backends import BackendAnswer

    spec = ctx.spec
    stats = ctx.stats
    evaluated = {
        gid: state.intervals
        for gid, state in states.items()
        if state.intervals is not None
    }

    if all(state.settled for state in states.values()):
        # Fully settled: identical inputs to the exact engine, so
        # delegate to the shared consumers for answer-set parity
        # (including tolerance semantics).
        if ctx.vector_kind:
            vectors = {
                gid: CompoundSimilarity(
                    values=tuple(iv.upper for iv in intervals), measures=ctx.names
                )
                for gid, intervals in evaluated.items()
            }
            return finish_vectors(spec, vectors, stats, pruned_ids)
        distances = {
            gid: intervals[0].upper for gid, intervals in evaluated.items()
        }
        return finish_distances(spec, distances, stats, pruned_ids)

    if ctx.vector_kind:
        vectors = {
            gid: CompoundSimilarity(
                values=tuple(iv.upper for iv in intervals), measures=ctx.names
            )
            for gid, intervals in evaluated.items()
        }
        if not approximate and spec.tolerance == 0:
            entries = {
                gid: _intervals_of(ctx, state) for gid, state in states.items()
            }
            certain_in, _ = vector_membership(spec, entries)
            answer = sorted(certain_in)
        else:
            # Best effort: ordinary selection over the upper-bound
            # vectors of everything evaluated.
            with PhaseTimer(stats, "skyline"):
                from repro.skyline import skyline as vector_skyline
                from repro.skyline.skyband import k_skyband

                ids = list(vectors)
                values = [vectors[i].values for i in ids]
                if spec.kind == "skyband":
                    positions = k_skyband(values, spec.k, tolerance=spec.tolerance)
                else:
                    positions = vector_skyline(
                        values, algorithm=spec.algorithm, tolerance=spec.tolerance
                    )
                answer = sorted(ids[p] for p in positions)
        stats.skyline_size = len(answer)
        return BackendAnswer(answer, list(vectors), vectors, None, stats, pruned_ids)

    distances = {gid: intervals[0].upper for gid, intervals in evaluated.items()}
    if spec.kind == "topk":
        answer = sorted(distances, key=lambda i: (distances[i], i))[: spec.k]
    else:
        # upper <= t certifies membership even for open intervals.
        answer = [i for i in distances if distances[i] <= spec.threshold]
        answer.sort(key=lambda i: (distances[i], i))
    return BackendAnswer(answer, list(distances), {}, distances, stats, pruned_ids)
