"""Live views: materialized skyline results under database mutation.

``Session.watch(query)`` returns a :class:`LiveView` — a skyline answer
kept incrementally correct while graphs are added to or removed from the
underlying :class:`~repro.db.database.GraphDatabase`. Instead of
re-running the query, the view repairs itself:

* staleness is detected through the database's mutation-version flag, so
  an unchanged database costs one integer comparison per access;
* a repair exactly evaluates only the *affected* candidates — each newly
  inserted graph costs one pair evaluation (cache-served when the shared
  :class:`~repro.db.cache.PairCache` already knows the pair), and a
  removal costs none;
* membership updates ride on :class:`~repro.skyline.incremental.
  IncrementalSkyline`, whose maintained set provably equals the batch
  skyline of the live points.

The view therefore holds exact vectors for *every* live graph (dominated
ones included): a removal may promote previously dominated graphs, and
promoting from known vectors is what makes removals free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import QueryError
from repro.core.gcs import CompoundSimilarity
from repro.db.cache import PairCache
from repro.db.stats import QueryStats
from repro.skyline.incremental import IncrementalSkyline
from repro.api.spec import GraphQuery
from repro.engine.core import resolved_measures
from repro.engine.evaluate import pair_values
from repro.measures.base import measure_names

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.labeled_graph import LabeledGraph
    from repro.api.result import ResultSet
    from repro.api.session import Session


class LiveView:
    """A skyline query result that follows database adds and removes.

    Created through :meth:`repro.api.session.Session.watch`; every access
    to :attr:`ids`/:attr:`graphs`/:meth:`result` first :meth:`refresh`-es
    the view, so reads are always consistent with the database. Only
    plain ``skyline`` specs are watchable — diversity refinement is a
    whole-answer-set computation with no incremental form.
    """

    def __init__(
        self,
        session: "Session",
        spec: GraphQuery,
        cache: PairCache | None = None,
    ) -> None:
        spec.validate()
        if spec.kind != "skyline":
            raise QueryError(
                f"only skyline queries can be watched, not {spec.kind!r}"
            )
        if spec.refine_k is not None:
            raise QueryError(
                "diversity refinement cannot be maintained incrementally; "
                "watch the plain skyline and refine snapshots explicitly"
            )
        self.session = session
        self.database = session.database
        self.spec = spec
        self.cache = cache if cache is not None else PairCache()
        self.measures = resolved_measures(spec)
        self.names = measure_names(self.measures)
        self._query_hash = self.cache.query_hash(spec.graph)
        self._tracker = IncrementalSkyline(len(self.measures), spec.tolerance)
        self._vectors: dict[int, tuple[float, ...]] = {}
        self._version: int | None = None
        #: Number of refresh passes that found work to do.
        self.repairs = 0
        #: Exact pair evaluations spent across initial build + repairs.
        self.evaluations = 0
        #: Pair vectors served by the shared cache instead of solving.
        self.cache_served = 0
        self.refresh()

    # -- repair ---------------------------------------------------------
    def _vector_for(self, graph_id: int) -> tuple[float, ...]:
        entry = self.database.entry(graph_id)
        subject = self.cache.subject_key(entry)
        values = self.cache.get(subject, self._query_hash, self.names)
        if values is not None:
            self.cache_served += 1
            return values
        values = pair_values(entry.graph, self.spec.graph, self.measures)
        self.cache.put(subject, self._query_hash, self.names, values)
        self.evaluations += 1
        return values

    def refresh(self) -> bool:
        """Repair the view if the database changed; returns whether it did.

        Work is proportional to the symmetric difference between the
        tracked ids and the live ids — untouched candidates are never
        re-evaluated.
        """
        if self._version == self.database.version:
            return False
        live = set(self.database.ids())
        for graph_id in [i for i in self._vectors if i not in live]:
            self._tracker.remove(graph_id)
            del self._vectors[graph_id]
        for graph_id in sorted(live - self._vectors.keys()):
            values = self._vector_for(graph_id)
            self._vectors[graph_id] = values
            self._tracker.insert(graph_id, values)
        if self._version is not None:
            self.repairs += 1
        self._version = self.database.version
        return True

    # -- answer access ---------------------------------------------------
    @property
    def ids(self) -> list[int]:
        """Current skyline ids, ascending, ``spec.limit`` applied — the
        same answer executing the spec would return."""
        self.refresh()
        ids = sorted(self._tracker.skyline_keys())
        if self.spec.limit is not None:
            ids = ids[: self.spec.limit]
        return ids

    @property
    def graphs(self) -> "list[LabeledGraph]":
        """Current skyline graphs, aligned with :attr:`ids`."""
        return [self.database.get(graph_id) for graph_id in self.ids]

    @property
    def names_in_answer(self) -> list[str]:
        """Current skyline graph names (``#<id>`` fallback)."""
        return [
            self.database.get(graph_id).name or f"#{graph_id}"
            for graph_id in self.ids
        ]

    def result(self) -> "ResultSet":
        """A full :class:`~repro.api.result.ResultSet` snapshot of the view.

        Carries the exact vectors of every live graph, so ``to_rows()`` /
        ``explain()`` render exactly like an executed memory-backend query.
        """
        from repro.api.result import QueryPlan, ResultSet

        ids = self.ids  # refreshes first
        stats = QueryStats(
            database_size=len(self.database),
            candidates_considered=len(self._vectors),
            exact_evaluations=self.evaluations,
            served_from_cache=self.cache_served,
            skyline_size=len(ids),
        )
        plan = QueryPlan(
            backend="live-view",
            kind="skyline",
            database_size=len(self.database),
            measures=self.names,
            uses_index=False,
            stages=("incremental-repair",),
        )
        vectors = {
            graph_id: CompoundSimilarity(values=values, measures=self.names)
            for graph_id, values in self._vectors.items()
        }
        return ResultSet(
            spec=self.spec,
            plan=plan,
            database=self.database,
            ids=ids,
            evaluated_ids=sorted(self._vectors),
            vectors=vectors,
            distances=None,
            stats=stats,
        )

    def __len__(self) -> int:
        return len(self.ids)

    def __repr__(self) -> str:
        self.refresh()
        return (
            f"<LiveView skyline over {self.database.name!r}: "
            f"{self._tracker.skyline_size} of {len(self._vectors)} graphs, "
            f"{self.repairs} repairs>"
        )
