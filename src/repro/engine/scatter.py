"""Scatter-gather execution over a sharded store.

The distributed-skyline/top-k decomposition the paper's bound-based
pruning supports natively: bounds are *shard-local* facts (a lower bound
on ``d(q, g)`` does not care where ``g`` lives), so the pruning cascade
fans out per shard without losing soundness, and only the cheap
selection step needs a gather phase. Three parts live here:

* :class:`ShardedSource` — the scatter counterpart of
  :class:`~repro.engine.plan.BoundOrderedSource`: one candidate
  sub-source per shard, each over a **shard-local index**
  (:class:`~repro.index.store.FeatureStore` with its SignatureMatrix /
  VP-tree when NumPy is present, the scalar
  :class:`~repro.db.index.FeatureIndex` otherwise) maintained off the
  shard's own ``version`` counter — a mutation on one shard never
  invalidates another shard's index rows.
* merge consumers — :class:`SkylineMerge` (local skyline/skyband per
  shard, then one global dominance pass over the union) and
  :class:`FrontierMerge` (per-shard top-k frontiers / threshold matches
  merged by ``(distance, id)``). Both are property-equal to the
  monolithic consumer (:mod:`repro.engine.consume`); the soundness
  arguments are on the classes.
* :func:`merged_stats` — per-shard counter aggregation into one
  :class:`~repro.db.stats.QueryStats` with a ``per_shard`` breakdown.

Cross-shard pruning falls out of stage *sharing*: the sharded backend
reuses one bound-stage instance across its sequential per-shard runs, so
exact vectors observed while scanning shard ``i`` prune candidates in
every later shard — the scatter analogue of the sorted-scan cutoff.
Sharing is sound because a stage only ever accumulates exact vectors of
real database graphs, and those dominate/cut off globally.
"""

from __future__ import annotations

import abc
import math
from typing import TYPE_CHECKING

from repro.db.database import GraphDatabase
from repro.db.index import FeatureIndex
from repro.db.stats import QueryStats
from repro.engine.plan import BoundOrderedSource, Candidate, CandidateSource
from repro.skyline import skyline as vector_skyline
from repro.skyline.skyband import k_skyband
from repro.api.spec import GraphQuery

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.backends import BackendAnswer
    from repro.engine.core import RunContext
    from repro.shard.store import ShardedGraphDatabase


class _ShardIndexProvider:
    """A shard-local :class:`FeatureIndex`, rebuilt off the shard version.

    The scalar fallback when NumPy is absent; mirrors the ``indexed``
    backend's self-healing maintenance, but scoped to one shard: only
    mutations landing on *this* shard trigger a rebuild.
    """

    def __init__(self, shard: GraphDatabase) -> None:
        self.shard = shard
        self.index = FeatureIndex()
        self._version = -1

    def __call__(self) -> FeatureIndex:
        if self._version != self.shard.version:
            self.index = FeatureIndex()
            for entry in self.shard.entries():
                self.index.add(entry.graph_id, entry.features)
            self._version = self.shard.version
        return self.index


class ShardedSource(CandidateSource):
    """Scatter fan-out: per-shard candidate sources over shard-local indexes.

    :meth:`shard_source` hands the sharded backend one sub-source per
    shard (cached — index state persists across queries);
    :meth:`candidates` is the degenerate single-run form, concatenating
    every shard's candidates in shard order, which keeps the source
    usable in an ordinary :class:`~repro.engine.plan.EvaluationPlan`.
    """

    computes_bounds = True

    def __init__(
        self, database: "ShardedGraphDatabase", use_index: bool = True
    ) -> None:
        # One NumPy gate for the whole library (same probe that registers
        # the vectorized backend); imported lazily to keep module import
        # order between repro.engine and repro.api unconstrained.
        from repro.api.backends import _numpy_available

        self.database = database
        self.use_index = use_index
        self._vectorized = _numpy_available()
        self._sources: dict[int, CandidateSource] = {}
        self._stores: dict[int, object] = {}

    def shard_source(self, index: int) -> CandidateSource:
        """The candidate source bound to shard ``index``."""
        source = self._sources.get(index)
        if source is None:
            shard = self.database.shards[index]
            if self._vectorized:
                from repro.index import FeatureStore, IndexedSource

                store = FeatureStore(shard)
                self._stores[index] = store
                source = IndexedSource(
                    lambda store=store: store, prefilter=self.use_index
                )
            else:
                source = BoundOrderedSource(_ShardIndexProvider(shard))
            self._sources[index] = source
        return source

    def shard_store(self, index: int):
        """Shard ``index``'s :class:`~repro.index.store.FeatureStore`
        (``None`` on the scalar fallback path) — the worker pool exports
        its SignatureMatrix to shared memory from here."""
        self.shard_source(index)
        return self._stores.get(index)

    def candidates(self, ctx: "RunContext") -> list[Candidate]:
        scattered: list[Candidate] = []
        for index in range(self.database.shard_count):
            if len(self.database.shards[index]):
                scattered.extend(self.shard_source(index).candidates(ctx))
        return scattered


# ----------------------------------------------------------------------
# Merge consumers (the gather phase)
# ----------------------------------------------------------------------
def _union_intervals(
    shard_answers: "list[BackendAnswer]",
) -> tuple[dict[int, tuple] | None, bool]:
    """``(interval union, any shard approximate)`` across shard answers.

    Shard id spaces are disjoint, so the union is a plain dict merge;
    ``None`` when no shard ran an anytime (budgeted) plan.
    """
    intervals: dict[int, tuple] | None = None
    approximate = False
    for answer in shard_answers:
        if answer.intervals is not None:
            if intervals is None:
                intervals = {}
            intervals.update(answer.intervals)
            approximate = approximate or answer.approximate
    return intervals, approximate


class MergeConsumer(abc.ABC):
    """Combines per-shard :class:`BackendAnswer` objects into the global one."""

    name: str = "merge"

    @abc.abstractmethod
    def merge(
        self,
        spec: GraphQuery,
        shard_answers: "list[BackendAnswer]",
        stats: QueryStats,
    ) -> "BackendAnswer":
        """The global answer over the per-shard local answers."""


class SkylineMerge(MergeConsumer):
    """Local skyline (or k-skyband) union, then one global dominance pass.

    Soundness: a graph in the global skyline is dominated by nobody, in
    particular by nobody in its own shard — so it is in its shard's local
    skyline and therefore in the union the global pass sees. The same
    argument with "dominated by < k" gives the k-skyband case. The global
    pass then removes exactly the cross-shard-dominated members, because
    exact dominance (tolerance 0, finite values) is transitive: anything
    a discarded local non-member would have eliminated is also eliminated
    by one of that non-member's own dominators, which *is* in some local
    answer.

    Transitivity is where the two documented edge cases live, and both
    fall back to pooling **every** evaluated vector (a verbatim re-run of
    the monolithic selection) instead of only the local answers:

    * ``tolerance > 0`` — tolerant dominance is not transitive;
    * NaN coordinates — NaN compares as a tie, which also breaks
      transitivity (``y`` may dominate ``w`` and ``w`` dominate ``u``
      with ``y`` and ``u`` incomparable through a NaN dimension).

    Property-tested against the monolithic consumer for random vector
    sets and placements in ``tests/test_shard_merge_property.py``.
    """

    name = "skyline-merge"

    def merge(self, spec, shard_answers, stats):
        from repro.api.backends import BackendAnswer

        vectors = {}
        evaluated: list[int] = []
        pruned: list[int] = []
        local_union: list[int] = []
        intervals, approximate = _union_intervals(shard_answers)
        for answer in shard_answers:
            vectors.update(answer.vectors)
            evaluated.extend(answer.evaluated_ids)
            pruned.extend(answer.pruned_ids)
            local_union.extend(answer.ids)
        if intervals is not None and any(
            not interval.settled
            for vector in intervals.values()
            for interval in vector
        ):
            # Anytime gather with open intervals. Upper-bound vectors are
            # not sound dominance evidence (``x <= y_upper`` says nothing
            # about ``x <= y_exact``), so the local-answer-union argument
            # breaks: re-certify membership over the *union* of the
            # per-shard intervals instead. When that cannot decide every
            # candidate the merged answer is best-effort over upper
            # bounds, exactly like the monolithic consumer.
            from repro.engine.anytime import vector_membership

            certain_in: "set[int] | None" = None
            if spec.tolerance == 0:
                member_in, member_out = vector_membership(spec, intervals)
                if len(member_in) + len(member_out) == len(intervals):
                    certain_in = member_in
            if certain_in is not None:
                answer_ids = sorted(certain_in)
                approximate = False
            else:
                approximate = True
                pool = list(vectors)
                values = [vectors[graph_id].values for graph_id in pool]
                if spec.kind == "skyband":
                    positions = k_skyband(values, spec.k, tolerance=spec.tolerance)
                else:
                    positions = vector_skyline(
                        values, algorithm=spec.algorithm, tolerance=spec.tolerance
                    )
                answer_ids = sorted(pool[position] for position in positions)
            stats.skyline_size = len(answer_ids)
            return BackendAnswer(
                answer_ids, evaluated, vectors, None, stats, pruned,
                intervals=intervals, approximate=approximate,
            )
        pool = local_union
        if spec.tolerance > 0 or any(
            math.isnan(value)
            for vector in vectors.values()
            for value in vector.values
        ):
            pool = list(vectors)
        values = [vectors[graph_id].values for graph_id in pool]
        if spec.kind == "skyband":
            positions = k_skyband(values, spec.k, tolerance=spec.tolerance)
        else:
            positions = vector_skyline(
                values, algorithm=spec.algorithm, tolerance=spec.tolerance
            )
        answer_ids = sorted(pool[position] for position in positions)
        stats.skyline_size = len(answer_ids)
        return BackendAnswer(
            answer_ids, evaluated, vectors, None, stats, pruned,
            intervals=intervals, approximate=approximate,
        )


class FrontierMerge(MergeConsumer):
    """Merge per-shard top-k frontiers (or threshold matches) by distance.

    Soundness for top-k: every member of the global top-k is among the k
    best of its own shard (fewer than k graphs beat it anywhere, so fewer
    than k beat it in its shard), hence in some shard's frontier; merging
    the frontiers by ``(distance, id)`` and cutting at ``k`` reproduces
    the monolithic ranking, ties included. Threshold answers are plain
    filters, so the merge is a sorted union.
    """

    name = "frontier-merge"

    def merge(self, spec, shard_answers, stats):
        from repro.api.backends import BackendAnswer

        distances: dict[int, float] = {}
        evaluated: list[int] = []
        pruned: list[int] = []
        frontier: list[int] = []
        intervals, approximate = _union_intervals(shard_answers)
        for answer in shard_answers:
            distances.update(answer.distances or {})
            evaluated.extend(answer.evaluated_ids)
            pruned.extend(answer.pruned_ids)
            frontier.extend(answer.ids)
        if approximate:
            # Best-effort anytime gather: rank everything evaluated by
            # its certified upper bound — sound for threshold (upper <= t
            # certifies membership) and the natural pessimistic ranking
            # for top-k. Certified shard answers (approximate=False) keep
            # the exact frontier-merge below: certified local answers are
            # the exact local answers, members settled, so the classic
            # every-global-member-is-in-its-local-frontier argument holds.
            if spec.kind == "topk":
                frontier = sorted(
                    distances, key=lambda graph_id: (distances[graph_id], graph_id)
                )[: spec.k]
            else:
                frontier = sorted(
                    (g for g in distances if distances[g] <= spec.threshold),
                    key=lambda graph_id: (distances[graph_id], graph_id),
                )
            return BackendAnswer(
                frontier, evaluated, {}, distances, stats, pruned,
                intervals=intervals, approximate=True,
            )
        frontier.sort(key=lambda graph_id: (distances[graph_id], graph_id))
        if spec.kind == "topk":
            frontier = frontier[: spec.k]
        return BackendAnswer(
            frontier, evaluated, {}, distances, stats, pruned,
            intervals=intervals, approximate=False,
        )


def merge_consumer(spec: GraphQuery) -> MergeConsumer:
    """The gather consumer matching the spec's query kind."""
    if spec.kind in ("skyline", "skyband"):
        return SkylineMerge()
    return FrontierMerge()


# ----------------------------------------------------------------------
# Stats aggregation
# ----------------------------------------------------------------------
def merged_stats(
    database: "ShardedGraphDatabase",
    shard_stats: "list[QueryStats | None]",
) -> QueryStats:
    """One global :class:`QueryStats` summing per-shard runs.

    Counters and phase timings add up; the per-shard breakdown (empty
    shards included, with zero counters) lands in
    :attr:`QueryStats.per_shard` for ``explain()``/``to_dict()``.
    """
    stats = QueryStats(database_size=len(database))
    breakdown: list[dict[str, int]] = []
    pool_total: dict[str, object] | None = None
    anytime_total: dict[str, object] | None = None
    for index, shard in enumerate(shard_stats):
        row = {
            "shard": index,
            "size": len(database.shards[index]),
            "candidates": 0,
            "pruned": 0,
            "evaluated": 0,
            "served": 0,
        }
        if shard is not None:
            stats.candidates_considered += shard.candidates_considered
            stats.pruned_by_index += shard.pruned_by_index
            stats.pruned_by_batch += shard.pruned_by_batch
            stats.exact_evaluations += shard.exact_evaluations
            stats.served_from_cache += shard.served_from_cache
            for name, count in shard.pruned_by_stage.items():
                stats.count_prune(name, count)
            for phase, seconds in shard.phase_seconds.items():
                stats.phase_seconds[phase] = (
                    stats.phase_seconds.get(phase, 0.0) + seconds
                )
            row.update(
                candidates=shard.candidates_considered,
                pruned=shard.pruned_by_index,
                evaluated=shard.exact_evaluations,
                served=shard.served_from_cache,
            )
            if shard.pool is not None:
                # Pool telemetry rides along per shard and sums globally
                # (attach kinds merge as per-kind counts; ``workers`` is
                # a pool property, not additive).
                row.update(
                    attach=dict(shard.pool.get("attach", {})),
                    chunks=shard.pool.get("chunks", 0),
                    waves=shard.pool.get("waves", 0),
                    frontier_pruned=shard.pool.get("frontier_pruned", 0),
                    published=shard.pool.get("published", 0),
                )
                if pool_total is None:
                    pool_total = {
                        "workers": 0,
                        "attach": {},
                        "chunks": 0,
                        "waves": 0,
                        "frontier_pruned": 0,
                        "published": 0,
                        "respawns": 0,
                    }
                pool_total["workers"] = max(
                    pool_total["workers"], shard.pool.get("workers", 0)
                )
                for key in (
                    "chunks",
                    "waves",
                    "frontier_pruned",
                    "published",
                    "respawns",
                ):
                    pool_total[key] += shard.pool.get(key, 0)
                for kind, count in shard.pool.get("attach", {}).items():
                    pool_total["attach"][kind] = (
                        pool_total["attach"].get(kind, 0) + count
                    )
            if shard.anytime is not None:
                # Anytime telemetry sums across shards; the wall clock
                # (``budget_spent_ms``) takes the slowest shard since the
                # sequential scatter shares one budget.
                if anytime_total is None:
                    anytime_total = {
                        "passes": 0,
                        "refined": 0,
                        "settled": 0,
                        "interval_pruned": 0,
                        "starved": 0,
                        "budget_spent_ms": 0.0,
                    }
                for key in (
                    "passes",
                    "refined",
                    "settled",
                    "interval_pruned",
                    "starved",
                ):
                    anytime_total[key] += shard.anytime.get(key, 0)
                anytime_total["budget_spent_ms"] = max(
                    anytime_total["budget_spent_ms"],
                    shard.anytime.get("budget_spent_ms", 0.0),
                )
        breakdown.append(row)
    stats.per_shard = breakdown
    stats.pool = pool_total
    stats.anytime = anytime_total
    return stats
