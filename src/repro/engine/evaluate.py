"""Exact evaluators: the batched solving step of the staged engine.

Everything upstream of this module avoids work; this module does the
work. An :class:`Evaluator` receives the candidates that survived the
pruning cascade and produces their exact measure vectors, either

* immediately (:class:`SerialEvaluator`) — each vector is returned to the
  engine loop right away, which is what lets feedback-driven stages
  (Pareto pruning, the top-k cutoff) tighten as the scan progresses; or
* deferred (:class:`PooledEvaluator`) — candidates accumulate and are
  solved in chunks on a process-wide worker pool, traded against stage
  feedback (bound stages see no exact vectors mid-scan and so prune
  nothing; cached-pair serving and write-back still apply).

Workers receive measure *specs* (registry names when possible), not live
objects, so nothing unpicklable crosses the process boundary in the
common case. The pool is shared process-wide per worker count and created
lazily; :func:`shutdown_pool` tears every pool down, and an ``atexit``
hook does so at interpreter exit.
"""

from __future__ import annotations

import abc
import atexit
import os
import pickle
import tempfile
import uuid
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING

from repro.graph.labeled_graph import LabeledGraph
from repro.measures.base import DistanceMeasure, PairContext, resolve_measures

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.core import RunContext
    from repro.engine.plan import Candidate


def pair_values(
    graph: LabeledGraph,
    query: LabeledGraph,
    measures: tuple[DistanceMeasure, ...],
) -> tuple[float, ...]:
    """Exact measure vector of one (graph, query) pair (shared context)."""
    context = PairContext(graph, query)
    return tuple(measure.distance(graph, query, context) for measure in measures)


# ----------------------------------------------------------------------
# Shared process pools
# ----------------------------------------------------------------------
_POOLS: dict[int, ProcessPoolExecutor] = {}


def shared_pool(max_workers: int) -> ProcessPoolExecutor:
    """The process-wide worker pool for ``max_workers``.

    Pools are cached per size so sessions with different worker counts
    coexist — tearing one down to resize would cancel in-flight work of
    unrelated sessions.
    """
    pool = _POOLS.get(max_workers)
    if pool is None:
        pool = _POOLS[max_workers] = ProcessPoolExecutor(max_workers=max_workers)
    return pool


def shutdown_pool() -> None:
    """Tear down every shared worker pool (no-op when none started)."""
    while _POOLS:
        _, pool = _POOLS.popitem()
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_pool)


def _resolve_worker_measures(
    measure_specs: tuple[object, ...] | None,
) -> tuple[DistanceMeasure, ...]:
    from repro.measures.base import default_measures

    return (
        default_measures()
        if measure_specs is None
        else resolve_measures(measure_specs)
    )


def _evaluate_chunk(
    pairs: list[tuple[int, LabeledGraph]],
    query: LabeledGraph,
    measure_specs: tuple[object, ...] | None,
) -> list[tuple[int, tuple[float, ...]]]:
    """Worker: exact measure vectors for one chunk of shipped graphs.

    Fallback path — used only when the shared database payload could not
    be written (see :meth:`PooledEvaluator._ensure_payload`); chunks then
    carry full pickled graphs, the pre-optimization wire format.
    """
    measures = _resolve_worker_measures(measure_specs)
    return [
        (graph_id, pair_values(graph, query, measures)) for graph_id, graph in pairs
    ]


# Worker-side cache of database payloads, keyed by payload token. Each
# worker process deserializes a given database *version* once, no matter
# how many chunks of how many queries it then evaluates — per-chunk tasks
# carry only graph ids. Bounded so long-lived pools serving many
# databases do not accumulate dead payloads.
_WORKER_PAYLOADS: "OrderedDict[str, dict[int, LabeledGraph]]" = OrderedDict()
_WORKER_PAYLOAD_LIMIT = 4


def _worker_payload(token: str, path: str) -> dict[int, LabeledGraph]:
    graphs = _WORKER_PAYLOADS.get(token)
    if graphs is None:
        with open(path, "rb") as handle:
            graphs = pickle.load(handle)
        _WORKER_PAYLOADS[token] = graphs
        while len(_WORKER_PAYLOADS) > _WORKER_PAYLOAD_LIMIT:
            _WORKER_PAYLOADS.popitem(last=False)
    else:
        _WORKER_PAYLOADS.move_to_end(token)
    return graphs


def _evaluate_chunk_by_id(
    token: str,
    path: str,
    graph_ids: list[int],
    query: LabeledGraph,
    measure_specs: tuple[object, ...] | None,
) -> list[tuple[int, tuple[float, ...]]]:
    """Worker: exact vectors for one chunk of graph *ids*.

    The graphs come from the pool-shared payload file — the chunk task
    itself serializes a handful of integers instead of re-pickling
    ``LabeledGraph`` objects per chunk per query.
    """
    graphs = _worker_payload(token, path)
    measures = _resolve_worker_measures(measure_specs)
    return [
        (graph_id, pair_values(graphs[graph_id], query, measures))
        for graph_id in graph_ids
    ]


# Payload files written by this (parent) process, for atexit cleanup.
_PAYLOAD_FILES: set[str] = set()


def _remove_payload_file(path: str) -> None:
    _PAYLOAD_FILES.discard(path)
    try:
        os.remove(path)
    except OSError:
        pass


def _cleanup_payload_files() -> None:
    for path in list(_PAYLOAD_FILES):
        _remove_payload_file(path)


atexit.register(_cleanup_payload_files)


# ----------------------------------------------------------------------
# Evaluators
# ----------------------------------------------------------------------
class Evaluator(abc.ABC):
    """Solves cascade survivors exactly; see the module docstring."""

    #: Whether :meth:`evaluate` returns values immediately (stage feedback).
    interleaved: bool = True

    def begin(self, ctx: "RunContext") -> None:
        """Reset per-run state (called once before the candidate scan)."""

    @abc.abstractmethod
    def evaluate(
        self, ctx: "RunContext", candidate: "Candidate"
    ) -> tuple[float, ...] | None:
        """Solve (or enqueue) one candidate; ``None`` means deferred."""

    def drain(self, ctx: "RunContext") -> list[tuple[int, tuple[float, ...]]]:
        """Deferred results, in ascending id order (empty when interleaved)."""
        return []


class SerialEvaluator(Evaluator):
    """Solve each pair in the scanning thread, immediately."""

    interleaved = True

    def evaluate(self, ctx, candidate):
        graph = ctx.database.get(candidate.graph_id)
        return pair_values(graph, ctx.spec.graph, ctx.measures)


class PooledEvaluator(Evaluator):
    """Accumulate survivors and solve them in chunks on the shared pool.

    The database crosses the process boundary through a **pool-shared
    payload file**, written once per ``(database, version)`` and cached
    on the worker side by token — per-chunk tasks then carry graph *ids*
    only, instead of re-pickling every ``LabeledGraph`` for every chunk
    of every query. Mutating the database bumps its version and lazily
    rolls the payload over; if the payload cannot be written at all
    (read-only temp dir), chunks fall back to shipping the graphs
    directly, the pre-optimization wire format.

    Parameters
    ----------
    max_workers:
        Pool size (default: ``os.cpu_count()``).
    chunk_size:
        Graphs per task; ``None`` auto-sizes to ~4 chunks per worker so
        uneven per-pair costs still balance.
    """

    interleaved = False

    def __init__(
        self, max_workers: int | None = None, chunk_size: int | None = None
    ) -> None:
        self.max_workers = max(1, max_workers or os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self._pending: list[int] = []
        self._payload_database: object | None = None
        self._payload_version: int | None = None
        self._payload_token: str | None = None
        self._payload_path: str | None = None
        self._payload_broken = False

    def begin(self, ctx) -> None:
        self._pending = []

    def evaluate(self, ctx, candidate):
        self._pending.append(candidate.graph_id)
        return None

    def chunk(self, pairs: list) -> list[list]:
        """Split work items into pool tasks (auto-sized unless fixed)."""
        if not pairs:
            return []
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(pairs) // (self.max_workers * 4)))
        return [pairs[i : i + size] for i in range(0, len(pairs), size)]

    # -- pool-shared database payload -----------------------------------
    def _ensure_payload(self, ctx) -> tuple[str, str] | None:
        """``(token, path)`` of the current database payload, or ``None``.

        Re-written only when the database object or its version changed;
        repeated queries against an unmutated database re-use the file
        (and the worker-side deserialization it already paid for).
        """
        database = ctx.database
        if (
            self._payload_database is database
            and self._payload_version == database.version
        ):
            return self._payload_token, self._payload_path
        if self._payload_broken:
            return None
        graphs = {graph_id: graph for graph_id, graph in database}
        path = None
        try:
            handle, path = tempfile.mkstemp(
                prefix="repro-pool-db-", suffix=".pickle"
            )
            with os.fdopen(handle, "wb") as stream:
                pickle.dump(graphs, stream, protocol=pickle.HIGHEST_PROTOCOL)
        except OSError:
            # Latch off for this evaluator (retrying a full-database dump
            # per drain could be expensive); drop any half-written file.
            self._payload_broken = True
            if path is not None:
                _remove_payload_file(path)
            return None
        self.discard_payload()
        self._payload_database = database
        self._payload_version = database.version
        self._payload_token = uuid.uuid4().hex
        self._payload_path = path
        _PAYLOAD_FILES.add(path)
        return self._payload_token, self._payload_path

    def discard_payload(self) -> None:
        """Drop the payload file (called on rollover and backend close)."""
        if self._payload_path is not None:
            _remove_payload_file(self._payload_path)
        self._payload_database = None
        self._payload_version = None
        self._payload_token = None
        self._payload_path = None

    def drain(self, ctx):
        pending, self._pending = self._pending, []
        if not pending:
            return []
        pool = shared_pool(self.max_workers)
        payload = self._ensure_payload(ctx)
        if payload is not None:
            token, path = payload
            futures = [
                pool.submit(
                    _evaluate_chunk_by_id,
                    token,
                    path,
                    chunk,
                    ctx.spec.graph,
                    ctx.measure_specs,
                )
                for chunk in self.chunk(pending)
            ]
        else:
            pairs = [
                (graph_id, ctx.database.get(graph_id)) for graph_id in pending
            ]
            futures = [
                pool.submit(
                    _evaluate_chunk, chunk, ctx.spec.graph, ctx.measure_specs
                )
                for chunk in self.chunk(pairs)
            ]
        results: list[tuple[int, tuple[float, ...]]] = []
        try:
            for future in futures:
                if ctx.deadline is not None:
                    ctx.deadline.check()
                results.extend(future.result())
        except BaseException:
            # An expired deadline (or any drain failure) must not leave
            # orphaned chunks burning pool workers for a dead query.
            for future in futures:
                future.cancel()
            raise
        results.sort()
        return results
