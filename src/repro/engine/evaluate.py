"""Exact evaluators: the batched solving step of the staged engine.

Everything upstream of this module avoids work; this module does the
work. An :class:`Evaluator` receives the candidates that survived the
pruning cascade and produces their exact measure vectors, either

* immediately (:class:`SerialEvaluator`) — each vector is returned to the
  engine loop right away, which is what lets feedback-driven stages
  (Pareto pruning, the top-k cutoff) tighten as the scan progresses; or
* deferred (``PooledEvaluator``) — candidates accumulate and are solved
  in chunks on the **persistent worker pool**
  (:mod:`repro.engine.workers`): long-lived processes holding
  shared-memory database attachments, drained in bound-ordered waves
  with a shared best-so-far frontier, so deferral no longer forfeits
  bound-stage pruning.

A deferring evaluator may also *prune* while draining (frontier checks
against exact vectors published by other workers/shards);
:meth:`Evaluator.drained_pruned_ids` reports those ids so the engine
counts them exactly like cascade prunes.

The pool machinery lives in :mod:`repro.engine.workers`; its public
names (``PooledEvaluator``, ``shared_pool``, ``shutdown_pool``, …) are
re-exported here lazily (module ``__getattr__``) for backward
compatibility without an import cycle — :mod:`repro.engine.workers`
imports this module's :class:`Evaluator` and :func:`pair_values` at the
top level, this module never imports it until one of those names is
actually touched.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.graph.labeled_graph import LabeledGraph
from repro.measures.base import DistanceMeasure, PairContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.core import RunContext
    from repro.engine.plan import Candidate


def pair_values(
    graph: LabeledGraph,
    query: LabeledGraph,
    measures: tuple[DistanceMeasure, ...],
) -> tuple[float, ...]:
    """Exact measure vector of one (graph, query) pair (shared context)."""
    context = PairContext(graph, query)
    return tuple(measure.distance(graph, query, context) for measure in measures)


class Evaluator(abc.ABC):
    """Solves cascade survivors exactly; see the module docstring."""

    #: Whether :meth:`evaluate` returns values immediately (stage feedback).
    interleaved: bool = True

    def begin(self, ctx: "RunContext") -> None:
        """Reset per-run state (called once before the candidate scan)."""

    @abc.abstractmethod
    def evaluate(
        self, ctx: "RunContext", candidate: "Candidate"
    ) -> tuple[float, ...] | None:
        """Solve (or enqueue) one candidate; ``None`` means deferred."""

    def drain(self, ctx: "RunContext") -> list[tuple[int, tuple[float, ...]]]:
        """Deferred results, in ascending id order (empty when interleaved)."""
        return []

    def drained_pruned_ids(self) -> "list[int] | tuple[int, ...]":
        """Ids the last :meth:`drain` soundly pruned instead of solving.

        The engine counts them as index prunes (they were eliminated by
        exact vectors of other graphs, never evaluated). Interleaved
        evaluators never prune, hence the empty default.
        """
        return ()


class SerialEvaluator(Evaluator):
    """Solve each pair in the scanning thread, immediately."""

    interleaved = True

    def evaluate(self, ctx, candidate):
        graph = ctx.database.get(candidate.graph_id)
        return pair_values(graph, ctx.spec.graph, ctx.measures)


#: Names living in :mod:`repro.engine.workers`, importable from here for
#: backward compatibility (tests and backends predate the split).
_WORKER_NAMES = (
    "PooledEvaluator",
    "PersistentPoolEvaluator",
    "WorkerPool",
    "WorkerPoolError",
    "BoundSharing",
    "get_pool",
    "shared_pool",
    "shutdown_pool",
    "live_segments",
)


def __getattr__(name: str):
    if name in _WORKER_NAMES:
        from repro.engine import workers

        return getattr(workers, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(list(globals()) + list(_WORKER_NAMES))
