"""Exact evaluators: the batched solving step of the staged engine.

Everything upstream of this module avoids work; this module does the
work. An :class:`Evaluator` receives the candidates that survived the
pruning cascade and produces their exact measure vectors, either

* immediately (:class:`SerialEvaluator`) — each vector is returned to the
  engine loop right away, which is what lets feedback-driven stages
  (Pareto pruning, the top-k cutoff) tighten as the scan progresses; or
* deferred (:class:`PooledEvaluator`) — candidates accumulate and are
  solved in chunks on a process-wide worker pool, traded against stage
  feedback (bound stages see no exact vectors mid-scan and so prune
  nothing; cached-pair serving and write-back still apply).

Workers receive measure *specs* (registry names when possible), not live
objects, so nothing unpicklable crosses the process boundary in the
common case. The pool is shared process-wide per worker count and created
lazily; :func:`shutdown_pool` tears every pool down, and an ``atexit``
hook does so at interpreter exit.
"""

from __future__ import annotations

import abc
import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING

from repro.graph.labeled_graph import LabeledGraph
from repro.measures.base import DistanceMeasure, PairContext, resolve_measures

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.core import RunContext
    from repro.engine.plan import Candidate


def pair_values(
    graph: LabeledGraph,
    query: LabeledGraph,
    measures: tuple[DistanceMeasure, ...],
) -> tuple[float, ...]:
    """Exact measure vector of one (graph, query) pair (shared context)."""
    context = PairContext(graph, query)
    return tuple(measure.distance(graph, query, context) for measure in measures)


# ----------------------------------------------------------------------
# Shared process pools
# ----------------------------------------------------------------------
_POOLS: dict[int, ProcessPoolExecutor] = {}


def shared_pool(max_workers: int) -> ProcessPoolExecutor:
    """The process-wide worker pool for ``max_workers``.

    Pools are cached per size so sessions with different worker counts
    coexist — tearing one down to resize would cancel in-flight work of
    unrelated sessions.
    """
    pool = _POOLS.get(max_workers)
    if pool is None:
        pool = _POOLS[max_workers] = ProcessPoolExecutor(max_workers=max_workers)
    return pool


def shutdown_pool() -> None:
    """Tear down every shared worker pool (no-op when none started)."""
    while _POOLS:
        _, pool = _POOLS.popitem()
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_pool)


def _evaluate_chunk(
    pairs: list[tuple[int, LabeledGraph]],
    query: LabeledGraph,
    measure_specs: tuple[object, ...] | None,
) -> list[tuple[int, tuple[float, ...]]]:
    """Worker: exact measure vectors for one chunk of database graphs."""
    from repro.measures.base import default_measures

    measures = (
        default_measures()
        if measure_specs is None
        else resolve_measures(measure_specs)
    )
    return [
        (graph_id, pair_values(graph, query, measures)) for graph_id, graph in pairs
    ]


# ----------------------------------------------------------------------
# Evaluators
# ----------------------------------------------------------------------
class Evaluator(abc.ABC):
    """Solves cascade survivors exactly; see the module docstring."""

    #: Whether :meth:`evaluate` returns values immediately (stage feedback).
    interleaved: bool = True

    def begin(self, ctx: "RunContext") -> None:
        """Reset per-run state (called once before the candidate scan)."""

    @abc.abstractmethod
    def evaluate(
        self, ctx: "RunContext", candidate: "Candidate"
    ) -> tuple[float, ...] | None:
        """Solve (or enqueue) one candidate; ``None`` means deferred."""

    def drain(self, ctx: "RunContext") -> list[tuple[int, tuple[float, ...]]]:
        """Deferred results, in ascending id order (empty when interleaved)."""
        return []


class SerialEvaluator(Evaluator):
    """Solve each pair in the scanning thread, immediately."""

    interleaved = True

    def evaluate(self, ctx, candidate):
        graph = ctx.database.get(candidate.graph_id)
        return pair_values(graph, ctx.spec.graph, ctx.measures)


class PooledEvaluator(Evaluator):
    """Accumulate survivors and solve them in chunks on the shared pool.

    Parameters
    ----------
    max_workers:
        Pool size (default: ``os.cpu_count()``).
    chunk_size:
        Graphs per task; ``None`` auto-sizes to ~4 chunks per worker so
        uneven per-pair costs still balance.
    """

    interleaved = False

    def __init__(
        self, max_workers: int | None = None, chunk_size: int | None = None
    ) -> None:
        self.max_workers = max(1, max_workers or os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self._pending: list[int] = []

    def begin(self, ctx) -> None:
        self._pending = []

    def evaluate(self, ctx, candidate):
        self._pending.append(candidate.graph_id)
        return None

    def chunk(self, pairs: list) -> list[list]:
        """Split work items into pool tasks (auto-sized unless fixed)."""
        if not pairs:
            return []
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(pairs) // (self.max_workers * 4)))
        return [pairs[i : i + size] for i in range(0, len(pairs), size)]

    def drain(self, ctx):
        pairs = [
            (graph_id, ctx.database.get(graph_id)) for graph_id in self._pending
        ]
        self._pending = []
        chunks = self.chunk(pairs)
        if not chunks:
            return []
        pool = shared_pool(self.max_workers)
        futures = [
            pool.submit(_evaluate_chunk, chunk, ctx.spec.graph, ctx.measure_specs)
            for chunk in chunks
        ]
        results: list[tuple[int, tuple[float, ...]]] = []
        for future in futures:
            results.extend(future.result())
        results.sort()
        return results
