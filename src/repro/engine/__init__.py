"""Staged evaluation engine: the one execution path behind every backend.

Every query the library answers — through sessions, the legacy shims, the
CLI or the benches — runs as an :class:`EvaluationPlan` in this package:

    candidate source → pruning cascade → exact evaluator → consumer

The shipped backends (:mod:`repro.api.backends`) are thin plan
configurations over these parts; nothing else in the codebase owns a
candidate loop. The pieces compose freely:

* sources — :class:`DatabaseOrderSource` (exhaustive) and
  :class:`BoundOrderedSource` (feature-index lower bounds, best first);
* cascade stages — :func:`bound_pruning` (Pareto / top-k cutoff /
  threshold bounds, per query kind) and :func:`cached_pairs` (the shared
  :class:`~repro.db.cache.PairCache`); custom :class:`Stage`
  implementations plug in alongside;
* evaluators — :class:`SerialEvaluator` (interleaved, feeds the bound
  stages) and :class:`PooledEvaluator` (chunked batching on the
  persistent shared-memory worker pool, :mod:`repro.engine.workers`,
  drained in bound-ordered waves against a shared exact-vector
  frontier);
* scatter-gather — :class:`ShardedSource` (per-shard candidate sources
  over shard-local indexes) plus the :class:`SkylineMerge` /
  :class:`FrontierMerge` gather consumers behind the ``sharded``
  backend (:mod:`repro.engine.scatter`);
* :class:`LiveView` — a materialized skyline kept incrementally correct
  under database mutation (``Session.watch``);
* deadlines — :func:`deadline_scope` makes a :class:`Deadline` ambient
  for every run inside it; the engine checks it cooperatively once per
  candidate and raises :class:`~repro.errors.DeadlineExceeded`
  (:mod:`repro.engine.deadline`, the hook ``repro.server`` cancels
  expired queries through);
* anytime — specs carrying ``budget_ms``/``budget_nodes`` route to
  :func:`run_plan_anytime` (:mod:`repro.engine.anytime`): every solver
  call runs under a :class:`~repro.graph.budget.Budget`, candidates are
  progressively refined, and the answer is selected over certified
  ``[lower, upper]`` intervals instead of blocking on exact searches.

:func:`run_plan` drives a plan; soundness of every cascade stage (a
pruned candidate never appears in the exhaustive answer) is
property-tested in ``tests/test_engine_cascade_property.py``.
"""

from repro.engine.plan import (
    BoundOrderedSource,
    Candidate,
    CandidateSource,
    CachedPairStage,
    DatabaseOrderSource,
    EvaluationPlan,
    ParetoPruneStage,
    RankBoundStage,
    Stage,
    ThresholdBoundStage,
    bound_pruning,
    cached_pairs,
)
from repro.engine.evaluate import (
    Evaluator,
    SerialEvaluator,
    pair_values,
)
from repro.engine.workers import (
    BoundSharing,
    PooledEvaluator,
    WorkerPool,
    WorkerPoolError,
    get_pool,
    live_segments,
    shared_pool,
    shutdown_pool,
)
from repro.engine.anytime import run_plan_anytime
from repro.engine.core import RunContext, make_context, run_plan
from repro.engine.planner import (
    AdaptiveEvaluator,
    AdaptiveStage,
    PlanDecision,
    QueryPlanner,
    SelectivityProfile,
)
from repro.engine.deadline import Deadline, current_deadline, deadline_scope
from repro.engine.scatter import (
    FrontierMerge,
    MergeConsumer,
    ShardedSource,
    SkylineMerge,
    merge_consumer,
    merged_stats,
)
from repro.engine.views import LiveView

__all__ = [
    "BoundOrderedSource",
    "Candidate",
    "CandidateSource",
    "CachedPairStage",
    "DatabaseOrderSource",
    "EvaluationPlan",
    "ParetoPruneStage",
    "RankBoundStage",
    "Stage",
    "ThresholdBoundStage",
    "bound_pruning",
    "cached_pairs",
    "Evaluator",
    "PooledEvaluator",
    "SerialEvaluator",
    "pair_values",
    "BoundSharing",
    "WorkerPool",
    "WorkerPoolError",
    "get_pool",
    "live_segments",
    "shared_pool",
    "shutdown_pool",
    "RunContext",
    "make_context",
    "run_plan",
    "run_plan_anytime",
    "AdaptiveEvaluator",
    "AdaptiveStage",
    "PlanDecision",
    "QueryPlanner",
    "SelectivityProfile",
    "Deadline",
    "current_deadline",
    "deadline_scope",
    "FrontierMerge",
    "MergeConsumer",
    "ShardedSource",
    "SkylineMerge",
    "merge_consumer",
    "merged_stats",
    "LiveView",
]
