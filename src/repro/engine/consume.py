"""Consumers: turn exact vectors into the answer for each query kind.

The selection step over exact vectors is cheap but semantically load
bearing: algorithm choice, tolerance and tie-breaking define the
backend-parity contract. Every plan the engine runs funnels through these
two functions, so answer-set semantics are defined exactly once and
cannot drift per backend.
"""

from __future__ import annotations

from repro.core.gcs import CompoundSimilarity
from repro.db.stats import PhaseTimer, QueryStats
from repro.skyline import skyline as vector_skyline
from repro.skyline.skyband import k_skyband
from repro.api.spec import GraphQuery


def finish_vectors(
    spec: GraphQuery,
    vectors: dict[int, CompoundSimilarity],
    stats: QueryStats,
    pruned_ids: list[int],
) -> "BackendAnswer":
    """Skyline or k-skyband selection over exact vectors."""
    from repro.api.backends import BackendAnswer

    with PhaseTimer(stats, "skyline"):
        ids = list(vectors)
        values = [vectors[i].values for i in ids]
        if spec.kind == "skyband":
            positions = k_skyband(values, spec.k, tolerance=spec.tolerance)
        else:
            positions = vector_skyline(
                values, algorithm=spec.algorithm, tolerance=spec.tolerance
            )
        answer = sorted(ids[p] for p in positions)
    stats.skyline_size = len(answer)
    return BackendAnswer(answer, ids, vectors, None, stats, pruned_ids)


def finish_distances(
    spec: GraphQuery,
    distances: dict[int, float],
    stats: QueryStats,
    pruned_ids: list[int],
) -> "BackendAnswer":
    """Top-k cut or threshold filter over exact distances, ties by id."""
    from repro.api.backends import BackendAnswer

    if spec.kind == "topk":
        answer = sorted(distances, key=lambda i: (distances[i], i))[: spec.k]
    else:
        answer = [i for i in distances if distances[i] <= spec.threshold]
        answer.sort(key=lambda i: (distances[i], i))
    return BackendAnswer(answer, list(distances), {}, distances, stats, pruned_ids)
