"""The staged evaluation engine: one candidate loop for every backend.

:func:`run_plan` executes a validated :class:`~repro.api.spec.GraphQuery`
under an :class:`~repro.engine.plan.EvaluationPlan`:

1. the plan's source enumerates (and orders) candidates, computing index
   lower bounds when it has them;
2. each candidate walks the pruning cascade — a stage may prune it
   (sound: the candidate provably cannot change the answer), serve its
   exact vector (cached pairs), or pass;
3. survivors reach the evaluator — solved immediately (serial) or batched
   onto a process pool and drained after the scan;
4. every exact vector is fed back to the stages (``observe``), then the
   kind-specific consumer selects the answer.

The engine is the only place counting statistics, so ``memory``,
``indexed`` and ``parallel`` report comparable numbers by construction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.gcs import CompoundSimilarity
from repro.db.database import GraphDatabase
from repro.db.stats import PhaseTimer, QueryStats
from repro.graph.features import GraphFeatures
from repro.measures.base import (
    DistanceMeasure,
    default_measures,
    get_measure,
    measure_names,
    resolve_measures,
)
from repro.api.spec import GraphQuery
from repro.engine.consume import finish_distances, finish_vectors
from repro.engine.deadline import Deadline, current_deadline
from repro.engine.evaluate import Evaluator, SerialEvaluator
from repro.engine.plan import EvaluationPlan, Stage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.backends import BackendAnswer
    from repro.db.cache import PairCache


def resolved_measures(spec: GraphQuery) -> tuple[DistanceMeasure, ...]:
    """The spec's GCS dimensions (paper defaults when unset)."""
    if spec.measures is None:
        return default_measures()
    return resolve_measures(spec.measures)


def single_measure(
    spec: GraphQuery, measures: tuple[DistanceMeasure, ...]
) -> DistanceMeasure:
    """The measure of a topk/threshold query (first dimension default)."""
    if spec.measure is not None:
        return get_measure(spec.measure)
    return measures[0]


@dataclass
class RunContext:
    """Everything one engine run shares with its stages and evaluator.

    ``measures`` is the evaluated dimension tuple — the full GCS vector
    for skyline/skyband, a single-element tuple for topk/threshold — and
    ``names`` its registry names (cache keys). ``measure_specs`` is the
    picklable form shipped to pool workers. ``query_features`` is
    computed lazily so plans without bound stages never pay for it.
    """

    spec: GraphQuery
    database: GraphDatabase
    measures: tuple[DistanceMeasure, ...]
    names: tuple[str, ...]
    measure_specs: tuple[object, ...] | None
    cache: "PairCache | None"
    #: Cooperative cancellation hook (see :mod:`repro.engine.deadline`):
    #: the engine loop and deferring evaluators call ``deadline.check()``
    #: between exact evaluations and stop the run once it has passed.
    deadline: Deadline | None = None
    stats: QueryStats = field(default_factory=QueryStats)
    #: Graph ids a candidate source soundly removed in one batched pass
    #: *before* the cascade (e.g. the vectorized threshold pre-filter).
    #: The engine counts them exactly like cascade prunes.
    prefiltered: list[int] = field(default_factory=list)
    _query_features: GraphFeatures | None = None

    @property
    def vector_kind(self) -> bool:
        return self.spec.kind in ("skyline", "skyband")

    @property
    def query_features(self) -> GraphFeatures:
        if self._query_features is None:
            self._query_features = GraphFeatures.of(self.spec.graph)
        return self._query_features


def make_context(
    database: GraphDatabase, spec: GraphQuery, cache: "PairCache | None" = None
) -> RunContext:
    """Resolve a validated spec into the run context the engine needs."""
    gcs_measures = resolved_measures(spec)
    if spec.kind in ("skyline", "skyband"):
        measures = gcs_measures
        measure_specs = spec.measures
    else:
        single = single_measure(spec, gcs_measures)
        measures = (single,)
        measure_specs = (spec.measure,) if spec.measure is not None else (single,)
    return RunContext(
        spec=spec,
        database=database,
        measures=measures,
        names=measure_names(measures),
        measure_specs=measure_specs,
        cache=cache,
        deadline=current_deadline(),
        stats=QueryStats(database_size=len(database)),
    )


def run_plan(
    database: GraphDatabase,
    spec: GraphQuery,
    plan: EvaluationPlan,
    cache: "PairCache | None" = None,
) -> "BackendAnswer":
    """Execute ``spec`` over ``database`` under ``plan`` (see module doc)."""
    spec.validate()
    ctx = make_context(database, spec, cache)
    if spec.anytime:
        from repro.engine.anytime import run_plan_anytime

        return run_plan_anytime(ctx, plan)
    stats = ctx.stats
    evaluator: Evaluator = plan.evaluator or SerialEvaluator()

    if plan.source.computes_bounds:
        with PhaseTimer(stats, "bounds"):
            candidates = plan.source.candidates(ctx)
    else:
        with PhaseTimer(stats, "source"):
            candidates = plan.source.candidates(ctx)
    stages: list[Stage] = [factory(ctx) for factory in plan.cascade]
    evaluator.begin(ctx)

    exact: dict[int, tuple[float, ...]] = {}
    pruned_ids: list[int] = list(ctx.prefiltered)
    stats.candidates_considered += len(ctx.prefiltered)
    stats.pruned_by_index += len(ctx.prefiltered)
    stats.pruned_by_batch += len(ctx.prefiltered)
    if ctx.prefiltered:
        stats.count_prune("batch-prefilter", len(ctx.prefiltered))

    perf = time.perf_counter
    cascade_s = 0.0
    evaluate_s = 0.0

    def record(graph_id: int, values: tuple[float, ...]) -> None:
        nonlocal cascade_s
        exact[graph_id] = values
        begin = perf()
        for stage in stages:
            stage.observe(graph_id, values)
        cascade_s += perf() - begin

    deadline = ctx.deadline
    try:
        for candidate in candidates:
            if deadline is not None:
                deadline.check()
            stats.candidates_considered += 1
            verdict: "str | tuple[float, ...] | None" = None
            decided: Stage | None = None
            begin = perf()
            for stage in stages:
                verdict = stage.decide(candidate)
                if verdict is not None:
                    decided = stage
                    break
            cascade_s += perf() - begin
            if verdict == "prune":
                stats.pruned_by_index += 1
                stats.count_prune(getattr(decided, "name", "stage"))
                pruned_ids.append(candidate.graph_id)
                continue
            if isinstance(verdict, tuple):
                stats.served_from_cache += 1
                record(candidate.graph_id, verdict)
                continue
            begin = perf()
            values = evaluator.evaluate(ctx, candidate)
            evaluate_s += perf() - begin
            if values is not None:
                stats.exact_evaluations += 1
                record(candidate.graph_id, values)
        begin = perf()
        drained = list(evaluator.drain(ctx))
        evaluate_s += perf() - begin
        for graph_id, values in drained:
            stats.exact_evaluations += 1
            record(graph_id, values)
        # A deferring evaluator may prune while draining (shared-frontier
        # checks against exact vectors other workers/shards published);
        # those ids were eliminated without evaluation, exactly like
        # cascade prunes, and the invariants (pruned ∪ evaluated partition
        # the considered candidates) must keep holding.
        deferred_pruned = list(evaluator.drained_pruned_ids())
        if deferred_pruned:
            stats.pruned_by_index += len(deferred_pruned)
            stats.count_prune("shared-frontier", len(deferred_pruned))
            pruned_ids.extend(deferred_pruned)
    finally:
        stats.phase_seconds["cascade"] = (
            stats.phase_seconds.get("cascade", 0.0) + cascade_s
        )
        stats.phase_seconds["evaluate"] = (
            stats.phase_seconds.get("evaluate", 0.0) + evaluate_s
        )

    if ctx.vector_kind:
        vectors = {
            graph_id: CompoundSimilarity(values=values, measures=ctx.names)
            for graph_id, values in exact.items()
        }
        return finish_vectors(spec, vectors, stats, pruned_ids)
    distances = {graph_id: values[0] for graph_id, values in exact.items()}
    return finish_distances(spec, distances, stats, pruned_ids)
