"""Synthetic workloads for the experiments the paper announces (Sec. VIII).

The paper closes with "We plan to conduct some experiments on real-life
data"; the canonical datasets of this literature (AIDS antiviral screen,
chemical compounds) are small labeled graphs with a handful of atom types
and bond kinds. :func:`molecule_like_graph` generates structurally similar
synthetic molecules — connected sparse graphs over an atom-like alphabet
with realistic degree caps — and :func:`SyntheticWorkload` packages a
database plus query set built from mutation neighborhoods (graphs at known
edit radii from the queries) together with distractor graphs, the standard
evaluation workload for graph similarity search.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.errors import DatasetError
from repro.graph.generators import mutate, random_labeled_graph
from repro.graph.labeled_graph import LabeledGraph

#: Atom-like vertex alphabet (frequencies roughly chemistry-shaped).
ATOMS: tuple[str, ...] = ("C", "C", "C", "N", "O", "S")
#: Bond-like edge alphabet.
BONDS: tuple[str, ...] = ("single", "single", "double")


def molecule_like_graph(
    n_vertices: int,
    seed: int | random.Random | None = None,
    name: str | None = None,
) -> LabeledGraph:
    """A connected, sparse, molecule-like labeled graph.

    Edge count is sampled between ``n-1`` (tree) and roughly ``1.3 n``
    (a few rings), mirroring chemical-compound datasets.
    """
    if n_vertices < 2:
        raise DatasetError("molecules need at least 2 atoms")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    max_extra = max(1, n_vertices // 3)
    n_edges = (n_vertices - 1) + rng.randint(0, max_extra)
    n_edges = min(n_edges, n_vertices * (n_vertices - 1) // 2)
    return random_labeled_graph(
        n_vertices,
        n_edges,
        vertex_labels=ATOMS,
        edge_labels=BONDS,
        seed=rng,
        connected=True,
        name=name,
    )


@dataclass
class SyntheticWorkload:
    """A database + query set with known construction provenance.

    Attributes
    ----------
    database:
        All graphs, shuffled (mutants and distractors interleaved).
    queries:
        The query graphs.
    provenance:
        For each database index: ``("mutant", query_index, radius)`` or
        ``("distractor", -1, -1)`` — lets benches report result quality
        against construction ground truth.
    """

    database: list[LabeledGraph]
    queries: list[LabeledGraph]
    provenance: list[tuple[str, int, int]] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of database graphs."""
        return len(self.database)


def make_workload(
    n_graphs: int,
    n_queries: int = 1,
    query_size: int = 8,
    mutant_fraction: float = 0.5,
    radius: tuple[int, int] = (1, 5),
    seed: int | None = 7,
) -> SyntheticWorkload:
    """Build a synthetic similarity-search workload.

    ``mutant_fraction`` of the database consists of mutants of the queries
    at edit radii drawn from ``radius``; the rest are independent
    distractor molecules of comparable size.
    """
    if not 0.0 <= mutant_fraction <= 1.0:
        raise DatasetError("mutant_fraction must be within [0, 1]")
    if n_graphs < 1 or n_queries < 1:
        raise DatasetError("workload needs at least one graph and one query")
    rng = random.Random(seed)
    queries = [
        molecule_like_graph(query_size, seed=rng, name=f"query-{i}")
        for i in range(n_queries)
    ]
    entries: list[tuple[LabeledGraph, tuple[str, int, int]]] = []
    n_mutants = round(n_graphs * mutant_fraction)
    for index in range(n_mutants):
        query_index = rng.randrange(n_queries)
        distance = rng.randint(*radius)
        mutant = mutate(
            queries[query_index],
            distance,
            vertex_labels=ATOMS,
            edge_labels=BONDS,
            seed=rng,
            name=f"mutant-{index}",
        )
        entries.append((mutant, ("mutant", query_index, distance)))
    for index in range(n_graphs - n_mutants):
        size = max(3, query_size + rng.randint(-2, 2))
        graph = molecule_like_graph(size, seed=rng, name=f"distractor-{index}")
        entries.append((graph, ("distractor", -1, -1)))
    rng.shuffle(entries)
    return SyntheticWorkload(
        database=[graph for graph, _ in entries],
        queries=queries,
        provenance=[origin for _, origin in entries],
    )
