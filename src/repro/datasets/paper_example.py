"""Reconstructions of the paper's figures (Figs. 1–3, Sections IV & VI).

The paper's figures are drawings whose machine-readable content is lost;
only their derived statistics survive (sizes, Table II mcs values, Table
III distance triples, the Example 2 edit sequence, Table IV diversity
vectors). This module provides concrete labeled graphs, found by
constraint analysis and verified against the exact solvers in the test
suite, that reproduce those statistics:

* :func:`figure1_pair` — ``g1``/``g2`` with ``DistEd = 4`` whose *optimal*
  edit sequence is exactly the paper's: one edge deletion, one edge
  relabeling, one vertex relabeling, one edge insertion; ``|mcs| = 4``,
  ``DistMcs = 1/3``, ``DistGu = 1/2`` (Examples 2–4).
* :func:`figure3_database` / :func:`figure3_query` — ``D = {g1..g7}`` and
  ``q`` with the exact sizes (6,7,7,6,8,9,10; |q| = 6), the exact Table II
  column (4,4,4,3,5,5,6), and the exact Table III matrix — hence the same
  skyline {g1, g4, g5, g7}, the same dominance pairs (g2 ≺ g7, g3 ≺ g5,
  g6 ≺ g1) and the same top-3-vs-skyline contrast. ``g7`` is a strict
  supergraph of ``q`` as the paper notes.

Pairwise values among the skyline members (Table IV): all six ``|mcs|``
values are reproduced exactly; the three edit distances realisable
together with the (exactly reproduced) query-side constraints are
(g1,g4) = 6, (g4,g5) = 4, (g5,g7) = 3; the remaining three come out at 6
instead of the paper's 5/7/5 — constraint analysis shows the paper's full
pairwise matrix is not simultaneously realisable with Table III (the
value 5 for (g4,g7) in particular contradicts GED(q,g4) = 2,
GED(q,g7) = 4 and q ⊆ g7 for any label assignment). EXPERIMENTS.md
reports both matrices cell by cell.
"""

from __future__ import annotations

from repro.graph.labeled_graph import LabeledGraph

#: Uniform edge label used by the Fig. 3 graphs (vertices carry identity).
PLAIN = "-"


def _graph(name: str, edges: list[tuple[str, str]]) -> LabeledGraph:
    return LabeledGraph.from_edges([(u, v, PLAIN) for u, v in edges], name=name)


# ----------------------------------------------------------------------
# Fig. 1 / Fig. 2 (Examples 2-4)
# ----------------------------------------------------------------------
def figure1_pair() -> tuple[LabeledGraph, LabeledGraph]:
    """The labeled pair of Fig. 1 (edge labels matter here).

    ``DistEd(g1, g2) = 4`` via (edge deletion, edge relabeling, vertex
    relabeling, edge insertion); ``|mcs(g1, g2)| = 4`` (Fig. 2 — the path
    B-C-D-E-F); ``DistMcs = 0.33``; ``DistGu = 0.50``.
    """
    g1 = LabeledGraph.from_edges(
        [
            ("A", "B", "x"),
            ("B", "C", "x"),
            ("C", "D", "x"),
            ("D", "E", "x"),
            ("E", "F", "x"),
            ("B", "E", "y"),
        ],
        name="fig1-g1",
    )
    g2 = LabeledGraph.from_edges(
        [
            ("G", "B", "y"),
            ("B", "C", "x"),
            ("C", "D", "x"),
            ("D", "E", "x"),
            ("E", "F", "x"),
            ("C", "F", "y"),
        ],
        name="fig1-g2",
    )
    return g1, g2


#: The edit sequence Example 2 narrates, as (operation kind) names.
FIGURE1_EDIT_SEQUENCE = (
    "edge deletion",
    "edge relabeling",
    "vertex relabeling",
    "edge insertion",
)


# ----------------------------------------------------------------------
# Fig. 3 (Section VI)
# ----------------------------------------------------------------------
def figure3_query() -> LabeledGraph:
    """The query ``q``: a 6-edge path a-b-c-d-e-f-g."""
    return _graph(
        "q", [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "f"), ("f", "g")]
    )


def figure3_database() -> list[LabeledGraph]:
    """The database ``D = {g1, ..., g7}`` of Fig. 3 (reconstructed)."""
    g1 = _graph(
        "g1", [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("d", "f"), ("a", "g")]
    )
    g2 = _graph(
        "g2",
        [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("f", "g"),
         ("u", "e"), ("u", "f")],
    )
    g3 = _graph(
        "g3",
        [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("f", "g"),
         ("d", "f"), ("b", "g")],
    )
    g4 = _graph(
        "g4", [("a", "u"), ("u", "c"), ("c", "d"), ("d", "e"), ("e", "f"), ("f", "w")]
    )
    g5 = _graph(
        "g5",
        [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "f"),
         ("f", "h"), ("h", "c"), ("h", "e")],
    )
    g6 = _graph(
        "g6",
        [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "f"),
         ("f", "y"), ("a", "c"), ("b", "d"), ("c", "e")],
    )
    g7 = _graph(
        "g7",
        [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "f"), ("f", "g"),
         ("g", "c"), ("g", "e"), ("a", "d"), ("b", "e")],
    )
    return [g1, g2, g3, g4, g5, g6, g7]


#: Table II: |mcs(gi, q)| in database order.
TABLE2_MCS: tuple[int, ...] = (4, 4, 4, 3, 5, 5, 6)

#: Table III: (DistEd, DistMcs, DistGu) per graph, full precision.
TABLE3_GCS: tuple[tuple[float, float, float], ...] = (
    (4.0, 1 - 4 / 6, 1 - 4 / 8),    # g1: (4, 0.33, 0.50)
    (4.0, 1 - 4 / 7, 1 - 4 / 9),    # g2: (4, 0.43, 0.56)
    (3.0, 1 - 4 / 7, 1 - 4 / 9),    # g3: (3, 0.43, 0.56)
    (2.0, 1 - 3 / 6, 1 - 3 / 9),    # g4: (2, 0.50, 0.67)
    (3.0, 1 - 5 / 8, 1 - 5 / 9),    # g5: (3, 0.38, 0.44)
    (4.0, 1 - 5 / 9, 1 - 5 / 10),   # g6: (4, 0.44, 0.50)
    (4.0, 1 - 6 / 10, 1 - 6 / 10),  # g7: (4, 0.40, 0.40)
)

#: The skyline the paper derives from Table III.
EXPECTED_GSS: tuple[str, ...] = ("g1", "g4", "g5", "g7")

#: Dominance pairs the paper calls out (dominated, dominator).
EXPECTED_DOMINANCE: tuple[tuple[str, str], ...] = (
    ("g2", "g7"),
    ("g3", "g5"),
    ("g6", "g1"),
)

#: Section VII / Table V outcome: the maximally diverse pair.
EXPECTED_DIVERSE_SUBSET: tuple[str, ...] = ("g1", "g4")

#: Table IV as printed in the paper (subset -> (v1, v2, v3)).
TABLE4_PAPER: dict[tuple[str, str], tuple[float, float, float]] = {
    ("g1", "g4"): (0.86, 0.67, 0.80),
    ("g1", "g5"): (0.83, 0.50, 0.60),
    ("g1", "g7"): (0.87, 0.60, 0.67),
    ("g4", "g5"): (0.80, 0.62, 0.73),
    ("g4", "g7"): (0.83, 0.70, 0.77),
    ("g5", "g7"): (0.75, 0.50, 0.61),
}

#: Table V as printed (subset -> (ranks, val)).
TABLE5_PAPER: dict[tuple[str, str], tuple[tuple[int, int, int], int]] = {
    ("g1", "g4"): ((2, 2, 1), 5),
    ("g1", "g5"): ((3, 5, 6), 14),
    ("g1", "g7"): ((1, 4, 4), 9),
    ("g4", "g5"): ((4, 3, 3), 10),
    ("g4", "g7"): ((3, 1, 2), 6),
    ("g5", "g7"): ((5, 5, 5), 15),
}

#: Pairwise |mcs| among skyline members implied by Table IV (all exact here).
TABLE4_PAIRWISE_MCS: dict[tuple[str, str], int] = {
    ("g1", "g4"): 2,
    ("g1", "g5"): 4,
    ("g1", "g7"): 4,
    ("g4", "g5"): 3,
    ("g4", "g7"): 3,
    ("g5", "g7"): 5,
}

#: Pairwise DistEd among skyline members implied by Table IV (paper values).
TABLE4_PAIRWISE_GED_PAPER: dict[tuple[str, str], int] = {
    ("g1", "g4"): 6,
    ("g1", "g5"): 5,
    ("g1", "g7"): 7,
    ("g4", "g5"): 4,
    ("g4", "g7"): 5,
    ("g5", "g7"): 3,
}

#: Pairwise DistEd this reconstruction realises (see module docstring).
TABLE4_PAIRWISE_GED_MEASURED: dict[tuple[str, str], int] = {
    ("g1", "g4"): 6,
    ("g1", "g5"): 6,
    ("g1", "g7"): 6,
    ("g4", "g5"): 4,
    ("g4", "g7"): 6,
    ("g5", "g7"): 3,
}


def database_by_name() -> dict[str, LabeledGraph]:
    """``{"g1": g1, ..., "g7": g7}`` for convenient lookups."""
    return {graph.name: graph for graph in figure3_database()}
