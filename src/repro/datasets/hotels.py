"""Table I — the hotels example introducing skyline queries (Example 1).

Seven hotels with price and beach distance; both dimensions are minimised.
The paper's skyline is S = {H2, H4, H6}; H1 is dominated by H2 and H7 by
H6. Used by bench T1 and the quickstart example.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Hotel:
    """One row of Table I."""

    name: str
    price: float  # in the paper's unit (euros, scaled)
    distance_km: float  # distance to the beach

    @property
    def vector(self) -> tuple[float, float]:
        """The 2-dimensional skyline point (price, distance)."""
        return (self.price, self.distance_km)


#: Table I verbatim.
HOTELS: tuple[Hotel, ...] = (
    Hotel("H1", 4.0, 150.0),
    Hotel("H2", 3.0, 110.0),
    Hotel("H3", 2.5, 240.0),
    Hotel("H4", 2.0, 180.0),
    Hotel("H5", 1.7, 270.0),
    Hotel("H6", 1.0, 195.0),
    Hotel("H7", 1.2, 210.0),
)

#: The skyline the paper reports for Example 1.
EXPECTED_SKYLINE: tuple[str, ...] = ("H2", "H4", "H6")


def hotel_vectors() -> list[tuple[float, float]]:
    """The 7 skyline points, in table order."""
    return [hotel.vector for hotel in HOTELS]


def hotel_names() -> list[str]:
    """Hotel names, in table order."""
    return [hotel.name for hotel in HOTELS]
