"""Datasets: the paper's worked examples plus synthetic workloads.

* :mod:`repro.datasets.hotels` — Table I (Example 1).
* :mod:`repro.datasets.paper_example` — reconstructions of Figs. 1–3 with
  every published statistic, used by the golden tests and the benches.
* :mod:`repro.datasets.synthetic` — molecule-like workload generator for
  the scalability experiments the paper announces as future work.
"""

from repro.datasets.hotels import EXPECTED_SKYLINE, HOTELS, Hotel, hotel_names, hotel_vectors
from repro.datasets.paper_example import (
    EXPECTED_DIVERSE_SUBSET,
    EXPECTED_DOMINANCE,
    EXPECTED_GSS,
    FIGURE1_EDIT_SEQUENCE,
    TABLE2_MCS,
    TABLE3_GCS,
    TABLE4_PAIRWISE_GED_MEASURED,
    TABLE4_PAIRWISE_GED_PAPER,
    TABLE4_PAIRWISE_MCS,
    TABLE4_PAPER,
    TABLE5_PAPER,
    database_by_name,
    figure1_pair,
    figure3_database,
    figure3_query,
)
from repro.datasets.synthetic import (
    ATOMS,
    BONDS,
    SyntheticWorkload,
    make_workload,
    molecule_like_graph,
)

__all__ = [
    "Hotel",
    "HOTELS",
    "EXPECTED_SKYLINE",
    "hotel_names",
    "hotel_vectors",
    "figure1_pair",
    "figure3_database",
    "figure3_query",
    "database_by_name",
    "FIGURE1_EDIT_SEQUENCE",
    "TABLE2_MCS",
    "TABLE3_GCS",
    "TABLE4_PAPER",
    "TABLE4_PAIRWISE_MCS",
    "TABLE4_PAIRWISE_GED_PAPER",
    "TABLE4_PAIRWISE_GED_MEASURED",
    "TABLE5_PAPER",
    "EXPECTED_GSS",
    "EXPECTED_DOMINANCE",
    "EXPECTED_DIVERSE_SUBSET",
    "ATOMS",
    "BONDS",
    "SyntheticWorkload",
    "make_workload",
    "molecule_like_graph",
]
