"""Top-k dominating points (Yiu & Mamoulis, VLDB 2007 — related work).

Ranks points by how many others they dominate and returns the ``k`` best.
Unlike the skyline it always returns exactly ``min(k, n)`` answers, which
makes it a useful control when skylines grow large; the library exposes it
as an alternative result-size-bounded retrieval mode.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.skyline.utils import Vector, dominates, validate_vectors


def dominance_counts(vectors: Sequence[Vector], tolerance: float = 0.0) -> list[int]:
    """For each point, the number of points it dominates."""
    validate_vectors(vectors)
    counts = [0] * len(vectors)
    for i, p in enumerate(vectors):
        for j, q in enumerate(vectors):
            if i != j and dominates(p, q, tolerance):
                counts[i] += 1
    return counts


def top_k_dominating(
    vectors: Sequence[Vector],
    k: int,
    tolerance: float = 0.0,
) -> list[int]:
    """Indices of the ``k`` points dominating the most others.

    Ties are broken by input order, making the result deterministic.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    counts = dominance_counts(vectors, tolerance)
    order = sorted(range(len(vectors)), key=lambda i: (-counts[i], i))
    return order[:k]
