"""Block-Nested-Loop skyline (Börzsönyi, Kossmann & Stocker, ICDE 2001).

The classic algorithm the paper's skyline reminder (Section II-A) refers
to: stream points through a window of incomparable candidates. A new point
is discarded if the window dominates it; it evicts every window point it
dominates; otherwise it joins the window. In memory-resident form (no
temp-file spills) the window is just a list and the algorithm is a
short-circuiting O(n * |skyline|) loop — usually far faster than naive.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.skyline.utils import Vector, dominates, validate_vectors


def bnl_skyline(vectors: Sequence[Vector], tolerance: float = 0.0) -> list[int]:
    """Indices of non-dominated vectors, in input order."""
    validate_vectors(vectors)
    window: list[int] = []
    for i, candidate in enumerate(vectors):
        discarded = False
        survivors: list[int] = []
        for j in window:
            if dominates(vectors[j], candidate, tolerance):
                discarded = True
                survivors = window  # candidate dies; window unchanged
                break
            if not dominates(candidate, vectors[j], tolerance):
                survivors.append(j)
        if not discarded:
            survivors.append(i)
        window = survivors
    return sorted(window)
