"""Pareto-dominance primitives over numeric vectors (Definitions 1–2).

All skyline algorithms in this package share these helpers. Vectors are
sequences of floats where **smaller is better** on every dimension (the
paper's convention). A point ``p`` dominates ``q`` iff ``p`` is no worse
everywhere and strictly better somewhere; the skyline is the set of
non-dominated points. Duplicate points do not dominate each other, so all
copies of a non-dominated point belong to the skyline.
"""

from __future__ import annotations

from collections.abc import Sequence

Vector = Sequence[float]


def dominates(p: Vector, q: Vector, tolerance: float = 0.0) -> bool:
    """Whether ``p`` Pareto-dominates ``q`` (Definition 1, minimisation).

    ``tolerance`` treats coordinates within ``tolerance`` of each other as
    equal, which stabilises comparisons of floating-point distance values.

    NaN coordinates compare as ties (neither strictly better nor worse),
    so a vector with NaN entries can still dominate — or be dominated —
    through its finite dimensions; all-NaN vectors are incomparable to
    everything. Pinned by ``test_dominates_with_nan_and_inf``.
    """
    if len(p) != len(q):
        raise ValueError(f"dimension mismatch: {len(p)} vs {len(q)}")
    strictly_better = False
    for pi, qi in zip(p, q):
        if pi > qi + tolerance:
            return False
        if pi < qi - tolerance:
            strictly_better = True
    return strictly_better


def incomparable(p: Vector, q: Vector, tolerance: float = 0.0) -> bool:
    """Neither point dominates the other."""
    return not dominates(p, q, tolerance) and not dominates(q, p, tolerance)


def validate_vectors(vectors: Sequence[Vector]) -> int:
    """Check that all vectors share one dimension; return that dimension.

    An empty collection is fine (dimension 0 by convention).
    """
    if not vectors:
        return 0
    dimension = len(vectors[0])
    for index, vector in enumerate(vectors):
        if len(vector) != dimension:
            raise ValueError(
                f"vector {index} has dimension {len(vector)}, expected {dimension}"
            )
    return dimension


def is_skyline(vectors: Sequence[Vector], indices: Sequence[int],
               tolerance: float = 0.0) -> bool:
    """Independent validation that ``indices`` really is the skyline.

    Checks both soundness (no member is dominated) and completeness (every
    non-member is dominated by someone). Quadratic; used by tests.
    """
    member = set(indices)
    for i, vector in enumerate(vectors):
        dominated = any(
            dominates(vectors[j], vector, tolerance) for j in range(len(vectors)) if j != i
        )
        if i in member and dominated:
            return False
        if i not in member and not dominated:
            return False
    return True
