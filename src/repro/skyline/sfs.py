"""Sort-Filter-Skyline (Chomicki et al.): presort by a monotone score.

Points are processed in ascending order of their coordinate sum (any
strictly monotone aggregate works). After sorting, no point can be
dominated by a *later* point — a dominator has a strictly smaller sum — so
one forward pass comparing only against already-accepted skyline members
suffices. This makes every window comparison a potential accept/reject
decision and removes BNL's eviction logic.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.skyline.utils import Vector, dominates, validate_vectors


def sfs_skyline(vectors: Sequence[Vector], tolerance: float = 0.0) -> list[int]:
    """Indices of non-dominated vectors, in input order."""
    validate_vectors(vectors)
    order = sorted(range(len(vectors)), key=lambda i: (sum(vectors[i]), i))
    skyline: list[int] = []
    for i in order:
        if not any(dominates(vectors[j], vectors[i], tolerance) for j in skyline):
            skyline.append(i)
    return sorted(skyline)
