"""Divide-and-conquer skyline (Börzsönyi et al., ICDE 2001).

Split the points at the median of the first discriminating dimension;
points in the low half can never be dominated by the high half, so the
result is ``skyline(low) ∪ filter(skyline(high), skyline(low))``. Small
partitions fall back to the naive loop. With genuinely multidimensional
data this does asymptotically less work than the nested loops; the
ablation bench (A1) measures where the crossover sits in practice.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.skyline.naive import naive_skyline
from repro.skyline.utils import Vector, dominates, validate_vectors

_SMALL_PARTITION = 16


def dnc_skyline(vectors: Sequence[Vector], tolerance: float = 0.0) -> list[int]:
    """Indices of non-dominated vectors, in input order."""
    dimension = validate_vectors(vectors)
    if dimension == 0:
        return []

    def solve(indices: list[int], depth: int) -> list[int]:
        if len(indices) <= _SMALL_PARTITION:
            local = naive_skyline([vectors[i] for i in indices], tolerance)
            return [indices[i] for i in local]
        # Find a dimension (starting at `depth`) whose values actually split
        # the partition; fully-tied partitions degrade to the naive loop.
        for offset in range(dimension):
            axis = (depth + offset) % dimension
            values = sorted(vectors[i][axis] for i in indices)
            median = values[len(values) // 2]
            low = [i for i in indices if vectors[i][axis] <= median]
            high = [i for i in indices if vectors[i][axis] > median]
            if low and high:
                break
        else:
            local = naive_skyline([vectors[i] for i in indices], tolerance)
            return [indices[i] for i in local]
        low_skyline = solve(low, depth + 1)
        high_skyline = solve(high, depth + 1)
        merged = list(low_skyline)
        for i in high_skyline:
            if not any(dominates(vectors[j], vectors[i], tolerance) for j in low_skyline):
                merged.append(i)
        return merged

    return sorted(solve(list(range(len(vectors))), 0))
