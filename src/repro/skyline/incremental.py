"""Incremental skyline maintenance under insertions and deletions.

A graph database is rarely static; recomputing GSS vectors is the
expensive part, but re-running the skyline pass from scratch after every
insert is also wasteful for large answer sets. :class:`IncrementalSkyline`
maintains the Pareto-optimal set of keyed vectors online:

* **insert**: a new point dominated by a current member goes to the
  dominated pool; otherwise it joins the skyline and evicts every member
  it dominates (evictees join the pool);
* **remove**: removing a pool point is free; removing a skyline member
  promotes exactly those pool points no longer dominated by anything.

The maintained set always equals the batch skyline of the live points
(property-tested against the batch algorithms).
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from repro.skyline.utils import Vector, dominates

Key = Hashable


class IncrementalSkyline:
    """Online Pareto skyline over keyed vectors (minimisation)."""

    def __init__(self, dimension: int, tolerance: float = 0.0) -> None:
        if dimension < 1:
            raise ValueError("dimension must be positive")
        self.dimension = dimension
        self.tolerance = tolerance
        self._vectors: dict[Key, tuple[float, ...]] = {}
        self._skyline: set[Key] = set()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def skyline_keys(self) -> list[Key]:
        """Current skyline keys, in insertion order."""
        return [key for key in self._vectors if key in self._skyline]

    def vector(self, key: Key) -> tuple[float, ...]:
        """The vector stored under ``key``."""
        return self._vectors[key]

    def __len__(self) -> int:
        return len(self._vectors)

    def __contains__(self, key: object) -> bool:
        return key in self._vectors

    @property
    def skyline_size(self) -> int:
        """Number of Pareto-optimal points right now."""
        return len(self._skyline)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, key: Key, vector: Vector) -> bool:
        """Add (or replace) ``key``; returns whether it is now a skyline member."""
        values = tuple(float(v) for v in vector)
        if len(values) != self.dimension:
            raise ValueError(
                f"expected dimension {self.dimension}, got {len(values)}"
            )
        if key in self._vectors:
            self.remove(key)
        dominated = any(
            dominates(self._vectors[member], values, self.tolerance)
            for member in self._skyline
        )
        self._vectors[key] = values
        if dominated:
            return False
        evicted = [
            member
            for member in self._skyline
            if dominates(values, self._vectors[member], self.tolerance)
        ]
        for member in evicted:
            self._skyline.discard(member)
        self._skyline.add(key)
        return True

    def remove(self, key: Key) -> list[Key]:
        """Delete ``key``; returns the pool points promoted into the skyline.

        Removing a pool point promotes nothing; removing a member promotes
        exactly those pool points no longer dominated by any live point
        (a promoted point may be dominated by another pool point that is
        also about to rise, so the check runs against all live points, not
        just current members).
        """
        if key not in self._vectors:
            raise KeyError(key)
        was_member = key in self._skyline
        del self._vectors[key]
        self._skyline.discard(key)
        if not was_member:
            return []
        promoted = [
            candidate
            for candidate, values in self._vectors.items()
            if candidate not in self._skyline
            and not any(
                other != candidate
                and dominates(other_values, values, self.tolerance)
                for other, other_values in self._vectors.items()
            )
        ]
        self._skyline.update(promoted)
        return promoted

    def rebuild(self) -> None:
        """Recompute the skyline from scratch (defensive/testing hook)."""
        items = list(self._vectors.items())
        self._skyline = {
            key
            for key, values in items
            if not any(
                other != key and dominates(other_values, values, self.tolerance)
                for other, other_values in items
            )
        }


def incremental_skyline(
    keyed_vectors: Sequence[tuple[Key, Vector]],
    tolerance: float = 0.0,
) -> list[Key]:
    """Convenience: run a stream of insertions, return final skyline keys."""
    if not keyed_vectors:
        return []
    tracker = IncrementalSkyline(len(keyed_vectors[0][1]), tolerance)
    for key, vector in keyed_vectors:
        tracker.insert(key, vector)
    return tracker.skyline_keys()
