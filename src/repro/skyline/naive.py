"""Naive O(n^2) skyline: compare every point against every other.

The reference implementation — trivially correct, used as the oracle in
tests and as the baseline in the algorithm ablation bench (A1).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.skyline.utils import Vector, dominates, validate_vectors


def naive_skyline(vectors: Sequence[Vector], tolerance: float = 0.0) -> list[int]:
    """Indices of non-dominated vectors, in input order."""
    validate_vectors(vectors)
    result = []
    for i, candidate in enumerate(vectors):
        dominated = any(
            dominates(other, candidate, tolerance)
            for j, other in enumerate(vectors)
            if j != i
        )
        if not dominated:
            result.append(i)
    return result
