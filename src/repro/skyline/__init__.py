"""Generic skyline algorithms over numeric vectors (Section II-A).

Four interchangeable skyline implementations (naive, BNL, SFS, divide &
conquer) plus top-k dominating. All operate on sequences of equal-length
float vectors under minimisation and return sorted input indices, so any
of them can back the graph similarity skyline.
"""

from collections.abc import Sequence

from repro.errors import QueryError
from repro.skyline.utils import (
    Vector,
    dominates,
    incomparable,
    is_skyline,
    validate_vectors,
)
from repro.skyline.naive import naive_skyline
from repro.skyline.bnl import bnl_skyline
from repro.skyline.sfs import sfs_skyline
from repro.skyline.dnc import dnc_skyline
from repro.skyline.topk_dominating import dominance_counts, top_k_dominating
from repro.skyline.skyband import dominator_counts, k_skyband
from repro.skyline.incremental import IncrementalSkyline, incremental_skyline

#: Registry of skyline algorithms usable by name.
ALGORITHMS = {
    "naive": naive_skyline,
    "bnl": bnl_skyline,
    "sfs": sfs_skyline,
    "dnc": dnc_skyline,
}


def skyline(
    vectors: Sequence[Vector],
    algorithm: str = "bnl",
    tolerance: float = 0.0,
) -> list[int]:
    """Indices of the Pareto-optimal vectors (Definition 2).

    ``algorithm`` is one of ``naive``, ``bnl``, ``sfs``, ``dnc``; all return
    identical results (property-tested), differing only in running time.
    """
    try:
        implementation = ALGORITHMS[algorithm]
    except KeyError:
        raise QueryError(
            f"unknown skyline algorithm {algorithm!r}; "
            f"available: {', '.join(sorted(ALGORITHMS))}"
        ) from None
    return implementation(vectors, tolerance=tolerance)


__all__ = [
    "Vector",
    "dominates",
    "incomparable",
    "is_skyline",
    "validate_vectors",
    "naive_skyline",
    "bnl_skyline",
    "sfs_skyline",
    "dnc_skyline",
    "dominance_counts",
    "top_k_dominating",
    "dominator_counts",
    "k_skyband",
    "IncrementalSkyline",
    "incremental_skyline",
    "ALGORITHMS",
    "skyline",
]
