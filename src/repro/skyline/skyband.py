"""k-skyband: the standard relaxation of the skyline.

The k-skyband of a point set contains every point dominated by *fewer
than k* other points; the skyline is the 1-skyband. It is the natural
knob when a plain skyline returns too few answers — the complement of the
paper's diversity refinement, which handles skylines that are too large.
Exposed on the executor and used by the dimensionality experiments.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.skyline.utils import Vector, dominates, validate_vectors


def dominator_counts(vectors: Sequence[Vector], tolerance: float = 0.0) -> list[int]:
    """For each point, how many other points dominate it."""
    validate_vectors(vectors)
    counts = [0] * len(vectors)
    for i, p in enumerate(vectors):
        for j, q in enumerate(vectors):
            if i != j and dominates(q, p, tolerance):
                counts[i] += 1
    return counts


def k_skyband(
    vectors: Sequence[Vector],
    k: int,
    tolerance: float = 0.0,
) -> list[int]:
    """Indices of points dominated by fewer than ``k`` others.

    ``k = 1`` gives exactly the skyline; larger ``k`` relaxes membership
    monotonically (the k-skyband contains the (k-1)-skyband).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    counts = dominator_counts(vectors, tolerance)
    return [i for i, count in enumerate(counts) if count < k]
