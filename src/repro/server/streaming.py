"""The watch hub: live skyline views streamed as NDJSON events.

``POST /v1/watch`` upgrades a connection into an event stream over one
:class:`~repro.engine.views.LiveView` (``Session.watch``): the client
receives a ``snapshot`` event immediately, then one ``update`` event per
served mutation that actually changed the view's answer. Events are
newline-delimited JSON, ordered, and deduplicated — an insert dominated
into oblivion produces no event, because the view's membership did not
change.

The hub is the fan-out point between the mutation path and the open
streams: a mutation bumps the hub (one ``asyncio.Event`` per watcher),
each watcher coalesces however many mutations happened since it last
looked into a single refresh (LiveView repairs are incremental, so the
cost is proportional to the symmetric difference, not the mutation
count). Watcher bookkeeping is explicit — :meth:`register` /
:meth:`unregister` — so the disconnect tests can assert the hub drains
to zero and no tasks leak.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field
from typing import Any


@dataclass
class WatchHandle:
    """One registered watcher: its live view and its wake-up event."""

    watch_id: int
    view: Any  # repro.engine.views.LiveView
    wakeup: asyncio.Event = field(default_factory=asyncio.Event)
    #: ids of the last event actually sent (dedup baseline).
    last_ids: list[int] | None = None
    events_sent: int = 0


class WatchHub:
    """Registry + broadcast channel for the open watch streams."""

    def __init__(self, max_watches: int) -> None:
        if max_watches < 1:
            raise ValueError("max_watches must be at least 1")
        self.max_watches = max_watches
        self._watches: dict[int, WatchHandle] = {}
        self._ids = itertools.count(1)
        #: Lifetime counters for /v1/stats.
        self.opened = 0
        self.closed = 0
        self.refused = 0

    @property
    def active(self) -> int:
        return len(self._watches)

    def register(self, view: Any) -> WatchHandle | None:
        """Track a new watcher; ``None`` when the hub is at capacity."""
        if len(self._watches) >= self.max_watches:
            self.refused += 1
            return None
        handle = WatchHandle(watch_id=next(self._ids), view=view)
        self._watches[handle.watch_id] = handle
        self.opened += 1
        return handle

    def unregister(self, handle: WatchHandle) -> None:
        """Drop a watcher (idempotent — error paths may race the exit)."""
        if self._watches.pop(handle.watch_id, None) is not None:
            self.closed += 1

    def notify(self) -> None:
        """Wake every watcher (called after each applied mutation)."""
        for handle in self._watches.values():
            handle.wakeup.set()

    def snapshot(self) -> dict[str, int]:
        return {
            "max_watches": self.max_watches,
            "active": self.active,
            "opened": self.opened,
            "closed": self.closed,
            "refused": self.refused,
        }


def view_event(
    handle: WatchHandle, event: str, version: int, ids: list[int]
) -> dict[str, Any]:
    """One wire event for ``handle``'s current view state.

    ``ids`` is the freshly refreshed answer — the caller computes it
    while holding the database read lock, so the event is a consistent
    snapshot even while mutations are in flight.
    """
    payload = {
        "event": event,
        "watch_id": handle.watch_id,
        "seq": handle.events_sent,
        "ids": ids,
        "answer": [
            handle.view.database.get(graph_id).name or f"#{graph_id}"
            for graph_id in ids
        ],
        "database_version": version,
    }
    handle.last_ids = ids
    handle.events_sent += 1
    return payload
