"""Wire protocol of the query service: framing, envelopes, error codes.

The service speaks plain HTTP/1.1 with JSON bodies. Crucially, the JSON
*payloads* are not a new dialect: a query request body is exactly
:meth:`repro.api.spec.GraphQuery.to_dict`, a query response is exactly
:meth:`repro.api.result.ResultSet.to_dict`, and a mutation body is
exactly one :mod:`repro.api.ops` payload — the formats the library
already round-trips and the testkit already fuzzes. The only
server-specific shape is the error envelope::

    {"error": {"code": "queue-full", "message": "...", ...}}

with a stable machine-readable ``code`` per failure class (mapped to an
HTTP status by :data:`ERROR_STATUS`), so clients never parse prose.

HTTP framing is deliberately minimal — request line, headers,
``Content-Length`` bodies, keep-alive — implemented over
``asyncio.StreamReader``/``StreamWriter``. Watch streams answer with no
``Content-Length`` and ``Connection: close``: events are newline-
delimited JSON and the stream ends when either side hangs up.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

import asyncio

#: Machine-readable error codes -> HTTP status.
ERROR_STATUS: dict[str, int] = {
    "bad-request": 400,
    "unauthorized": 401,
    "not-found": 404,
    "method-not-allowed": 405,
    "conflict": 409,
    "stale-handle": 409,
    "payload-too-large": 413,
    "queue-full": 429,
    "query-error": 400,
    "deadline-exceeded": 504,
    "watch-limit": 429,
    "internal": 500,
}

_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}

#: Hard cap on request bodies (one graph payload is a few KB; anything
#: near this is abuse, and unbounded reads are a trivial memory DoS).
MAX_BODY_BYTES = 8 * 1024 * 1024
MAX_HEADER_COUNT = 64
MAX_LINE_BYTES = 16 * 1024


class ProtocolError(Exception):
    """A request the server refuses, carrying its structured error."""

    def __init__(self, code: str, message: str, **extra: Any) -> None:
        super().__init__(message)
        self.code = code
        self.extra = extra

    @property
    def status(self) -> int:
        return ERROR_STATUS.get(self.code, 500)

    def payload(self) -> dict[str, Any]:
        return error_payload(self.code, str(self), **self.extra)


def error_payload(code: str, message: str, **extra: Any) -> dict[str, Any]:
    """The structured error envelope every failure path returns."""
    body: dict[str, Any] = {"code": code, "message": message}
    body.update(extra)
    return {"error": body}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes
    keep_alive: bool

    def json(self) -> Any:
        """The decoded JSON body (raises :class:`ProtocolError`)."""
        if not self.body:
            raise ProtocolError("bad-request", "request body must be JSON")
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise ProtocolError(
                "bad-request", f"malformed JSON body: {exc}"
            ) from exc


def _parse_target(target: str) -> tuple[str, dict[str, str]]:
    """Split a request target into path + query-string dict."""
    path, _, query_string = target.partition("?")
    query: dict[str, str] = {}
    for pair in query_string.split("&"):
        if not pair:
            continue
        key, _, value = pair.partition("=")
        query[key] = value
    return path, query


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off the stream; ``None`` on a closed connection.

    Raises :class:`ProtocolError` on malformed framing or oversized
    payloads — the caller answers with the structured error and closes.
    """
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line:
        return None
    if len(request_line) > MAX_LINE_BYTES:
        raise ProtocolError("bad-request", "request line too long")
    try:
        method, target, version = request_line.decode("ascii").split()
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(
            "bad-request", f"malformed request line: {exc}"
        ) from exc

    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        if len(headers) >= MAX_HEADER_COUNT:
            raise ProtocolError("bad-request", "too many headers")
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError as exc:
            raise ProtocolError(
                "bad-request", f"malformed header: {exc}"
            ) from exc
        headers[name.strip().lower()] = value.strip()

    length_header = headers.get("content-length", "0")
    try:
        length = int(length_header)
    except ValueError as exc:
        raise ProtocolError(
            "bad-request", f"malformed Content-Length {length_header!r}"
        ) from exc
    if length < 0 or length > MAX_BODY_BYTES:
        raise ProtocolError(
            "payload-too-large",
            f"request body of {length} bytes exceeds the "
            f"{MAX_BODY_BYTES}-byte limit",
        )
    body = await reader.readexactly(length) if length else b""

    connection = headers.get("connection", "").lower()
    keep_alive = version.upper() != "HTTP/1.0"
    if connection == "close":
        keep_alive = False
    elif connection == "keep-alive":
        keep_alive = True
    path, query = _parse_target(target)
    return Request(
        method=method.upper(),
        path=path,
        query=query,
        headers=headers,
        body=body,
        keep_alive=keep_alive,
    )


def encode_response(
    status: int, payload: Any, keep_alive: bool = True
) -> bytes:
    """One complete JSON response (headers + body) as bytes."""
    body = json.dumps(payload).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    headers = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
        "",
        "",
    ]
    return "\r\n".join(headers).encode("ascii") + body


def encode_stream_header() -> bytes:
    """Response head of an NDJSON watch stream (framed by connection
    close, so no ``Content-Length``)."""
    return (
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: application/x-ndjson\r\n"
        b"Cache-Control: no-store\r\n"
        b"Connection: close\r\n"
        b"\r\n"
    )


def encode_event(payload: dict[str, Any]) -> bytes:
    """One newline-delimited JSON event of a watch stream."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"
