"""The query server: shared state, request handlers, lifecycle.

One :class:`QueryServer` owns one :class:`~repro.db.database.GraphDatabase`
(partitioned into a :class:`~repro.shard.store.ShardedGraphDatabase` when
configured), one cross-client :class:`~repro.db.cache.PairCache`, and one
lazily built :class:`~repro.api.session.Session` per requested backend —
every client queries the same corpus through the same cache, which is the
whole point of serving instead of embedding.

Concurrency model
-----------------
The event loop only frames requests and schedules work; evaluation is
CPU-bound Python and runs on executor threads:

* a *query executor* of exactly ``max_concurrency`` threads (the
  admission controller's physical bound);
* a single-thread *service executor* for mutations and watch refreshes,
  so writes and stream repairs keep making progress while the query pool
  is saturated.

Shared state is guarded by a readers-writer lock: queries and watch
refreshes read, mutations write. Backends that carry mutable run state
(index rebuilds, pooled workers, shard routers) additionally serialize
behind a per-backend lock; the stateless ``memory`` backend runs fully
concurrently. Deadlines enter through
:func:`~repro.engine.deadline.deadline_scope` *inside* the worker thread,
so the engine's per-candidate checks see the right ambient deadline no
matter which thread evaluates.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import dataclasses
import threading
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.api.ops import MutationOp, apply_mutation, mutation_from_dict
from repro.api.session import Session
from repro.api.spec import GraphQuery
from repro.db.wal import MANIFEST_NAME, DurableLog
from repro.engine.deadline import Deadline, deadline_scope
from repro.errors import (
    DeadlineExceeded,
    QueryError,
    SerializationError,
    StaleHandleError,
)
from repro.server.admission import AdmissionController, AdmissionRejected
from repro.server.protocol import (
    ProtocolError,
    Request,
    encode_event,
    encode_response,
    encode_stream_header,
    read_request,
)
from repro.server.streaming import WatchHandle, WatchHub, view_event
from repro.shard.store import ShardedGraphDatabase

if TYPE_CHECKING:
    from repro.db.database import GraphDatabase


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one :class:`QueryServer` (all have serving defaults)."""

    host: str = "127.0.0.1"
    #: TCP port; ``0`` binds an ephemeral port (``server.port`` has it).
    port: int = 0
    #: Default execution backend (per-request override: ``?backend=``).
    backend: str = "memory"
    #: Partition the database into this many shards (``None``: as given).
    shards: int | None = None
    #: Queries evaluating simultaneously (query-executor width).
    max_concurrency: int = 4
    #: Admitted-but-waiting requests beyond the active ones.
    max_queue: int = 16
    #: Default per-query deadline (``None``: unbounded). Per-request
    #: override: ``?deadline_ms=`` or the ``X-Deadline-Ms`` header.
    deadline_ms: int | None = 30_000
    #: Open watch streams the hub accepts before refusing.
    max_watches: int = 32
    #: Optional bearer token; when set, every endpoint except
    #: ``/v1/health`` requires ``Authorization: Bearer <token>``.
    token: str | None = None
    #: Durability: directory of the write-ahead log. ``None`` serves the
    #: corpus in memory only (the historical behaviour); a path makes
    #: every ``/v1/mutate`` append-before-apply, so the ack — carrying
    #: the committed ``lsn`` — is only sent once the record is as
    #: durable as :attr:`sync` promises. If the directory already holds
    #: a log, the server *recovers from it* and serves the recovered
    #: store instead of the passed corpus (which was only the first
    #: boot's seed).
    data_dir: str | None = None
    #: WAL sync policy: ``always``, ``interval[:seconds]``, or ``none``.
    sync: str = "always"
    #: Fold the log into a fresh snapshot every N mutations (0: never).
    compact_every: int = 1000


class _ReadWriteLock:
    """Writer-preferring readers-writer lock over the shared database.

    Queries and watch refreshes share the read side; mutations take the
    write side. Waiting writers block new readers so a mutation cannot
    starve under a steady query stream.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextlib.contextmanager
    def read(self) -> Iterator[None]:
        with self._cond:
            self._cond.wait_for(
                lambda: not self._writer and not self._writers_waiting
            )
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextlib.contextmanager
    def write(self) -> Iterator[None]:
        with self._cond:
            self._writers_waiting += 1
            try:
                self._cond.wait_for(
                    lambda: not self._writer and not self._readers
                )
            finally:
                self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


@dataclass
class _Counters:
    """Lifetime request counters (mutated only on the event loop)."""

    queries_served: int = 0
    mutations_applied: int = 0
    mutations_rejected: int = 0
    requests_handled: int = 0
    protocol_errors: int = 0
    internal_errors: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(self.__dict__)


@dataclass
class _HandleBook:
    """Client-facing handle <-> database id maps for the mutate path."""

    handle_to_id: dict[str, int] = field(default_factory=dict)
    id_to_handle: dict[int, str] = field(default_factory=dict)


class QueryServer:
    """The asyncio HTTP front end over one shared database + cache."""

    def __init__(
        self, database: "GraphDatabase", config: ServerConfig | None = None
    ) -> None:
        self.config = config = config or ServerConfig()
        if config.shards is not None and not isinstance(
            database, ShardedGraphDatabase
        ):
            database = ShardedGraphDatabase.from_database(
                database, shards=config.shards
            )
        elif config.backend == "sharded" and not isinstance(
            database, ShardedGraphDatabase
        ):
            database = ShardedGraphDatabase.from_database(database, shards=2)
        self.wal: DurableLog | None = None
        self._handles = _HandleBook()
        if config.data_dir is not None:
            database = self._open_durable(database, config)
        self.database = database
        if not self._handles.handle_to_id:
            for graph_id in database.ids():
                name = database.get(graph_id).name or f"#{graph_id}"
                self._handles.handle_to_id.setdefault(name, graph_id)
                self._handles.id_to_handle[graph_id] = name
        if self.wal is not None and not self.wal.has_state:
            self.wal.initialize(database, self._handles.handle_to_id)
        if self.wal is not None:
            database.attach_wal(self.wal)
        from repro.db.cache import PairCache

        self.cache = PairCache()
        self.admission = AdmissionController(
            config.max_concurrency, config.max_queue
        )
        self.hub = WatchHub(config.max_watches)
        self.counters = _Counters()

        self._db_lock = _ReadWriteLock()
        self._sessions: dict[str, Session] = {}
        self._sessions_guard = threading.Lock()
        #: Per-backend serialization for backends with mutable run state;
        #: ``memory`` is stateless and stays lock-free (truly concurrent).
        self._backend_locks: dict[str, threading.Lock] = {}
        self._query_executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=config.max_concurrency,
            thread_name_prefix="repro-query",
        )
        self._service_executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service"
        )
        self._server: asyncio.base_events.Server | None = None
        self._conn_tasks: set[asyncio.Task[None]] = set()
        self.port: int | None = None

    def _open_durable(
        self, database: "GraphDatabase", config: ServerConfig
    ) -> "GraphDatabase":
        """Open (or recover) the WAL at ``config.data_dir``.

        An already-initialized log wins over the passed corpus: the
        recovered store — snapshot plus every surviving logged mutation —
        is what clients last acknowledged, and its handle book replaces
        the name-derived seeding.
        """
        assert config.data_dir is not None
        existing = (Path(config.data_dir) / MANIFEST_NAME).exists()
        self.wal = DurableLog.open(
            config.data_dir,
            sync=config.sync,
            segments=None
            if existing
            else getattr(database, "shard_count", 1),
            compact_every=config.compact_every,
        )
        if existing:
            state = self.wal.recover()
            self._handles = _HandleBook(
                state.handle_to_id, state.id_to_handle
            )
            return state.database
        return database

    # -- shared-state helpers (called from executor threads) -------------
    def _session(self, backend_name: str) -> Session:
        """The lazily created shared session for ``backend_name``."""
        with self._sessions_guard:
            session = self._sessions.get(backend_name)
            if session is None:
                session = Session(
                    self.database, backend=backend_name, cache=self.cache
                )
                self._sessions[backend_name] = session
                if backend_name != "memory":
                    self._backend_locks[backend_name] = threading.Lock()
            return session

    def _run_query(
        self, spec: GraphQuery, backend_name: str, deadline_s: float | None
    ) -> dict[str, Any]:
        """Evaluate one query on an executor thread; returns the payload."""
        deadline = Deadline.after(deadline_s) if deadline_s else None
        with deadline_scope(deadline):
            with self._db_lock.read():
                session = self._session(backend_name)
                lock = self._backend_locks.get(backend_name)
                if lock is not None:
                    with lock:
                        result = session.execute(spec)
                        return result.to_dict()
                return session.execute(spec).to_dict()

    def _apply_mutation(self, op: MutationOp) -> dict[str, Any]:
        """Apply one mutation under the write lock (service executor)."""
        with self._db_lock.write():
            return apply_mutation(
                self.database,
                op,
                self._handles.handle_to_id,
                self._handles.id_to_handle,
            )

    def _create_view(self, spec: GraphQuery) -> Any:
        """Build the LiveView for a watch (service executor, read side)."""
        with self._db_lock.read():
            return self._session("memory").watch(spec)

    def _watch_refresh(
        self, handle: WatchHandle, event: str
    ) -> dict[str, Any] | None:
        """Refresh one watcher's view; ``None`` when the answer is
        unchanged (coalesced mutations that didn't touch the skyline)."""
        with self._db_lock.read():
            ids = handle.view.ids  # refreshes incrementally
            if event == "update" and ids == handle.last_ids:
                return None
            return view_event(handle, event, self.database.version, ids)

    # -- request plumbing (event loop) ------------------------------------
    def _check_auth(self, request: Request) -> None:
        token = self.config.token
        if token is None or request.path == "/v1/health":
            return
        supplied = request.headers.get("authorization", "")
        if supplied != f"Bearer {token}":
            raise ProtocolError(
                "unauthorized", "missing or invalid bearer token"
            )

    def _deadline_seconds(self, request: Request) -> float | None:
        raw = request.query.get("deadline_ms") or request.headers.get(
            "x-deadline-ms"
        )
        if raw is None:
            ms = self.config.deadline_ms
            if ms is None:
                return None
        else:
            try:
                ms = int(raw)
            except ValueError as exc:
                raise ProtocolError(
                    "bad-request", f"malformed deadline_ms {raw!r}"
                ) from exc
        if ms <= 0:
            raise ProtocolError(
                "bad-request", "deadline_ms must be a positive integer"
            )
        return ms / 1000.0

    @staticmethod
    def _parse_spec(payload: Any) -> GraphQuery:
        if not isinstance(payload, dict):
            raise ProtocolError(
                "bad-request", "query body must be a JSON object"
            )
        try:
            return GraphQuery.from_dict(payload)
        except (SerializationError, QueryError) as exc:
            raise ProtocolError("query-error", str(exc)) from exc

    def _apply_anytime(
        self, request: Request, spec: GraphQuery, deadline_s: float | None
    ) -> GraphQuery:
        """``?anytime=1`` (or ``X-Anytime: 1``): serve budgeted intervals.

        A spec already carrying ``budget_ms``/``budget_nodes`` is anytime
        on its own; the flag derives ``budget_ms`` from the request
        deadline for specs without knobs, so the engine returns a
        complete interval answer (``approximate: true``) instead of a
        504 whenever at least one evaluation pass finished before the
        deadline.
        """
        raw = request.query.get("anytime") or request.headers.get("x-anytime")
        if raw is None or str(raw).lower() in ("", "0", "false", "no"):
            return spec
        if spec.anytime:
            return spec
        if deadline_s is None:
            raise ProtocolError(
                "bad-request",
                "anytime=1 needs a request deadline or an explicit "
                "budget_ms/budget_nodes in the query body",
            )
        budget_ms = max(1, int(deadline_s * 1000))
        return dataclasses.replace(spec, budget_ms=budget_ms).validate()

    # -- handlers ---------------------------------------------------------
    async def _handle_health(self, request: Request) -> dict[str, Any]:
        payload = {
            "ok": True,
            "graphs": len(self.database),
            "backend": self.config.backend,
            "shards": getattr(self.database, "shard_count", 1),
            "version": self.database.version,
        }
        if self.wal is not None:
            payload["durability"] = {
                "sync": self.config.sync,
                "last_lsn": self.wal.last_lsn,
            }
        return payload

    async def _handle_stats(self, request: Request) -> dict[str, Any]:
        payload = {
            "admission": self.admission.snapshot(),
            "watches": self.hub.snapshot(),
            "counters": self.counters.snapshot(),
            "cache": {"hits": self.cache.hits, "misses": self.cache.misses},
            "database": {
                "graphs": len(self.database),
                "version": self.database.version,
            },
            "backends": sorted(self._sessions),
        }
        if self.wal is not None:
            payload["durability"] = {
                "data_dir": str(self.wal.data_dir),
                "sync": self.config.sync,
                "segments": self.wal.segments,
                "last_lsn": self.wal.last_lsn,
                "base_lsn": self.wal.base_lsn,
                "ops_since_compact": self.wal.ops_since_compact,
            }
        return payload

    async def _handle_query(self, request: Request) -> dict[str, Any]:
        spec = self._parse_spec(request.json())
        backend_name = request.query.get("backend") or self.config.backend
        deadline_s = self._deadline_seconds(request)
        spec = self._apply_anytime(request, spec, deadline_s)
        loop = asyncio.get_running_loop()
        try:
            async with self.admission.slot():
                payload = await loop.run_in_executor(
                    self._query_executor,
                    self._run_query,
                    spec,
                    backend_name,
                    deadline_s,
                )
        except AdmissionRejected as exc:
            raise ProtocolError(
                "queue-full",
                str(exc),
                active=exc.active,
                waiting=exc.waiting,
                max_queue=exc.max_queue,
            ) from exc
        except DeadlineExceeded as exc:
            self.admission.deadline_expired += 1
            raise ProtocolError(
                "deadline-exceeded",
                str(exc),
                deadline_ms=None if deadline_s is None else int(deadline_s * 1000),
            ) from exc
        except QueryError as exc:
            raise ProtocolError("query-error", str(exc)) from exc
        self.counters.queries_served += 1
        return payload

    async def _handle_mutate(self, request: Request) -> dict[str, Any]:
        payload = request.json()
        if not isinstance(payload, dict):
            raise ProtocolError(
                "bad-request", "mutation body must be a JSON object"
            )
        try:
            op = mutation_from_dict(payload)
        except SerializationError as exc:
            raise ProtocolError("bad-request", str(exc)) from exc
        loop = asyncio.get_running_loop()
        try:
            ack = await loop.run_in_executor(
                self._service_executor, self._apply_mutation, op
            )
        except StaleHandleError as exc:
            self.counters.mutations_rejected += 1
            raise ProtocolError(
                "stale-handle", str(exc), op=exc.op, handle=str(exc.handle)
            ) from exc
        except QueryError as exc:
            self.counters.mutations_rejected += 1
            raise ProtocolError("conflict", str(exc)) from exc
        self.counters.mutations_applied += 1
        self.hub.notify()
        return ack

    async def _handle_watch(
        self,
        request: Request,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Stream NDJSON view events until either side hangs up."""
        spec = self._parse_spec(request.json())
        loop = asyncio.get_running_loop()
        try:
            view = await loop.run_in_executor(
                self._service_executor, self._create_view, spec
            )
        except QueryError as exc:
            raise ProtocolError("query-error", str(exc)) from exc
        handle = self.hub.register(view)
        if handle is None:
            raise ProtocolError(
                "watch-limit",
                f"too many open watch streams "
                f"(limit {self.hub.max_watches}); retry later",
                max_watches=self.hub.max_watches,
            )
        # Any client bytes after the request — or EOF — end the stream.
        eof_task = asyncio.ensure_future(reader.read(1))
        wakeup_task: asyncio.Task[Any] | None = None
        try:
            writer.write(encode_stream_header())
            first = await loop.run_in_executor(
                self._service_executor, self._watch_refresh, handle, "snapshot"
            )
            writer.write(encode_event(first))
            await writer.drain()
            while True:
                handle.wakeup.clear()
                wakeup_task = asyncio.ensure_future(handle.wakeup.wait())
                done, _ = await asyncio.wait(
                    {wakeup_task, eof_task},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if eof_task in done:
                    break
                event = await loop.run_in_executor(
                    self._service_executor,
                    self._watch_refresh,
                    handle,
                    "update",
                )
                if event is not None:
                    writer.write(encode_event(event))
                    await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-stream; clean up below
        finally:
            self.hub.unregister(handle)
            for task in (eof_task, wakeup_task):
                if task is not None and not task.done():
                    task.cancel()
                    with contextlib.suppress(
                        asyncio.CancelledError, Exception
                    ):
                        await task

    # -- connection lifecycle ---------------------------------------------
    async def _dispatch(self, request: Request) -> tuple[int, Any]:
        self._check_auth(request)
        routes = {
            ("GET", "/v1/health"): self._handle_health,
            ("GET", "/v1/stats"): self._handle_stats,
            ("POST", "/v1/query"): self._handle_query,
            ("POST", "/v1/mutate"): self._handle_mutate,
        }
        handler = routes.get((request.method, request.path))
        if handler is None:
            known_paths = {path for _, path in routes} | {"/v1/watch"}
            if request.path in known_paths:
                raise ProtocolError(
                    "method-not-allowed",
                    f"{request.method} not supported on {request.path}",
                )
            raise ProtocolError("not-found", f"unknown path {request.path}")
        return 200, await handler(request)

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass  # server shutdown cancelled the connection; just clean up
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                request = await read_request(reader)
            except ProtocolError as exc:
                self.counters.protocol_errors += 1
                writer.write(
                    encode_response(exc.status, exc.payload(), False)
                )
                await writer.drain()
                break
            except (ConnectionError, asyncio.IncompleteReadError):
                break
            if request is None:
                break
            self.counters.requests_handled += 1
            if request.path == "/v1/watch" and request.method == "POST":
                try:
                    self._check_auth(request)
                    await self._handle_watch(request, reader, writer)
                except ProtocolError as exc:
                    self.counters.protocol_errors += 1
                    writer.write(
                        encode_response(exc.status, exc.payload(), False)
                    )
                    with contextlib.suppress(ConnectionError):
                        await writer.drain()
                break  # watch streams are framed by connection close
            try:
                status, payload = await self._dispatch(request)
            except ProtocolError as exc:
                self.counters.protocol_errors += 1
                status, payload = exc.status, exc.payload()
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # pragma: no cover - safety net
                self.counters.internal_errors += 1
                from repro.server.protocol import error_payload

                status = 500
                payload = error_payload(
                    "internal", f"{type(exc).__name__}: {exc}"
                )
            writer.write(
                encode_response(status, payload, request.keep_alive)
            )
            try:
                await writer.drain()
            except ConnectionError:
                break
            if not request.keep_alive:
                break

    async def start(self) -> None:
        """Bind and start accepting connections (non-blocking)."""
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, drop open connections, release backends."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._query_executor.shutdown(wait=True, cancel_futures=True)
        self._service_executor.shutdown(wait=True, cancel_futures=True)
        if self.wal is not None:
            # After the service executor drained: no in-flight mutation
            # can append once we fsync-and-close.
            self.database.detach_wal()
            self.wal.close()
        with self._sessions_guard:
            sessions, self._sessions = dict(self._sessions), {}
        for session in sessions.values():
            session.close()

    @property
    def url(self) -> str:
        if self.port is None:
            raise RuntimeError("server is not started")
        return f"http://{self.config.host}:{self.port}"


@contextlib.contextmanager
def serve_in_thread(
    database: "GraphDatabase", config: ServerConfig | None = None
) -> Iterator[QueryServer]:
    """Run a :class:`QueryServer` on a background event-loop thread.

    The tests, benches, and examples all use this bracket: the server is
    bound (ephemeral port unless configured) before the body runs, and
    fully stopped — connections dropped, executors drained, sessions
    closed — before the bracket exits.
    """
    server = QueryServer(database, config)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    startup_error: list[BaseException] = []

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # bind failures surface to the caller
            startup_error.append(exc)
            started.set()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(
        target=_run, name="repro-server", daemon=True
    )
    thread.start()
    if not started.wait(timeout=30):
        raise RuntimeError("server failed to start within 30s")
    if startup_error:
        thread.join(timeout=5)
        raise RuntimeError("server failed to bind") from startup_error[0]
    try:
        yield server
    finally:
        future = asyncio.run_coroutine_threadsafe(server.stop(), loop)
        with contextlib.suppress(Exception):
            future.result(timeout=30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)
