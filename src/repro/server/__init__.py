"""``repro.server`` — the asyncio query service over the library core.

The network front door that turns the library into a system: one shared
:class:`~repro.db.database.GraphDatabase` (optionally sharded) and one
cross-client :class:`~repro.db.cache.PairCache` served over HTTP with
JSON bodies that are *exactly* the existing wire formats —
:meth:`GraphQuery.to_dict` in, :meth:`ResultSet.to_dict` out, and
mutation ops encoded identically to the testkit's workload steps
(:mod:`repro.api.ops`), so served mutations stay fuzzable against the
oracle.

Pieces (stdlib only — ``asyncio`` streams plus hand-rolled HTTP/1.1
framing; no new dependencies):

* :mod:`~repro.server.protocol` — request/response envelopes, error
  codes, and the minimal HTTP framing;
* :mod:`~repro.server.admission` — bounded-queue admission control with
  explicit 429-style rejection and per-query deadlines that cancel
  evaluation cooperatively (:mod:`repro.engine.deadline`);
* :mod:`~repro.server.streaming` — the watch hub: incremental
  :meth:`Session.watch` skyline updates streamed as newline-delimited
  JSON events;
* :mod:`~repro.server.app` — :class:`QueryServer` wiring it together,
  plus :func:`serve_in_thread` for tests/benches and the ``python -m
  repro serve`` CLI entry point.

Endpoints::

    GET  /v1/health           liveness + database size
    GET  /v1/stats            admission / cache / watch counters
    POST /v1/query            GraphQuery JSON -> ResultSet JSON
    POST /v1/mutate           mutation op JSON -> acknowledgement
    POST /v1/watch            skyline GraphQuery -> NDJSON event stream
"""

from repro.server.admission import AdmissionController, AdmissionRejected
from repro.server.app import QueryServer, ServerConfig, serve_in_thread
from repro.server.protocol import ERROR_STATUS, ProtocolError, error_payload
from repro.server.streaming import WatchHub

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "QueryServer",
    "ServerConfig",
    "serve_in_thread",
    "ERROR_STATUS",
    "ProtocolError",
    "error_payload",
    "WatchHub",
]
