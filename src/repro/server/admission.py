"""Admission control: bounded concurrency, bounded queue, hard deadlines.

A server over an exponential-cost query language (exact GED) must refuse
work it cannot finish; this module makes the refusal explicit and
structured instead of letting latency collapse:

* at most ``max_concurrency`` queries *evaluate* at once (that many
  executor threads exist, so the bound is physical, not advisory);
* at most ``max_queue`` more may *wait*; anything beyond is rejected
  immediately with a ``queue-full`` error the transport maps to HTTP
  429 — a full server answers in microseconds, it never hangs;
* every admitted query carries a :class:`~repro.engine.deadline.Deadline`
  the engine checks cooperatively once per candidate
  (:mod:`repro.engine.deadline`), so an expired query stops burning its
  slot at the next candidate boundary rather than running to completion.

The controller is a plain counter machine on the event loop (no lock
contention with the evaluation threads); ``snapshot()`` feeds the
``/v1/stats`` endpoint and the load-shedding tests.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager
from collections.abc import AsyncIterator


class AdmissionRejected(Exception):
    """The bounded request queue is full; the caller gets a 429."""

    def __init__(self, active: int, waiting: int, max_queue: int) -> None:
        super().__init__(
            f"request queue full ({active} active, {waiting} waiting, "
            f"queue capacity {max_queue}); retry later"
        )
        self.active = active
        self.waiting = waiting
        self.max_queue = max_queue


class AdmissionController:
    """Bounded-queue admission for the request handlers.

    Parameters
    ----------
    max_concurrency:
        Queries evaluating simultaneously (also the executor width).
    max_queue:
        Admitted-but-waiting requests beyond the active ones; ``0``
        means reject the moment every slot is busy.
    """

    def __init__(self, max_concurrency: int, max_queue: int) -> None:
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be at least 1")
        if max_queue < 0:
            raise ValueError("max_queue must be non-negative")
        self.max_concurrency = max_concurrency
        self.max_queue = max_queue
        self.active = 0
        self.waiting = 0
        # Lifetime counters for /v1/stats and the benches.
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self.deadline_expired = 0
        self.peak_active = 0
        self.peak_waiting = 0
        self._cond = asyncio.Condition()

    async def acquire(self) -> None:
        """Take a slot, waiting in the bounded queue if needed.

        Raises :class:`AdmissionRejected` without waiting when the queue
        is already at capacity — rejection is the fast path.
        """
        if (
            self.active >= self.max_concurrency
            and self.waiting >= self.max_queue
        ):
            self.rejected += 1
            raise AdmissionRejected(self.active, self.waiting, self.max_queue)
        self.waiting += 1
        self.peak_waiting = max(self.peak_waiting, self.waiting)
        try:
            async with self._cond:
                await self._cond.wait_for(
                    lambda: self.active < self.max_concurrency
                )
                self.active += 1
        finally:
            self.waiting -= 1
        self.admitted += 1
        self.peak_active = max(self.peak_active, self.active)

    async def release(self) -> None:
        """Free a slot and wake one waiter."""
        async with self._cond:
            self.active -= 1
            self.completed += 1
            self._cond.notify(1)

    @asynccontextmanager
    async def slot(self) -> AsyncIterator[None]:
        """``async with controller.slot():`` — acquire/release bracket."""
        await self.acquire()
        try:
            yield
        finally:
            await self.release()

    def snapshot(self) -> dict[str, int]:
        """Counters for ``/v1/stats`` (and the saturation tests)."""
        return {
            "max_concurrency": self.max_concurrency,
            "max_queue": self.max_queue,
            "active": self.active,
            "waiting": self.waiting,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "deadline_expired": self.deadline_expired,
            "peak_active": self.peak_active,
            "peak_waiting": self.peak_waiting,
        }
