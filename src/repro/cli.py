"""Command-line interface for the similarity-skyline system.

Usage (installed as ``python -m repro``):

* ``python -m repro skyline DB.json QUERY.json [--refine-k K] ...`` —
  answer a similarity query with the graph similarity skyline;
* ``python -m repro topk DB.json QUERY.json --k 3 --measure edit`` —
  the single-measure baseline;
* ``python -m repro distance G1.json G2.json`` — the full GCS vector of
  one pair;
* ``python -m repro generate out.json --n 40`` — write a synthetic
  molecule-like workload database (plus ``out.query.json``);
* ``python -m repro paper-example`` — print the reproduced tables of the
  paper's worked example;
* ``python -m repro fuzz --seed 7 --steps 200`` — differential workload
  fuzzing against the exhaustive oracle (see :mod:`repro.testkit`); a
  divergence is shrunk to a minimal repro and exits non-zero.

Graph files are :func:`repro.graph.serialization.graph_to_json` payloads;
database files are :func:`repro.db.persistence.save_database` payloads.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from collections.abc import Sequence

from repro.api import Query, available_backends, connect
from repro.bench import render_table
from repro.core.gcs import compound_similarity
from repro.db.persistence import load_database, save_database
from repro.db.database import GraphDatabase
from repro.errors import ReproError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.serialization import graph_from_json, graph_to_json
from repro.measures.base import available_measures
from repro.skyline import ALGORITHMS


def _load_graph(path: str) -> LabeledGraph:
    return graph_from_json(Path(path).read_text(encoding="utf-8"))


def _parse_measures(spec: str | None) -> tuple[str, ...] | None:
    if spec is None:
        return None
    return tuple(part.strip() for part in spec.split(",") if part.strip())


def _cmd_skyline(args: argparse.Namespace) -> int:
    database = load_database(args.database)
    builder = Query(_load_graph(args.query)).skyline(algorithm=args.algorithm)
    measures = _parse_measures(args.measures)
    if measures is not None:
        builder = builder.measures(*measures)
    if args.refine_k:
        builder = builder.refine(k=args.refine_k)
    with connect(database, backend=args.backend, shards=args.shards) as session:
        result = session.execute(builder)
    skyline_names = result.names
    member = set(result.ids)
    if args.json:
        payload = {
            "measures": list(result.measures),
            "backend": result.plan.backend,
            "skyline": skyline_names,
            "vectors": {
                (database.get(i).name or str(i)): list(result.vectors[i].values)
                for i in sorted(result.evaluated_ids)
            },
        }
        if result.refinement is not None:
            payload["refined"] = [g.name for g in result.refinement.subset]
        print(json.dumps(payload, indent=1))
        return 0
    rows = [
        [database.get(i).name or f"#{i}"]
        + [round(value, 4) for value in result.vectors[i].values]
        + ["*" if i in member else ""]
        for i in sorted(result.evaluated_ids)
    ]
    print(render_table(["graph", *result.measures, "skyline"], rows))
    print(f"skyline: {skyline_names}")
    if result.refinement is not None:
        print(f"diverse subset (k={args.refine_k}): "
              f"{[g.name for g in result.refinement.subset]}")
    return 0


def _cmd_topk(args: argparse.Namespace) -> int:
    database = load_database(args.database)
    query = _load_graph(args.query)
    with connect(database, backend=args.backend) as session:
        result = session.execute(Query(query).topk(args.k, measure=args.measure))
    rows = [
        [rank + 1, database.get(i).name or f"#{i}", round(result.distance(i), 4)]
        for rank, i in enumerate(result.ids)
    ]
    print(render_table(["rank", "graph", result.measures[0]], rows))
    return 0


def _cmd_distance(args: argparse.Namespace) -> int:
    g1 = _load_graph(args.graph1)
    g2 = _load_graph(args.graph2)
    vector = compound_similarity(g1, g2, measures=_parse_measures(args.measures))
    for name, value in vector.as_dict().items():
        print(f"{name}: {value:.4f}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.datasets.synthetic import make_workload

    workload = make_workload(
        n_graphs=args.n,
        query_size=args.query_size,
        mutant_fraction=args.mutant_fraction,
        seed=args.seed,
    )
    database = GraphDatabase.from_graphs(workload.database, name="synthetic")
    save_database(database, args.output)
    query_path = Path(args.output).with_suffix(".query.json")
    query_path.write_text(graph_to_json(workload.queries[0]), encoding="utf-8")
    print(f"wrote {len(database)} graphs to {args.output}")
    print(f"wrote query to {query_path}")
    return 0


def _fuzz_one(
    workload, fault: str | None, shrink: bool, save_failure: str | None
) -> int:
    from repro.testkit import format_repro, run_workload, shrink_workload

    report = run_workload(workload, fault=fault)
    if report.ok:
        print(f"seed {workload.seed}: {report.summary()}")
        return 0
    print(f"seed {workload.seed}: {report.summary()}", file=sys.stderr)
    divergence = report.divergence
    if shrink:
        workload, divergence = shrink_workload(
            workload, lambda cand: run_workload(cand, fault=fault).divergence
        )
    if save_failure:
        Path(save_failure).write_text(workload.to_json(indent=1), encoding="utf-8")
        print(f"wrote failing workload to {save_failure}", file=sys.stderr)
    print(format_repro(workload, divergence), file=sys.stderr)
    return 1


def _remap_backend(workload, backend: str):
    """Force every query step of ``workload`` onto ``backend`` (the
    ``--backend`` smoke mode: concentrate a whole workload's queries on
    one execution path, e.g. ``--backend sharded``).

    Remapping must preserve the generator's invariant that pruning
    backends only see ``tolerance == 0`` specs (tolerant dominance is
    not transitive, so bound pruning under it can legitimately differ
    from the oracle — a semantics caveat, not a divergence worth
    reporting), so tolerant specs are zeroed when the target prunes.
    """
    import dataclasses

    from repro.testkit.workload import PRUNING_BACKENDS, RunQuery, Workload

    def remap(step):
        if not isinstance(step, RunQuery):
            return step
        query = step.query
        if backend in PRUNING_BACKENDS and query.tolerance > 0:
            query = dataclasses.replace(query, tolerance=0.0)
        return dataclasses.replace(step, backend=backend, query=query)

    return Workload(seed=workload.seed, steps=tuple(map(remap, workload.steps)))


def _cmd_fuzz_kill_recover(args: argparse.Namespace) -> int:
    """``fuzz --kill-recover``: SIGKILL-mid-workload durability fuzzing."""
    from repro.testkit import format_repro
    from repro.testkit.crash import KILL_RECOVER_SYNCS, fuzz_kill_recover

    if args.replay or args.fault or args.backend:
        print("error: --kill-recover is incompatible with "
              "--replay/--fault/--backend", file=sys.stderr)
        return 2
    seeds = [args.seed]
    if args.corpus:
        corpus = json.loads(Path(args.corpus).read_text(encoding="utf-8"))
        seeds = [entry["seed"] for entry in corpus]
    syncs = (args.sync,) if args.sync else KILL_RECOVER_SYNCS
    for seed in seeds:
        failure = fuzz_kill_recover(
            seed,
            n_steps=args.steps,
            shards=args.shards,
            syncs=syncs,
            kill_at=args.kill_at,
            shrink=not args.no_shrink,
            log=print,
        )
        if failure is None:
            continue
        report, workload = failure
        print(f"seed {seed}: {report.summary()}", file=sys.stderr)
        if args.save_failure:
            Path(args.save_failure).write_text(
                workload.to_json(indent=1), encoding="utf-8"
            )
            print(f"wrote failing workload to {args.save_failure}",
                  file=sys.stderr)
        print(format_repro(workload, report.divergence), file=sys.stderr)
        return 1
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.testkit import Workload, generate_workload

    if args.kill_recover:
        return _cmd_fuzz_kill_recover(args)
    workloads = []
    if args.replay:
        payload = Path(args.replay).read_text(encoding="utf-8")
        workloads.append(Workload.from_json(payload))
    elif args.corpus:
        from repro.errors import SerializationError

        try:
            corpus = json.loads(Path(args.corpus).read_text(encoding="utf-8"))
            for entry in corpus:
                workloads.append(
                    generate_workload(
                        seed=entry["seed"],
                        n_steps=entry.get("steps", args.steps),
                        max_vertices=entry.get("max_vertices", args.max_vertices),
                    )
                )
        except (KeyError, TypeError, json.JSONDecodeError) as exc:
            raise SerializationError(
                f"malformed fuzz corpus {args.corpus}: {exc!r}; expected "
                '[{"seed": N, "steps": M}, ...]'
            ) from exc
    else:
        workloads.append(
            generate_workload(
                seed=args.seed, n_steps=args.steps, max_vertices=args.max_vertices
            )
        )
    if args.backend:
        workloads = [_remap_backend(w, args.backend) for w in workloads]
    for workload in workloads:
        code = _fuzz_one(
            workload, args.fault, not args.no_shrink, args.save_failure
        )
        if code:
            return code
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.server import QueryServer, ServerConfig

    if args.database:
        database = load_database(args.database)
    else:
        from repro.datasets.synthetic import make_workload

        workload = make_workload(
            n_graphs=args.synthetic, query_size=6, seed=args.seed
        )
        database = GraphDatabase.from_graphs(
            workload.database, name="synthetic"
        )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        backend=args.backend,
        shards=args.shards,
        max_concurrency=args.max_concurrency,
        max_queue=args.max_queue,
        deadline_ms=args.deadline_ms if args.deadline_ms > 0 else None,
        max_watches=args.max_watches,
        token=args.token,
        data_dir=args.data_dir,
        sync=args.sync,
        compact_every=args.compact_every,
    )
    server = QueryServer(database, config)

    async def _serve() -> None:
        await server.start()
        # Printed after the bind so scripts (and the CI smoke test) can
        # wait for the line, then read the ephemeral port from it.
        print(f"serving {len(server.database)} graphs on {server.url}",
              flush=True)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        try:
            await stop.wait()
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    print("server stopped", flush=True)
    return 0


def _cmd_wal(args: argparse.Namespace) -> int:
    from repro.db.wal import DurableLog

    if args.wal_command == "inspect":
        log = DurableLog.open(args.data_dir)
        try:
            state = log.recover()
            records = log.records()
            print(f"WAL at {args.data_dir}:")
            print(f"  segments: {log.segments}")
            print(f"  snapshot base lsn: {log.base_lsn}")
            print(f"  live records: {len(records)} "
                  f"(lsn {log.base_lsn + 1}..{log.last_lsn})"
                  if records else "  live records: 0")
            if not log.repair.clean:
                print(f"  repaired on open: {log.repair.torn_records} torn, "
                      f"{log.repair.stale_records} stale, "
                      f"{log.repair.orphaned_records} orphaned")
            print(f"  recovered store: {len(state.database)} graphs "
                  f"({type(state.database).__name__}), "
                  f"{len(state.handle_to_id)} handles")
            if args.verbose:
                for record in records:
                    op = record["op"]
                    print(f"  lsn {record['lsn']}: {op['op']} "
                          f"graph_id={op.get('graph_id')} "
                          f"handle={op.get('handle')}")
        finally:
            log.close()
        return 0
    if args.wal_command == "compact":
        log = DurableLog.open(args.data_dir)
        try:
            state = log.recover()
            before = len(log.records())
            log.compact_from(state.database, state.handle_to_id)
            print(f"folded {before} records into snapshot at "
                  f"lsn {log.base_lsn} ({len(state.database)} graphs)")
        finally:
            log.close()
        return 0
    assert args.wal_command == "restore"
    log = DurableLog.open(args.data_dir)
    try:
        state = log.recover(upto_lsn=args.lsn)
    finally:
        log.close()
    save_database(state.database, args.output)
    point = f"lsn {state.last_lsn}" if args.lsn is not None else "head"
    print(f"restored {len(state.database)} graphs at {point} "
          f"to {args.output}")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from repro.graph.statistics import collection_statistics, describe_graph

    database = load_database(args.database)
    stats = collection_statistics(database.graphs())
    print(f"database {database.name!r}: {stats.count} graphs, "
          f"{stats.total_vertices} vertices, {stats.total_edges} edges")
    print(f"  sizes: min {stats.min_size}, mean {stats.mean_size:.1f}, "
          f"max {stats.max_size}; connected: {stats.connected_fraction:.0%}")
    print(f"  vertex labels: {', '.join(stats.vertex_label_vocabulary)}")
    print(f"  edge labels: {', '.join(stats.edge_label_vocabulary)}")
    if args.verbose:
        print()
        for graph in database.graphs():
            print(describe_graph(graph))
    return 0


#: One-line strategy notes for ``repro backends`` (registry-keyed).
_BACKEND_NOTES = {
    "memory": "exhaustive serial scan (reference semantics)",
    "indexed": "scalar feature-index lower bounds, most promising first",
    "vectorized": "NumPy batched bound kernels + VP-tree pre-filter",
    "parallel": "exhaustive fan-out on the persistent process pool",
    "sharded": "scatter-gather over a sharded store (connect shards=N)",
    "auto": "cost-based planner: picks source/stages/evaluator per query",
}


def _cmd_backends(args: argparse.Namespace) -> int:
    from repro.engine.planner import availability

    info = availability()
    rows = [
        [name, _BACKEND_NOTES.get(name, "(custom registration)")]
        for name in info["backends"]
    ]
    print(render_table(["backend", "strategy"], rows,
                       title="registered backends"))
    print()
    numpy_note = (
        info["numpy"]
        or "absent — vectorized source and batch stages gated off"
    )
    print(f"numpy: {numpy_note}")
    pool_note = (
        "usable" if info["pool_usable"]
        else "not worth starting (single CPU)"
    )
    if info["pools_started"]:
        warm = ", ".join(f"{n} workers" for n in info["pools_started"])
        pool_note += f"; warm pools: {warm} (pooled startup cost is zero)"
    else:
        pool_note += "; no pool started yet"
    print(f"cpu count: {info['cpu_count']} — pooled evaluation {pool_note}")
    if args.database:
        path = Path(args.database)
        if path.is_dir():
            print(f"database {args.database}: durable data-dir "
                  "(inspect with `python -m repro wal inspect`)")
        else:
            database = load_database(args.database)
            shards = getattr(database, "shard_count", 1)
            topology = f"{shards} shards" if shards > 1 else "monolithic"
            avg = (
                database.vertex_load / len(database) if len(database) else 0.0
            )
            print(f"database {args.database}: {len(database)} graphs "
                  f"({topology}, mean order {avg:.1f}) — what `auto` "
                  "feeds its cost model")
    return 0


def _cmd_paper_example(args: argparse.Namespace) -> int:
    from repro.bench import compute_paper_example_report

    report = compute_paper_example_report()
    print(render_table(
        ["pair", "|mcs|"],
        [[f"({name}, q)", value] for name, value in report.mcs_with_query.items()],
        title="Table II",
    ))
    print()
    print(render_table(
        ["pair", "DistEd", "DistMcs", "DistGu"],
        [
            [f"({name}, q)", v[0], round(v[1], 2), round(v[2], 2)]
            for name, v in report.gcs.items()
        ],
        title="Table III",
    ))
    print()
    print(f"GSS = {report.skyline}")
    print(f"diverse subset (k=2) = {report.diverse_subset}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Similarity skyline queries over graph databases "
                    "(Abbaci et al., GDM/ICDE 2011 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sky = sub.add_parser("skyline", help="graph similarity skyline query")
    p_sky.add_argument("database", help="database JSON file")
    p_sky.add_argument("query", help="query graph JSON file")
    p_sky.add_argument("--measures", default=None,
                       help=f"comma-separated; available: {', '.join(available_measures())}")
    p_sky.add_argument("--algorithm", default="bnl", choices=sorted(ALGORITHMS))
    p_sky.add_argument("--backend", default="memory",
                       choices=available_backends(),
                       help="execution backend (default: memory; 'indexed' "
                            "prunes via feature-index lower bounds, "
                            "'parallel' fans evaluation over a process pool, "
                            "'sharded' scatter-gathers across shards)")
    p_sky.add_argument("--shards", type=int, default=None,
                       help="partition the database across N shards "
                            "(implied default 2 with --backend sharded)")
    p_sky.add_argument("--refine-k", type=int, default=None,
                       help="refine the skyline to k diverse graphs")
    p_sky.add_argument("--json", action="store_true", help="machine-readable output")
    p_sky.set_defaults(handler=_cmd_skyline)

    p_topk = sub.add_parser("topk", help="single-measure top-k baseline")
    p_topk.add_argument("database")
    p_topk.add_argument("query")
    p_topk.add_argument("--k", type=int, default=3)
    p_topk.add_argument("--measure", default="edit")
    p_topk.add_argument("--backend", default="memory", choices=available_backends())
    p_topk.set_defaults(handler=_cmd_topk)

    p_dist = sub.add_parser("distance", help="GCS vector of a graph pair")
    p_dist.add_argument("graph1")
    p_dist.add_argument("graph2")
    p_dist.add_argument("--measures", default=None)
    p_dist.set_defaults(handler=_cmd_distance)

    p_gen = sub.add_parser("generate", help="write a synthetic workload")
    p_gen.add_argument("output")
    p_gen.add_argument("--n", type=int, default=30)
    p_gen.add_argument("--query-size", type=int, default=8)
    p_gen.add_argument("--mutant-fraction", type=float, default=0.5)
    p_gen.add_argument("--seed", type=int, default=7)
    p_gen.set_defaults(handler=_cmd_generate)

    p_srv = sub.add_parser(
        "serve",
        help="run the HTTP query service over a database "
             "(see repro.server)",
    )
    p_srv.add_argument("database", nargs="?", default=None,
                       help="database JSON file (omit for --synthetic)")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8765,
                       help="TCP port; 0 binds an ephemeral port and "
                            "prints it (default: 8765)")
    p_srv.add_argument("--backend", default="memory",
                       choices=available_backends(),
                       help="default execution backend; per-request "
                            "override via ?backend= (default: memory)")
    p_srv.add_argument("--shards", type=int, default=None,
                       help="partition the database across N shards")
    p_srv.add_argument("--max-concurrency", type=int, default=4,
                       help="queries evaluating simultaneously (default: 4)")
    p_srv.add_argument("--max-queue", type=int, default=16,
                       help="admitted-but-waiting requests beyond the "
                            "active ones; extra requests get 429 "
                            "(default: 16)")
    p_srv.add_argument("--deadline-ms", type=int, default=30_000,
                       help="default per-query deadline; 0 disables "
                            "(default: 30000)")
    p_srv.add_argument("--max-watches", type=int, default=32,
                       help="open watch streams accepted (default: 32)")
    p_srv.add_argument("--token", default=None,
                       help="require 'Authorization: Bearer <token>' on "
                            "every endpoint except /v1/health")
    p_srv.add_argument("--synthetic", type=int, default=24,
                       help="without a database file, serve a synthetic "
                            "workload of N graphs (default: 24)")
    p_srv.add_argument("--seed", type=int, default=7,
                       help="synthetic workload seed (default: 7)")
    p_srv.add_argument("--data-dir", default=None,
                       help="durability: write-ahead-log directory; "
                            "mutations are acked only once logged, and "
                            "an existing log is recovered and served "
                            "instead of the seed corpus")
    p_srv.add_argument("--sync", default="always",
                       help="WAL sync policy: always, interval[:seconds] "
                            "or none (default: always)")
    p_srv.add_argument("--compact-every", type=int, default=1000,
                       help="fold the WAL into a fresh snapshot every N "
                            "mutations; 0 disables (default: 1000)")
    p_srv.set_defaults(handler=_cmd_serve)

    p_wal = sub.add_parser(
        "wal",
        help="inspect / compact / restore a write-ahead-log directory",
    )
    wal_sub = p_wal.add_subparsers(dest="wal_command", required=True)
    p_wal_inspect = wal_sub.add_parser(
        "inspect", help="summarize the log and the state it recovers to"
    )
    p_wal_inspect.add_argument("data_dir")
    p_wal_inspect.add_argument("--verbose", action="store_true",
                               help="also print every live record")
    p_wal_inspect.set_defaults(handler=_cmd_wal)
    p_wal_compact = wal_sub.add_parser(
        "compact", help="fold the log into a fresh atomic snapshot"
    )
    p_wal_compact.add_argument("data_dir")
    p_wal_compact.set_defaults(handler=_cmd_wal)
    p_wal_restore = wal_sub.add_parser(
        "restore",
        help="write the recovered database (optionally at a past LSN) "
             "to a JSON file",
    )
    p_wal_restore.add_argument("data_dir")
    p_wal_restore.add_argument("output", help="database JSON output path")
    p_wal_restore.add_argument("--lsn", type=int, default=None,
                               help="point-in-time: stop replay at this "
                                    "LSN (default: replay everything)")
    p_wal_restore.set_defaults(handler=_cmd_wal)

    p_desc = sub.add_parser("describe", help="database statistics")
    p_desc.add_argument("database")
    p_desc.add_argument("--verbose", action="store_true",
                        help="also describe every graph")
    p_desc.set_defaults(handler=_cmd_describe)

    p_paper = sub.add_parser("paper-example", help="print the reproduced tables")
    p_paper.set_defaults(handler=_cmd_paper_example)

    p_backends = sub.add_parser(
        "backends",
        help="registered execution backends + availability diagnostics",
    )
    p_backends.add_argument(
        "database", nargs="?", default=None,
        help="optional database JSON (or durable data-dir) to report the "
             "shape the `auto` planner would see",
    )
    p_backends.set_defaults(handler=_cmd_backends)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential workload fuzzing against the exhaustive oracle",
    )
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="workload derivation seed (default: 0)")
    p_fuzz.add_argument("--steps", type=int, default=200,
                        help="steps per workload (default: 200)")
    p_fuzz.add_argument("--max-vertices", type=int, default=5,
                        help="largest generated graph (default: 5)")
    p_fuzz.add_argument("--corpus", default=None,
                        help="JSON file with a pinned seed corpus: "
                             '[{"seed": N, "steps": M}, ...]')
    p_fuzz.add_argument("--replay", default=None,
                        help="replay a saved workload JSON instead of generating")
    p_fuzz.add_argument("--backend", default=None,
                        choices=tuple(
                            name
                            for name in ("memory", "indexed", "parallel",
                                         "vectorized", "sharded", "auto")
                            if name in available_backends()
                        ),
                        help="force every query step onto one backend "
                             "(e.g. --backend sharded for a scatter-"
                             "gather smoke)")
    p_fuzz.add_argument("--fault", default=None,
                        help="inject a known-broken engine stage "
                             "(harness self-test; e.g. flip-bound)")
    p_fuzz.add_argument("--no-shrink", action="store_true",
                        help="report the first divergence without minimizing")
    p_fuzz.add_argument("--save-failure", default=None,
                        help="write the (shrunk) failing workload JSON here")
    p_fuzz.add_argument("--kill-recover", action="store_true",
                        help="durability mode: fork a mutating child, "
                             "SIGKILL it at a seeded step, recover from "
                             "the WAL and differentially check the "
                             "recovered store (see repro.testkit.crash)")
    p_fuzz.add_argument("--shards", type=int, default=2,
                        help="kill-recover: shard count of the durable "
                             "store (default: 2)")
    p_fuzz.add_argument("--sync", default=None,
                        help="kill-recover: run one sync policy instead "
                             "of the full always/interval/none rotation")
    p_fuzz.add_argument("--kill-at", type=int, default=None,
                        help="kill-recover: kill after this many applied "
                             "ops (default: derived from the seed)")
    p_fuzz.set_defaults(handler=_cmd_fuzz)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
