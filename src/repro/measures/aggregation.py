"""Scalarization baselines: collapsing a GCS vector into one number.

The classical alternative to the paper's Pareto semantics is to *weight*
the local measures into a single score and rank by it. These adapters
make that family of baselines first-class measures so they can be
compared against the skyline (ablation bench A5): a weighted sum can only
ever return points on (or near) the convex hull of the skyline, silently
discarding non-convex Pareto optima — the concrete argument for
similarity *skylines* over similarity *scores*.

* :class:`WeightedSumMeasure` — ``sum(w_i * Dist_i)``;
* :class:`ChebyshevMeasure` — ``max(w_i * Dist_i)`` (reaches non-convex
  optima, but needs the right weights per query).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import QueryError
from repro.graph.labeled_graph import LabeledGraph
from repro.measures.base import (
    DistanceMeasure,
    PairContext,
    measure_names,
    resolve_measures,
)


class _AggregatedMeasure(DistanceMeasure):
    """Shared plumbing for scalarized measure vectors."""

    normalized = False
    is_metric = False  # depends on components; conservatively False

    def __init__(
        self,
        measures: Iterable["str | DistanceMeasure"],
        weights: Sequence[float] | None = None,
    ) -> None:
        self.measures = resolve_measures(measures)
        if weights is None:
            weights = [1.0] * len(self.measures)
        if len(weights) != len(self.measures):
            raise QueryError(
                f"{len(self.measures)} measures need {len(self.measures)} "
                f"weights, got {len(weights)}"
            )
        if any(weight < 0 for weight in weights):
            raise QueryError("weights must be non-negative")
        if sum(weights) == 0:
            raise QueryError("at least one weight must be positive")
        self.weights = tuple(float(weight) for weight in weights)
        components = "+".join(measure_names(self.measures))
        self.name = f"{self._kind}({components})"

    _kind = "aggregate"

    def _component_values(
        self,
        g1: LabeledGraph,
        g2: LabeledGraph,
        context: PairContext | None,
    ) -> list[float]:
        if context is None:
            context = PairContext(g1, g2)
        return [measure.distance(g1, g2, context) for measure in self.measures]


class WeightedSumMeasure(_AggregatedMeasure):
    """``sum(w_i * Dist_i(g1, g2))`` — the classic linear scalarization."""

    _kind = "wsum"

    def distance(
        self,
        g1: LabeledGraph,
        g2: LabeledGraph,
        context: PairContext | None = None,
    ) -> float:
        values = self._component_values(g1, g2, context)
        return sum(w * v for w, v in zip(self.weights, values))


class ChebyshevMeasure(_AggregatedMeasure):
    """``max(w_i * Dist_i(g1, g2))`` — the weighted Chebyshev norm."""

    _kind = "chebyshev"

    def distance(
        self,
        g1: LabeledGraph,
        g2: LabeledGraph,
        context: PairContext | None = None,
    ) -> float:
        values = self._component_values(g1, g2, context)
        return max(w * v for w, v in zip(self.weights, values))


def weighted_sum_ranking_is_skyline_subset(
    graphs: Sequence[LabeledGraph],
    query: LabeledGraph,
    measures: Iterable["str | DistanceMeasure"],
    weights: Sequence[float],
) -> bool:
    """Check that every strictly-positive-weight scalarization minimiser
    is a skyline member (a textbook fact; used by tests and bench A5)."""
    from repro.core.gss import graph_similarity_skyline
    from repro.core.topk import top_k_by_measure

    if any(weight <= 0 for weight in weights):
        raise QueryError("this check needs strictly positive weights")
    aggregated = WeightedSumMeasure(measures, weights)
    best = top_k_by_measure(graphs, query, aggregated, 1)
    skyline = graph_similarity_skyline(graphs, query, measures=measures)
    best_graph = graphs[best.indices[0]]
    # the minimiser could tie with a dominated copy; membership of *some*
    # graph with the same score vector is what the theorem guarantees
    best_vector = skyline.vectors[best.indices[0]].values
    return any(
        skyline.vectors[index].values == best_vector
        for index in skyline.skyline_indices
    )
