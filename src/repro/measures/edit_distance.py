"""Edit-distance measures: ``DistEd`` (Definition 8) and ``DistN-Ed``.

``DistEd`` is the exact minimum-cost edit distance under the paper's
uniform cost model. ``DistN-Ed`` is the normalised variant used by the
diversity refinement of Section VII, obtained through the bounded
increasing map ``f(x) = x / (1 + x)``.
"""

from __future__ import annotations

import math

from repro.graph.budget import Budget, Interval
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.operations import CostModel, UNIFORM_COSTS
from repro.measures.base import DistanceMeasure, PairContext, register_measure


class EditDistance(DistanceMeasure):
    """Exact graph edit distance ``DistEd`` (Definition 8).

    Parameters
    ----------
    costs:
        Cost model; defaults to the paper's uniform model (every insertion,
        deletion, and label change costs 1), under which the distance is a
        metric with integer values.
    """

    name = "edit"
    normalized = False
    is_metric = True

    def __init__(self, costs: CostModel = UNIFORM_COSTS) -> None:
        self.costs = costs

    def distance(
        self,
        g1: LabeledGraph,
        g2: LabeledGraph,
        context: PairContext | None = None,
    ) -> float:
        if context is not None and context.costs is self.costs:
            return context.ged.distance
        from repro.graph.ged import graph_edit_distance

        return graph_edit_distance(g1, g2, costs=self.costs).distance

    def distance_interval(
        self,
        g1: LabeledGraph,
        g2: LabeledGraph,
        context: PairContext | None = None,
        budget: Budget | None = None,
    ) -> Interval:
        return self._budgeted_result(g1, g2, context, budget).interval()

    def _budgeted_result(
        self,
        g1: LabeledGraph,
        g2: LabeledGraph,
        context: PairContext | None,
        budget: Budget | None,
    ):
        if context is not None and context.costs is self.costs:
            return context.ged_within(budget)
        from repro.graph.ged import graph_edit_distance

        return graph_edit_distance(g1, g2, costs=self.costs, budget=budget)


class NormalizedEditDistance(DistanceMeasure):
    """``DistN-Ed = DistEd / (1 + DistEd)`` (Section VII).

    The map ``x / (1 + x)`` is strictly increasing and bounded by 1, so the
    normalised value preserves every comparison made with ``DistEd`` while
    becoming commensurable with the normalized MCS-based measures.
    """

    name = "edit-normalized"
    normalized = True
    is_metric = True  # f(x) = x/(1+x) is subadditive and increasing

    def __init__(self, costs: CostModel = UNIFORM_COSTS) -> None:
        self._edit = EditDistance(costs)

    def distance(
        self,
        g1: LabeledGraph,
        g2: LabeledGraph,
        context: PairContext | None = None,
    ) -> float:
        raw = self._edit.distance(g1, g2, context)
        return raw / (1.0 + raw)

    def distance_interval(
        self,
        g1: LabeledGraph,
        g2: LabeledGraph,
        context: PairContext | None = None,
        budget: Budget | None = None,
    ) -> Interval:
        raw = self._edit.distance_interval(g1, g2, context, budget)
        # x / (1 + x) is increasing, so it maps interval endpoints directly
        # (sup over x -> inf is 1, the measure's bound).
        return Interval(
            lower=raw.lower / (1.0 + raw.lower),
            upper=1.0 if math.isinf(raw.upper) else raw.upper / (1.0 + raw.upper),
        )


register_measure("edit", EditDistance)
register_measure("edit-normalized", NormalizedEditDistance)
