"""Semantic-property test harness for distance measures (Section IV).

The paper stresses *semantic properties* of similarity measures (metricity,
normalisation, the ``SimGu <= SimMcs`` dominance). This module provides
checkers that sample graph collections and report violations; the test
suite runs them over random graph families, and users can run them over
their own data to validate custom measures before plugging them into a
GCS vector.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.graph.labeled_graph import LabeledGraph
from repro.measures.base import DistanceMeasure


@dataclass
class PropertyReport:
    """Outcome of property checks for one measure over a graph sample.

    ``violations`` maps property name to a list of offending graph-name
    tuples (capped at ``max_recorded`` per property).
    """

    measure: str
    checked_pairs: int = 0
    checked_triples: int = 0
    violations: dict[str, list[tuple]] = field(default_factory=dict)
    max_recorded: int = 10

    @property
    def ok(self) -> bool:
        """True when no property was violated."""
        return not self.violations

    def record(self, property_name: str, witness: tuple) -> None:
        """Add one violation witness (bounded)."""
        bucket = self.violations.setdefault(property_name, [])
        if len(bucket) < self.max_recorded:
            bucket.append(witness)


def check_measure_properties(
    measure: DistanceMeasure,
    graphs: Sequence[LabeledGraph],
    check_triangle: bool = True,
    tolerance: float = 1e-9,
) -> PropertyReport:
    """Check identity, symmetry, non-negativity, range and triangle axioms.

    Triangle checking is cubic in ``len(graphs)``; pass
    ``check_triangle=False`` for large samples. The ``normalized`` flag of
    the measure decides whether the [0, 1] range is enforced.
    """
    report = PropertyReport(measure=measure.name)
    names = [graph.name or f"graph-{i}" for i, graph in enumerate(graphs)]
    values: dict[tuple[int, int], float] = {}

    for i, graph in enumerate(graphs):
        self_distance = measure.distance(graph, graph)
        if abs(self_distance) > tolerance:
            report.record("identity", (names[i], self_distance))

    for i, j in itertools.combinations(range(len(graphs)), 2):
        forward = measure.distance(graphs[i], graphs[j])
        backward = measure.distance(graphs[j], graphs[i])
        values[(i, j)] = forward
        values[(j, i)] = backward
        report.checked_pairs += 1
        if forward < -tolerance:
            report.record("non-negativity", (names[i], names[j], forward))
        if abs(forward - backward) > tolerance:
            report.record("symmetry", (names[i], names[j], forward, backward))
        if measure.normalized and forward > 1.0 + tolerance:
            report.record("range", (names[i], names[j], forward))

    if check_triangle:
        for i, j, k in itertools.permutations(range(len(graphs)), 3):
            if (i, j) not in values or (i, k) not in values or (k, j) not in values:
                continue
            report.checked_triples += 1
            if values[(i, j)] > values[(i, k)] + values[(k, j)] + tolerance:
                report.record(
                    "triangle",
                    (names[i], names[j], names[k], values[(i, j)],
                     values[(i, k)] + values[(k, j)]),
                )
    return report


def check_gu_dominated_by_mcs(
    graphs: Sequence[LabeledGraph],
    tolerance: float = 1e-9,
) -> list[tuple]:
    """Verify ``SimGu(g1, g2) <= SimMcs(g1, g2)`` over all pairs.

    Returns the violating pairs (empty list = property holds), checking the
    inequality the paper states when introducing Definition 10.
    """
    from repro.measures.base import PairContext
    from repro.measures.graph_union import graph_union_similarity
    from repro.measures.mcs_distance import mcs_similarity

    violations = []
    for g1, g2 in itertools.combinations(graphs, 2):
        context = PairContext(g1, g2)
        sim_gu = graph_union_similarity(g1, g2, context)
        sim_mcs = mcs_similarity(g1, g2, context)
        if sim_gu > sim_mcs + tolerance:
            violations.append((g1.name, g2.name, sim_gu, sim_mcs))
    return violations
