"""``DistGu`` — the Wallis graph-union distance (Definition 10).

``SimGu(g1, g2) = |mcs| / (|g1| + |g2| - |mcs|)``: the denominator is the
size of the union of the two graphs in the set-theoretic sense, making the
similarity a graph analogue of the Jaccard index. ``DistGu = 1 - SimGu`` is
a metric with values in [0, 1], and ``SimGu <= SimMcs`` always holds
(the paper notes DistGu is the *stronger* measure: unlike DistMcs it
reacts when the smaller graph grows while the mcs stays constant).
"""

from __future__ import annotations

from repro.graph.budget import Budget, Interval
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.mcs import maximum_common_subgraph
from repro.measures.base import DistanceMeasure, PairContext, register_measure


def graph_union_similarity(
    g1: LabeledGraph,
    g2: LabeledGraph,
    context: PairContext | None = None,
) -> float:
    """``SimGu`` of Definition 10 (1 for two empty graphs)."""
    if g1.size == 0 and g2.size == 0:
        return 1.0
    result = context.mcs if context is not None else maximum_common_subgraph(g1, g2)
    union_size = g1.size + g2.size - result.size
    return result.size / union_size


class GraphUnionDistance(DistanceMeasure):
    """``DistGu = 1 - |mcs| / (|g1| + |g2| - |mcs|)`` (Definition 10)."""

    name = "union"
    normalized = True
    is_metric = True

    def distance(
        self,
        g1: LabeledGraph,
        g2: LabeledGraph,
        context: PairContext | None = None,
    ) -> float:
        return 1.0 - graph_union_similarity(g1, g2, context)

    def distance_interval(
        self,
        g1: LabeledGraph,
        g2: LabeledGraph,
        context: PairContext | None = None,
        budget: Budget | None = None,
    ) -> Interval:
        total = g1.size + g2.size
        if total == 0:
            return Interval.exact(0.0)
        result = (
            context.mcs_within(budget)
            if context is not None
            else maximum_common_subgraph(g1, g2, budget=budget)
        )
        size_low, size_high = result.size_interval()
        size_high = min(size_high, min(g1.size, g2.size))

        def dist(size: int) -> float:
            union_size = total - size
            return 1.0 - (size / union_size if union_size else 1.0)

        # 1 - sz/(total - sz) is decreasing in sz: endpoints swap.
        return Interval(
            lower=max(0.0, dist(size_high)),
            upper=min(1.0, dist(size_low)),
        )


register_measure("union", GraphUnionDistance)
