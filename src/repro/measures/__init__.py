"""Graph distance measures (Section IV of the paper) plus extensions.

The paper's three local measures — ``DistEd`` (edit distance), ``DistMcs``
(Bunke–Shearer), ``DistGu`` (graph union / Jaccard-like) — with the
normalised edit distance used by the diversity refinement and several
extension measures for higher-dimensional compound similarities.
"""

from repro.graph.budget import Budget, Interval
from repro.measures.base import (
    DistanceMeasure,
    FunctionMeasure,
    PairContext,
    available_measures,
    default_measures,
    diversity_measures,
    get_measure,
    measure_names,
    register_measure,
    resolve_measures,
)
from repro.measures.edit_distance import EditDistance, NormalizedEditDistance
from repro.measures.mcs_distance import McsDistance, mcs_similarity
from repro.measures.graph_union import GraphUnionDistance, graph_union_similarity
from repro.measures.extras import (
    DegreeSequenceDistance,
    JaccardEdgeDistance,
    SpectralDistance,
    WLKernelDistance,
)
from repro.measures.properties import (
    PropertyReport,
    check_gu_dominated_by_mcs,
    check_measure_properties,
)
from repro.measures.aggregation import (
    ChebyshevMeasure,
    WeightedSumMeasure,
    weighted_sum_ranking_is_skyline_subset,
)

__all__ = [
    "Budget",
    "Interval",
    "DistanceMeasure",
    "FunctionMeasure",
    "PairContext",
    "available_measures",
    "default_measures",
    "diversity_measures",
    "get_measure",
    "measure_names",
    "register_measure",
    "resolve_measures",
    "EditDistance",
    "NormalizedEditDistance",
    "McsDistance",
    "mcs_similarity",
    "GraphUnionDistance",
    "graph_union_similarity",
    "JaccardEdgeDistance",
    "DegreeSequenceDistance",
    "WLKernelDistance",
    "SpectralDistance",
    "PropertyReport",
    "check_measure_properties",
    "check_gu_dominated_by_mcs",
    "WeightedSumMeasure",
    "ChebyshevMeasure",
    "weighted_sum_ranking_is_skyline_subset",
]
