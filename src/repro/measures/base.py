"""Distance-measure abstraction for graph compound similarity.

The paper's GCS (Definition 11) is a vector of *local distance measures*.
Here a measure is an object with a ``distance(g1, g2)`` method returning a
non-negative float (smaller = more similar). Measures advertise whether
they are normalized to [0, 1] and whether they are metrics.

Because several measures share expensive sub-computations (both ``DistMcs``
and ``DistGu`` need the maximum common subgraph), measures accept an
optional :class:`PairContext` that lazily computes and memoises the MCS and
the exact GED for one graph pair. The database executor builds one context
per pair so nothing is solved twice.

A small registry maps measure names to factories so queries can be
specified with plain strings (``measures=("edit", "mcs", "union")``).
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Iterable, Sequence

from repro.errors import QueryError
from repro.graph.budget import Budget, Interval
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.ged import GedResult, graph_edit_distance
from repro.graph.mcs import McsResult, maximum_common_subgraph
from repro.graph.operations import CostModel, UNIFORM_COSTS


class PairContext:
    """Lazy, memoised sub-computations for one ordered graph pair.

    Besides the exact memos (``mcs``/``ged``), the context keeps the best
    *partial* result of budgeted runs so progressive refinement resumes
    from the tightest certificate seen instead of starting over: a GED
    re-run starts from the previous incumbent as its upper bound, an MCS
    re-run seeds its pruning incumbent with the previous realised size,
    and results are merged monotonically (bounds only ever tighten).
    """

    def __init__(
        self,
        g1: LabeledGraph,
        g2: LabeledGraph,
        costs: CostModel = UNIFORM_COSTS,
    ) -> None:
        self.g1 = g1
        self.g2 = g2
        self.costs = costs
        self._mcs: McsResult | None = None
        self._ged: GedResult | None = None
        self._mcs_partial: McsResult | None = None
        self._ged_partial: GedResult | None = None

    @property
    def mcs(self) -> McsResult:
        """Maximum common connected subgraph (computed once)."""
        if self._mcs is None:
            self._mcs = maximum_common_subgraph(self.g1, self.g2)
        return self._mcs

    @property
    def ged(self) -> GedResult:
        """Exact graph edit distance (computed once)."""
        if self._ged is None:
            self._ged = graph_edit_distance(self.g1, self.g2, costs=self.costs)
        return self._ged

    def ged_within(self, budget: Budget | None) -> GedResult:
        """Best (possibly partial) GED certificate obtainable in ``budget``."""
        if budget is None or budget.unlimited:
            return self.ged
        if self._ged is not None:
            return self._ged
        prev = self._ged_partial
        if prev is None:
            result = graph_edit_distance(
                self.g1, self.g2, costs=self.costs, budget=budget
            )
        else:
            rerun = graph_edit_distance(
                self.g1,
                self.g2,
                costs=self.costs,
                upper_bound=prev.distance,
                budget=budget,
            )
            result = _merge_ged(prev, rerun)
        if result.optimal:
            self._ged = result
        else:
            self._ged_partial = result
        return result

    def mcs_within(self, budget: Budget | None) -> McsResult:
        """Best (possibly partial) MCS certificate obtainable in ``budget``."""
        if budget is None or budget.unlimited:
            return self.mcs
        if self._mcs is not None:
            return self._mcs
        prev = self._mcs_partial
        result = maximum_common_subgraph(
            self.g1,
            self.g2,
            budget=budget,
            initial_best_edges=None if prev is None else prev.size,
        )
        if prev is not None:
            result = _merge_mcs(prev, result)
        if result.optimal:
            self._mcs = result
        else:
            self._mcs_partial = result
        return result


def _merge_ged(prev: GedResult, new: GedResult) -> GedResult:
    """Monotone merge of two GED certificates for the same pair."""
    lower = max(prev.lower_bound or 0.0, new.lower_bound or 0.0)
    if new.found and (not prev.found or new.distance < prev.distance):
        distance, mapping, found = new.distance, new.mapping, True
    else:
        distance, mapping, found = prev.distance, prev.mapping, prev.found
    return GedResult(
        distance=distance,
        mapping=dict(mapping),
        optimal=new.optimal,
        expanded_nodes=prev.expanded_nodes + new.expanded_nodes,
        lower_bound=min(lower, distance),
        found=found,
    )


def _merge_mcs(prev: McsResult, new: McsResult) -> McsResult:
    """Monotone merge of two MCS certificates for the same pair."""
    if new.size > prev.size:
        mapping, matched = new.mapping, new.matched_edges
    else:
        mapping, matched = prev.mapping, prev.matched_edges
    size = len(matched)
    upper = max(size, min(prev.edge_bound, new.edge_bound))
    optimal = new.optimal or upper <= size
    return McsResult(
        mapping=dict(mapping),
        matched_edges=frozenset(matched),
        optimal=optimal,
        size_upper=None if optimal else upper,
    )


class DistanceMeasure(abc.ABC):
    """A local graph distance measure (one GCS dimension).

    Attributes
    ----------
    name:
        Registry key and display name.
    normalized:
        Whether values are guaranteed to lie in ``[0, 1]``.
    is_metric:
        Whether the measure satisfies the metric axioms (the paper cites
        proofs for ``DistMcs`` and ``DistGu``; the uniform-cost edit
        distance is a metric as well).
    """

    name: str = "abstract"
    normalized: bool = False
    is_metric: bool = False

    @abc.abstractmethod
    def distance(
        self,
        g1: LabeledGraph,
        g2: LabeledGraph,
        context: PairContext | None = None,
    ) -> float:
        """Distance between ``g1`` and ``g2`` (smaller = more similar)."""

    def distance_interval(
        self,
        g1: LabeledGraph,
        g2: LabeledGraph,
        context: PairContext | None = None,
        budget: Budget | None = None,
    ) -> Interval:
        """Certified ``[lower, upper]`` interval obtainable within ``budget``.

        The exact distance is guaranteed to lie in the returned interval;
        a settled interval (``lower == upper``) pins it. The default runs
        the exact ``distance`` to completion and returns the degenerate
        interval — measures built on budgetable searches override this to
        honor the budget and return genuine partial certificates.
        """
        return Interval.exact(self.distance(g1, g2, context))

    def __call__(
        self,
        g1: LabeledGraph,
        g2: LabeledGraph,
        context: PairContext | None = None,
    ) -> float:
        return self.distance(g1, g2, context)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


_REGISTRY: dict[str, Callable[[], DistanceMeasure]] = {}


def register_measure(name: str, factory: Callable[[], DistanceMeasure]) -> None:
    """Register a measure factory under ``name`` (overwrites silently)."""
    _REGISTRY[name] = factory


def available_measures() -> list[str]:
    """Names of every registered measure."""
    return sorted(_REGISTRY)


def get_measure(spec: "str | DistanceMeasure") -> DistanceMeasure:
    """Resolve a measure instance from a name or pass an instance through."""
    if isinstance(spec, DistanceMeasure):
        return spec
    try:
        factory = _REGISTRY[spec]
    except KeyError:
        raise QueryError(
            f"unknown measure {spec!r}; available: {', '.join(available_measures())}"
        ) from None
    return factory()


def resolve_measures(
    specs: Iterable["str | DistanceMeasure"],
) -> tuple[DistanceMeasure, ...]:
    """Resolve a sequence of measure specs, rejecting the empty vector."""
    measures = tuple(get_measure(spec) for spec in specs)
    if not measures:
        raise QueryError("a compound similarity needs at least one measure")
    return measures


def default_measures() -> tuple[DistanceMeasure, ...]:
    """The paper's d = 3 instantiation: (DistEd, DistMcs, DistGu)."""
    return resolve_measures(("edit", "mcs", "union"))


def diversity_measures() -> tuple[DistanceMeasure, ...]:
    """Section VII's diversity dimensions: (DistN-Ed, DistMcs, DistGu)."""
    return resolve_measures(("edit-normalized", "mcs", "union"))


class FunctionMeasure(DistanceMeasure):
    """Adapter turning a plain ``f(g1, g2) -> float`` into a measure."""

    def __init__(
        self,
        function: Callable[[LabeledGraph, LabeledGraph], float],
        name: str,
        normalized: bool = False,
        is_metric: bool = False,
    ) -> None:
        self._function = function
        self.name = name
        self.normalized = normalized
        self.is_metric = is_metric

    def distance(
        self,
        g1: LabeledGraph,
        g2: LabeledGraph,
        context: PairContext | None = None,
    ) -> float:
        return float(self._function(g1, g2))


def measure_names(measures: Sequence[DistanceMeasure]) -> tuple[str, ...]:
    """Display names of a measure vector (used by reports and results)."""
    return tuple(measure.name for measure in measures)
