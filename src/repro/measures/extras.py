"""Additional local distance measures (extensions beyond the paper's three).

The paper argues graph similarity is inherently multi-faceted; these
measures supply extra GCS dimensions for the dimensionality experiments
(bench E2) and for users whose notion of similarity involves global
structure rather than exact substructures:

* :class:`JaccardEdgeDistance` — label-multiset Jaccard over edge
  "signatures" (endpoint labels + edge label); a cheap mcs-free proxy.
* :class:`DegreeSequenceDistance` — normalised L1 gap between sorted
  degree sequences; purely structural.
* :class:`WLKernelDistance` — distance induced by a Weisfeiler–Leman
  subtree kernel (label-refinement histograms).
* :class:`SpectralDistance` — L2 gap between adjacency spectra (padded);
  label-agnostic "shape" similarity.
"""

from __future__ import annotations

from collections import Counter

from repro.graph.canonical import wl_colors
from repro.graph.labeled_graph import LabeledGraph
from repro.measures.base import DistanceMeasure, PairContext, register_measure


def _edge_signature_multiset(graph: LabeledGraph) -> Counter:
    signatures = Counter()
    for u, v, label in graph.edges():
        endpoint_labels = sorted(
            (repr(graph.vertex_label(u)), repr(graph.vertex_label(v)))
        )
        signatures[(endpoint_labels[0], endpoint_labels[1], repr(label))] += 1
    return signatures


class JaccardEdgeDistance(DistanceMeasure):
    """1 − Jaccard index of labeled-edge multisets.

    An edge's signature is (smaller endpoint label, larger endpoint label,
    edge label). Ignores connectivity, so it upper-bounds the agreement the
    mcs-based measures can find — and costs only a linear scan.
    """

    name = "jaccard-edges"
    normalized = True
    is_metric = True  # multiset Jaccard distance is a metric

    def distance(
        self,
        g1: LabeledGraph,
        g2: LabeledGraph,
        context: PairContext | None = None,
    ) -> float:
        s1, s2 = _edge_signature_multiset(g1), _edge_signature_multiset(g2)
        union = sum((s1 | s2).values())
        if union == 0:
            return 0.0
        return 1.0 - sum((s1 & s2).values()) / union


class DegreeSequenceDistance(DistanceMeasure):
    """Normalised L1 distance between sorted degree sequences.

    Sequences are compared descending, the shorter padded with zeros, and
    the gap divided by the total degree mass so values stay in [0, 1].
    """

    name = "degree-sequence"
    normalized = True
    is_metric = False  # normalisation by instance-dependent mass breaks it

    def distance(
        self,
        g1: LabeledGraph,
        g2: LabeledGraph,
        context: PairContext | None = None,
    ) -> float:
        d1 = sorted((g1.degree(v) for v in g1.vertices()), reverse=True)
        d2 = sorted((g2.degree(v) for v in g2.vertices()), reverse=True)
        length = max(len(d1), len(d2))
        d1 += [0] * (length - len(d1))
        d2 += [0] * (length - len(d2))
        mass = sum(d1) + sum(d2)
        if mass == 0:
            return 0.0
        return sum(abs(a - b) for a, b in zip(d1, d2)) / mass


class WLKernelDistance(DistanceMeasure):
    """Distance induced by a Weisfeiler–Leman subtree kernel.

    Builds per-round WL color histograms, takes the normalised kernel
    ``k(x, y) / sqrt(k(x, x) k(y, y))`` over concatenated histograms, and
    returns ``1 - k``. Captures neighborhood structure at multiple radii.
    """

    name = "wl-kernel"
    normalized = True
    is_metric = False  # kernel-induced dissimilarity; not a strict metric

    def __init__(self, rounds: int = 3) -> None:
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        self.rounds = rounds

    def _histogram(self, graph: LabeledGraph) -> Counter:
        histogram = Counter()
        for round_number in range(self.rounds + 1):
            colors = wl_colors(graph, rounds=round_number)
            for color in colors.values():
                histogram[(round_number, color)] += 1
        return histogram

    def distance(
        self,
        g1: LabeledGraph,
        g2: LabeledGraph,
        context: PairContext | None = None,
    ) -> float:
        h1, h2 = self._histogram(g1), self._histogram(g2)
        dot = sum(count * h2.get(key, 0) for key, count in h1.items())
        norm1 = sum(count * count for count in h1.values())
        norm2 = sum(count * count for count in h2.values())
        if norm1 == 0 or norm2 == 0:
            return 0.0 if norm1 == norm2 else 1.0
        return 1.0 - dot / (norm1 * norm2) ** 0.5


class SpectralDistance(DistanceMeasure):
    """L2 distance between adjacency-matrix spectra (label-agnostic).

    Eigenvalues are sorted descending and the shorter spectrum is padded
    with zeros. Isomorphic graphs are at distance 0; cospectral
    non-isomorphic graphs collide, which is acceptable for a *local*
    similarity facet.
    """

    name = "spectral"
    normalized = False
    is_metric = False  # pseudometric: cospectral graphs collide

    def distance(
        self,
        g1: LabeledGraph,
        g2: LabeledGraph,
        context: PairContext | None = None,
    ) -> float:
        import numpy

        def spectrum(graph: LabeledGraph) -> "numpy.ndarray":
            vertices = graph.vertices()
            index = {v: i for i, v in enumerate(vertices)}
            matrix = numpy.zeros((len(vertices), len(vertices)))
            for u, v, _ in graph.edges():
                matrix[index[u], index[v]] = 1.0
                matrix[index[v], index[u]] = 1.0
            if len(vertices) == 0:
                return numpy.zeros(0)
            return numpy.sort(numpy.linalg.eigvalsh(matrix))[::-1]

        s1, s2 = spectrum(g1), spectrum(g2)
        length = max(len(s1), len(s2))
        s1 = numpy.pad(s1, (0, length - len(s1)))
        s2 = numpy.pad(s2, (0, length - len(s2)))
        return float(numpy.linalg.norm(s1 - s2))


register_measure("jaccard-edges", JaccardEdgeDistance)
register_measure("degree-sequence", DegreeSequenceDistance)
register_measure("wl-kernel", WLKernelDistance)
register_measure("spectral", SpectralDistance)
