"""``DistMcs`` — the Bunke–Shearer MCS-based distance (Definition 9).

``SimMcs(g1, g2) = |mcs(g1, g2)| / max(|g1|, |g2|)`` and
``DistMcs = 1 - SimMcs``, where ``|g|`` counts edges. Proved to be a metric
on graphs (Bunke & Shearer 1998); values lie in [0, 1]. Two empty graphs
are defined to be at distance 0.
"""

from __future__ import annotations

from repro.graph.budget import Budget, Interval
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.mcs import maximum_common_subgraph
from repro.measures.base import DistanceMeasure, PairContext, register_measure


def mcs_similarity(
    g1: LabeledGraph,
    g2: LabeledGraph,
    context: PairContext | None = None,
) -> float:
    """``SimMcs`` of Definition 9 (1 for two empty graphs)."""
    denominator = max(g1.size, g2.size)
    if denominator == 0:
        return 1.0
    result = context.mcs if context is not None else maximum_common_subgraph(g1, g2)
    return result.size / denominator


class McsDistance(DistanceMeasure):
    """``DistMcs = 1 - |mcs| / max(|g1|, |g2|)`` (Definition 9)."""

    name = "mcs"
    normalized = True
    is_metric = True

    def distance(
        self,
        g1: LabeledGraph,
        g2: LabeledGraph,
        context: PairContext | None = None,
    ) -> float:
        return 1.0 - mcs_similarity(g1, g2, context)

    def distance_interval(
        self,
        g1: LabeledGraph,
        g2: LabeledGraph,
        context: PairContext | None = None,
        budget: Budget | None = None,
    ) -> Interval:
        denominator = max(g1.size, g2.size)
        if denominator == 0:
            return Interval.exact(0.0)
        result = (
            context.mcs_within(budget)
            if context is not None
            else maximum_common_subgraph(g1, g2, budget=budget)
        )
        size_low, size_high = result.size_interval()
        # 1 - sz/denominator is decreasing in sz: the size interval maps
        # to the distance interval with endpoints swapped.
        return Interval(
            lower=max(0.0, 1.0 - min(size_high, denominator) / denominator),
            upper=min(1.0, 1.0 - size_low / denominator),
        )


register_measure("mcs", McsDistance)
