"""Differential execution: replay a workload against system and oracle.

The :class:`WorkloadRunner` holds one real :class:`~repro.db.database.
GraphDatabase` and one :class:`~repro.testkit.oracle.Oracle` mirror and
applies every workload step to both. Query steps run on the step's
backend twice — cache off and cache on (one :class:`~repro.db.cache.
PairCache` shared across all cached sessions, exactly like a production
deployment) — and both answers must equal the oracle's. Live-view checks
compare every open :class:`~repro.engine.views.LiveView` against the
oracle's skyline; persistence steps save/load the database and require
payload and answer parity.

Steps that reference a dead handle are skipped (counted, not failed) so
any subsequence of a workload replays — the property the shrinker needs.
The first check that disagrees stops the run and is reported as a
:class:`Divergence`; an unexpected exception inside a step is reported
the same way, so crash bugs shrink just like wrong-answer bugs.

``fault=`` injects a deliberately broken engine stage (see
:data:`FAULTS`) — the harness's own smoke test: a sign-flipped bound
must be caught and shrunk to a printable repro.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.api.backends import ExecutionBackend, IndexedBackend, MemoryBackend
from repro.api.ops import applicable, apply_mutation
from repro.api.parallel import ParallelBackend
from repro.api.session import Session
from repro.api.spec import GraphQuery
from repro.db.cache import PairCache
from repro.db.database import GraphDatabase
from repro.db.persistence import load_database, save_database
from repro.engine.plan import Candidate, EvaluationPlan, Stage
from repro.errors import QueryError
from repro.engine.evaluate import SerialEvaluator
from repro.graph.serialization import graph_to_dict
from repro.shard.backend import ShardedBackend
from repro.shard.store import ShardedGraphDatabase
from repro.skyline.utils import dominates
from repro.testkit.oracle import Oracle
from repro.testkit.workload import (
    AddGraph,
    CheckViews,
    RelabelGraph,
    RemoveGraph,
    RunQuery,
    SaveLoad,
    Step,
    WatchView,
    Workload,
)


# ----------------------------------------------------------------------
# Fault injection: deliberately unsound engine stages
# ----------------------------------------------------------------------
class _FlippedParetoStage(Stage):
    """Pareto pruning with the dominance test backwards: prunes a
    candidate when its *optimistic bound* dominates a known exact vector
    — i.e. exactly the promising candidates."""

    name = "pareto-bound(sign-flipped)"

    def __init__(self, tolerance: float) -> None:
        self.tolerance = tolerance
        self._exact: list[tuple[float, ...]] = []

    def decide(self, candidate: Candidate) -> "str | None":
        if candidate.bounds is None:
            return None
        for vector in self._exact:
            if dominates(candidate.bounds, vector, self.tolerance):
                return "prune"
        return None

    def observe(self, graph_id: int, values: tuple[float, ...]) -> None:
        self._exact.append(values)


class _FlippedRankStage(Stage):
    """Top-k cutoff backwards: prunes bounds *below* the k-th best."""

    name = "rank-bound(sign-flipped)"

    def __init__(self, k: int) -> None:
        self.k = k
        self._best: list[float] = []

    def decide(self, candidate: Candidate) -> "str | None":
        if candidate.bounds is None or len(self._best) < self.k:
            return None
        if candidate.bounds[0] <= sorted(self._best)[self.k - 1]:
            return "prune"
        return None

    def observe(self, graph_id: int, values: tuple[float, ...]) -> None:
        self._best.append(values[0])


class _FlippedThresholdStage(Stage):
    """Range pruning backwards: prunes bounds *within* the threshold."""

    name = "threshold-bound(sign-flipped)"

    def __init__(self, threshold: float) -> None:
        self.threshold = threshold

    def decide(self, candidate: Candidate) -> "str | None":
        if candidate.bounds is not None and candidate.bounds[0] <= self.threshold:
            return "prune"
        return None


def _flipped_bound_pruning(ctx) -> Stage:
    spec = ctx.spec
    if spec.kind in ("skyline", "skyband"):
        return _FlippedParetoStage(spec.tolerance)
    if spec.kind == "topk":
        return _FlippedRankStage(spec.k)
    return _FlippedThresholdStage(spec.threshold)


class BrokenBoundIndexedBackend(IndexedBackend):
    """The ``indexed`` backend with its bound stage sign-flipped."""

    def build_plan(self, spec: GraphQuery) -> EvaluationPlan:
        prune = (_flipped_bound_pruning,) if self.use_index else ()
        return EvaluationPlan(
            source=super().build_plan(spec).source,
            cascade=prune + self._cache_stages(),
            evaluator=SerialEvaluator(),
            stage_labels=("bound(sign-flipped)",) + self._cache_labels(),
        )


#: Injectable faults: name -> replacement class for the indexed backend.
FAULTS: dict[str, type[ExecutionBackend]] = {
    "flip-bound": BrokenBoundIndexedBackend,
}


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Divergence:
    """One check where the system under test disagreed with the oracle."""

    step_index: int
    step: Step
    check: str
    expected: list[str]
    actual: list[str]
    backend: str | None = None
    cached: bool | None = None

    @property
    def query_json(self) -> str | None:
        """The exact GraphQuery JSON of the diverging step, if it has one."""
        query = getattr(self.step, "query", None)
        return query.to_json(sort_keys=True) if query is not None else None

    def describe(self) -> str:
        where = f"step {self.step_index} ({self.step.describe()})"
        extra = ""
        if self.backend is not None:
            extra = f" on backend {self.backend!r} cache={'on' if self.cached else 'off'}"
        return (
            f"{self.check} divergence at {where}{extra}:\n"
            f"  expected: {self.expected}\n"
            f"  actual:   {self.actual}"
        )


@dataclass
class RunReport:
    """Outcome and coverage counters of one workload replay."""

    steps_run: int = 0
    queries: int = 0
    mutations: int = 0
    view_checks: int = 0
    saveloads: int = 0
    skipped: int = 0
    combos: dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed: float = 0.0
    divergence: Divergence | None = None

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def summary(self) -> str:
        verdict = "OK" if self.ok else "DIVERGED"
        return (
            f"{verdict}: {self.steps_run} steps "
            f"({self.queries} queries over {len(self.combos)} kindxbackend "
            f"combos, {self.mutations} mutations, {self.view_checks} view "
            f"checks, {self.saveloads} save/load round-trips, "
            f"{self.skipped} skipped) in {self.elapsed:.2f}s; "
            f"pair cache {self.cache_hits} hits / {self.cache_misses} misses"
        )


def _payload_digest(graph) -> str:
    payload = json.dumps(graph_to_dict(graph), sort_keys=True, default=str)
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:12]


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
class WorkloadRunner:
    """Replays workloads differentially; one instance per replay.

    Parameters
    ----------
    fault:
        Optional :data:`FAULTS` key; replaces the ``indexed`` backend
        with the deliberately broken variant (harness self-test).
    max_workers:
        Pool size for the ``parallel`` backend sessions.
    shards:
        Shard count of the runner's database. The system under test is a
        :class:`~repro.shard.store.ShardedGraphDatabase` by default, so
        *every* backend is fuzzed over the shard store, mutations land
        on different shards, and the ``sharded`` backend's scatter-gather
        path runs against the same oracle as everything else. ``1``
        falls back to a monolithic :class:`GraphDatabase` (the
        ``sharded`` backend then rejects its steps).
    """

    def __init__(
        self,
        fault: str | None = None,
        max_workers: int = 2,
        shards: int = 2,
    ) -> None:
        if fault is not None and fault not in FAULTS:
            raise QueryError(
                f"unknown fault {fault!r}; available: {', '.join(sorted(FAULTS))}"
            )
        if shards > 1:
            self.database: GraphDatabase = ShardedGraphDatabase(
                shards=shards, name="testkit"
            )
        else:
            self.database = GraphDatabase(name="testkit")
        self.oracle = Oracle()
        self.cache = PairCache()
        self.fault = fault
        self.max_workers = max_workers
        self._handle_to_id: dict[str, int] = {}
        self._id_to_handle: dict[int, str] = {}
        self._sessions: dict[tuple[str, bool], Session] = {}
        self._views: dict[str, Any] = {}

    # -- sessions --------------------------------------------------------
    def _backend(self, name: str, cached: bool) -> ExecutionBackend:
        if name not in (
            "memory", "indexed", "parallel", "vectorized", "sharded", "auto"
        ):
            # Reject rather than fall back: a typo'd backend in a
            # hand-edited workload would silently run memory semantics
            # and trivially "pass" against the oracle.
            raise QueryError(
                f"unknown workload backend {name!r}; available: "
                "memory, indexed, parallel, vectorized, sharded, auto"
            )
        cache = self.cache if cached else None
        if name == "indexed":
            cls = FAULTS[self.fault] if self.fault else IndexedBackend
            return cls(self.database, cache=cache)
        if name == "vectorized":
            from repro.api.backends import VectorizedBackend

            return VectorizedBackend(self.database, cache=cache)
        if name == "parallel":
            return ParallelBackend(
                self.database, max_workers=self.max_workers, cache=cache
            )
        if name == "sharded":
            return ShardedBackend(self.database, cache=cache)
        if name == "auto":
            from repro.api.auto import AutoBackend

            return AutoBackend(
                self.database, cache=cache, max_workers=self.max_workers
            )
        return MemoryBackend(self.database, cache=cache)

    def session(self, name: str, cached: bool) -> Session:
        key = (name, cached)
        if key not in self._sessions:
            self._sessions[key] = Session(
                self.database, backend=self._backend(name, cached)
            )
        return self._sessions[key]

    def close(self) -> None:
        for session in self._sessions.values():
            session.close()
        self._sessions.clear()
        self._views.clear()

    # -- step application -------------------------------------------------
    def _translate(self, ids: list[int]) -> list[str]:
        return [self._id_to_handle.get(i, f"#<unknown {i}>") for i in ids]

    def _check_integrity(self, index: int, step: Step) -> Divergence | None:
        expected = sorted(self._handle_to_id)
        actual = sorted(
            self._id_to_handle[i]
            for i in self.database.ids()
            if i in self._id_to_handle
        )
        if expected != actual or len(self.database) != len(self.oracle):
            return Divergence(index, step, "ids", expected, actual)
        return None

    def _apply_mutation(self, index: int, step: Step, report: RunReport):
        # Mutation steps ARE shared ops (repro.api.ops): the database
        # side applies through the same code path the server's mutate
        # endpoint uses; only the oracle mirroring is testkit-specific.
        # Steps the op layer would reject are *skipped* (counted, not
        # failed) so any workload subsequence stays replayable.
        if not applicable(step, self._handle_to_id):
            report.skipped += 1
            return None
        apply_mutation(
            self.database, step, self._handle_to_id, self._id_to_handle
        )
        if isinstance(step, AddGraph):
            self.oracle.add(step.handle, step.graph)
        elif isinstance(step, RemoveGraph):
            self.oracle.remove(step.handle)
        else:
            assert isinstance(step, RelabelGraph)
            self.oracle.remove(step.handle)
            new_id = self._handle_to_id[step.new_handle]
            self.oracle.add(step.new_handle, self.database.get(new_id))
        report.mutations += 1
        return self._check_integrity(index, step)

    def _apply_query(self, index: int, step: RunQuery, report: RunReport):
        expected = self.oracle.answer(step.query)
        for cached in (False, True):
            result = self.session(step.backend, cached).execute(step.query)
            actual = self._translate(result.ids)
            if actual != expected:
                return Divergence(
                    index, step, "query", expected, actual,
                    backend=step.backend, cached=cached,
                )
        report.queries += 1
        combo = f"{step.query.kind}/{step.backend}"
        report.combos[combo] = report.combos.get(combo, 0) + 1
        return None

    def _apply_views(self, index: int, step: Step, report: RunReport):
        for view_id, view in sorted(self._views.items()):
            expected = self.oracle.answer(view.spec)
            actual = self._translate(view.ids)
            if actual != expected:
                return Divergence(
                    index, step, f"view:{view_id}", expected, actual
                )
        report.view_checks += 1
        return None

    def _apply_saveload(self, index: int, step: SaveLoad, report: RunReport):
        with tempfile.TemporaryDirectory(prefix="repro-testkit-") as tmp:
            path = Path(tmp) / "db.json"
            save_database(self.database, path)
            loaded = load_database(path)
        live_payloads = sorted(
            _payload_digest(graph) for graph in self.database.graphs()
        )
        loaded_payloads = sorted(
            _payload_digest(graph) for graph in loaded.graphs()
        )
        if live_payloads != loaded_payloads:
            return Divergence(
                index, step, "persistence", live_payloads, loaded_payloads
            )
        expected = [
            _payload_digest(self.oracle.graph(handle))
            for handle in self.oracle.answer(step.query)
        ]
        with Session(loaded, backend="memory") as session:
            result = session.execute(step.query)
            actual = [_payload_digest(graph) for graph in result.graphs]
        if sorted(expected) != sorted(actual):
            return Divergence(
                index, step, "persistence-query", sorted(expected), sorted(actual)
            )
        report.saveloads += 1
        return None

    def apply(self, index: int, step: Step, report: RunReport):
        """Apply one step; returns a Divergence or None."""
        if isinstance(step, (AddGraph, RemoveGraph, RelabelGraph)):
            return self._apply_mutation(index, step, report)
        if isinstance(step, RunQuery):
            if len(self.oracle) == 0:
                report.skipped += 1
                return None
            return self._apply_query(index, step, report)
        if isinstance(step, WatchView):
            self._views[step.view_id] = self.session("memory", True).watch(
                step.query
            )
            return None
        if isinstance(step, CheckViews):
            if not self._views:
                report.skipped += 1
                return None
            return self._apply_views(index, step, report)
        if isinstance(step, SaveLoad):
            if len(self.oracle) == 0:
                report.skipped += 1
                return None
            return self._apply_saveload(index, step, report)
        raise TypeError(f"unknown workload step {step!r}")

    # -- replay -----------------------------------------------------------
    def run(self, workload: Workload) -> RunReport:
        """Replay ``workload`` until done or first divergence."""
        report = RunReport()
        start = time.perf_counter()
        for index, step in enumerate(workload.steps):
            try:
                divergence = self.apply(index, step, report)
            except Exception as exc:  # crash bugs shrink like wrong answers
                divergence = Divergence(
                    index, step, "exception", [], [f"{type(exc).__name__}: {exc}"]
                )
            report.steps_run += 1
            if divergence is not None:
                report.divergence = divergence
                break
        report.elapsed = time.perf_counter() - start
        report.cache_hits = self.cache.hits
        report.cache_misses = self.cache.misses
        return report


def run_workload(
    workload: Workload,
    fault: str | None = None,
    max_workers: int = 2,
    shards: int = 2,
) -> RunReport:
    """Replay ``workload`` in a fresh runner; sessions closed afterwards."""
    runner = WorkloadRunner(fault=fault, max_workers=max_workers, shards=shards)
    try:
        return runner.run(workload)
    finally:
        runner.close()
