"""First-divergence shrinking: minimize a failing workload's step list.

Workload steps were designed so any subsequence replays (dead-handle
references become no-ops), which turns shrinking into plain delta
debugging over a list: repeatedly try dropping chunks of steps —
halving the chunk size down to single steps — and keep every removal
that still reproduces *a* divergence. The result is 1-minimal: removing
any single remaining step makes the failure disappear.

:func:`format_repro` renders the minimal workload as the artifact a bug
report needs: the numbered step list, the exact
:class:`~repro.api.spec.GraphQuery` JSON of the diverging step, the
expected-vs-actual answers, and a replay command.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.testkit.runner import Divergence
from repro.testkit.workload import Workload


def shrink_workload(
    workload: Workload,
    reproduces: "Callable[[Workload], Divergence | None]",
    max_replays: int = 400,
) -> tuple[Workload, Divergence]:
    """Minimize ``workload`` while ``reproduces`` keeps returning a
    divergence; returns the minimal workload and its divergence.

    ``reproduces`` replays a candidate workload in a *fresh* runner and
    returns its divergence (or ``None`` when it passes) — see
    :func:`repro.testkit.runner.run_workload`. ``max_replays`` bounds
    total replay work; shrinking stops early at the bound and returns
    the best reduction found so far.
    """
    divergence = reproduces(workload)
    if divergence is None:
        raise ValueError("workload does not reproduce a divergence")
    steps = list(workload.steps)
    replays = 0

    def attempt(trial_steps: list) -> Divergence | None:
        nonlocal replays
        replays += 1
        return reproduces(Workload(seed=workload.seed, steps=tuple(trial_steps)))

    chunk = max(1, len(steps) // 2)
    while chunk >= 1:
        removed_any = False
        start = 0
        while start < len(steps) and replays < max_replays:
            trial = steps[:start] + steps[start + chunk:]
            if not trial:
                start += chunk
                continue
            verdict = attempt(trial)
            if verdict is not None:
                steps = trial
                divergence = verdict
                removed_any = True
                # re-test the same offset: the next chunk slid into place
            else:
                start += chunk
        if replays >= max_replays:
            break
        if chunk == 1:
            if not removed_any:
                break  # 1-minimal
        else:
            chunk = max(1, chunk // 2)
    return Workload(seed=workload.seed, steps=tuple(steps)), divergence


def format_repro(workload: Workload, divergence: Divergence) -> str:
    """Human-pasteable reproduction report for a shrunk workload."""
    lines = [
        f"minimal reproducing workload ({len(workload.steps)} steps, "
        f"seed {workload.seed}):",
    ]
    for index, step in enumerate(workload.steps):
        marker = " <-- diverges here" if index == divergence.step_index else ""
        lines.append(f"  [{index:3d}] {step.describe()}{marker}")
    lines.append("")
    lines.append(divergence.describe())
    if divergence.query_json is not None:
        lines.append("")
        lines.append("GraphQuery JSON of the diverging step:")
        lines.append(f"  {divergence.query_json}")
    lines.append("")
    lines.append(
        "replay: save the workload JSON (Workload.to_json) and run "
        "`python -m repro fuzz --replay FILE`"
    )
    return "\n".join(lines)
