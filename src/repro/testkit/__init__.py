"""Differential workload testing: generator, oracle, runner, shrinker.

The standing safety net for every scaling PR: a :class:`Workload` is a
deterministic, seed-derived, replayable sequence of steps — database
mutations, queries across all kinds × backends × cache settings, live
view checks and persistence round-trips — executed simultaneously
against the real system and a tiny trusted oracle
(:class:`~repro.testkit.oracle.Oracle`: naive exhaustive evaluation over
``memory`` semantics). The first divergence is shrunk to a minimal
reproducing step list (:func:`~repro.testkit.shrink.shrink_workload`)
and printed with the exact :class:`~repro.api.spec.GraphQuery` JSON.

Entry points::

    from repro.testkit import generate_workload, run_workload

    report = run_workload(generate_workload(seed=7, n_steps=200))
    assert report.ok, report.divergence

or from the shell: ``python -m repro fuzz --seed 7 --steps 200``.
"""

from repro.testkit.oracle import Oracle
from repro.testkit.workload import (
    AddGraph,
    CheckViews,
    RemoveGraph,
    RelabelGraph,
    RunQuery,
    SaveLoad,
    Step,
    WatchView,
    Workload,
    generate_workload,
)
from repro.testkit.runner import (
    FAULTS,
    Divergence,
    RunReport,
    WorkloadRunner,
    run_workload,
)
from repro.testkit.shrink import format_repro, shrink_workload
from repro.testkit.crash import (
    CrashReport,
    fuzz_kill_recover,
    generate_crash_workload,
    run_kill_recover,
)

__all__ = [
    "CrashReport",
    "fuzz_kill_recover",
    "generate_crash_workload",
    "run_kill_recover",
    "Oracle",
    "Step",
    "AddGraph",
    "RemoveGraph",
    "RelabelGraph",
    "RunQuery",
    "WatchView",
    "CheckViews",
    "SaveLoad",
    "Workload",
    "generate_workload",
    "WorkloadRunner",
    "run_workload",
    "RunReport",
    "Divergence",
    "FAULTS",
    "shrink_workload",
    "format_repro",
]
