"""Replayable workloads: concrete steps and the seed-driven generator.

A :class:`Workload` is a plain list of fully concrete :class:`Step`
objects — every graph, query spec and choice is materialized at
generation time, so the same workload replays identically forever and
any *subsequence* of its steps is still a valid workload (steps that
reference a graph handle no longer alive simply become no-ops during
replay). That subsequence property is what makes first-divergence
shrinking (:mod:`repro.testkit.shrink`) a pure list-minimization
problem.

Graphs are referenced by workload-local string handles (``"g0"``,
``"g1"``, …) rather than database ids: database ids depend on how many
inserts actually executed, which would change under shrinking; handles
are stable names the runner maps to live ids at replay time.

Everything serializes to JSON (:meth:`Workload.to_json`) so a failing
workload can be saved, attached to a bug report, and replayed with
``python -m repro fuzz --replay FILE``.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Any, ClassVar

from repro.api.ops import (
    AddOp,
    MUTATION_OPS,
    RelabelOp,
    RemoveOp,
    mutation_from_dict,
    relabeled_copy,
)
from repro.api.spec import GraphQuery
from repro.datasets.synthetic import ATOMS, BONDS, molecule_like_graph
from repro.errors import SerializationError
from repro.graph.generators import mutate
from repro.graph.labeled_graph import LabeledGraph

from repro.api.backends import _numpy_available

#: Backends every generated workload exercises (``vectorized`` joins the
#: rotation whenever NumPy is importable — the same gate that registers
#: the backend). The runner's database is itself sharded (see
#: :class:`~repro.testkit.runner.WorkloadRunner`), so every backend is
#: fuzzed over the shard store and ``sharded`` adds the scatter-gather
#: execution path on top.
WORKLOAD_BACKENDS: tuple[str, ...] = (
    ("memory", "indexed", "parallel", "vectorized", "sharded", "auto")
    if _numpy_available()
    else ("memory", "indexed", "parallel", "sharded", "auto")
)

#: Backends whose cascade prunes by index bounds. Tolerant dominance is
#: not transitive, so pruning-then-selecting can legitimately differ
#: from exhaustive selection under tolerance > 0 — generated specs keep
#: tolerance at 0 for these. ``sharded`` is deliberately *not* listed:
#: it guards the caveat itself (tolerance > 0 disables its pruning and
#: pools every evaluated vector), so tolerant specs are sound there and
#: generating them fuzzes that fallback path against the oracle.
#: ``auto`` is omitted for the same reason: its planner refuses bound
#: pruning for tolerant vector kinds, and tolerant specs fuzz exactly
#: that decision.
PRUNING_BACKENDS: tuple[str, ...] = ("indexed", "vectorized")

#: GCS measure subsets queries cycle through (``None`` = paper default).
MEASURE_POOLS: tuple[tuple[str, ...] | None, ...] = (
    None,
    ("edit",),
    ("edit", "mcs"),
    ("mcs", "union"),
    ("edit", "mcs", "union"),
)


@dataclass(frozen=True)
class Step:
    """Base of all workload steps; subclasses set :attr:`op`."""

    op: ClassVar[str] = "step"

    def to_dict(self) -> dict[str, Any]:
        return {"op": self.op}

    def describe(self) -> str:
        return self.op


@dataclass(frozen=True)
class AddGraph(AddOp, Step):
    """Insert ``graph`` under the workload-local ``handle`` (no-op if the
    handle is already live).

    Fields and wire encoding come from :class:`repro.api.ops.AddOp` —
    the same payload the server's mutate endpoint accepts.
    """

    def describe(self) -> str:
        return (
            f"add {self.handle} ({self.graph.order} vertices, "
            f"{self.graph.size} edges)"
        )


@dataclass(frozen=True)
class RemoveGraph(RemoveOp, Step):
    """Remove the graph stored under ``handle`` (no-op if not live)."""

    def describe(self) -> str:
        return f"remove {self.handle}"


@dataclass(frozen=True)
class RelabelGraph(RelabelOp, Step):
    """Relabel one vertex of ``handle``'s graph; the relabeled copy
    replaces the original under ``new_handle`` (remove + insert, the
    database's only update path). No-op if ``handle`` is not live or
    ``new_handle`` already is.
    """

    def describe(self) -> str:
        return (
            f"relabel {self.handle} vertex[{self.vertex_index}] -> "
            f"{self.label!r} as {self.new_handle}"
        )


@dataclass(frozen=True)
class RunQuery(Step):
    """Execute ``query`` on ``backend`` with cache off AND on; both
    answers must equal the oracle's."""

    query: GraphQuery
    backend: str

    op: ClassVar[str] = "query"

    def to_dict(self) -> dict[str, Any]:
        return {
            "op": self.op,
            "backend": self.backend,
            "query": self.query.to_dict(),
        }

    def describe(self) -> str:
        return f"{self.query.kind} query on {self.backend!r}"


@dataclass(frozen=True)
class WatchView(Step):
    """Open (or replace) the live view ``view_id`` over a skyline spec."""

    view_id: str
    query: GraphQuery

    op: ClassVar[str] = "watch"

    def to_dict(self) -> dict[str, Any]:
        return {
            "op": self.op,
            "view_id": self.view_id,
            "query": self.query.to_dict(),
        }

    def describe(self) -> str:
        return f"watch live view {self.view_id}"


@dataclass(frozen=True)
class CheckViews(Step):
    """Assert every open live view equals the oracle's skyline."""

    op: ClassVar[str] = "check-views"

    def describe(self) -> str:
        return "check live views against oracle"


@dataclass(frozen=True)
class SaveLoad(Step):
    """Persistence round-trip: save the database, load it back, and
    answer ``query`` on the loaded copy; the answer (as a multiset of
    graph payloads) must match the oracle's over the live database."""

    query: GraphQuery

    op: ClassVar[str] = "save-load"

    def to_dict(self) -> dict[str, Any]:
        return {"op": self.op, "query": self.query.to_dict()}

    def describe(self) -> str:
        return "save/load round-trip + query parity"


_STEP_TYPES: dict[str, type[Step]] = {
    cls.op: cls
    for cls in (
        AddGraph,
        RemoveGraph,
        RelabelGraph,
        RunQuery,
        WatchView,
        CheckViews,
        SaveLoad,
    )
}


#: Workload step class per shared mutation op name.
_MUTATION_STEPS: dict[str, type[Step]] = {
    AddGraph.op: AddGraph,
    RemoveGraph.op: RemoveGraph,
    RelabelGraph.op: RelabelGraph,
}
assert set(_MUTATION_STEPS) == set(MUTATION_OPS)


def step_from_dict(payload: dict[str, Any]) -> Step:
    """Rebuild one step from its :meth:`Step.to_dict` payload.

    Mutation steps decode through the shared
    :func:`repro.api.ops.mutation_from_dict`, so the testkit and the
    server accept (and reject) exactly the same payloads.
    """
    try:
        op = payload["op"]
        cls = _STEP_TYPES[op]
    except KeyError as exc:
        raise SerializationError(f"malformed workload step: {exc}") from exc
    if op in _MUTATION_STEPS:
        decoded = mutation_from_dict(payload)
        if isinstance(decoded, AddOp):
            return AddGraph(decoded.handle, decoded.graph)
        if isinstance(decoded, RemoveOp):
            return RemoveGraph(decoded.handle)
        return RelabelGraph(
            decoded.handle,
            decoded.new_handle,
            decoded.vertex_index,
            decoded.label,
        )
    if cls is RunQuery:
        return RunQuery(GraphQuery.from_dict(payload["query"]), payload["backend"])
    if cls is WatchView:
        return WatchView(payload["view_id"], GraphQuery.from_dict(payload["query"]))
    if cls is SaveLoad:
        return SaveLoad(GraphQuery.from_dict(payload["query"]))
    return CheckViews()


@dataclass(frozen=True)
class Workload:
    """A replayable step sequence (plus the seed it was derived from)."""

    seed: int
    steps: tuple[Step, ...]

    def __len__(self) -> int:
        return len(self.steps)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "steps": [step.to_dict() for step in self.steps],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Workload":
        try:
            steps = tuple(step_from_dict(step) for step in payload["steps"])
            return cls(seed=int(payload.get("seed", 0)), steps=steps)
        except (KeyError, TypeError) as exc:
            raise SerializationError(f"malformed workload payload: {exc}") from exc

    def to_json(self, **dumps_kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, payload: str) -> "Workload":
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"malformed workload JSON: {exc}") from exc
        return cls.from_dict(data)


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------
def _query_graph(
    rng: random.Random,
    live: dict[str, LabeledGraph],
    max_vertices: int,
    recent: list[LabeledGraph],
) -> LabeledGraph:
    """A query graph: a re-used earlier query (exercising cross-query
    PairCache sharing), a mutant of a live graph, or a fresh molecule."""
    if recent and rng.random() < 0.3:
        return rng.choice(recent)
    if live and rng.random() < 0.5:
        base = live[rng.choice(sorted(live))]
        return mutate(
            base,
            rng.randint(1, 2),
            vertex_labels=ATOMS,
            edge_labels=BONDS,
            seed=rng,
            name="q",
        )
    return molecule_like_graph(rng.randint(3, max_vertices), seed=rng, name="q")


def _query_spec(
    rng: random.Random,
    graph: LabeledGraph,
    kind: str,
    backend: str,
    budgeted: bool = False,
) -> GraphQuery:
    """One concrete validated spec for (kind, backend).

    Tolerance > 0 is only generated for non-pruning backends with the
    definitional ``naive`` algorithm: tolerant dominance is not
    transitive, so pruning-then-selecting can legitimately differ from
    exhaustive selection — that is a semantics caveat, not a bug the
    harness should report.

    With ``budgeted`` (``RunQuery`` steps only — live views don't take
    budgets), a slice of specs carries ``budget_nodes``: a pure expansion
    budget with no wall clock, so the anytime engine refines until the
    intervals certify and the answer must still equal the exhaustive
    oracle's — fuzzing the whole budgeted path deterministically.
    """
    measures = rng.choice(MEASURE_POOLS)
    algorithm = rng.choice(("bnl", "sfs", "dnc", "naive"))
    tolerance = 0.0
    if backend not in PRUNING_BACKENDS and rng.random() < 0.15:
        tolerance = 0.25
        algorithm = "naive"
    limit = rng.randint(1, 4) if rng.random() < 0.2 else None
    kwargs: dict[str, Any] = {
        "graph": graph,
        "kind": kind,
        "measures": measures,
        "algorithm": algorithm,
        "tolerance": tolerance,
        "limit": limit,
    }
    if kind in ("skyband", "topk"):
        kwargs["k"] = rng.randint(1, 4)
    if kind in ("topk", "threshold"):
        kwargs["measure"] = rng.choice(("edit", "mcs", "union", None))
    if kind == "threshold":
        kwargs["threshold"] = round(rng.uniform(0.5, 6.0), 3)
    if kind in ("skyline", "skyband") and tolerance == 0.0 and rng.random() < 0.1:
        kwargs["refine_k"] = 2
        kwargs["refine_method"] = rng.choice(("exhaustive", "greedy"))
    if budgeted and rng.random() < 0.2:
        kwargs["budget_nodes"] = rng.choice((50, 500, 5000))
    return GraphQuery(**kwargs).validate()


def generate_workload(
    seed: int,
    n_steps: int,
    max_vertices: int = 5,
    max_live: int = 10,
    max_views: int = 3,
) -> Workload:
    """Derive a concrete workload deterministically from ``seed``.

    The step mix interleaves mutations (~40%, add-biased until
    ``max_live`` graphs are live), queries (~42%, cycling through every
    (kind, backend) combination so all 12 are covered), live-view opens
    and checks, and persistence round-trips. ``max_vertices`` bounds
    graph size (exact GED/MCS solving is exponential, and the harness
    must stay fast).
    """
    rng = random.Random(seed)
    combos = [
        (kind, backend)
        for kind in ("skyline", "skyband", "topk", "threshold")
        for backend in WORKLOAD_BACKENDS
    ]
    rng.shuffle(combos)
    combo_cursor = 0

    live: dict[str, LabeledGraph] = {}
    recent_queries: list[LabeledGraph] = []
    views_open = 0
    counter = 0
    steps: list[Step] = []

    def fresh_handle() -> str:
        nonlocal counter
        handle = f"g{counter}"
        counter += 1
        return handle

    def add_step() -> Step:
        handle = fresh_handle()
        graph = molecule_like_graph(
            rng.randint(3, max_vertices), seed=rng, name=handle
        )
        live[handle] = graph
        return AddGraph(handle, graph)

    while len(steps) < n_steps:
        if len(live) < 3:
            steps.append(add_step())
            continue
        roll = rng.random()
        if roll < 0.22:
            if len(live) >= max_live:
                victim = rng.choice(sorted(live))
                del live[victim]
                steps.append(RemoveGraph(victim))
            else:
                steps.append(add_step())
        elif roll < 0.32:
            victim = rng.choice(sorted(live))
            del live[victim]
            steps.append(RemoveGraph(victim))
        elif roll < 0.39:
            handle = rng.choice(sorted(live))
            new_handle = fresh_handle()
            original = live.pop(handle)
            index = rng.randrange(max(original.order, 1))
            label = rng.choice(ATOMS)
            live[new_handle] = relabeled_copy(original, index, label, new_handle)
            steps.append(RelabelGraph(handle, new_handle, index, label))
        elif roll < 0.81:
            kind, backend = combos[combo_cursor % len(combos)]
            combo_cursor += 1
            spec = _query_spec(
                rng,
                _query_graph(rng, live, max_vertices, recent_queries),
                kind,
                backend,
                budgeted=True,
            )
            recent_queries.append(spec.graph)
            del recent_queries[:-5]
            steps.append(RunQuery(spec, backend))
        elif roll < 0.86 and views_open < max_views:
            spec = _query_spec(
                rng, _query_graph(rng, live, max_vertices, recent_queries), "skyline", "memory"
            )
            if spec.refine_k is not None or spec.tolerance > 0:
                # Views support neither refinement nor (soundly) tolerant
                # incremental dominance; keep the rest of the spec.
                spec = GraphQuery(
                    graph=spec.graph,
                    kind="skyline",
                    measures=spec.measures,
                    limit=spec.limit,
                ).validate()
            steps.append(WatchView(f"v{views_open}", spec))
            views_open += 1
        elif roll < 0.94:
            steps.append(CheckViews())
        else:
            spec = _query_spec(
                rng, _query_graph(rng, live, max_vertices, recent_queries), "skyline", "memory"
            )
            steps.append(SaveLoad(spec))
    return Workload(seed=seed, steps=tuple(steps))
