"""The trusted oracle: naive exhaustive evaluation over memory semantics.

The oracle answers any :class:`~repro.api.spec.GraphQuery` by computing
the exact measure vector of *every* live graph and selecting the answer
from first principles — a direct transcription of the paper's
definitions with no index, no pruning cascade, no shared cache, no
canonical hashing, and no skyline-algorithm choice. Everything it shares
with the system under test is the measure registry and the per-pair
solvers (:func:`repro.engine.evaluate.pair_values`), which *are* the
semantics being queried over; everything the staged engine adds on top
is re-derived here independently so the differential harness can catch
it drifting.

Graphs are tracked by workload handle with a monotonically increasing
insertion sequence number. The runner inserts graphs into the real
database in the same order it adds them here, so sequence order and
database-id order coincide — which is what lets answer lists (sorted by
id on the system side, by sequence here) be compared positionally.

Per-pair values are memoized by ``(handle, deterministic query
serialization, measure name)`` — plain dictionary keys with no
iso-invariant hashing involved, so a canonical-hash collision in the
production cache cannot silently infect the oracle.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.api.spec import GraphQuery
from repro.engine.evaluate import pair_values
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.serialization import graph_to_dict
from repro.measures.base import (
    default_measures,
    get_measure,
    measure_names,
    resolve_measures,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.measures.base import DistanceMeasure


def _dominates(p: tuple[float, ...], q: tuple[float, ...], tolerance: float) -> bool:
    """Pareto dominance (minimization), transcribed from Definition 1."""
    strictly_better = False
    for pi, qi in zip(p, q):
        if pi > qi + tolerance:
            return False
        if pi < qi - tolerance:
            strictly_better = True
    return strictly_better


def _query_key(graph: LabeledGraph) -> str:
    """Deterministic serialization of a query graph (memo key component)."""
    return json.dumps(graph_to_dict(graph), sort_keys=True, default=str)


class Oracle:
    """Mirror of the database keyed by workload handles, plus answers."""

    def __init__(self) -> None:
        self._graphs: dict[str, LabeledGraph] = {}
        self._seq: dict[str, int] = {}
        self._counter = 0
        self._memo: dict[tuple[str, str, str], float] = {}

    # -- mirror maintenance ---------------------------------------------
    def add(self, handle: str, graph: LabeledGraph) -> None:
        if handle in self._graphs:
            raise ValueError(f"handle {handle!r} is already live")
        self._graphs[handle] = graph.copy()
        self._seq[handle] = self._counter
        self._counter += 1

    def remove(self, handle: str) -> None:
        del self._graphs[handle]
        del self._seq[handle]
        self._memo = {
            key: value for key, value in self._memo.items() if key[0] != handle
        }

    def __contains__(self, handle: object) -> bool:
        return handle in self._graphs

    def __len__(self) -> int:
        return len(self._graphs)

    def handles(self) -> list[str]:
        """Live handles in insertion order (== database id order)."""
        return sorted(self._graphs, key=self._seq.__getitem__)

    def graph(self, handle: str) -> LabeledGraph:
        return self._graphs[handle]

    # -- exhaustive evaluation ------------------------------------------
    def _measures(self, spec: GraphQuery) -> tuple["DistanceMeasure", ...]:
        if spec.kind in ("skyline", "skyband"):
            if spec.measures is None:
                return default_measures()
            return resolve_measures(spec.measures)
        if spec.measure is not None:
            return (get_measure(spec.measure),)
        if spec.measures is not None:
            return (resolve_measures(spec.measures)[0],)
        return (default_measures()[0],)

    def vectors(self, spec: GraphQuery) -> dict[str, tuple[float, ...]]:
        """Exact vector of every live graph under the spec's measures."""
        measures = self._measures(spec)
        names = measure_names(measures)
        query_key = _query_key(spec.graph)
        out: dict[str, tuple[float, ...]] = {}
        for handle in self.handles():
            values = []
            for name, measure in zip(names, measures):
                memo_key = (handle, query_key, name)
                if memo_key not in self._memo:
                    self._memo[memo_key] = pair_values(
                        self._graphs[handle], spec.graph, (measure,)
                    )[0]
                values.append(self._memo[memo_key])
            out[handle] = tuple(values)
        return out

    def answer(self, spec: GraphQuery) -> list[str]:
        """The handles a correct system must return for ``spec``.

        Selection is definitional: skyline membership is "no other live
        vector dominates mine", the k-skyband counts dominators, topk
        and threshold sort by (distance, insertion order). Vector-kind
        answers come back in insertion order (matching the engine's
        sorted-by-id contract), distance kinds in rank order;
        ``spec.limit`` is applied last, mirroring the session.
        """
        spec.validate()
        vectors = self.vectors(spec)
        handles = self.handles()
        if spec.kind in ("skyline", "skyband"):
            prune_limit = 1 if spec.kind == "skyline" else spec.k
            answer = []
            for handle in handles:
                dominators = sum(
                    1
                    for other in handles
                    if other != handle
                    and _dominates(
                        vectors[other], vectors[handle], spec.tolerance
                    )
                )
                if dominators < prune_limit:
                    answer.append(handle)
        elif spec.kind == "topk":
            ranked = sorted(
                handles, key=lambda h: (vectors[h][0], self._seq[h])
            )
            answer = ranked[: spec.k]
        else:  # threshold
            answer = sorted(
                (h for h in handles if vectors[h][0] <= spec.threshold),
                key=lambda h: (vectors[h][0], self._seq[h]),
            )
        if spec.limit is not None:
            answer = answer[: spec.limit]
        return answer
