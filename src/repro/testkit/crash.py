"""Kill-and-recover fuzzing: SIGKILL a mutating child, replay the WAL.

The durability contract under test: a process killed at *any* instant
recovers — from disk alone — to a state equal to some contiguous prefix
of the mutations it acknowledged, and under ``sync=always`` to exactly
the full acknowledged prefix (no acked write lost; no phantom write
under any policy).

One :func:`run_kill_recover` round:

1. **Fork** a child (POSIX ``fork`` start method, so the workload needs
   no pickling) that opens a fresh :class:`~repro.db.wal.DurableLog`,
   applies the workload's mutation ops through the production
   :func:`~repro.api.ops.apply_mutation` path, and appends one
   fsynced acknowledgement line per applied op to an ack file — the
   crash-safe record of what a client was told committed.
2. The child **SIGKILLs itself** immediately after acknowledging its
   ``kill_at``-th op (derived from the seed, so every round is exactly
   reproducible), or ``os._exit``\\ s without closing the log when the
   workload runs out first — either way the log is abandoned exactly as
   a real crash leaves it, torn tails and unflushed buffers included.
3. The parent **recovers** from the directory and differentially checks
   the rebuilt store against an independent in-memory replay of the
   first ``R`` applied ops (``R`` = recovered LSN): same ids, same
   handle maps, same graph content (iso-hash per id), same shard
   placement — then recovers *again* and requires the identical answer
   (replay is read-only, so recover-twice must equal recover-once).

Failures surface as the testkit's standard
:class:`~repro.testkit.runner.Divergence`, and because a kill-recover
workload is just mutation steps — which stay applicable under
subsequence, the property the shrinker needs — a failing round ddmin-
shrinks through the existing :func:`~repro.testkit.shrink.
shrink_workload` like every other bug.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import signal
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.api.ops import MutationOp, applicable, apply_mutation
from repro.db.database import GraphDatabase
from repro.db.wal import DurableLog
from repro.errors import QueryError
from repro.shard.store import ShardedGraphDatabase
from repro.testkit.runner import Divergence
from repro.testkit.workload import (
    AddGraph,
    RelabelGraph,
    RemoveGraph,
    Step,
    Workload,
    generate_workload,
)

#: Sync policies a kill-recover round may run under, with what each lets
#: the crash legitimately lose (nothing / the unsynced interval / the
#: user-space buffer). ``always`` additionally asserts zero acked loss.
KILL_RECOVER_SYNCS: tuple[str, ...] = ("always", "interval:0.05", "none")


def mutation_steps(workload: Workload) -> tuple[Step, ...]:
    """The workload's mutation ops, in order (queries etc. dropped).

    The generator keeps mutation applicability dependent only on prior
    *mutations*, so this filtered stream replays exactly as it would
    inside the full workload — and any subsequence of it is again a
    valid kill-recover workload (what ddmin needs).
    """
    return tuple(
        step
        for step in workload.steps
        if isinstance(step, (AddGraph, RemoveGraph, RelabelGraph))
    )


def generate_crash_workload(
    seed: int, n_steps: int = 200, max_vertices: int = 5
) -> Workload:
    """A mutation-only workload derived from ``seed`` (~40% of the mixed
    generator's steps are mutations; the rest are filtered out)."""
    full = generate_workload(seed, n_steps, max_vertices=max_vertices)
    return Workload(seed=seed, steps=mutation_steps(full))


def _fresh_store(shards: int) -> GraphDatabase:
    if shards > 1:
        return ShardedGraphDatabase(shards=shards, name="crashkit")
    return GraphDatabase(name="crashkit")


def replay_prefix(
    steps: tuple[Step, ...], shards: int, upto_applied: int | None = None
) -> tuple[GraphDatabase, dict[str, int], dict[int, str]]:
    """Independently apply the first ``upto_applied`` applicable ops.

    The differential oracle of recovery: a fresh store (no WAL) driven
    through the same :func:`~repro.api.ops.apply_mutation` path the
    child used, stopped after the same number of applied ops. Every id,
    handle and placement decision is deterministic, so this is the
    exact state the recovered store must equal.
    """
    database = _fresh_store(shards)
    handle_to_id: dict[str, int] = {}
    id_to_handle: dict[int, str] = {}
    applied = 0
    for step in steps:
        if upto_applied is not None and applied >= upto_applied:
            break
        assert isinstance(step, MutationOp)
        if not applicable(step, handle_to_id):
            continue
        apply_mutation(database, step, handle_to_id, id_to_handle)
        applied += 1
    return database, handle_to_id, id_to_handle


def _store_fingerprint(
    database: GraphDatabase, handle_to_id: dict[str, int]
) -> list[str]:
    """Order-independent lines describing store + handle map + placement.

    Comparing fingerprints is the whole differential check, and the
    lines double as the human-readable expected/actual of a
    :class:`Divergence`.
    """
    lines = []
    for graph_id in sorted(database.ids()):
        entry = database.entry(graph_id)
        shard = (
            database.shard_of(graph_id)
            if isinstance(database, ShardedGraphDatabase)
            else 0
        )
        lines.append(
            f"id={graph_id} shard={shard} iso={entry.iso_hash[:12]} "
            f"order={entry.graph.order} size={entry.graph.size}"
        )
    for handle in sorted(handle_to_id):
        lines.append(f"handle {handle}->{handle_to_id[handle]}")
    return lines


# ----------------------------------------------------------------------
# The child
# ----------------------------------------------------------------------
def _child_main(
    steps: tuple[Step, ...],
    data_dir: str,
    ack_path: str,
    shards: int,
    sync: str,
    kill_at: int,
) -> None:
    """Apply ops, fsync-ack each, self-SIGKILL after the ``kill_at``-th.

    Runs in the forked child. Any *unexpected* exception is written to
    ``ack_path + '.error'`` and exits 3 so the parent can tell a harness
    bug from a durability bug.
    """
    try:
        database = _fresh_store(shards)
        log = DurableLog.open(data_dir, sync=sync, segments=shards)
        log.initialize(database, {})
        database.attach_wal(log)
        handle_to_id: dict[str, int] = {}
        id_to_handle: dict[int, str] = {}
        applied = 0
        with open(ack_path, "a", encoding="utf-8") as ack_file:
            for index, step in enumerate(steps):
                assert isinstance(step, MutationOp)
                if not applicable(step, handle_to_id):
                    continue
                ack = apply_mutation(
                    database, step, handle_to_id, id_to_handle
                )
                applied += 1
                # The ack line IS the client's receipt; it must hit disk
                # before the deterministic kill can fire.
                ack_file.write(
                    json.dumps({"step": index, "lsn": ack["lsn"]}) + "\n"
                )
                ack_file.flush()
                os.fsync(ack_file.fileno())
                if applied >= kill_at:
                    os.kill(os.getpid(), signal.SIGKILL)
        # Workload exhausted before the kill point: abandon the log
        # *without closing it* — an exit(0) crash still leaves unflushed
        # buffers behind under sync=none.
        os._exit(0)
    except BaseException as exc:  # pragma: no cover - harness failure path
        try:
            Path(ack_path + ".error").write_text(
                f"{type(exc).__name__}: {exc}", encoding="utf-8"
            )
        finally:
            os._exit(3)


# ----------------------------------------------------------------------
# One round
# ----------------------------------------------------------------------
@dataclass
class CrashReport:
    """Outcome of one kill-and-recover round."""

    seed: int
    sync: str
    shards: int
    kill_at: int
    #: Ops the child acknowledged before dying (ack-file line count).
    acked: int = 0
    #: LSN the recovery replayed up to (== surviving record count).
    recovered_lsn: int = 0
    torn_records: int = 0
    divergence: Divergence | None = None

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def summary(self) -> str:
        verdict = "OK" if self.ok else "DIVERGED"
        return (
            f"{verdict}: sync={self.sync} shards={self.shards} "
            f"kill@{self.kill_at}: {self.acked} acked, recovered to "
            f"lsn {self.recovered_lsn} ({self.torn_records} torn)"
        )


def run_kill_recover(
    workload: Workload,
    sync: str = "always",
    shards: int = 2,
    kill_at: int | None = None,
    timeout: float = 120.0,
) -> CrashReport:
    """One full fork → mutate → SIGKILL → recover → differential round.

    ``kill_at`` (default: seed-derived) is the 1-based count of applied
    ops after which the child kills itself; past the workload's total it
    degenerates to crash-at-end. Requires the ``fork`` start method
    (POSIX); raises :class:`~repro.errors.QueryError` elsewhere.
    """
    steps = mutation_steps(workload)
    if not steps:
        raise QueryError("kill-recover needs a workload with mutation steps")
    if kill_at is None:
        rng = random.Random(workload.seed ^ 0xC0FFEE)
        kill_at = rng.randint(1, len(steps))
    report = CrashReport(
        seed=workload.seed, sync=sync, shards=shards, kill_at=kill_at
    )
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError as exc:  # pragma: no cover - non-POSIX
        raise QueryError(
            "kill-recover fuzzing needs the 'fork' start method"
        ) from exc

    with tempfile.TemporaryDirectory(prefix="repro-crash-") as tmp:
        data_dir = str(Path(tmp) / "wal")
        ack_path = str(Path(tmp) / "acks.jsonl")
        child = ctx.Process(
            target=_child_main,
            args=(steps, data_dir, ack_path, shards, sync, kill_at),
            daemon=True,
        )
        child.start()
        child.join(timeout)
        if child.is_alive():  # pragma: no cover - hung child
            child.kill()
            child.join(5)
            report.divergence = Divergence(
                0, steps[0], "kill-recover:timeout", [],
                [f"child still alive after {timeout}s"],
            )
            return report
        error_path = Path(ack_path + ".error")
        if error_path.exists():
            report.divergence = Divergence(
                0, steps[0], "kill-recover:child-error", [],
                [error_path.read_text(encoding="utf-8")],
            )
            return report

        acks = _read_acks(ack_path)
        report.acked = len(acks)
        report.divergence = _check_recovery(report, steps, acks, data_dir)
    return report


def _read_acks(ack_path: str) -> list[dict[str, Any]]:
    path = Path(ack_path)
    if not path.exists():
        return []
    acks = []
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.strip():
            acks.append(json.loads(line))
    return acks


def _check_recovery(
    report: CrashReport,
    steps: tuple[Step, ...],
    acks: list[dict[str, Any]],
    data_dir: str,
) -> Divergence | None:
    """Recover from ``data_dir`` and run every durability assertion."""
    log = DurableLog.open(data_dir)
    try:
        report.torn_records = log.repair.torn_records
        state = log.recover()
        state_again = log.recover()
    finally:
        log.close()
    report.recovered_lsn = state.last_lsn
    anchor_index = min(report.kill_at, len(steps)) - 1
    anchor = steps[anchor_index]

    # No phantom writes: the child acked every record it appended before
    # the kill could fire, so recovery can never see more than was acked.
    if state.last_lsn > len(acks):
        return Divergence(
            anchor_index, anchor, "kill-recover:phantom",
            [f"recovered lsn <= {len(acks)} acked"],
            [f"recovered lsn {state.last_lsn}"],
        )
    # No acked-write loss under sync=always: every acked LSN must survive.
    max_acked = max((ack["lsn"] for ack in acks), default=0)
    if report.sync == "always" and state.last_lsn < max_acked:
        return Divergence(
            anchor_index, anchor, "kill-recover:acked-loss",
            [f"recovered lsn >= acked lsn {max_acked}"],
            [f"recovered lsn {state.last_lsn}"],
        )

    # Differential check: recovered state == independent replay of the
    # first `recovered_lsn` applied ops (one WAL record per applied op,
    # so the surviving LSN prefix is exactly that op prefix).
    expected_db, expected_handles, _ = replay_prefix(
        steps, report.shards, upto_applied=state.last_lsn
    )
    expected = _store_fingerprint(expected_db, expected_handles)
    actual = _store_fingerprint(state.database, state.handle_to_id)
    if expected != actual:
        return Divergence(
            anchor_index, anchor, "kill-recover:state", expected, actual
        )
    # Idempotence: a second recovery of the same log is byte-identical.
    again = _store_fingerprint(state_again.database, state_again.handle_to_id)
    if again != actual or state_again.last_lsn != state.last_lsn:
        return Divergence(
            anchor_index, anchor, "kill-recover:recover-twice", actual, again
        )
    return None


# ----------------------------------------------------------------------
# Fuzz-loop + shrinking entry points
# ----------------------------------------------------------------------
def crash_reproducer(
    sync: str, shards: int, kill_at: int
):
    """A ``reproduces`` callback for :func:`~repro.testkit.shrink.
    shrink_workload`: re-runs the whole kill-recover round (fixed kill
    point and policy) on each candidate subsequence."""

    def reproduces(candidate: Workload) -> Divergence | None:
        if not mutation_steps(candidate):
            return None
        return run_kill_recover(
            candidate, sync=sync, shards=shards, kill_at=kill_at
        ).divergence

    return reproduces


def fuzz_kill_recover(
    seed: int,
    n_steps: int = 200,
    shards: int = 2,
    syncs: tuple[str, ...] = KILL_RECOVER_SYNCS,
    kill_at: int | None = None,
    shrink: bool = True,
    log: Any = None,
) -> tuple[CrashReport, Workload] | None:
    """Run one seed's kill-recover rounds across ``syncs``.

    Returns ``None`` when every round passes; otherwise the failing
    (optionally ddmin-shrunk) round as ``(report, workload)``.
    """
    from repro.testkit.shrink import shrink_workload

    workload = generate_crash_workload(seed, n_steps)
    for sync in syncs:
        report = run_kill_recover(
            workload, sync=sync, shards=shards, kill_at=kill_at
        )
        if log is not None:
            log(f"seed {seed}: {report.summary()}")
        if report.ok:
            continue
        if shrink:
            shrunk, divergence = shrink_workload(
                workload,
                crash_reproducer(sync, shards, report.kill_at),
            )
            report.divergence = divergence
            return report, shrunk
        return report, workload
    return None
