"""Figure-reconstruction tooling: constraints, verification, local search.

The paper's Fig. 3 graphs are known only through their published
statistics. This subpackage encodes those statistics as constraints,
verifies any candidate reconstruction cell by cell against the exact
solvers, and hill-climbs candidates to maximise agreement. The shipped
dataset (:mod:`repro.datasets.paper_example`) is the best assignment
found; `tests/test_reconstruct.py` re-verifies it on every run.
"""

from repro.reconstruct.constraints import (
    GRAPH_NAMES,
    PAPER_CONSTRAINTS,
    PaperConstraints,
    SKYLINE_NAMES,
)
from repro.reconstruct.verify import (
    Cell,
    PairSolverCache,
    VerificationReport,
    verify_assignment,
)
from repro.reconstruct.search import (
    LABEL_POOL,
    SearchResult,
    search_reconstruction,
)

__all__ = [
    "GRAPH_NAMES",
    "SKYLINE_NAMES",
    "PaperConstraints",
    "PAPER_CONSTRAINTS",
    "Cell",
    "VerificationReport",
    "PairSolverCache",
    "verify_assignment",
    "SearchResult",
    "search_reconstruction",
    "LABEL_POOL",
]
