"""Cell-by-cell verification of a Fig. 3 reconstruction candidate.

Given an assignment ``{"g1": graph, ..., "g7": graph}`` plus the query,
:func:`verify_assignment` computes every constrained quantity with the
exact solvers and returns a :class:`VerificationReport` listing each cell
as (target, measured, deviation). Pairwise solver calls are memoised on
canonical hashes so repeated verification during search stays affordable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

from repro.graph.canonical import canonical_hash
from repro.graph.ged import graph_edit_distance
from repro.graph.isomorphism import is_subgraph_isomorphic
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.mcs import mcs_size
from repro.reconstruct.constraints import PAPER_CONSTRAINTS, PaperConstraints


@dataclass(frozen=True)
class Cell:
    """One verified constraint cell."""

    kind: str  # "size" | "mcs-q" | "ged-q" | "pair-mcs" | "pair-ged" | "structure"
    key: str
    target: float
    measured: float

    @property
    def deviation(self) -> float:
        """Absolute gap between target and measured value."""
        return abs(self.target - self.measured)

    @property
    def exact(self) -> bool:
        """Whether the cell matches the paper exactly."""
        return self.deviation == 0


@dataclass
class VerificationReport:
    """Outcome of verifying one candidate assignment."""

    cells: list[Cell] = field(default_factory=list)

    @property
    def hard_cells(self) -> list[Cell]:
        """Query-side + structural cells (must be exact)."""
        return [c for c in self.cells if c.kind in ("size", "mcs-q", "ged-q", "structure")]

    @property
    def soft_cells(self) -> list[Cell]:
        """Pairwise Table-IV cells (best effort)."""
        return [c for c in self.cells if c.kind in ("pair-mcs", "pair-ged")]

    @property
    def hard_ok(self) -> bool:
        """All hard constraints exact."""
        return all(cell.exact for cell in self.hard_cells)

    @property
    def soft_deviation(self) -> float:
        """Total absolute deviation over the soft cells (search objective)."""
        return sum(cell.deviation for cell in self.soft_cells)

    @property
    def exact_cell_count(self) -> int:
        """Number of cells (hard + soft) matching the paper exactly."""
        return sum(1 for cell in self.cells if cell.exact)

    def mismatches(self) -> list[Cell]:
        """Every non-exact cell."""
        return [cell for cell in self.cells if not cell.exact]

    def summary(self) -> str:
        """One-line report."""
        return (
            f"{self.exact_cell_count}/{len(self.cells)} cells exact, "
            f"hard={'OK' if self.hard_ok else 'VIOLATED'}, "
            f"soft deviation={self.soft_deviation:g}"
        )


class PairSolverCache:
    """Memoises exact GED / MCS on canonical-hash pairs across candidates."""

    def __init__(self) -> None:
        self._mcs: dict[tuple[str, str], int] = {}
        self._ged: dict[tuple[str, str], float] = {}
        self._hashes: dict[int, str] = {}

    def _key(self, g1: LabeledGraph, g2: LabeledGraph) -> tuple[str, str]:
        h1 = self._hashes.setdefault(id(g1), canonical_hash(g1))
        h2 = self._hashes.setdefault(id(g2), canonical_hash(g2))
        return (h1, h2) if h1 <= h2 else (h2, h1)

    def mcs(self, g1: LabeledGraph, g2: LabeledGraph) -> int:
        key = self._key(g1, g2)
        if key not in self._mcs:
            self._mcs[key] = mcs_size(g1, g2)
        return self._mcs[key]

    def ged(self, g1: LabeledGraph, g2: LabeledGraph) -> float:
        key = self._key(g1, g2)
        if key not in self._ged:
            self._ged[key] = graph_edit_distance(g1, g2).distance
        return self._ged[key]


def verify_assignment(
    assignment: Mapping[str, LabeledGraph],
    query: LabeledGraph,
    constraints: PaperConstraints = PAPER_CONSTRAINTS,
    cache: PairSolverCache | None = None,
) -> VerificationReport:
    """Measure every constrained quantity for ``assignment`` vs the paper."""
    cache = cache if cache is not None else PairSolverCache()
    report = VerificationReport()

    report.cells.append(
        Cell("size", "q", constraints.query_size, query.size)
    )
    for name, target in constraints.sizes.items():
        report.cells.append(Cell("size", name, target, assignment[name].size))
    for name, target in constraints.mcs_with_query.items():
        report.cells.append(
            Cell("mcs-q", name, target, cache.mcs(assignment[name], query))
        )
    for name, target in constraints.ged_with_query.items():
        report.cells.append(
            Cell("ged-q", name, target, cache.ged(assignment[name], query))
        )
    if constraints.query_subgraph_of:
        host = assignment[constraints.query_subgraph_of]
        report.cells.append(
            Cell(
                "structure",
                f"q ⊆ {constraints.query_subgraph_of}",
                1.0,
                1.0 if is_subgraph_isomorphic(query, host) else 0.0,
            )
        )
    if constraints.require_connected:
        for name, graph in assignment.items():
            report.cells.append(
                Cell("structure", f"{name} connected", 1.0,
                     1.0 if graph.is_connected() else 0.0)
            )
    for (a, b), target in constraints.pairwise_mcs.items():
        report.cells.append(
            Cell("pair-mcs", f"({a},{b})", target,
                 cache.mcs(assignment[a], assignment[b]))
        )
    for (a, b), target in constraints.pairwise_ged.items():
        report.cells.append(
            Cell("pair-ged", f"({a},{b})", target,
                 cache.ged(assignment[a], assignment[b]))
        )
    return report
