"""Local search for Fig. 3 reconstructions maximising paper agreement.

Starting from any hard-feasible assignment (the shipped dataset by
default), the search perturbs one database graph at a time with random
edit moves and keeps the mutation only when

1. every *hard* constraint (sizes, Table II, Table III, connectivity,
   q ⊆ g7) still holds exactly, and
2. the total deviation over the *soft* pairwise cells does not get worse
   (with occasional sideways moves to escape plateaus).

This is the tool that produced / validated the shipped reconstruction.
Because DESIGN.md §4 proves the soft system cannot reach deviation 0, the
search is expected to terminate at a positive floor; its value is in
certifying "no better neighbour" and in exploring alternative label
assignments (including repeated labels) without hand analysis.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from repro.graph.labeled_graph import LabeledGraph
from repro.reconstruct.constraints import (
    PAPER_CONSTRAINTS,
    PaperConstraints,
    SKYLINE_NAMES,
)
from repro.reconstruct.verify import (
    PairSolverCache,
    VerificationReport,
    verify_assignment,
)

#: Labels the mutation moves may introduce (superset of the shipped ones).
LABEL_POOL: tuple[str, ...] = ("a", "b", "c", "d", "e", "f", "g", "h", "u", "w", "y")


@dataclass
class SearchResult:
    """Outcome of a reconstruction search run."""

    assignment: dict[str, LabeledGraph]
    report: VerificationReport
    iterations: int
    accepted: int
    improved: bool
    history: list[float] = field(default_factory=list)


def _random_move(graph: LabeledGraph, rng: random.Random) -> LabeledGraph | None:
    """One random structure-preserving-size mutation, or None if inapplicable.

    Moves keep the edge count fixed (sizes are hard constraints): either
    rewire one edge, or relabel one vertex from the pool. Vertex set may
    grow/shrink implicitly through rewiring to a fresh vertex.
    """
    clone = graph.copy()
    move = rng.choice(("rewire", "relabel"))
    if move == "relabel" and clone.order > 0:
        vertex = rng.choice(clone.vertices())
        new_label = rng.choice(LABEL_POOL)
        if new_label == clone.vertex_label(vertex):
            return None
        clone.relabel_vertex(vertex, new_label)
        return clone
    if move == "rewire" and clone.size > 0:
        u, v, label = rng.choice(list(clone.edges()))
        vertices = clone.vertices()
        candidates = [
            (x, y)
            for i, x in enumerate(vertices)
            for y in vertices[i + 1:]
            if not clone.has_edge(x, y)
        ]
        if not candidates:
            return None
        x, y = rng.choice(candidates)
        clone.remove_edge(u, v)
        clone.add_edge(x, y, label)
        # drop vertices isolated by the rewire (keeps graphs tidy)
        for vertex in (u, v):
            if clone.has_vertex(vertex) and clone.degree(vertex) == 0:
                clone.remove_vertex(vertex)
        return clone
    return None


def search_reconstruction(
    start: Mapping[str, LabeledGraph],
    query: LabeledGraph,
    constraints: PaperConstraints = PAPER_CONSTRAINTS,
    iterations: int = 200,
    seed: int = 0,
    mutable: Sequence[str] = SKYLINE_NAMES,
    sideways_probability: float = 0.15,
) -> SearchResult:
    """Hill-climb (with sideways moves) from ``start``.

    Parameters
    ----------
    start:
        A hard-feasible assignment ``{"g1": graph, ...}``.
    mutable:
        Which graphs the search may perturb; defaults to the skyline
        members (the only graphs the soft constraints mention).
    iterations:
        Mutation attempts; each costs a handful of exact GED/MCS calls
        (memoised across repeats).
    """
    rng = random.Random(seed)
    cache = PairSolverCache()
    current = {name: graph.copy() for name, graph in start.items()}
    current_report = verify_assignment(current, query, constraints, cache)
    if not current_report.hard_ok:
        raise ValueError("the starting assignment violates hard constraints")
    best_deviation = current_report.soft_deviation
    start_deviation = best_deviation
    accepted = 0
    history = [best_deviation]

    for _ in range(iterations):
        name = rng.choice(list(mutable))
        mutated = _random_move(current[name], rng)
        if mutated is None:
            history.append(best_deviation)
            continue
        candidate = dict(current)
        candidate[name] = mutated
        report = verify_assignment(candidate, query, constraints, cache)
        acceptable = report.hard_ok and (
            report.soft_deviation < best_deviation
            or (
                report.soft_deviation == best_deviation
                and rng.random() < sideways_probability
            )
        )
        if acceptable:
            current = candidate
            current_report = report
            best_deviation = report.soft_deviation
            accepted += 1
        history.append(best_deviation)

    return SearchResult(
        assignment=current,
        report=current_report,
        iterations=iterations,
        accepted=accepted,
        improved=best_deviation < start_deviation,
        history=history,
    )
