"""Constraint specification for the Fig. 3 reconstruction.

The paper's Fig. 3 drawings are lost; what survives is a system of
constraints over the database ``{g1..g7}`` and the query ``q``:

* the graph sizes (edge counts) stated in Section VI;
* the Table II column ``|mcs(gi, q)|``;
* the Table III column ``DistEd(gi, q)`` (DistMcs / DistGu follow from
  Table II and the sizes);
* the pairwise ``|mcs|`` and ``DistEd`` values among the skyline members
  implied by Table IV.

This module encodes those targets declaratively so the verifier
(:mod:`repro.reconstruct.verify`) can score any candidate assignment and
the local search (:mod:`repro.reconstruct.search`) can optimise one.
Query-side constraints are *hard* (Tables II/III must stay exact — they
determine the skyline and the top-k contrast); pairwise constraints are
*soft* (DESIGN.md §4 proves they cannot all hold simultaneously).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Database order used throughout (matches Fig. 3).
GRAPH_NAMES: tuple[str, ...] = ("g1", "g2", "g3", "g4", "g5", "g6", "g7")

#: Names of the skyline members appearing in Tables IV-V.
SKYLINE_NAMES: tuple[str, ...] = ("g1", "g4", "g5", "g7")


@dataclass(frozen=True)
class PaperConstraints:
    """All numeric targets the reconstruction must (try to) satisfy."""

    query_size: int = 6
    sizes: dict[str, int] = field(
        default_factory=lambda: {
            "g1": 6, "g2": 7, "g3": 7, "g4": 6, "g5": 8, "g6": 9, "g7": 10,
        }
    )
    mcs_with_query: dict[str, int] = field(
        default_factory=lambda: {
            "g1": 4, "g2": 4, "g3": 4, "g4": 3, "g5": 5, "g6": 5, "g7": 6,
        }
    )
    ged_with_query: dict[str, int] = field(
        default_factory=lambda: {
            "g1": 4, "g2": 4, "g3": 3, "g4": 2, "g5": 3, "g6": 4, "g7": 4,
        }
    )
    pairwise_mcs: dict[tuple[str, str], int] = field(
        default_factory=lambda: {
            ("g1", "g4"): 2, ("g1", "g5"): 4, ("g1", "g7"): 4,
            ("g4", "g5"): 3, ("g4", "g7"): 3, ("g5", "g7"): 5,
        }
    )
    pairwise_ged: dict[tuple[str, str], int] = field(
        default_factory=lambda: {
            ("g1", "g4"): 6, ("g1", "g5"): 5, ("g1", "g7"): 7,
            ("g4", "g5"): 4, ("g4", "g7"): 5, ("g5", "g7"): 3,
        }
    )
    #: The query must embed into g7 ("g7 ⊃ q").
    query_subgraph_of: str = "g7"
    #: All Fig. 3 drawings look connected.
    require_connected: bool = True

    def hard_cell_count(self) -> int:
        """Number of query-side (hard) numeric constraints."""
        return (
            len(self.sizes) + len(self.mcs_with_query) + len(self.ged_with_query) + 1
        )

    def soft_cell_count(self) -> int:
        """Number of pairwise (soft) numeric constraints."""
        return len(self.pairwise_mcs) + len(self.pairwise_ged)


#: The default constraint set — the paper's published numbers.
PAPER_CONSTRAINTS = PaperConstraints()
