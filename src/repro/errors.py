"""Exception hierarchy for the ``repro`` library.

All library errors derive from :class:`ReproError` so that callers can catch
one base class. More specific subclasses signal misuse of the graph type,
invalid edit operations, or invalid query specifications.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the ``repro`` library."""


class GraphError(ReproError):
    """Base class for errors involving :class:`repro.graph.LabeledGraph`."""


class VertexNotFoundError(GraphError, KeyError):
    """A vertex id was referenced that is not present in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError, KeyError):
    """An edge was referenced that is not present in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class DuplicateVertexError(GraphError, ValueError):
    """A vertex id was inserted twice."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is already in the graph")
        self.vertex = vertex


class DuplicateEdgeError(GraphError, ValueError):
    """An edge was inserted twice (parallel edges are not supported)."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is already in the graph")
        self.u = u
        self.v = v


class SelfLoopError(GraphError, ValueError):
    """A self loop was inserted (the paper's graphs are simple graphs)."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"self loops are not supported (vertex {vertex!r})")
        self.vertex = vertex


class InvalidEditOperationError(ReproError, ValueError):
    """An edit operation cannot be applied to the given graph."""


class QueryError(ReproError, ValueError):
    """An invalid similarity query specification was supplied."""


class DatasetError(ReproError, ValueError):
    """A dataset could not be built or validated."""


class SerializationError(ReproError, ValueError):
    """A graph payload could not be (de)serialized."""


class StaleHandleError(QueryError):
    """A mutation referenced a handle that no longer resolves.

    Raised by :func:`repro.api.ops.apply_mutation` when the source handle
    of a ``remove``/``relabel`` is not live — distinct from a duplicate
    handle on ``add`` so the server can answer a structured
    ``stale-handle`` conflict instead of a generic error.
    """

    def __init__(self, op: str, handle: object) -> None:
        super().__init__(
            f"mutation {op!r} references handle {handle!r}, "
            f"which no longer resolves"
        )
        self.op = op
        self.handle = handle


class WalCorruptionError(SerializationError):
    """A write-ahead log segment is corrupt beyond its torn tail.

    A partial or checksum-failed *final* record is expected after a
    crash and silently truncated on open; a bad record with valid
    records after it means lost or mangled history, which recovery must
    refuse to paper over.
    """


class DeadlineExceeded(ReproError, TimeoutError):
    """A query's deadline expired before evaluation finished.

    Raised cooperatively by the staged engine (once per candidate, and
    between pooled-evaluator chunks) when the ambient
    :class:`repro.engine.deadline.Deadline` has passed — the run stops,
    partial state is discarded, and the caller (e.g. ``repro.server``)
    maps this to a structured timeout error.
    """
