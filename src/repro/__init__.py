"""repro — similarity skyline queries over graph databases.

A faithful, self-contained reproduction of

    K. Abbaci, A. Hadjali, L. Liétard, D. Rocacher.
    "A Similarity Skyline Approach for Handling Graph Queries —
    A Preliminary Report." GDM workshop @ IEEE ICDE, 2011.

Quick tour
----------
The declarative session API is the front door: open a session over any
graph collection, describe the query with the fluent builder, and execute
it on a pluggable backend (``memory``, ``indexed``, ``parallel``):

>>> import repro
>>> from repro.datasets import figure3_database, figure3_query
>>> session = repro.connect(figure3_database())
>>> result = session.execute(repro.Query(figure3_query()).skyline().refine(k=2))
>>> result.names
['g1', 'g4', 'g5', 'g7']
>>> [g.name for g in result.refinement.subset]
['g1', 'g4']

The original functional core remains available:

>>> from repro import graph_similarity_skyline, refine_by_diversity
>>> result = graph_similarity_skyline(figure3_database(), figure3_query())
>>> [g.name for g in result.skyline]
['g1', 'g4', 'g5', 'g7']

Packages
--------
``repro.api``       declarative queries, sessions, pluggable backends
``repro.engine``    staged evaluation engine: plans, cascade, live views
``repro.graph``     labeled graphs, isomorphism, MCS, exact/approx GED
``repro.measures``  DistEd / DistMcs / DistGu (+ extensions)
``repro.skyline``   generic Pareto skyline algorithms
``repro.core``      GCS, similarity-dominance, GSS, diversity refinement
``repro.db``        database storage, feature index, pruning executor
``repro.shard``     sharded store, placement policies, scatter-gather backend
``repro.index``     vectorized feature store, bound kernels, VP-tree (NumPy)
``repro.datasets``  paper examples and synthetic workloads
``repro.testkit``   differential workload fuzzing against a trusted oracle
``repro.bench``     harness utilities for the reproduction benchmarks
"""

from repro.errors import (
    DatasetError,
    GraphError,
    InvalidEditOperationError,
    QueryError,
    ReproError,
    SerializationError,
)
from repro.graph import (
    LabeledGraph,
    UniformCostModel,
    ged,
    graph_edit_distance,
    is_isomorphic,
    is_subgraph_isomorphic,
    maximum_common_subgraph,
    mcs_size,
)
from repro.measures import (
    DistanceMeasure,
    EditDistance,
    GraphUnionDistance,
    McsDistance,
    NormalizedEditDistance,
    default_measures,
    diversity_measures,
    get_measure,
)
from repro.skyline import dominates, skyline
from repro.core import (
    CompoundSimilarity,
    QueryAnswer,
    SimilarityQueryEngine,
    SkylineResult,
    compound_similarity,
    gcs_matrix,
    graph_similarity_skyline,
    refine_by_diversity,
    similarity_dominates,
    top_k_by_measure,
)
from repro.db import GraphDatabase, PairCache, SkylineExecutor
from repro.shard import ShardedGraphDatabase
from repro.api import (
    ExecutionBackend,
    GraphQuery,
    LiveView,
    Query,
    QueryPlan,
    ResultSet,
    Session,
    available_backends,
    connect,
    register_backend,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "GraphError",
    "InvalidEditOperationError",
    "QueryError",
    "DatasetError",
    "SerializationError",
    # graphs
    "LabeledGraph",
    "UniformCostModel",
    "ged",
    "graph_edit_distance",
    "is_isomorphic",
    "is_subgraph_isomorphic",
    "maximum_common_subgraph",
    "mcs_size",
    # measures
    "DistanceMeasure",
    "EditDistance",
    "NormalizedEditDistance",
    "McsDistance",
    "GraphUnionDistance",
    "default_measures",
    "diversity_measures",
    "get_measure",
    # skyline
    "skyline",
    "dominates",
    # core
    "CompoundSimilarity",
    "compound_similarity",
    "gcs_matrix",
    "similarity_dominates",
    "graph_similarity_skyline",
    "SkylineResult",
    "refine_by_diversity",
    "top_k_by_measure",
    "SimilarityQueryEngine",
    "QueryAnswer",
    # db
    "GraphDatabase",
    "PairCache",
    "SkylineExecutor",
    # shard
    "ShardedGraphDatabase",
    # api
    "GraphQuery",
    "Query",
    "Session",
    "connect",
    "ResultSet",
    "QueryPlan",
    "ExecutionBackend",
    "register_backend",
    "available_backends",
    "LiveView",
]
