"""Maximum common connected subgraph via the modular edge-product graph.

An independent second implementation of Definition 7, used to cross-check
the McGregor-style solver (:mod:`repro.graph.mcs`) in the test suite and
compared against it in ablation bench A6.

Construction (classic maximum-common-edge-subgraph reduction):

* a product vertex is an *oriented* compatible edge pair
  ``((u, v), (x, y))`` — edge ``{u, v}`` of ``g1`` mapped onto edge
  ``{x, y}`` of ``g2`` with ``u → x``, ``v → y`` and all labels matching
  (both orientations appear when labels allow);
* two product vertices are adjacent iff their partial vertex maps are
  consistent (agree on shared vertices, injective, distinct edges on both
  sides);
* cliques then correspond exactly to common edge subgraphs with one
  consistent injective label-preserving vertex mapping.

Definition 7 demands a *connected* common subgraph, and connectivity is
not closed under clique containment in general — but any connected common
subgraph sits inside some maximal clique, and within a clique every edge
subset is again a valid common subgraph. So scanning each maximal clique
and taking its largest connected component of ``g1`` edges is exact.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable

from repro.graph.budget import Budget
from repro.graph.labeled_graph import LabeledGraph, edge_key
from repro.graph.mcs import McsResult

VertexId = Hashable

#: A product vertex: ((g1 u, g1 v), (g2 x, g2 y)) with u->x, v->y.
_ProductVertex = tuple[tuple[VertexId, VertexId], tuple[VertexId, VertexId]]


def _oriented_pairs(g1: LabeledGraph, g2: LabeledGraph) -> list[_ProductVertex]:
    pairs: list[_ProductVertex] = []
    for u, v, label1 in g1.edges():
        for x, y, label2 in g2.edges():
            if label1 != label2:
                continue
            if (
                g1.vertex_label(u) == g2.vertex_label(x)
                and g1.vertex_label(v) == g2.vertex_label(y)
            ):
                pairs.append(((u, v), (x, y)))
            if (
                g1.vertex_label(u) == g2.vertex_label(y)
                and g1.vertex_label(v) == g2.vertex_label(x)
            ):
                pairs.append(((u, v), (y, x)))
    return pairs


def _compatible(p: _ProductVertex, q: _ProductVertex) -> bool:
    (pu, pv), (px, py) = p
    (qu, qv), (qx, qy) = q
    if edge_key(pu, pv) == edge_key(qu, qv):
        return False  # same g1 edge
    if edge_key(px, py) == edge_key(qx, qy):
        return False  # same g2 edge
    map_p = {pu: px, pv: py}
    map_q = {qu: qx, qv: qy}
    # consistency: shared g1 vertices agree; injectivity both ways
    for vertex, image in map_q.items():
        if vertex in map_p and map_p[vertex] != image:
            return False
    images_p = {px, py}
    for vertex, image in map_q.items():
        if vertex not in map_p and image in images_p:
            return False  # two g1 vertices onto one g2 vertex
    return True


def _largest_connected_subset(
    edges: list[tuple[VertexId, VertexId]],
) -> list[tuple[VertexId, VertexId]]:
    """Largest connected component (by edge count) of an edge set."""
    if not edges:
        return []
    adjacency: dict[VertexId, list[int]] = {}
    for index, (u, v) in enumerate(edges):
        adjacency.setdefault(u, []).append(index)
        adjacency.setdefault(v, []).append(index)
    unseen = set(range(len(edges)))
    best: list[int] = []
    while unseen:
        start = next(iter(unseen))
        component = {start}
        queue = deque([start])
        unseen.discard(start)
        while queue:
            index = queue.popleft()
            u, v = edges[index]
            for vertex in (u, v):
                for neighbor in adjacency[vertex]:
                    if neighbor in unseen:
                        unseen.discard(neighbor)
                        component.add(neighbor)
                        queue.append(neighbor)
        if len(component) > len(best):
            best = list(component)
    return [edges[index] for index in sorted(best)]


def maximum_common_subgraph_clique(
    g1: LabeledGraph,
    g2: LabeledGraph,
    budget: Budget | None = None,
) -> McsResult:
    """Exact ``mcs(g1, g2)`` via maximal cliques of the edge-product graph.

    Requires ``networkx`` (clique enumeration). Exponential in the worst
    case like every exact MCS; intended for the small labeled graphs of
    this literature and as an independent oracle for the primary solver.
    With a :class:`Budget` the clique enumeration stops on exhaustion and
    the result reports ``optimal=False`` with the trivial certified
    ``size_upper`` of ``min(|g1|, |g2|)``.
    """
    import networkx

    product_vertices = _oriented_pairs(g1, g2)
    product = networkx.Graph()
    product.add_nodes_from(range(len(product_vertices)))
    for i in range(len(product_vertices)):
        for j in range(i + 1, len(product_vertices)):
            if _compatible(product_vertices[i], product_vertices[j]):
                product.add_edge(i, j)

    best_edges: list[tuple[VertexId, VertexId]] = []
    best_mapping: dict[VertexId, VertexId] = {}
    truncated = False
    for index, clique in enumerate(
        networkx.find_cliques(product) if product_vertices else []
    ):
        if budget is not None and budget.exhausted(index):
            truncated = True
            break
        clique_pairs = [product_vertices[i] for i in clique]
        g1_edges = [edge_key(u, v) for (u, v), _ in clique_pairs]
        connected = _largest_connected_subset(g1_edges)
        if len(connected) <= len(best_edges):
            continue
        chosen = set(connected)
        mapping: dict[VertexId, VertexId] = {}
        for (u, v), (x, y) in clique_pairs:
            if edge_key(u, v) in chosen:
                mapping[u] = x
                mapping[v] = y
        best_edges = connected
        best_mapping = mapping
    return McsResult(
        mapping=best_mapping,
        matched_edges=frozenset(best_edges),
        optimal=not truncated,
        size_upper=min(g1.size, g2.size) if truncated else None,
    )
