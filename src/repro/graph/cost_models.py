"""Extension cost models for the graph edit distance.

The paper assumes the uniform model ("distance between two vertices/edges
is 1 if they have different labels"), noting that choosing operations and
costs "represent a difficult task in practice". These models implement
the standard practical choices so the exact solver can be reused beyond
the paper's setting:

* :class:`WeightedCostModel` — independent prices for vertex vs edge
  operations (e.g. making structure edits dearer than relabelings);
* :class:`LabelMatrixCostModel` — per-label-pair substitution costs from
  an explicit table (chemistry-style atom substitution matrices), with a
  default for unlisted pairs.

Note the admissible lower bounds of the exact solver are specialised for
:class:`~repro.graph.operations.UniformCostModel`; with these models the
solver remains exact but searches without a heuristic bound (slower).
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping

from repro.graph.operations import CostModel

Label = Hashable


class WeightedCostModel(CostModel):
    """Separate prices for vertex and edge operations.

    Parameters mirror the six operation kinds; substitutions cost zero for
    equal labels. All prices must be non-negative.
    """

    def __init__(
        self,
        vertex_indel: float = 1.0,
        vertex_mismatch: float = 1.0,
        edge_indel: float = 1.0,
        edge_mismatch: float = 1.0,
    ) -> None:
        prices = (vertex_indel, vertex_mismatch, edge_indel, edge_mismatch)
        if any(price < 0 for price in prices):
            raise ValueError("costs must be non-negative")
        self.vertex_indel = float(vertex_indel)
        self.vertex_mismatch = float(vertex_mismatch)
        self.edge_indel = float(edge_indel)
        self.edge_mismatch = float(edge_mismatch)

    def vertex_substitution(self, label_from: Label, label_to: Label) -> float:
        return 0.0 if label_from == label_to else self.vertex_mismatch

    def vertex_deletion(self, label: Label) -> float:
        return self.vertex_indel

    def vertex_insertion(self, label: Label) -> float:
        return self.vertex_indel

    def edge_substitution(self, label_from: Label, label_to: Label) -> float:
        return 0.0 if label_from == label_to else self.edge_mismatch

    def edge_deletion(self, label: Label) -> float:
        return self.edge_indel

    def edge_insertion(self, label: Label) -> float:
        return self.edge_indel


class LabelMatrixCostModel(CostModel):
    """Substitution costs looked up per label pair.

    ``vertex_matrix`` / ``edge_matrix`` map unordered label pairs (stored
    as 2-tuples, looked up both ways) to substitution costs; unlisted
    unequal pairs fall back to ``default_mismatch``. Equal labels always
    cost zero, keeping the identity axiom intact.
    """

    def __init__(
        self,
        vertex_matrix: Mapping[tuple[Label, Label], float] | None = None,
        edge_matrix: Mapping[tuple[Label, Label], float] | None = None,
        indel_cost: float = 1.0,
        default_mismatch: float = 1.0,
    ) -> None:
        if indel_cost < 0 or default_mismatch < 0:
            raise ValueError("costs must be non-negative")
        self._vertex_matrix = dict(vertex_matrix or {})
        self._edge_matrix = dict(edge_matrix or {})
        for matrix in (self._vertex_matrix, self._edge_matrix):
            if any(cost < 0 for cost in matrix.values()):
                raise ValueError("matrix costs must be non-negative")
        self.indel_cost = float(indel_cost)
        self.default_mismatch = float(default_mismatch)

    @staticmethod
    def _lookup(
        matrix: Mapping[tuple[Label, Label], float],
        label_from: Label,
        label_to: Label,
        default: float,
    ) -> float:
        if label_from == label_to:
            return 0.0
        if (label_from, label_to) in matrix:
            return matrix[(label_from, label_to)]
        if (label_to, label_from) in matrix:
            return matrix[(label_to, label_from)]
        return default

    def vertex_substitution(self, label_from: Label, label_to: Label) -> float:
        return self._lookup(
            self._vertex_matrix, label_from, label_to, self.default_mismatch
        )

    def vertex_deletion(self, label: Label) -> float:
        return self.indel_cost

    def vertex_insertion(self, label: Label) -> float:
        return self.indel_cost

    def edge_substitution(self, label_from: Label, label_to: Label) -> float:
        return self._lookup(
            self._edge_matrix, label_from, label_to, self.default_mismatch
        )

    def edge_deletion(self, label: Label) -> float:
        return self.indel_cost

    def edge_insertion(self, label: Label) -> float:
        return self.indel_cost
