"""Graph (de)serialization: dicts, JSON and a line-oriented text format.

The dict payload is the source of truth::

    {
      "name": "g1",
      "vertices": [[vertex_id, label], ...],
      "edges": [[u, v, label], ...],
    }

JSON round-trips any graph whose ids and labels are JSON-representable
(strings, numbers, booleans). The text format is a compact edge-list used
by the examples::

    # comment
    v <id> <label>
    e <u> <v> <label>
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import SerializationError
from repro.graph.labeled_graph import LabeledGraph


def graph_to_dict(graph: LabeledGraph) -> dict[str, Any]:
    """Plain-data payload for ``graph`` (see module docstring)."""
    return {
        "name": graph.name,
        "vertices": [[v, graph.vertex_label(v)] for v in graph.vertices()],
        "edges": [[u, v, label] for u, v, label in graph.edges()],
    }


def graph_from_dict(payload: dict[str, Any]) -> LabeledGraph:
    """Rebuild a graph from :func:`graph_to_dict` output."""
    if not isinstance(payload, dict):
        raise SerializationError(
            f"malformed graph payload: expected an object, "
            f"got {type(payload).__name__}"
        )
    try:
        graph = LabeledGraph(name=payload.get("name"))
        for vertex, label in payload["vertices"]:
            graph.add_vertex(vertex, label)
        for u, v, label in payload["edges"]:
            graph.add_edge(u, v, label)
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed graph payload: {exc}") from exc
    return graph


def graph_to_json(graph: LabeledGraph, **dumps_kwargs: Any) -> str:
    """JSON string for ``graph``."""
    try:
        return json.dumps(graph_to_dict(graph), **dumps_kwargs)
    except TypeError as exc:
        raise SerializationError(
            f"graph has ids/labels that are not JSON-serializable: {exc}"
        ) from exc


def graph_from_json(payload: str) -> LabeledGraph:
    """Rebuild a graph from :func:`graph_to_json` output.

    JSON has no tuples, so ids/labels that were tuples come back as lists;
    stick to strings and numbers for full fidelity.
    """
    try:
        data = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    data["vertices"] = [tuple(item) for item in data.get("vertices", [])]
    data["edges"] = [tuple(item) for item in data.get("edges", [])]
    return graph_from_dict(data)


def graph_to_text(graph: LabeledGraph) -> str:
    """Line-oriented edge-list encoding (ids and labels become strings)."""
    lines = []
    if graph.name:
        lines.append(f"# {graph.name}")
    for v in graph.vertices():
        lines.append(f"v {v} {graph.vertex_label(v)}")
    for u, v, label in graph.edges():
        lines.append(f"e {u} {v} {label}")
    return "\n".join(lines) + "\n"


def graph_from_text(payload: str, name: str | None = None) -> LabeledGraph:
    """Parse the text format (all ids and labels are read as strings)."""
    graph = LabeledGraph(name=name)
    for line_number, raw in enumerate(payload.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        try:
            if parts[0] == "v" and len(parts) == 3:
                graph.add_vertex(parts[1], parts[2])
            elif parts[0] == "e" and len(parts) == 4:
                graph.add_edge(parts[1], parts[2], parts[3])
            else:
                raise SerializationError(
                    f"line {line_number}: expected 'v <id> <label>' or "
                    f"'e <u> <v> <label>', got {raw!r}"
                )
        except SerializationError:
            raise
        except Exception as exc:
            raise SerializationError(f"line {line_number}: {exc}") from exc
    return graph
