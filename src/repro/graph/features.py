"""Cheap iso-invariant graph features for index filtering.

The database layer (S13) prunes candidates with features that bound the
paper's distance measures from below:

* size difference bounds ``DistEd`` (every edit changes at most one edge);
* ``|mcs|`` is bounded above by the overlap of edge-label multisets, which
  bounds ``DistMcs`` / ``DistGu`` from below.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from functools import cached_property

from repro.graph.labeled_graph import LabeledGraph


@dataclass(frozen=True)
class GraphFeatures:
    """Summary statistics of a graph, comparable without the graph itself."""

    order: int
    size: int
    vertex_labels: tuple[tuple[str, int], ...]
    edge_labels: tuple[tuple[str, int], ...]
    degree_sequence: tuple[int, ...]

    @classmethod
    def of(cls, graph: LabeledGraph) -> "GraphFeatures":
        """Extract features from ``graph``."""
        return cls(
            order=graph.order,
            size=graph.size,
            vertex_labels=_freeze(graph.vertex_label_multiset()),
            edge_labels=_freeze(graph.edge_label_multiset()),
            degree_sequence=tuple(
                sorted((graph.degree(v) for v in graph.vertices()), reverse=True)
            ),
        )

    # The Counter forms are materialized once per (frozen, immutable)
    # instance — the scalar bounds below are called per database pair,
    # and rebuilding a Counter for every pair dominated their cost.
    # ``cached_property`` writes straight into ``__dict__``, which a
    # frozen dataclass permits; equality/hash use the fields only.
    @cached_property
    def _vertex_counter(self) -> Counter:
        return Counter(dict(self.vertex_labels))

    @cached_property
    def _edge_counter(self) -> Counter:
        return Counter(dict(self.edge_labels))

    def vertex_label_counter(self) -> Counter:
        """The vertex-label multiset as a :class:`collections.Counter`.

        The same object on every call — treat it as read-only.
        """
        return self._vertex_counter

    def edge_label_counter(self) -> Counter:
        """The edge-label multiset as a :class:`collections.Counter`.

        The same object on every call — treat it as read-only.
        """
        return self._edge_counter


def _freeze(counter: Counter) -> tuple[tuple[str, int], ...]:
    return tuple(sorted(((repr(k), c) for k, c in counter.items())))


def edit_distance_lower_bound(f1: GraphFeatures, f2: GraphFeatures) -> float:
    """Admissible ``DistEd`` lower bound from features alone (uniform costs)."""
    vertex_part = _counter_bound(f1.vertex_label_counter(), f2.vertex_label_counter())
    edge_part = _counter_bound(f1.edge_label_counter(), f2.edge_label_counter())
    return float(vertex_part + edge_part)


def mcs_upper_bound(f1: GraphFeatures, f2: GraphFeatures) -> int:
    """Upper bound on ``|mcs|`` — shared edge-label stock caps any overlap."""
    overlap = f1.edge_label_counter() & f2.edge_label_counter()
    return sum(overlap.values())


def dist_mcs_lower_bound(f1: GraphFeatures, f2: GraphFeatures) -> float:
    """Lower bound on ``DistMcs`` given only features."""
    denominator = max(f1.size, f2.size)
    if denominator == 0:
        return 0.0
    return 1.0 - min(mcs_upper_bound(f1, f2), denominator) / denominator


def dist_gu_lower_bound(f1: GraphFeatures, f2: GraphFeatures) -> float:
    """Lower bound on ``DistGu`` given only features."""
    mcs_cap = min(mcs_upper_bound(f1, f2), min(f1.size, f2.size))
    union = f1.size + f2.size - mcs_cap
    if union <= 0:
        return 0.0
    return 1.0 - mcs_cap / union


def _counter_bound(counter1: Counter, counter2: Counter) -> float:
    n1, n2 = sum(counter1.values()), sum(counter2.values())
    overlap = sum((counter1 & counter2).values())
    return abs(n1 - n2) + (min(n1, n2) - overlap)
