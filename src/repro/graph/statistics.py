"""Descriptive statistics of labeled graphs and graph collections.

Used by EXPERIMENTS.md-style dataset characterisation, the CLI's
``generate`` output, and anyone validating that a synthetic workload
resembles the intended domain (densities, label entropies, degree
profiles of chemical datasets).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from collections.abc import Sequence

from repro.graph.labeled_graph import LabeledGraph


@dataclass(frozen=True)
class GraphStatistics:
    """Summary statistics of one graph."""

    order: int
    size: int
    density: float
    connected: bool
    components: int
    min_degree: int
    max_degree: int
    mean_degree: float
    vertex_label_entropy: float
    edge_label_entropy: float
    distinct_vertex_labels: int
    distinct_edge_labels: int


def _entropy(counter: Counter) -> float:
    total = sum(counter.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counter.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def graph_statistics(graph: LabeledGraph) -> GraphStatistics:
    """Compute :class:`GraphStatistics` for ``graph``."""
    degrees = [graph.degree(v) for v in graph.vertices()]
    max_possible = graph.order * (graph.order - 1) / 2
    components = graph.connected_components()
    return GraphStatistics(
        order=graph.order,
        size=graph.size,
        density=(graph.size / max_possible) if max_possible else 0.0,
        connected=graph.is_connected(),
        components=len(components),
        min_degree=min(degrees) if degrees else 0,
        max_degree=max(degrees) if degrees else 0,
        mean_degree=(sum(degrees) / len(degrees)) if degrees else 0.0,
        vertex_label_entropy=_entropy(graph.vertex_label_multiset()),
        edge_label_entropy=_entropy(graph.edge_label_multiset()),
        distinct_vertex_labels=len(graph.vertex_label_multiset()),
        distinct_edge_labels=len(graph.edge_label_multiset()),
    )


@dataclass(frozen=True)
class CollectionStatistics:
    """Aggregate statistics of a graph collection (a database/workload)."""

    count: int
    total_vertices: int
    total_edges: int
    mean_order: float
    mean_size: float
    min_size: int
    max_size: int
    connected_fraction: float
    vertex_label_vocabulary: tuple[str, ...]
    edge_label_vocabulary: tuple[str, ...]


def collection_statistics(graphs: Sequence[LabeledGraph]) -> CollectionStatistics:
    """Aggregate statistics of ``graphs`` (empty collections allowed)."""
    if not graphs:
        return CollectionStatistics(
            count=0, total_vertices=0, total_edges=0, mean_order=0.0,
            mean_size=0.0, min_size=0, max_size=0, connected_fraction=0.0,
            vertex_label_vocabulary=(), edge_label_vocabulary=(),
        )
    orders = [graph.order for graph in graphs]
    sizes = [graph.size for graph in graphs]
    vertex_vocab: Counter = Counter()
    edge_vocab: Counter = Counter()
    connected = 0
    for graph in graphs:
        vertex_vocab.update(graph.vertex_label_multiset())
        edge_vocab.update(graph.edge_label_multiset())
        if graph.is_connected():
            connected += 1
    return CollectionStatistics(
        count=len(graphs),
        total_vertices=sum(orders),
        total_edges=sum(sizes),
        mean_order=sum(orders) / len(graphs),
        mean_size=sum(sizes) / len(graphs),
        min_size=min(sizes),
        max_size=max(sizes),
        connected_fraction=connected / len(graphs),
        vertex_label_vocabulary=tuple(sorted(map(repr, vertex_vocab))),
        edge_label_vocabulary=tuple(sorted(map(repr, edge_vocab))),
    )


def describe_graph(graph: LabeledGraph) -> str:
    """Multi-line plain-text description (used by examples and the CLI)."""
    stats = graph_statistics(graph)
    name = graph.name or "(unnamed)"
    lines = [
        f"graph {name}: {stats.order} vertices, {stats.size} edges "
        f"(|g| in the paper's sense)",
        f"  density {stats.density:.3f}, "
        f"{'connected' if stats.connected else f'{stats.components} components'}",
        f"  degrees: min {stats.min_degree}, mean {stats.mean_degree:.2f}, "
        f"max {stats.max_degree}",
        f"  labels: {stats.distinct_vertex_labels} vertex "
        f"(entropy {stats.vertex_label_entropy:.2f} bits), "
        f"{stats.distinct_edge_labels} edge "
        f"(entropy {stats.edge_label_entropy:.2f} bits)",
    ]
    return "\n".join(lines)
