"""Set-theoretic operations on identity-aligned labeled graphs.

Definition 10 measures similarity against "the size of the union of the
two graphs in the set theoretic sense". For graphs sharing a vertex-id
space (as in the paper's examples, where vertices are identified by their
drawing position) these operations are plain set algebra on labeled
vertices and labeled edges:

* :func:`graph_union` — all vertices/edges of both (labels must agree on
  shared elements);
* :func:`graph_intersection` — vertices/edges present in both with equal
  labels;
* :func:`graph_difference` — ``g1``'s edges not in ``g2`` (plus their
  endpoints).

These are *id-aligned* operations — no isomorphism matching happens. For
the label-preserving-matching notion of common structure use
:mod:`repro.graph.mcs`. The identity ``|union| = |g1| + |g2| − |∩|``
(edge counts) mirrors the denominator of ``SimGu`` when the best match is
the id-alignment.
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.graph.labeled_graph import LabeledGraph


def _check_label_agreement(g1: LabeledGraph, g2: LabeledGraph) -> None:
    for vertex in g1.vertices():
        if g2.has_vertex(vertex) and g1.vertex_label(vertex) != g2.vertex_label(vertex):
            raise GraphError(
                f"vertex {vertex!r} carries different labels "
                f"({g1.vertex_label(vertex)!r} vs {g2.vertex_label(vertex)!r}); "
                "id-aligned algebra requires agreement"
            )
    for u, v, label in g1.edges():
        if g2.has_edge(u, v) and g2.edge_label(u, v) != label:
            raise GraphError(
                f"edge ({u!r}, {v!r}) carries different labels "
                f"({label!r} vs {g2.edge_label(u, v)!r})"
            )


def graph_union(g1: LabeledGraph, g2: LabeledGraph,
                name: str | None = None) -> LabeledGraph:
    """The id-aligned union of two graphs (labels must agree on overlap)."""
    _check_label_agreement(g1, g2)
    union = g1.copy(name=name or "union")
    for vertex in g2.vertices():
        if not union.has_vertex(vertex):
            union.add_vertex(vertex, g2.vertex_label(vertex))
    for u, v, label in g2.edges():
        if not union.has_edge(u, v):
            union.add_edge(u, v, label)
    return union


def graph_intersection(g1: LabeledGraph, g2: LabeledGraph,
                       name: str | None = None) -> LabeledGraph:
    """The id-aligned intersection (shared vertices and edges, equal labels)."""
    intersection = LabeledGraph(name=name or "intersection")
    for vertex in g1.vertices():
        if g2.has_vertex(vertex) and g1.vertex_label(vertex) == g2.vertex_label(vertex):
            intersection.add_vertex(vertex, g1.vertex_label(vertex))
    for u, v, label in g1.edges():
        if (
            intersection.has_vertex(u)
            and intersection.has_vertex(v)
            and g2.has_edge(u, v)
            and g2.edge_label(u, v) == label
        ):
            intersection.add_edge(u, v, label)
    return intersection


def graph_difference(g1: LabeledGraph, g2: LabeledGraph,
                     name: str | None = None) -> LabeledGraph:
    """Edges of ``g1`` absent from ``g2`` (label-sensitive), with endpoints."""
    difference = LabeledGraph(name=name or "difference")
    for u, v, label in g1.edges():
        shared = g2.has_edge(u, v) and g2.edge_label(u, v) == label
        if not shared:
            for endpoint in (u, v):
                if not difference.has_vertex(endpoint):
                    difference.add_vertex(endpoint, g1.vertex_label(endpoint))
            difference.add_edge(u, v, label)
    return difference
