"""Best-first (A*) exact graph edit distance.

An independent second exact engine for Definition 8, cross-checked
against the depth-first branch-and-bound solver (:mod:`repro.graph.ged`)
in the tests and compared in ablation bench A7. Same state space (partial
vertex assignments in a fixed order, incremental edge costs, completion
by inserting the untouched part of ``g2``) but explored best-first with a
priority queue ordered by ``g + h``, where ``h`` is the admissible
label-multiset bound. A* expands the provably minimal number of states
for a given heuristic at the price of keeping the frontier in memory —
the classic trade-off the bench makes visible.
"""

from __future__ import annotations

import heapq
import itertools
from collections import Counter
from collections.abc import Hashable

from repro.graph.budget import Budget
from repro.graph.ged import DELETED, GedResult, _multiset_bound
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.operations import CostModel, UNIFORM_COSTS, UniformCostModel

VertexId = Hashable


class _AStarGed:
    """One best-first run."""

    def __init__(
        self,
        g1: LabeledGraph,
        g2: LabeledGraph,
        costs: CostModel,
        node_limit: int | None,
        budget: Budget | None = None,
    ) -> None:
        self.g1 = g1
        self.g2 = g2
        self.costs = costs
        self.node_limit = node_limit
        self.budget = budget
        self.order = sorted(g1.vertices(), key=lambda v: (-g1.degree(v), repr(v)))
        self.g2_vertices = list(g2.vertices())
        self.uniform = isinstance(costs, UniformCostModel)
        self.expanded = 0

    # -- heuristics / costs (mirrors the DF engine) ---------------------
    def _heuristic(self, level: int, used: frozenset) -> float:
        if not self.uniform:
            return 0.0
        indel = self.costs.indel_cost
        mismatch = self.costs.mismatch_cost
        rem1 = Counter(self.g1.vertex_label(v) for v in self.order[level:])
        rem2 = Counter(
            self.g2.vertex_label(w) for w in self.g2_vertices if w not in used
        )
        bound = _multiset_bound(rem1, rem2, indel, mismatch)
        processed = set(self.order[:level])
        open1 = Counter(
            label
            for u, v, label in self.g1.edges()
            if u not in processed or v not in processed
        )
        open2 = Counter(
            label
            for u, v, label in self.g2.edges()
            if u not in used or v not in used
        )
        return bound + _multiset_bound(open1, open2, indel, mismatch)

    def _step_cost(
        self,
        u: VertexId,
        w: VertexId | None,
        mapping: dict[VertexId, VertexId | None],
    ) -> float:
        if w is DELETED:
            cost = self.costs.vertex_deletion(self.g1.vertex_label(u))
            for prev in mapping:
                if self.g1.has_edge(u, prev):
                    cost += self.costs.edge_deletion(self.g1.edge_label(u, prev))
            return cost
        cost = self.costs.vertex_substitution(
            self.g1.vertex_label(u), self.g2.vertex_label(w)
        )
        for prev, image in mapping.items():
            edge1 = self.g1.has_edge(u, prev)
            edge2 = image is not DELETED and self.g2.has_edge(w, image)
            if edge1 and edge2:
                cost += self.costs.edge_substitution(
                    self.g1.edge_label(u, prev), self.g2.edge_label(w, image)
                )
            elif edge1:
                cost += self.costs.edge_deletion(self.g1.edge_label(u, prev))
            elif edge2:
                cost += self.costs.edge_insertion(self.g2.edge_label(w, image))
        return cost

    def _completion_cost(self, used: frozenset) -> float:
        cost = 0.0
        for w in self.g2_vertices:
            if w not in used:
                cost += self.costs.vertex_insertion(self.g2.vertex_label(w))
        for a, b, label in self.g2.edges():
            if a not in used or b not in used:
                cost += self.costs.edge_insertion(label)
        return cost

    # -- search ----------------------------------------------------------
    def run(self) -> GedResult:
        tie = itertools.count()
        start = (self._heuristic(0, frozenset()), next(tie), 0.0, {}, frozenset())
        frontier: list[tuple[float, int, float, dict, frozenset]] = [start]
        while frontier:
            f, _, g_cost, mapping, used = heapq.heappop(frontier)
            if (
                self.node_limit is not None and self.expanded >= self.node_limit
            ) or (self.budget is not None and self.budget.exhausted(self.expanded)):
                # Fall back: greedily complete the current best partial
                # state. The popped f is min over the whole frontier, so it
                # is a certified global lower bound at truncation.
                return self._truncate(f, g_cost, mapping, used)
            self.expanded += 1
            level = len(mapping)
            if level == len(self.order):
                total = g_cost + self._completion_cost(used)
                return GedResult(
                    distance=total,
                    mapping=dict(mapping),
                    optimal=True,
                    expanded_nodes=self.expanded,
                    lower_bound=total,
                )
            u = self.order[level]
            options: list[VertexId | None] = [
                w for w in self.g2_vertices if w not in used
            ]
            options.append(DELETED)
            for w in options:
                step = self._step_cost(u, w, mapping)
                new_mapping = dict(mapping)
                new_mapping[u] = w
                new_used = used if w is DELETED else used | {w}
                new_g = g_cost + step
                h = self._heuristic(level + 1, new_used)
                heapq.heappush(
                    frontier, (new_g + h, next(tie), new_g, new_mapping, new_used)
                )
        raise RuntimeError("A* frontier exhausted without a goal")  # pragma: no cover

    def _truncate(
        self, frontier_bound: float, g_cost: float, mapping: dict, used: frozenset
    ) -> GedResult:
        """Cheapest greedy completion of a partial state (upper bound)."""
        mapping = dict(mapping)
        used_set = set(used)
        for u in self.order[len(mapping):]:
            options: list[VertexId | None] = [
                w for w in self.g2_vertices if w not in used_set
            ]
            options.append(DELETED)
            best_w = min(options, key=lambda w: self._step_cost(u, w, mapping))
            g_cost += self._step_cost(u, best_w, mapping)
            mapping[u] = best_w
            if best_w is not DELETED:
                used_set.add(best_w)
        total = g_cost + self._completion_cost(frozenset(used_set))
        return GedResult(
            distance=total,
            mapping=mapping,
            optimal=False,
            expanded_nodes=self.expanded,
            lower_bound=min(frontier_bound, total),
        )


def graph_edit_distance_astar(
    g1: LabeledGraph,
    g2: LabeledGraph,
    costs: CostModel = UNIFORM_COSTS,
    node_limit: int | None = None,
    budget: Budget | None = None,
) -> GedResult:
    """Exact ``DistEd`` via best-first search (see module docstring).

    With a ``node_limit`` or exhausted :class:`Budget` the search degrades
    gracefully to a certified interval (``optimal=False``): the greedy
    completion of the best frontier state is the upper bound, the popped
    frontier minimum the lower bound.
    """
    return _AStarGed(g1, g2, costs, node_limit, budget).run()
