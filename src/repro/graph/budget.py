"""Evaluation budgets and certified distance intervals.

The paper's exact measures (``DistEd``, ``DistMcs``, ``DistGu``) sit on
worst-case-exponential branch-and-bound searches. A :class:`Budget` caps
one such search by wall clock and/or expansion count; a solver that runs
out does not fail — it stops where it is and reports what it *knows*:

* an **incumbent** (best complete solution found so far) — an upper
  bound on the edit distance, a lower bound on the common-subgraph size;
* the best **admissible bound** over the abandoned frontier — the
  matching certified bound on the other side.

:class:`Interval` carries such a certified ``[lower, upper]`` range
through the measure and engine layers (an exact value is the degenerate
interval ``lower == upper``). Both types live in the graph layer so the
solvers can use them without importing the engine.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

#: Two interval endpoints within this of each other count as settled.
SETTLED_EPSILON = 1e-9


@dataclass(frozen=True)
class Budget:
    """A cap on one exact evaluation: wall clock and/or expansions.

    ``expires_at`` is an absolute :func:`time.monotonic` instant (``None``
    = no wall-clock cap); ``node_limit`` caps search-state expansions
    (``None`` = no cap). A budget with neither is unlimited.
    """

    expires_at: float | None = None
    node_limit: int | None = None

    @classmethod
    def of(
        cls, seconds: float | None = None, nodes: int | None = None
    ) -> "Budget":
        """Budget expiring ``seconds`` from now and/or after ``nodes``."""
        expires = None if seconds is None else time.monotonic() + float(seconds)
        return cls(expires_at=expires, node_limit=nodes)

    @property
    def unlimited(self) -> bool:
        return self.expires_at is None and self.node_limit is None

    def exhausted(self, expanded: int = 0) -> bool:
        """Whether a search that expanded ``expanded`` states must stop."""
        if self.node_limit is not None and expanded >= self.node_limit:
            return True
        return self.expires_at is not None and time.monotonic() >= self.expires_at


@dataclass(frozen=True)
class Interval:
    """A certified ``[lower, upper]`` range around an exact distance.

    Invariant: ``lower <= upper`` (the constructor clamps floating-point
    noise from monotone bound maps rather than raising). ``upper`` may be
    ``inf`` for a candidate that was never evaluated at all.
    """

    lower: float
    upper: float

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            # Endpoints produced by independent bound computations can
            # cross by floating noise; collapse to the tighter one.
            object.__setattr__(self, "lower", self.upper)

    @classmethod
    def exact(cls, value: float) -> "Interval":
        """The degenerate interval of an exactly-known distance."""
        return cls(lower=value, upper=value)

    @property
    def settled(self) -> bool:
        """Whether the interval pins the exact value (width ~ 0)."""
        return self.upper - self.lower <= SETTLED_EPSILON

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def __contains__(self, value: float) -> bool:
        return self.lower - SETTLED_EPSILON <= value <= self.upper + SETTLED_EPSILON

    def intersect(self, other: "Interval") -> "Interval":
        """Tightest interval consistent with both certificates."""
        return Interval(
            lower=max(self.lower, other.lower),
            upper=min(self.upper, other.upper),
        )

    def to_wire(self) -> list[float | None]:
        """JSON-safe ``[lower, upper]`` pair (``inf`` upper → ``None``)."""
        return [self.lower, None if math.isinf(self.upper) else self.upper]
