"""Graph substrate: labeled graphs, isomorphism, MCS, edit distance.

This subpackage implements every graph-theoretic building block the paper
relies on (Definitions 3–8): the labeled-graph type, label-preserving
(sub)graph isomorphism, the maximum common connected subgraph, and exact
plus approximate graph edit distance, together with generators, features,
canonical forms and serialization.
"""

from repro.graph.budget import Budget, Interval
from repro.graph.labeled_graph import DEFAULT_EDGE_LABEL, LabeledGraph, edge_key
from repro.graph.operations import (
    CostModel,
    EdgeDeletion,
    EdgeInsertion,
    EdgeRelabeling,
    EditOperation,
    EditPath,
    UNIFORM_COSTS,
    UniformCostModel,
    VertexDeletion,
    VertexInsertion,
    VertexRelabeling,
)
from repro.graph.isomorphism import (
    count_subgraph_isomorphisms,
    find_isomorphism,
    find_subgraph_isomorphism,
    is_isomorphic,
    is_subgraph_isomorphic,
    iter_subgraph_isomorphisms,
    verify_embedding,
)
from repro.graph.mcs import McsResult, maximum_common_subgraph, mcs_size
from repro.graph.mcs_clique import maximum_common_subgraph_clique
from repro.graph.ged import GedResult, edit_path_from_mapping, ged, graph_edit_distance
from repro.graph.ged_astar import graph_edit_distance_astar
from repro.graph.ged_approx import (
    GedEstimate,
    beam_ged,
    bipartite_ged,
    ged_lower_bound,
    induced_edit_cost,
)
from repro.graph.canonical import canonical_form, canonical_hash, wl_colors
from repro.graph.features import (
    GraphFeatures,
    dist_gu_lower_bound,
    dist_mcs_lower_bound,
    edit_distance_lower_bound,
    mcs_upper_bound,
)
from repro.graph.generators import (
    cycle_graph,
    grid_graph,
    mutate,
    mutation_database,
    path_graph,
    random_labeled_graph,
    star_graph,
)
from repro.graph.serialization import (
    graph_from_dict,
    graph_from_json,
    graph_from_text,
    graph_to_dict,
    graph_to_json,
    graph_to_text,
)
from repro.graph.algebra import graph_difference, graph_intersection, graph_union
from repro.graph.cost_models import LabelMatrixCostModel, WeightedCostModel
from repro.graph.statistics import (
    CollectionStatistics,
    GraphStatistics,
    collection_statistics,
    describe_graph,
    graph_statistics,
)

__all__ = [
    "Budget",
    "Interval",
    "DEFAULT_EDGE_LABEL",
    "LabeledGraph",
    "edge_key",
    "CostModel",
    "UniformCostModel",
    "UNIFORM_COSTS",
    "EditOperation",
    "EditPath",
    "VertexInsertion",
    "VertexDeletion",
    "VertexRelabeling",
    "EdgeInsertion",
    "EdgeDeletion",
    "EdgeRelabeling",
    "find_isomorphism",
    "is_isomorphic",
    "find_subgraph_isomorphism",
    "is_subgraph_isomorphic",
    "iter_subgraph_isomorphisms",
    "count_subgraph_isomorphisms",
    "verify_embedding",
    "McsResult",
    "maximum_common_subgraph",
    "maximum_common_subgraph_clique",
    "mcs_size",
    "GedResult",
    "graph_edit_distance",
    "graph_edit_distance_astar",
    "ged",
    "edit_path_from_mapping",
    "GedEstimate",
    "bipartite_ged",
    "beam_ged",
    "ged_lower_bound",
    "induced_edit_cost",
    "canonical_form",
    "canonical_hash",
    "wl_colors",
    "GraphFeatures",
    "edit_distance_lower_bound",
    "mcs_upper_bound",
    "dist_mcs_lower_bound",
    "dist_gu_lower_bound",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "grid_graph",
    "random_labeled_graph",
    "mutate",
    "mutation_database",
    "graph_to_dict",
    "graph_from_dict",
    "graph_to_json",
    "graph_from_json",
    "graph_to_text",
    "graph_from_text",
    "graph_union",
    "graph_intersection",
    "graph_difference",
    "WeightedCostModel",
    "LabelMatrixCostModel",
    "GraphStatistics",
    "CollectionStatistics",
    "graph_statistics",
    "collection_statistics",
    "describe_graph",
]
